//! Umbrella crate for the BoFL reproduction workspace.
//!
//! This root package exists to host the runnable examples
//! (`examples/*.rs`) and the cross-crate integration tests (`tests/`).
//! Library users should depend on the individual crates directly:
//!
//! - [`bofl`] — the BoFL pace controller, baselines and experiment runner;
//! - [`bofl_device`] — the simulated Jetson devices (DVFS, power, sensor);
//! - [`bofl_workload`] — NN workload descriptors and FL task presets;
//! - [`bofl_fl`] — the FedAvg substrate with real SGD training;
//! - [`bofl_gp`] / [`bofl_mobo`] / [`bofl_ilp`] / [`bofl_linalg`] — the
//!   numerical substrates (Gaussian processes, multi-objective Bayesian
//!   optimization, integer linear programming, dense linear algebra).
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the paper-vs-
//! measured record of every reproduced table and figure.

pub use bofl;
pub use bofl_device;
pub use bofl_fl;
pub use bofl_gp;
pub use bofl_ilp;
pub use bofl_linalg;
pub use bofl_mobo;
pub use bofl_workload;
