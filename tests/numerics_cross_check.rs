//! Cross-crate numerical cross-checks: the optimization substrates agree
//! with brute force on problems small enough to enumerate.

use bofl_repro::bofl::exploit::plan_profile;
use bofl_repro::bofl::ObservationStore;
use bofl_repro::bofl_device::{Device, DvfsConfig, FreqTable};
use bofl_repro::bofl_ilp::{solve_profile, ConfigCost};
use bofl_repro::bofl_mobo::hypervolume::hypervolume;
use bofl_repro::bofl_mobo::{pareto_front_indices, ParetoFront};
use bofl_repro::bofl_workload::{FlTask, TaskKind, Testbed};

/// On a tiny custom device, the exploitation plan built from *perfect*
/// observations must match a brute-force enumeration of all job mixes.
#[test]
fn ilp_plan_matches_brute_force_on_tiny_device() {
    let device = Device::builder("tiny")
        .cpu_table(FreqTable::from_mhz(&[600, 1500]))
        .gpu_table(FreqTable::from_mhz(&[300, 900]))
        .mem_table(FreqTable::from_mhz(&[800]))
        .build();
    let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
    let space = device.config_space().clone();

    // Perfect observations for all 4 configurations.
    let mut store = ObservationStore::new();
    let mut costs = Vec::new();
    for x in space.iter() {
        let c = device.true_cost(&task, x);
        store.record(&space, x, c);
        costs.push((x, c));
    }

    let jobs: u64 = 6;
    let t_max = device.true_cost(&task, space.x_max()).latency_s;
    let deadline = jobs as f64 * t_max * 1.8;

    let plan = plan_profile(&store, jobs, deadline).expect("feasible");
    let plan_energy: f64 = plan
        .iter()
        .map(|(x, n)| device.true_cost(&task, *x).energy_j * *n as f64)
        .sum();

    // Brute force: enumerate all compositions of 6 jobs over 4 configs.
    let mut best = f64::INFINITY;
    let k = costs.len();
    let mut counts = vec![0u64; k];
    fn recurse(
        i: usize,
        left: u64,
        counts: &mut Vec<u64>,
        costs: &[(DvfsConfig, bofl_repro::bofl_device::JobCost)],
        deadline: f64,
        best: &mut f64,
    ) {
        if i + 1 == counts.len() {
            counts[i] = left;
            let lat: f64 = counts
                .iter()
                .zip(costs)
                .map(|(&n, (_, c))| n as f64 * c.latency_s)
                .sum();
            if lat <= deadline + 1e-9 {
                let en: f64 = counts
                    .iter()
                    .zip(costs)
                    .map(|(&n, (_, c))| n as f64 * c.energy_j)
                    .sum();
                if en < *best {
                    *best = en;
                }
            }
            return;
        }
        for n in 0..=left {
            counts[i] = n;
            recurse(i + 1, left - n, counts, costs, deadline, best);
        }
    }
    recurse(0, jobs, &mut counts, &costs, deadline, &mut best);

    assert!(
        (plan_energy - best).abs() < 1e-6 * best,
        "ILP plan {plan_energy} vs brute force {best}"
    );
}

/// The true Pareto front of a full device profile dominates every other
/// configuration, and its hypervolume is the maximum over subsets.
#[test]
fn device_pareto_front_is_consistent() {
    let device = Device::jetson_tx2();
    let task = FlTask::preset(TaskKind::ImdbLstm, Testbed::JetsonTx2);
    let profile = device.profile_all(&task);
    let objectives: Vec<[f64; 2]> = profile
        .iter()
        .map(|p| [p.cost.energy_j, p.cost.latency_s])
        .collect();
    let front_idx = pareto_front_indices(&objectives);
    assert!(front_idx.len() >= 5, "front too small: {}", front_idx.len());
    assert!(
        front_idx.len() < objectives.len() / 4,
        "front suspiciously large"
    );

    let reference = [
        objectives.iter().map(|o| o[0]).fold(0.0, f64::max) * 1.01,
        objectives.iter().map(|o| o[1]).fold(0.0, f64::max) * 1.01,
    ];
    let full: ParetoFront = objectives.iter().copied().collect();
    let front_only: ParetoFront = front_idx.iter().map(|&i| objectives[i]).collect();
    // Dominated points contribute nothing to the hypervolume.
    assert!((hypervolume(&full, reference) - hypervolume(&front_only, reference)).abs() < 1e-9,);

    // x_max is always on the front: nothing is faster.
    let x_max_idx = device
        .config_space()
        .index_of(device.config_space().x_max())
        .unwrap()
        .0;
    assert!(
        front_idx.contains(&x_max_idx),
        "x_max must be Pareto-optimal (fastest point)"
    );
}

/// The profile solver and the core planner agree on total energy when
/// given the same candidates.
#[test]
fn core_planner_agrees_with_ilp_crate() {
    let candidates = [
        ConfigCost {
            latency_s: 0.20,
            energy_j: 4.1,
        },
        ConfigCost {
            latency_s: 0.26,
            energy_j: 3.5,
        },
        ConfigCost {
            latency_s: 0.34,
            energy_j: 3.1,
        },
    ];
    let jobs = 50;
    let deadline = 0.26 * 50.0;
    let direct = solve_profile(&candidates, jobs, deadline).unwrap();
    assert_eq!(direct.total_jobs(), jobs);
    assert!(direct.latency_s <= deadline + 1e-9);
    // Sanity: the mix must beat both pure extremes that are feasible.
    let pure_fast = 50.0 * 4.1;
    assert!(direct.energy_j < pure_fast);
}
