//! Cross-crate integration: the full BoFL pipeline from device simulation
//! through MBO to ILP exploitation, exercised end-to-end via the umbrella
//! crate.

use bofl_repro::bofl::baselines::{OracleController, PerformantController};
use bofl_repro::bofl::metrics::{improvement_vs, regret_vs};
use bofl_repro::bofl::prelude::*;
use bofl_repro::bofl::Phase;
use bofl_repro::bofl_workload::{FlTask, TaskKind, Testbed};

/// The headline property on *both* devices: Oracle ≤ BoFL < Performant
/// with zero deadline misses.
#[test]
fn headline_ordering_on_both_testbeds() {
    for (testbed, seed) in [(Testbed::JetsonAgx, 1u64), (Testbed::JetsonTx2, 2u64)] {
        let device = match testbed {
            Testbed::JetsonAgx => Device::jetson_agx(),
            _ => Device::jetson_tx2(),
        };
        let task = FlTask::preset(TaskKind::ImdbLstm, testbed);
        let rounds = 30;
        let schedule = DeadlineSchedule::uniform(&device, &task, rounds, 2.5, seed);
        let runner = ClientRunner::new(device.clone(), task.clone(), seed + 10);

        let mut bofl = BoflController::new(BoflConfig::fast_test());
        let b = runner.run(&mut bofl, schedule.deadlines());
        let p = runner.run(&mut PerformantController::new(), schedule.deadlines());
        let mut oracle = OracleController::new(device.profile_all(&task));
        let o = runner.run(&mut oracle, schedule.deadlines());

        assert_eq!(
            b.deadlines_met(),
            rounds,
            "{testbed}: BoFL missed deadlines"
        );
        assert_eq!(
            o.deadlines_met(),
            rounds,
            "{testbed}: Oracle missed deadlines"
        );
        assert!(
            improvement_vs(&b, &p) > 0.03,
            "{testbed}: BoFL should beat Performant, improvement {:.3}",
            improvement_vs(&b, &p)
        );
        assert!(
            regret_vs(&b, &o) > -0.02,
            "{testbed}: BoFL cannot beat the Oracle beyond noise"
        );
        assert!(
            o.total_energy_j() <= p.total_energy_j(),
            "{testbed}: Oracle must not lose to Performant"
        );
    }
}

/// Two identical runs produce identical energy ledgers (the whole stack —
/// Sobol, GP fit, EHVI, ILP, simulator noise — is deterministic under
/// fixed seeds).
#[test]
fn end_to_end_determinism() {
    let device = Device::jetson_agx();
    let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
    let schedule = DeadlineSchedule::uniform(&device, &task, 15, 2.0, 77);
    let runner = ClientRunner::new(device, task, 99);

    let run = |_: u32| {
        let mut c = BoflController::new(BoflConfig::fast_test());
        runner.run(&mut c, schedule.deadlines())
    };
    let a = run(0);
    let b = run(1);
    assert_eq!(a.total_energy_j(), b.total_energy_j());
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.energy_j, rb.energy_j, "round {}", ra.round);
        assert_eq!(ra.phase, rb.phase);
        assert_eq!(ra.explored, rb.explored);
    }
}

/// The controller's observations must be faithful: every explored
/// configuration's measured mean cost is within sensor noise of the
/// device's ground truth.
#[test]
fn observations_track_ground_truth() {
    let device = Device::jetson_agx();
    let task = FlTask::preset(TaskKind::ImagenetResnet50, Testbed::JetsonAgx);
    let schedule = DeadlineSchedule::uniform(&device, &task, 20, 3.0, 5);
    let runner = ClientRunner::new(device.clone(), task.clone(), 6);
    let mut ctrl = BoflController::new(BoflConfig::fast_test());
    let _ = runner.run(&mut ctrl, schedule.deadlines());

    let mut checked = 0;
    for agg in ctrl.observations().iter() {
        let truth = device.true_cost(&task, agg.config);
        let lat_err = (agg.mean_latency_s() - truth.latency_s).abs() / truth.latency_s;
        let en_err = (agg.mean_energy_j() - truth.energy_j).abs() / truth.energy_j;
        // Multi-job aggregates: generous 10% bound (jitter σ = 1%,
        // sensor noise σ = 2% per sample, τ-averaged).
        assert!(lat_err < 0.10, "{}: latency error {lat_err:.3}", agg.config);
        assert!(en_err < 0.10, "{}: energy error {en_err:.3}", agg.config);
        checked += 1;
    }
    assert!(checked >= 20, "expected a meaningful observation set");
}

/// Exploitation must genuinely use the ILP mix: with a mid-range deadline
/// the per-round job schedule blends more than one configuration.
#[test]
fn exploitation_blends_configurations() {
    let device = Device::jetson_agx();
    let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
    let t_min = device.round_latency_at_max(&task);
    // Fixed deadline 1.25 × T_min: strictly between the fastest and the
    // most energy-efficient schedule, so the optimum is a mix.
    let deadlines = vec![t_min * 1.25; 25];
    let runner = ClientRunner::new(device.clone(), task, 3);
    let mut ctrl = BoflController::new(BoflConfig::fast_test());
    let run = runner.run(&mut ctrl, &deadlines);
    assert_eq!(run.deadlines_met(), 25);

    // In the exploitation phase the round duration should push close to
    // the deadline (pacing down), not sit at T_min like Performant.
    let exploit_rounds: Vec<_> = run.phase_reports(Phase::Exploitation).collect();
    assert!(!exploit_rounds.is_empty());
    let mean_util: f64 = exploit_rounds
        .iter()
        .map(|r| r.duration_s / r.deadline_s)
        .sum::<f64>()
        / exploit_rounds.len() as f64;
    assert!(
        mean_util > 0.9,
        "exploitation should use the deadline budget, utilization {mean_util:.2}"
    );
}

/// `bofl-fl` integration: a federation whose clients run the full BoFL
/// controller still converges and spends less than a Performant fleet.
#[test]
fn federation_with_bofl_clients_learns_and_saves() {
    use bofl_repro::bofl::BoflConfig;
    use bofl_repro::bofl_fl::prelude::*;

    let config = FederationConfig {
        num_clients: 4,
        clients_per_round: 2,
        rounds: 8,
        deadline_ratio: 2.5,
        seed: 31,
        ..FederationConfig::default()
    };
    let mut bofl_fed = Federation::builder(config)
        .controller_factory(|_id| {
            Box::new(bofl_repro::bofl::BoflController::new(
                BoflConfig::fast_test(),
            ))
        })
        .build();
    let bofl_hist = bofl_fed.run();

    let mut perf_fed = Federation::builder(config).build();
    let perf_hist = perf_fed.run();

    assert!(
        bofl_hist.final_accuracy() > 0.6,
        "BoFL federation should learn, accuracy {:.2}",
        bofl_hist.final_accuracy()
    );
    assert!(
        bofl_hist.total_energy_j() < perf_hist.total_energy_j(),
        "BoFL fleet should use less energy: {:.0} vs {:.0}",
        bofl_hist.total_energy_j(),
        perf_hist.total_energy_j()
    );
    // No client update is ever lost to a missed deadline under BoFL.
    for r in &bofl_hist.rounds {
        assert_eq!(r.aggregated.len(), r.selected.len(), "round {}", r.round);
    }
}
