//! Property-based tests: LP/ILP solver invariants on random instances.

use bofl_ilp::simplex::{solve_lp, Constraint, LpOutcome, LpProblem, Relation};
use bofl_ilp::{solve_ilp, solve_profile, solve_profile_pairs, ConfigCost, IlpOutcome};
use proptest::prelude::*;

proptest! {
    /// Any optimal LP solution must satisfy every constraint and have a
    /// consistent objective value.
    #[test]
    fn lp_solutions_are_feasible(
        c in proptest::collection::vec(-5.0f64..5.0, 2..4),
        rows in proptest::collection::vec(
            (proptest::collection::vec(0.1f64..5.0, 2..4), 1.0f64..20.0),
            1..4,
        ),
    ) {
        let n = c.len();
        let constraints: Vec<Constraint> = rows
            .iter()
            .map(|(coeffs, rhs)| Constraint {
                coeffs: coeffs.iter().cycle().take(n).copied().collect(),
                rel: Relation::Le,
                rhs: *rhs,
            })
            .collect();
        let lp = LpProblem { objective: c.clone(), constraints: constraints.clone() };
        match solve_lp(&lp) {
            LpOutcome::Optimal(s) => {
                prop_assert_eq!(s.x.len(), n);
                prop_assert!(s.x.iter().all(|&v| v >= -1e-9));
                for row in &constraints {
                    let lhs: f64 = row.coeffs.iter().zip(&s.x).map(|(a, x)| a * x).sum();
                    prop_assert!(lhs <= row.rhs + 1e-6, "violated: {lhs} > {}", row.rhs);
                }
                let obj: f64 = c.iter().zip(&s.x).map(|(a, x)| a * x).sum();
                prop_assert!((obj - s.objective).abs() < 1e-6);
            }
            LpOutcome::Infeasible => {
                // All-≤ rows with positive rhs admit x = 0: never infeasible.
                prop_assert!(false, "x = 0 is feasible, solver said infeasible");
            }
            LpOutcome::Unbounded => {
                // Possible when some objective coefficient is negative and
                // the corresponding column is unconstrained enough — but
                // every variable appears with positive coefficients in all
                // rows, so the feasible region is bounded.
                prop_assert!(false, "bounded problem reported unbounded");
            }
        }
    }

    /// The ILP optimum is never better than the LP relaxation and never
    /// worse than any specific integer feasible point we can exhibit.
    #[test]
    fn ilp_respects_relaxation_bound(
        c in proptest::collection::vec(-4.0f64..4.0, 2..3),
        cap in 2i64..8,
        rhs in 5.0f64..25.0,
    ) {
        let n = c.len();
        let mut constraints = vec![Constraint {
            coeffs: vec![1.5; n],
            rel: Relation::Le,
            rhs,
        }];
        for i in 0..n {
            let mut unit = vec![0.0; n];
            unit[i] = 1.0;
            constraints.push(Constraint { coeffs: unit, rel: Relation::Le, rhs: cap as f64 });
        }
        let lp = LpProblem { objective: c.clone(), constraints };
        let relax = match solve_lp(&lp) {
            LpOutcome::Optimal(s) => s.objective,
            _ => return Ok(()),
        };
        match solve_ilp(&lp, 100_000) {
            IlpOutcome::Optimal(s) => {
                prop_assert!(s.objective >= relax - 1e-6, "ILP beat its relaxation");
                // x = 0 is integer feasible with objective 0.
                prop_assert!(s.objective <= 1e-9);
            }
            other => prop_assert!(false, "expected optimal, got {other:?}"),
        }
    }

    /// Profile solutions always schedule exactly `jobs` jobs, meet the
    /// deadline, and the exact ILP is at least as good as the pair
    /// heuristic.
    #[test]
    fn profile_invariants(
        lat in proptest::collection::vec(0.05f64..0.5, 2..6),
        slack in 0.0f64..1.0,
        jobs in 1u64..40,
    ) {
        // Construct an energy/latency trade-off: energy falls as latency
        // rises (Pareto-like candidate set).
        let candidates: Vec<ConfigCost> = lat
            .iter()
            .map(|&t| ConfigCost { latency_s: t, energy_j: 1.0 / t })
            .collect();
        let fastest = lat.iter().copied().fold(f64::INFINITY, f64::min);
        let slowest = lat.iter().copied().fold(0.0, f64::max);
        let deadline = jobs as f64 * (fastest + slack * (slowest - fastest));

        let exact = solve_profile(&candidates, jobs, deadline);
        let pairs = solve_profile_pairs(&candidates, jobs, deadline);
        match (exact, pairs) {
            (Ok(e), Ok(p)) => {
                prop_assert_eq!(e.total_jobs(), jobs);
                prop_assert_eq!(p.total_jobs(), jobs);
                prop_assert!(e.latency_s <= deadline + 1e-6);
                prop_assert!(p.latency_s <= deadline + 1e-6);
                prop_assert!(e.energy_j <= p.energy_j + 1e-6);
            }
            (Err(_), Err(_)) => {} // both infeasible is consistent
            (a, b) => prop_assert!(false, "solvers disagree on feasibility: {a:?} vs {b:?}"),
        }
    }
}
