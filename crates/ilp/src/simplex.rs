//! Dense two-phase primal simplex with Bland's anti-cycling rule.
//!
//! Sized for BoFL's LP relaxations: a few dozen variables (one per Pareto
//! configuration) and a handful of constraints. No sparsity, no revised
//! simplex — a plain tableau is faster to verify and more than fast enough
//! (the paper reports Gurobi solving the same problems "within 20 ms";
//! this solver does them in microseconds).

const EPS: f64 = 1e-9;

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Relation {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x = rhs`
    Eq,
    /// `coeffs · x ≥ rhs`
    Ge,
}

/// One linear constraint over non-negative variables.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Constraint {
    /// Coefficients, one per structural variable.
    pub coeffs: Vec<f64>,
    /// Constraint sense.
    pub rel: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program `min objective · x` subject to `constraints`, with
/// `x ≥ 0`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LpProblem {
    /// Objective coefficients (minimized).
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal structural variable values.
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub objective: f64,
}

/// The outcome of solving an LP.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimum was found.
    Optimal(LpSolution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
}

struct Tableau {
    /// rows × cols coefficient matrix; last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Reduced-cost row (last entry = −objective value).
    cost: Vec<f64>,
    /// Basis variable per row.
    basis: Vec<usize>,
    n_cols: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > EPS, "pivot too small");
        for v in self.a[row].iter_mut() {
            *v /= piv;
        }
        let pivot_row = self.a[row].clone();
        for (r, arow) in self.a.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = arow[col];
            if factor.abs() > 0.0 {
                for (v, p) in arow.iter_mut().zip(&pivot_row) {
                    *v -= factor * p;
                }
            }
        }
        let cfactor = self.cost[col];
        if cfactor.abs() > 0.0 {
            for (v, p) in self.cost.iter_mut().zip(&pivot_row) {
                *v -= cfactor * p;
            }
        }
        self.basis[row] = col;
    }

    /// Runs the simplex loop until optimal or unbounded. `allowed` limits
    /// the columns that may enter the basis.
    fn iterate(&mut self, allowed: &[bool]) -> Result<(), ()> {
        let rhs_col = self.n_cols;
        loop {
            // Bland's rule: smallest-index column with negative reduced cost.
            let entering = (0..self.n_cols).find(|&j| allowed[j] && self.cost[j] < -EPS);
            let Some(col) = entering else {
                return Ok(());
            };
            // Ratio test (Bland tie-break on basis index).
            let mut best: Option<(f64, usize, usize)> = None; // ratio, basis var, row
            for (r, arow) in self.a.iter().enumerate() {
                if arow[col] > EPS {
                    let ratio = arow[rhs_col] / arow[col];
                    let key = (ratio, self.basis[r]);
                    if best.is_none_or(|(br, bb, _)| key < (br, bb)) {
                        best = Some((ratio, self.basis[r], r));
                    }
                }
            }
            let Some((_, _, row)) = best else {
                return Err(()); // unbounded
            };
            self.pivot(row, col);
        }
    }
}

/// Solves a linear program with the two-phase simplex method.
///
/// Variables are implicitly non-negative. Returns
/// [`LpOutcome::Infeasible`] when phase 1 cannot drive the artificial
/// variables to zero and [`LpOutcome::Unbounded`] when phase 2 detects an
/// unbounded ray.
///
/// # Panics
///
/// Panics if a constraint row's coefficient count differs from the
/// objective length, or any coefficient is non-finite.
pub fn solve_lp(lp: &LpProblem) -> LpOutcome {
    let n = lp.objective.len();
    assert!(
        lp.objective.iter().all(|v| v.is_finite()),
        "objective must be finite"
    );
    for c in &lp.constraints {
        assert_eq!(c.coeffs.len(), n, "constraint arity mismatch");
        assert!(
            c.coeffs.iter().all(|v| v.is_finite()) && c.rhs.is_finite(),
            "constraints must be finite"
        );
    }
    let m = lp.constraints.len();

    // Normalize rows to rhs ≥ 0.
    let rows: Vec<Constraint> = lp
        .constraints
        .iter()
        .map(|c| {
            if c.rhs < 0.0 {
                Constraint {
                    coeffs: c.coeffs.iter().map(|v| -v).collect(),
                    rel: match c.rel {
                        Relation::Le => Relation::Ge,
                        Relation::Eq => Relation::Eq,
                        Relation::Ge => Relation::Le,
                    },
                    rhs: -c.rhs,
                }
            } else {
                c.clone()
            }
        })
        .collect();

    // Column layout: structural | slack/surplus | artificial | rhs.
    let n_slack = rows
        .iter()
        .filter(|c| matches!(c.rel, Relation::Le | Relation::Ge))
        .count();
    let n_art = rows
        .iter()
        .filter(|c| matches!(c.rel, Relation::Eq | Relation::Ge))
        .count();
    let n_cols = n + n_slack + n_art;

    let mut a = vec![vec![0.0; n_cols + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut art_cols = Vec::with_capacity(n_art);
    let mut next_slack = n;
    let mut next_art = n + n_slack;

    for (r, c) in rows.iter().enumerate() {
        a[r][..n].copy_from_slice(&c.coeffs);
        a[r][n_cols] = c.rhs;
        match c.rel {
            Relation::Le => {
                a[r][next_slack] = 1.0;
                basis[r] = next_slack;
                next_slack += 1;
            }
            Relation::Ge => {
                a[r][next_slack] = -1.0;
                next_slack += 1;
                a[r][next_art] = 1.0;
                basis[r] = next_art;
                art_cols.push(next_art);
                next_art += 1;
            }
            Relation::Eq => {
                a[r][next_art] = 1.0;
                basis[r] = next_art;
                art_cols.push(next_art);
                next_art += 1;
            }
        }
    }

    let mut t = Tableau {
        a,
        cost: vec![0.0; n_cols + 1],
        basis,
        n_cols,
    };

    // ----- Phase 1: minimize the sum of artificial variables -----
    if n_art > 0 {
        for &c in &art_cols {
            t.cost[c] = 1.0;
        }
        // Reduce costs with respect to the artificial basis.
        for r in 0..m {
            if art_cols.contains(&t.basis[r]) {
                let row = t.a[r].clone();
                for (v, p) in t.cost.iter_mut().zip(&row) {
                    *v -= p;
                }
            }
        }
        let allowed = vec![true; n_cols];
        if t.iterate(&allowed).is_err() {
            // Phase 1 objective is bounded below by 0; unbounded here
            // means numerical trouble — report infeasible conservatively.
            return LpOutcome::Infeasible;
        }
        let phase1_obj = -t.cost[n_cols];
        if phase1_obj > 1e-7 {
            return LpOutcome::Infeasible;
        }
        // Drive any artificial still in the basis out (degenerate at 0).
        for r in 0..m {
            if art_cols.contains(&t.basis[r]) {
                if let Some(col) = (0..n + n_slack).find(|&j| t.a[r][j].abs() > EPS) {
                    t.pivot(r, col);
                }
                // If no pivot column exists the row is redundant (all
                // zeros); it can stay with the artificial basic at zero.
            }
        }
    }

    // ----- Phase 2: original objective -----
    t.cost = vec![0.0; n_cols + 1];
    t.cost[..n].copy_from_slice(&lp.objective);
    // Reduce with respect to the current basis.
    for r in 0..m {
        let b = t.basis[r];
        let coeff = t.cost[b];
        if coeff.abs() > 0.0 {
            let row = t.a[r].clone();
            for (v, p) in t.cost.iter_mut().zip(&row) {
                *v -= coeff * p;
            }
        }
    }
    let mut allowed = vec![true; n_cols];
    for &c in &art_cols {
        allowed[c] = false;
    }
    if t.iterate(&allowed).is_err() {
        return LpOutcome::Unbounded;
    }

    let mut x = vec![0.0; n];
    for (r, &b) in t.basis.iter().enumerate() {
        if b < n {
            x[b] = t.a[r][n_cols].max(0.0);
        }
    }
    let objective: f64 = lp.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    LpOutcome::Optimal(LpSolution { x, objective })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(lp: &LpProblem) -> LpSolution {
        match solve_lp(lp) {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let lp = LpProblem {
            objective: vec![-3.0, -5.0],
            constraints: vec![
                Constraint {
                    coeffs: vec![1.0, 0.0],
                    rel: Relation::Le,
                    rhs: 4.0,
                },
                Constraint {
                    coeffs: vec![0.0, 2.0],
                    rel: Relation::Le,
                    rhs: 12.0,
                },
                Constraint {
                    coeffs: vec![3.0, 2.0],
                    rel: Relation::Le,
                    rhs: 18.0,
                },
            ],
        };
        let s = optimal(&lp);
        assert!((s.x[0] - 2.0).abs() < 1e-9);
        assert!((s.x[1] - 6.0).abs() < 1e-9);
        assert!((s.objective + 36.0).abs() < 1e-9);
    }

    #[test]
    fn equality_constraints() {
        // min x + 2y s.t. x + y = 10, x ≤ 4 → (4, 6), obj 16.
        let lp = LpProblem {
            objective: vec![1.0, 2.0],
            constraints: vec![
                Constraint {
                    coeffs: vec![1.0, 1.0],
                    rel: Relation::Eq,
                    rhs: 10.0,
                },
                Constraint {
                    coeffs: vec![1.0, 0.0],
                    rel: Relation::Le,
                    rhs: 4.0,
                },
            ],
        };
        let s = optimal(&lp);
        assert!((s.x[0] - 4.0).abs() < 1e-9);
        assert!((s.x[1] - 6.0).abs() < 1e-9);
        assert!((s.objective - 16.0).abs() < 1e-9);
    }

    #[test]
    fn ge_constraints() {
        // min 2x + 3y s.t. x + y ≥ 5, x ≥ 1 → (5, 0), obj 10.
        let lp = LpProblem {
            objective: vec![2.0, 3.0],
            constraints: vec![
                Constraint {
                    coeffs: vec![1.0, 1.0],
                    rel: Relation::Ge,
                    rhs: 5.0,
                },
                Constraint {
                    coeffs: vec![1.0, 0.0],
                    rel: Relation::Ge,
                    rhs: 1.0,
                },
            ],
        };
        let s = optimal(&lp);
        assert!((s.objective - 10.0).abs() < 1e-9, "{:?}", s);
    }

    #[test]
    fn detects_infeasible() {
        // x ≤ 1 and x ≥ 2 simultaneously.
        let lp = LpProblem {
            objective: vec![1.0],
            constraints: vec![
                Constraint {
                    coeffs: vec![1.0],
                    rel: Relation::Le,
                    rhs: 1.0,
                },
                Constraint {
                    coeffs: vec![1.0],
                    rel: Relation::Ge,
                    rhs: 2.0,
                },
            ],
        };
        assert_eq!(solve_lp(&lp), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min −x with only x ≥ 0 → unbounded.
        let lp = LpProblem {
            objective: vec![-1.0],
            constraints: vec![Constraint {
                coeffs: vec![1.0],
                rel: Relation::Ge,
                rhs: 0.0,
            }],
        };
        assert_eq!(solve_lp(&lp), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // −x ≤ −3  ⇔  x ≥ 3; min x → 3.
        let lp = LpProblem {
            objective: vec![1.0],
            constraints: vec![Constraint {
                coeffs: vec![-1.0],
                rel: Relation::Le,
                rhs: -3.0,
            }],
        };
        let s = optimal(&lp);
        assert!((s.x[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_cycling_does_not_hang() {
        // The classic Beale cycling example (cycles without Bland's rule).
        let lp = LpProblem {
            objective: vec![-0.75, 150.0, -0.02, 6.0],
            constraints: vec![
                Constraint {
                    coeffs: vec![0.25, -60.0, -0.04, 9.0],
                    rel: Relation::Le,
                    rhs: 0.0,
                },
                Constraint {
                    coeffs: vec![0.5, -90.0, -0.02, 3.0],
                    rel: Relation::Le,
                    rhs: 0.0,
                },
                Constraint {
                    coeffs: vec![0.0, 0.0, 1.0, 0.0],
                    rel: Relation::Le,
                    rhs: 1.0,
                },
            ],
        };
        let s = optimal(&lp);
        assert!((s.objective + 0.05).abs() < 1e-9, "obj {}", s.objective);
    }

    #[test]
    fn zero_variable_problem_edge() {
        // A trivial feasibility check with equality met by x = 5.
        let lp = LpProblem {
            objective: vec![0.0],
            constraints: vec![Constraint {
                coeffs: vec![1.0],
                rel: Relation::Eq,
                rhs: 5.0,
            }],
        };
        let s = optimal(&lp);
        assert!((s.x[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn rejects_ragged_constraints() {
        let lp = LpProblem {
            objective: vec![1.0, 1.0],
            constraints: vec![Constraint {
                coeffs: vec![1.0],
                rel: Relation::Le,
                rhs: 1.0,
            }],
        };
        let _ = solve_lp(&lp);
    }
}
