//! Best-first branch-and-bound for integer linear programs, using the
//! two-phase simplex of [`crate::simplex`] for relaxation bounds (the
//! approach the paper attributes to Gurobi in §5.2 module 4).

use crate::simplex::{solve_lp, Constraint, LpOutcome, LpProblem, Relation};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

const INT_TOL: f64 = 1e-6;

/// An optimal integer solution.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpSolution {
    /// Optimal integer variable values.
    pub x: Vec<i64>,
    /// Optimal objective value.
    pub objective: f64,
}

/// The outcome of solving an ILP.
#[derive(Debug, Clone, PartialEq)]
pub enum IlpOutcome {
    /// An optimum was found.
    Optimal(IlpSolution),
    /// No feasible integer point exists.
    Infeasible,
    /// The relaxation (and hence the ILP) is unbounded.
    Unbounded,
    /// The node budget was exhausted before proving optimality; the best
    /// incumbent (if any) is returned.
    BudgetExhausted(Option<IlpSolution>),
}

/// A search node: the LP bound plus its extra branching constraints.
struct Node {
    bound: f64,
    extra: Vec<Constraint>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the *lowest* bound first.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
    }
}

/// Solves `min objective · x` s.t. the constraints of `lp`, with all
/// variables integer and non-negative.
///
/// Best-first search on the LP-relaxation bound; branches on the most
/// fractional variable. `max_nodes` bounds the search (BoFL's exploitation
/// ILPs have a couple dozen variables and need only a handful of nodes;
/// 10 000 is a generous default).
///
/// # Examples
///
/// ```
/// use bofl_ilp::simplex::{Constraint, LpProblem, Relation};
/// use bofl_ilp::{solve_ilp, IlpOutcome};
///
/// // Knapsack-ish: max 5x + 4y s.t. 6x + 4y ≤ 23, x ≤ 3 ⇒ min −5x −4y.
/// let lp = LpProblem {
///     objective: vec![-5.0, -4.0],
///     constraints: vec![
///         Constraint { coeffs: vec![6.0, 4.0], rel: Relation::Le, rhs: 23.0 },
///         Constraint { coeffs: vec![1.0, 0.0], rel: Relation::Le, rhs: 3.0 },
///     ],
/// };
/// match solve_ilp(&lp, 1000) {
///     // x = 1, y = 4 uses weight 22 and yields value 21.
///     IlpOutcome::Optimal(s) => {
///         assert_eq!(s.x, vec![1, 4]);
///         assert_eq!(s.objective, -21.0);
///     }
///     other => panic!("{other:?}"),
/// }
/// ```
pub fn solve_ilp(lp: &LpProblem, max_nodes: usize) -> IlpOutcome {
    let n = lp.objective.len();

    let root = match solve_lp(lp) {
        LpOutcome::Optimal(s) => s,
        LpOutcome::Infeasible => return IlpOutcome::Infeasible,
        LpOutcome::Unbounded => return IlpOutcome::Unbounded,
    };

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: root.objective,
        extra: Vec::new(),
    });

    let mut incumbent: Option<IlpSolution> = None;
    let mut nodes = 0usize;

    while let Some(node) = heap.pop() {
        if nodes >= max_nodes {
            return IlpOutcome::BudgetExhausted(incumbent);
        }
        nodes += 1;

        // Bound pruning.
        if let Some(ref inc) = incumbent {
            if node.bound >= inc.objective - 1e-9 {
                continue;
            }
        }

        let mut sub = lp.clone();
        sub.constraints.extend(node.extra.iter().cloned());
        let sol = match solve_lp(&sub) {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => return IlpOutcome::Unbounded,
        };
        if let Some(ref inc) = incumbent {
            if sol.objective >= inc.objective - 1e-9 {
                continue;
            }
        }

        // Most fractional variable.
        let frac = |v: f64| (v - v.round()).abs();
        let branch_var = (0..n)
            .filter(|&i| frac(sol.x[i]) > INT_TOL)
            .max_by(|&a, &b| {
                frac(sol.x[a])
                    .partial_cmp(&frac(sol.x[b]))
                    .unwrap_or(Ordering::Equal)
            });

        match branch_var {
            None => {
                // Integral: new incumbent.
                let x: Vec<i64> = sol.x.iter().map(|v| v.round() as i64).collect();
                let objective: f64 = lp
                    .objective
                    .iter()
                    .zip(&x)
                    .map(|(c, &v)| c * v as f64)
                    .sum();
                if incumbent
                    .as_ref()
                    .is_none_or(|inc| objective < inc.objective - 1e-12)
                {
                    incumbent = Some(IlpSolution { x, objective });
                }
            }
            Some(i) => {
                let v = sol.x[i];
                let mut unit = vec![0.0; n];
                unit[i] = 1.0;
                // x_i ≤ ⌊v⌋
                let mut left = node.extra.clone();
                left.push(Constraint {
                    coeffs: unit.clone(),
                    rel: Relation::Le,
                    rhs: v.floor(),
                });
                heap.push(Node {
                    bound: sol.objective,
                    extra: left,
                });
                // x_i ≥ ⌈v⌉
                let mut right = node.extra;
                right.push(Constraint {
                    coeffs: unit,
                    rel: Relation::Ge,
                    rhs: v.ceil(),
                });
                heap.push(Node {
                    bound: sol.objective,
                    extra: right,
                });
            }
        }
    }

    match incumbent {
        Some(s) => IlpOutcome::Optimal(s),
        None => IlpOutcome::Infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(lp: &LpProblem) -> IlpSolution {
        match solve_ilp(lp, 100_000) {
            IlpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn relaxation_already_integral() {
        let lp = LpProblem {
            objective: vec![1.0, 1.0],
            constraints: vec![Constraint {
                coeffs: vec![1.0, 1.0],
                rel: Relation::Ge,
                rhs: 4.0,
            }],
        };
        let s = optimal(&lp);
        assert_eq!(s.x.iter().sum::<i64>(), 4);
        assert!((s.objective - 4.0).abs() < 1e-9);
    }

    #[test]
    fn knapsack_small() {
        // max 8a + 11b + 6c + 4d, 5a + 7b + 4c + 3d ≤ 14, vars ≤ 1 (0/1).
        // Optimum: b + c + d = 21 weight 14.
        let ub = |i: usize| {
            let mut c = vec![0.0; 4];
            c[i] = 1.0;
            Constraint {
                coeffs: c,
                rel: Relation::Le,
                rhs: 1.0,
            }
        };
        let lp = LpProblem {
            objective: vec![-8.0, -11.0, -6.0, -4.0],
            constraints: vec![
                Constraint {
                    coeffs: vec![5.0, 7.0, 4.0, 3.0],
                    rel: Relation::Le,
                    rhs: 14.0,
                },
                ub(0),
                ub(1),
                ub(2),
                ub(3),
            ],
        };
        let s = optimal(&lp);
        assert_eq!(s.x, vec![0, 1, 1, 1]);
        assert!((s.objective + 21.0).abs() < 1e-9);
    }

    #[test]
    fn branching_needed() {
        // max x + y s.t. 2x + 2y ≤ 5 → LP gives 2.5, ILP gives 2.
        let lp = LpProblem {
            objective: vec![-1.0, -1.0],
            constraints: vec![Constraint {
                coeffs: vec![2.0, 2.0],
                rel: Relation::Le,
                rhs: 5.0,
            }],
        };
        let s = optimal(&lp);
        assert!((s.objective + 2.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_integrality_gap() {
        // 2x = 3 has a fractional LP solution but no integer one.
        let lp = LpProblem {
            objective: vec![1.0],
            constraints: vec![Constraint {
                coeffs: vec![2.0],
                rel: Relation::Eq,
                rhs: 3.0,
            }],
        };
        assert_eq!(solve_ilp(&lp, 1000), IlpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let lp = LpProblem {
            objective: vec![-1.0],
            constraints: vec![Constraint {
                coeffs: vec![1.0],
                rel: Relation::Ge,
                rhs: 0.0,
            }],
        };
        assert_eq!(solve_ilp(&lp, 1000), IlpOutcome::Unbounded);
    }

    #[test]
    fn budget_exhaustion_reports_incumbent() {
        // A problem requiring several nodes, given a budget of 1.
        let lp = LpProblem {
            objective: vec![-1.0, -1.0],
            constraints: vec![Constraint {
                coeffs: vec![2.0, 2.0],
                rel: Relation::Le,
                rhs: 5.0,
            }],
        };
        match solve_ilp(&lp, 1) {
            IlpOutcome::BudgetExhausted(_) => {}
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        // Deterministic pseudo-random small ILPs cross-checked by
        // exhaustive enumeration.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 11) as f64
        };
        for _ in 0..25 {
            let c = vec![next() - 5.0, next() - 5.0];
            let a = vec![next() + 1.0, next() + 1.0];
            let b = next() + 5.0;
            let cap = 6i64;
            let lp = LpProblem {
                objective: c.clone(),
                constraints: vec![
                    Constraint {
                        coeffs: a.clone(),
                        rel: Relation::Le,
                        rhs: b,
                    },
                    Constraint {
                        coeffs: vec![1.0, 0.0],
                        rel: Relation::Le,
                        rhs: cap as f64,
                    },
                    Constraint {
                        coeffs: vec![0.0, 1.0],
                        rel: Relation::Le,
                        rhs: cap as f64,
                    },
                ],
            };
            // Brute force over the bounded box.
            let mut best: Option<f64> = None;
            for x in 0..=cap {
                for y in 0..=cap {
                    if a[0] * x as f64 + a[1] * y as f64 <= b + 1e-9 {
                        let obj = c[0] * x as f64 + c[1] * y as f64;
                        if best.is_none_or(|bv| obj < bv) {
                            best = Some(obj);
                        }
                    }
                }
            }
            let s = optimal(&lp);
            assert!(
                (s.objective - best.unwrap()).abs() < 1e-6,
                "ilp {} vs brute {}",
                s.objective,
                best.unwrap()
            );
        }
    }
}
