//! The BoFL exploitation problem (paper §4.4): distribute a round's `W`
//! jobs over the Pareto-optimal configurations to minimize energy under
//! the round deadline — Eqn. (1) restricted to the approximated Pareto
//! set, an integer linear program:
//!
//! ```text
//! min   Σ_k n_k · E_k
//! s.t.  Σ_k n_k · T_k ≤ deadline
//!       Σ_k n_k       = W
//!       n_k ∈ ℤ≥0
//! ```

use crate::simplex::{Constraint, LpProblem, Relation};
use crate::{solve_ilp, IlpOutcome};
use std::error::Error;
use std::fmt;

/// Per-job cost of one candidate configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConfigCost {
    /// Per-job latency, seconds.
    pub latency_s: f64,
    /// Per-job energy, joules.
    pub energy_j: f64,
}

/// The chosen job mix: `counts[k]` jobs run at candidate `k`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Profile {
    /// Jobs per candidate, summing to `W`.
    pub counts: Vec<u64>,
    /// Total energy of the profile, joules.
    pub energy_j: f64,
    /// Total latency of the profile, seconds.
    pub latency_s: f64,
}

impl Profile {
    /// Total number of jobs in the profile.
    pub fn total_jobs(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Error returned by the profile solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProfileError {
    /// No candidates were supplied.
    NoCandidates,
    /// A candidate had a non-positive or non-finite cost.
    InvalidCost {
        /// Index of the offending candidate.
        index: usize,
    },
    /// Even the fastest mix cannot meet the deadline.
    Infeasible {
        /// The latency of the fastest possible schedule.
        best_latency_s: f64,
        /// The deadline that could not be met.
        deadline_s: f64,
    },
    /// The branch-and-bound node budget ran out before proving optimality.
    BudgetExhausted,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::NoCandidates => write!(f, "candidate set must not be empty"),
            ProfileError::InvalidCost { index } => {
                write!(f, "candidate {index} has a non-positive or non-finite cost")
            }
            ProfileError::Infeasible {
                best_latency_s,
                deadline_s,
            } => write!(
                f,
                "deadline {deadline_s:.2} s unreachable (fastest schedule takes {best_latency_s:.2} s)"
            ),
            ProfileError::BudgetExhausted => {
                write!(f, "branch-and-bound budget exhausted before optimality")
            }
        }
    }
}

impl Error for ProfileError {}

fn validate(candidates: &[ConfigCost], jobs: u64) -> Result<(), ProfileError> {
    if candidates.is_empty() || jobs == 0 {
        return Err(ProfileError::NoCandidates);
    }
    for (i, c) in candidates.iter().enumerate() {
        let valid = |v: f64| v.is_finite() && v > 0.0;
        if !valid(c.latency_s) || !valid(c.energy_j) {
            return Err(ProfileError::InvalidCost { index: i });
        }
    }
    Ok(())
}

fn profile_from_counts(candidates: &[ConfigCost], counts: Vec<u64>) -> Profile {
    let energy_j = candidates
        .iter()
        .zip(&counts)
        .map(|(c, &n)| c.energy_j * n as f64)
        .sum();
    let latency_s = candidates
        .iter()
        .zip(&counts)
        .map(|(c, &n)| c.latency_s * n as f64)
        .sum();
    Profile {
        counts,
        energy_j,
        latency_s,
    }
}

/// Solves the exploitation ILP exactly with branch-and-bound.
///
/// # Errors
///
/// Returns [`ProfileError::Infeasible`] when even running every job at the
/// fastest candidate misses the deadline, and
/// [`ProfileError::BudgetExhausted`] in the (pathological) case the node
/// budget runs out.
///
/// # Examples
///
/// ```
/// use bofl_ilp::{solve_profile, ConfigCost};
///
/// let candidates = [
///     ConfigCost { latency_s: 0.2, energy_j: 4.0 },  // fast, hungry
///     ConfigCost { latency_s: 0.4, energy_j: 3.0 },  // slow, frugal
/// ];
/// // 10 jobs, deadline 3 s: run as many slow jobs as fit.
/// let p = solve_profile(&candidates, 10, 3.0)?;
/// assert_eq!(p.total_jobs(), 10);
/// assert!(p.latency_s <= 3.0);
/// assert_eq!(p.counts, vec![5, 5]); // 5·0.2 + 5·0.4 = 3.0 exactly
/// # Ok::<(), bofl_ilp::ProfileError>(())
/// ```
pub fn solve_profile(
    candidates: &[ConfigCost],
    jobs: u64,
    deadline_s: f64,
) -> Result<Profile, ProfileError> {
    validate(candidates, jobs)?;
    let fastest = candidates
        .iter()
        .map(|c| c.latency_s)
        .fold(f64::INFINITY, f64::min);
    if fastest * jobs as f64 > deadline_s + 1e-9 {
        return Err(ProfileError::Infeasible {
            best_latency_s: fastest * jobs as f64,
            deadline_s,
        });
    }

    let k = candidates.len();
    let lp = LpProblem {
        objective: candidates.iter().map(|c| c.energy_j).collect(),
        constraints: vec![
            Constraint {
                coeffs: candidates.iter().map(|c| c.latency_s).collect(),
                rel: Relation::Le,
                rhs: deadline_s,
            },
            Constraint {
                coeffs: vec![1.0; k],
                rel: Relation::Eq,
                rhs: jobs as f64,
            },
        ],
    };
    match solve_ilp(&lp, 50_000) {
        IlpOutcome::Optimal(s) => {
            let counts: Vec<u64> = s.x.iter().map(|&v| v.max(0) as u64).collect();
            debug_assert_eq!(counts.iter().sum::<u64>(), jobs);
            Ok(profile_from_counts(candidates, counts))
        }
        IlpOutcome::BudgetExhausted(Some(s)) => {
            let counts: Vec<u64> = s.x.iter().map(|&v| v.max(0) as u64).collect();
            Ok(profile_from_counts(candidates, counts))
        }
        IlpOutcome::BudgetExhausted(None) => Err(ProfileError::BudgetExhausted),
        IlpOutcome::Infeasible => Err(ProfileError::Infeasible {
            best_latency_s: fastest * jobs as f64,
            deadline_s,
        }),
        IlpOutcome::Unbounded => {
            unreachable!("profile ILP is bounded: counts sum to a constant")
        }
    }
}

/// Fast two-configuration heuristic: because the LP relaxation has two
/// constraints, its basic optimum mixes at most two candidates; this
/// solver enumerates all pairs with integer splits and returns the best.
/// Used as an ablation baseline against the exact ILP (they agree on the
/// vast majority of instances).
///
/// # Errors
///
/// Same conditions as [`solve_profile`].
pub fn solve_profile_pairs(
    candidates: &[ConfigCost],
    jobs: u64,
    deadline_s: f64,
) -> Result<Profile, ProfileError> {
    validate(candidates, jobs)?;
    let k = candidates.len();
    let w = jobs as f64;

    let mut best: Option<(f64, usize, usize, u64)> = None; // energy, i, j, n_i
    for i in 0..k {
        for j in 0..k {
            // n at candidate i, (jobs − n) at candidate j. Feasibility:
            // n·T_i + (W−n)·T_j ≤ D.
            let (ti, tj) = (candidates[i].latency_s, candidates[j].latency_s);
            let (ei, ej) = (candidates[i].energy_j, candidates[j].energy_j);
            // Energy = n·(E_i − E_j) + W·E_j: linear in n, so the optimum
            // is at a feasibility boundary.
            let slack = deadline_s - w * tj;
            let n_max_f = if (ti - tj).abs() < 1e-15 {
                if slack >= -1e-9 {
                    w
                } else {
                    -1.0
                }
            } else if ti > tj {
                slack / (ti - tj) // upper bound on n
            } else {
                w // moving jobs to the faster i only helps feasibility
            };
            if n_max_f < -1e-9 && ti >= tj {
                continue; // infeasible for this ordered pair
            }
            let candidates_n: Vec<u64> = if ei < ej {
                // More of i is better: push n as high as feasible.
                vec![n_max_f.min(w).max(0.0).floor() as u64]
            } else {
                // More of j is better: n as low as feasibility allows.
                let n_min_f = if ti < tj {
                    ((w * tj - deadline_s) / (tj - ti)).max(0.0)
                } else {
                    0.0
                };
                vec![n_min_f.min(w).ceil() as u64]
            };
            for n in candidates_n {
                let n = n.min(jobs);
                let lat = n as f64 * ti + (w - n as f64) * tj;
                if lat > deadline_s + 1e-9 {
                    continue;
                }
                let energy = n as f64 * ei + (w - n as f64) * ej;
                if best.is_none_or(|(be, ..)| energy < be) {
                    best = Some((energy, i, j, n));
                }
            }
        }
    }

    match best {
        Some((_, i, j, n)) => {
            let mut counts = vec![0u64; k];
            counts[i] += n;
            counts[j] += jobs - n;
            Ok(profile_from_counts(candidates, counts))
        }
        None => {
            let fastest = candidates
                .iter()
                .map(|c| c.latency_s)
                .fold(f64::INFINITY, f64::min);
            Err(ProfileError::Infeasible {
                best_latency_s: fastest * w,
                deadline_s,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc(latency_s: f64, energy_j: f64) -> ConfigCost {
        ConfigCost {
            latency_s,
            energy_j,
        }
    }

    #[test]
    fn loose_deadline_picks_cheapest() {
        let cands = [cc(0.2, 4.0), cc(0.4, 3.0), cc(0.5, 3.5)];
        let p = solve_profile(&cands, 10, 100.0).unwrap();
        assert_eq!(p.counts, vec![0, 10, 0]);
        assert!((p.energy_j - 30.0).abs() < 1e-9);
    }

    #[test]
    fn tight_deadline_forces_fastest() {
        let cands = [cc(0.2, 4.0), cc(0.4, 3.0)];
        let p = solve_profile(&cands, 10, 2.0).unwrap();
        assert_eq!(p.counts, vec![10, 0]);
        assert!((p.latency_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn intermediate_deadline_mixes() {
        let cands = [cc(0.2, 4.0), cc(0.4, 3.0)];
        let p = solve_profile(&cands, 10, 3.0).unwrap();
        assert_eq!(p.total_jobs(), 10);
        assert!(p.latency_s <= 3.0 + 1e-9);
        // 5 fast + 5 slow is the unique optimum.
        assert_eq!(p.counts, vec![5, 5]);
        assert!((p.energy_j - 35.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_deadline_errors() {
        let cands = [cc(0.5, 1.0)];
        let err = solve_profile(&cands, 10, 4.0).unwrap_err();
        match err {
            ProfileError::Infeasible {
                best_latency_s,
                deadline_s,
            } => {
                assert!((best_latency_s - 5.0).abs() < 1e-9);
                assert_eq!(deadline_s, 4.0);
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            solve_profile(&[], 10, 1.0).unwrap_err(),
            ProfileError::NoCandidates
        ));
        assert!(matches!(
            solve_profile(&[cc(0.1, 1.0)], 0, 1.0).unwrap_err(),
            ProfileError::NoCandidates
        ));
        assert!(matches!(
            solve_profile(&[cc(-0.1, 1.0)], 5, 1.0).unwrap_err(),
            ProfileError::InvalidCost { index: 0 }
        ));
        assert!(matches!(
            solve_profile(&[cc(0.1, f64::NAN)], 5, 1.0).unwrap_err(),
            ProfileError::InvalidCost { index: 0 }
        ));
    }

    #[test]
    fn pairs_heuristic_matches_ilp_on_small_instances() {
        // Deterministic pseudo-random Pareto-ish candidate sets.
        let mut state = 0xDEADBEEFu64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64 / 1000.0
        };
        for trial in 0..30 {
            let k = 2 + (trial % 4);
            let mut cands: Vec<ConfigCost> = (0..k)
                .map(|_| cc(0.1 + 0.4 * next(), 2.0 + 4.0 * next()))
                .collect();
            // Make them Pareto-ish: sort by latency, enforce decreasing
            // energy so there is a real trade-off.
            cands.sort_by(|a, b| a.latency_s.partial_cmp(&b.latency_s).unwrap());
            for i in 1..cands.len() {
                if cands[i].energy_j >= cands[i - 1].energy_j {
                    cands[i].energy_j = cands[i - 1].energy_j * 0.9;
                }
            }
            let jobs = 12;
            let fastest = cands[0].latency_s;
            let slowest = cands.last().unwrap().latency_s;
            let deadline = fastest * jobs as f64 + (slowest - fastest) * jobs as f64 * next();
            let exact = solve_profile(&cands, jobs, deadline).unwrap();
            let pairs = solve_profile_pairs(&cands, jobs, deadline).unwrap();
            assert!(exact.latency_s <= deadline + 1e-9);
            assert!(pairs.latency_s <= deadline + 1e-9);
            assert!(
                exact.energy_j <= pairs.energy_j + 1e-6,
                "ILP must not be worse: {} vs {}",
                exact.energy_j,
                pairs.energy_j
            );
            // On 2-constraint instances the pair heuristic is near-exact.
            assert!(
                pairs.energy_j <= exact.energy_j * 1.02 + 1e-9,
                "pair heuristic too far off: {} vs {}",
                pairs.energy_j,
                exact.energy_j
            );
        }
    }

    #[test]
    fn single_candidate_trivial() {
        let p = solve_profile(&[cc(0.3, 2.0)], 7, 3.0).unwrap();
        assert_eq!(p.counts, vec![7]);
        assert!((p.energy_j - 14.0).abs() < 1e-9);
        let p2 = solve_profile_pairs(&[cc(0.3, 2.0)], 7, 3.0).unwrap();
        assert_eq!(p2.counts, vec![7]);
    }

    #[test]
    fn display_messages() {
        let e = ProfileError::Infeasible {
            best_latency_s: 5.0,
            deadline_s: 4.0,
        };
        assert!(e.to_string().contains("unreachable"));
        assert!(ProfileError::NoCandidates.to_string().contains("empty"));
    }
}
