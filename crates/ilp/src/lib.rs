//! Linear and integer linear programming for the BoFL reproduction.
//!
//! The paper's exploitation phase (§4.4) solves Eqn. (1) restricted to the
//! approximated Pareto set: choose how many of the round's `W` jobs to run
//! at each Pareto-optimal configuration so that total energy is minimal and
//! the round deadline is met. The original implementation calls Gurobi;
//! this crate provides the same capability from scratch:
//!
//! - [`simplex`] — a dense two-phase primal simplex solver with Bland's
//!   anti-cycling rule, for LP relaxations;
//! - [`branch_bound`] — a best-first branch-and-bound exact ILP solver on
//!   top of the LP relaxation;
//! - [`profile`] — the BoFL exploitation problem itself
//!   ([`profile::solve_profile`]), plus a fast two-configuration heuristic
//!   ([`profile::solve_profile_pairs`]) used as an ablation baseline.
//!
//! # Examples
//!
//! ```
//! use bofl_ilp::simplex::{Constraint, LpProblem, Relation, solve_lp, LpOutcome};
//!
//! // max x+y s.t. x+2y ≤ 4, 3x+y ≤ 6  ⇔  min −x−y.
//! let lp = LpProblem {
//!     objective: vec![-1.0, -1.0],
//!     constraints: vec![
//!         Constraint { coeffs: vec![1.0, 2.0], rel: Relation::Le, rhs: 4.0 },
//!         Constraint { coeffs: vec![3.0, 1.0], rel: Relation::Le, rhs: 6.0 },
//!     ],
//! };
//! match solve_lp(&lp) {
//!     LpOutcome::Optimal(sol) => {
//!         assert!((sol.objective - (-2.8)).abs() < 1e-9); // x=1.6, y=1.2
//!     }
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch_bound;
pub mod profile;
pub mod simplex;

pub use branch_bound::{solve_ilp, IlpOutcome, IlpSolution};
pub use profile::{solve_profile, solve_profile_pairs, ConfigCost, Profile, ProfileError};
pub use simplex::{solve_lp, Constraint, LpOutcome, LpProblem, LpSolution, Relation};
