//! Server-side liveness tracking: per-client heartbeat deadlines with
//! seeded jitter.
//!
//! Once a client enters `Reporting`, the server arms two timers measured
//! against the round's training deadline `D`:
//!
//! - **suspect** at `t0 + D · suspect_factor` (jittered) — the report is
//!   overdue; the client transitions `Reporting → Suspected` and the
//!   journal records a `liveness_suspect`.
//! - **expire** a further `D · expire_factor` (jittered) later — the
//!   client is declared dead for the round (`Suspected → Dropped`,
//!   `liveness_expired`). An update arriving between the two heals the
//!   client (`Suspected → Reporting`, `liveness_heal`) and is accepted
//!   normally.
//!
//! The jitter is the same backoff discipline as
//! [`bofl_fl::network::RetryPolicy`]: symmetric around the nominal value,
//! drawn from a per-`(round, client)` seed via
//! [`bofl_fleet::fault::stream_seed`], so every engine and worker count
//! agrees on every deadline — and synchronized timeout storms cannot
//! happen, because no two clients share a deadline exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bofl_fleet::fault::stream_seed;

const SUSPECT_SALT: u64 = 0x11FE_55ED_0000_0001;
const EXPIRE_SALT: u64 = 0x11FE_55ED_0000_0002;

/// When the server starts doubting a silent client, and when it gives up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LivenessPolicy {
    seed: u64,
    suspect_factor: f64,
    expire_factor: f64,
    jitter: f64,
    armed: bool,
}

impl LivenessPolicy {
    /// No liveness tracking (the default): clients are never suspected
    /// and the engine behaves exactly as before this layer existed.
    pub fn none() -> Self {
        LivenessPolicy {
            seed: 0,
            suspect_factor: f64::INFINITY,
            expire_factor: f64::INFINITY,
            jitter: 0.0,
            armed: false,
        }
    }

    /// The recovery default: suspect at 1.25× the round deadline, expire
    /// half a deadline later, ±10% jitter.
    pub fn recovery(seed: u64) -> Self {
        LivenessPolicy::new(seed, 1.25, 0.5, 0.1)
    }

    /// A custom policy.
    ///
    /// # Panics
    ///
    /// Panics unless `suspect_factor >= 1`, `expire_factor > 0`, and
    /// `jitter` is in `[0, 1)` — a suspect deadline inside the training
    /// window would suspect clients that are merely still training.
    pub fn new(seed: u64, suspect_factor: f64, expire_factor: f64, jitter: f64) -> Self {
        assert!(
            suspect_factor >= 1.0 && suspect_factor.is_finite(),
            "suspect factor must be >= 1"
        );
        assert!(
            expire_factor > 0.0 && expire_factor.is_finite(),
            "expire factor must be positive"
        );
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        LivenessPolicy {
            seed,
            suspect_factor,
            expire_factor,
            jitter,
            armed: true,
        }
    }

    /// Whether liveness tracking is disabled.
    pub fn is_none(&self) -> bool {
        !self.armed
    }

    fn jittered(&self, nominal: f64, round: usize, client: usize, salt: u64) -> f64 {
        if self.jitter == 0.0 {
            return nominal;
        }
        let mut rng = StdRng::seed_from_u64(stream_seed(self.seed, round, client, salt));
        let u: f64 = rng.gen::<f64>();
        nominal * (1.0 + self.jitter * (2.0 * u - 1.0))
    }

    /// When the server suspects `client` in `round`, in seconds after the
    /// round start, for a round with training deadline `deadline_s`.
    pub fn suspect_deadline_s(&self, deadline_s: f64, round: usize, client: usize) -> f64 {
        self.jittered(
            deadline_s * self.suspect_factor,
            round,
            client,
            SUSPECT_SALT,
        )
    }

    /// When the server declares `client` dead in `round`, in seconds
    /// after the round start. Always strictly after the suspect deadline.
    pub fn expire_deadline_s(&self, deadline_s: f64, round: usize, client: usize) -> f64 {
        self.suspect_deadline_s(deadline_s, round, client)
            + self.jittered(deadline_s * self.expire_factor, round, client, EXPIRE_SALT)
    }
}

impl Default for LivenessPolicy {
    /// [`LivenessPolicy::none`] — liveness is opt-in so existing journals
    /// are untouched.
    fn default() -> Self {
        LivenessPolicy::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_unarmed_and_recovery_is_armed() {
        assert!(LivenessPolicy::none().is_none());
        assert!(LivenessPolicy::default().is_none());
        assert!(!LivenessPolicy::recovery(1).is_none());
    }

    #[test]
    fn deadlines_are_ordered_jittered_and_deterministic() {
        let p = LivenessPolicy::recovery(42);
        for client in 0..20 {
            let sus = p.suspect_deadline_s(10.0, 3, client);
            let exp = p.expire_deadline_s(10.0, 3, client);
            // Nominal 12.5 ± 10%, then +5.0 ± 10%.
            assert!((11.25..=13.75).contains(&sus), "suspect {sus}");
            assert!(exp > sus, "expire {exp} must follow suspect {sus}");
            assert!((exp - sus) >= 4.5 && (exp - sus) <= 5.5);
            assert_eq!(sus, p.suspect_deadline_s(10.0, 3, client));
        }
        // Different clients jitter differently.
        let a = p.suspect_deadline_s(10.0, 0, 1);
        let b = p.suspect_deadline_s(10.0, 0, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_jitter_hits_the_nominal_deadline() {
        let p = LivenessPolicy::new(0, 1.5, 0.25, 0.0);
        assert_eq!(p.suspect_deadline_s(8.0, 0, 0), 12.0);
        assert_eq!(p.expire_deadline_s(8.0, 0, 0), 14.0);
    }

    #[test]
    #[should_panic(expected = "suspect factor must be >= 1")]
    fn rejects_suspecting_inside_the_training_window() {
        let _ = LivenessPolicy::new(0, 0.5, 0.5, 0.1);
    }
}
