//! The control plane's write-ahead log: crash-safe journal persistence
//! plus a follow-mode tail reader.
//!
//! [`JournalWal`] is an append-only file of binary records, one per
//! journalled transition ([`EventEntry`]) or round close ([`RoundClose`]).
//! Every append is `fsync`'d before it returns, so the moment
//! `ControlPlane::apply` hands a state change back to the engine the
//! transition is durable. Record framing reuses the socket codec's
//! discipline ([`bofl_fleet::wire`]): magic, kind, length prefix, payload,
//! CRC-32 over everything after the magic —
//!
//! ```text
//! offset  size  field
//! 0       4     magic     0xB0F1_A110, little-endian
//! 4       1     kind      1=Event, 2=Close
//! 5       4     len       payload length, little-endian
//! 9       len   payload   kind-specific, fixed layout (see below)
//! 9+len   4     crc       CRC-32 (IEEE) over bytes [4, 9+len)
//! ```
//!
//! Event payload (27 bytes, little-endian): `seq: u64`, `round: u32`,
//! `client: u32`, `from: u8`, `to: u8`, `cause: u8`, `t_s: f64` (IEEE-754
//! bits). Close payload (29 bytes): `round: u32`, `t_s: f64` bits,
//! `accepted: u32`, `quorum: u32`, `flags: u8` (bit 0 `quorum_met`, bit 1
//! `closed_early`, bit 2 `degraded`), `shards: u32`,
//! `shard_shortfalls: u32`. Wire statistics are *not* logged — they are
//! derived observability, reproduced by re-running the round.
//!
//! # Crash semantics
//!
//! A coordinator killed mid-append leaves a torn record at the tail.
//! [`JournalWal::open`] truncates the file back to the last whole record
//! (anything after the first invalid or incomplete record is discarded
//! and counted), so recovery always starts from a clean prefix. On top of
//! that, `ControlPlane::resume` treats the **last Close record as the
//! round commit marker**: whole event records from a round that never
//! closed are also discarded (and truncated away), so the resumed run
//! re-executes that round from its start and appends byte-identical
//! records in its place.
//!
//! [`JournalTail`] is the read side: it polls the same file without ever
//! writing to it, decoding incrementally so a half-written record at the
//! tail reads as "no more records yet", never as corruption. That is what
//! makes `journal_tail --follow` safe against a live writer.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bofl_fleet::wire::crc32;

use crate::journal::{EventCause, EventEntry, RoundClose};
use crate::state::ClientState;

/// Every WAL record starts with this little-endian magic (distinct from
/// the socket frame magic, so a WAL can never be mistaken for a capture
/// of wire traffic).
pub const WAL_MAGIC: u32 = 0xB0F1_A110;

/// Fixed overhead around a record payload: magic + kind + len + crc.
pub const WAL_OVERHEAD: usize = 4 + 1 + 4 + 4;

const KIND_EVENT: u8 = 1;
const KIND_CLOSE: u8 = 2;
const EVENT_PAYLOAD: usize = 27;
const CLOSE_PAYLOAD: usize = 29;
/// Records never carry more payload than this; a larger length prefix is
/// corruption, not a big record.
const MAX_PAYLOAD: usize = 256;

/// One record in the write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalRecord {
    /// A journalled client transition.
    Event(EventEntry),
    /// A round-close commit marker.
    Close(RoundClose),
}

impl WalRecord {
    /// The record's virtual timestamp (seconds since the run began).
    pub fn t_s(&self) -> f64 {
        match self {
            WalRecord::Event(e) => e.t_s,
            WalRecord::Close(c) => c.t_s,
        }
    }
}

/// Why the WAL could not be read.
#[derive(Debug)]
pub enum WalError {
    /// An underlying file error.
    Io(io::Error),
    /// Bytes at `offset` can never decode to a record.
    Corrupt {
        /// Byte offset of the record that failed to decode.
        offset: u64,
        /// Human-readable description of the defect.
        detail: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt { offset, detail } => {
                write!(f, "wal corrupt at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Serialize one record into its canonical byte layout.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let (kind, payload) = match record {
        WalRecord::Event(e) => {
            let mut p = Vec::with_capacity(EVENT_PAYLOAD);
            p.extend_from_slice(&e.seq.to_le_bytes());
            p.extend_from_slice(&e.round.to_le_bytes());
            p.extend_from_slice(&e.client.to_le_bytes());
            p.push(e.from as u8);
            p.push(e.to as u8);
            p.push(e.cause as u8);
            p.extend_from_slice(&e.t_s.to_bits().to_le_bytes());
            (KIND_EVENT, p)
        }
        WalRecord::Close(c) => {
            let mut p = Vec::with_capacity(CLOSE_PAYLOAD);
            p.extend_from_slice(&c.round.to_le_bytes());
            p.extend_from_slice(&c.t_s.to_bits().to_le_bytes());
            p.extend_from_slice(&(c.accepted as u32).to_le_bytes());
            p.extend_from_slice(&(c.quorum as u32).to_le_bytes());
            let flags =
                (c.quorum_met as u8) | ((c.closed_early as u8) << 1) | ((c.degraded as u8) << 2);
            p.push(flags);
            p.extend_from_slice(&(c.shards as u32).to_le_bytes());
            p.extend_from_slice(&(c.shard_shortfalls as u32).to_le_bytes());
            (KIND_CLOSE, p)
        }
    };
    let mut out = Vec::with_capacity(WAL_OVERHEAD + payload.len());
    out.extend_from_slice(&WAL_MAGIC.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn corrupt(offset: u64, detail: impl Into<String>) -> WalError {
    WalError::Corrupt {
        offset,
        detail: detail.into(),
    }
}

fn parse_event(payload: &[u8], offset: u64) -> Result<EventEntry, WalError> {
    let from = ClientState::from_u8(payload[16])
        .ok_or_else(|| corrupt(offset, format!("unknown from-state {}", payload[16])))?;
    let to = ClientState::from_u8(payload[17])
        .ok_or_else(|| corrupt(offset, format!("unknown to-state {}", payload[17])))?;
    let cause = EventCause::from_u8(payload[18])
        .ok_or_else(|| corrupt(offset, format!("unknown cause {}", payload[18])))?;
    Ok(EventEntry {
        seq: u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes")),
        round: u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes")),
        client: u32::from_le_bytes(payload[12..16].try_into().expect("4 bytes")),
        from,
        to,
        cause,
        t_s: f64::from_bits(u64::from_le_bytes(
            payload[19..27].try_into().expect("8 bytes"),
        )),
    })
}

fn parse_close(payload: &[u8]) -> RoundClose {
    let flags = payload[20];
    RoundClose {
        round: u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes")),
        t_s: f64::from_bits(u64::from_le_bytes(
            payload[4..12].try_into().expect("8 bytes"),
        )),
        accepted: u32::from_le_bytes(payload[12..16].try_into().expect("4 bytes")) as usize,
        quorum: u32::from_le_bytes(payload[16..20].try_into().expect("4 bytes")) as usize,
        quorum_met: flags & 1 != 0,
        closed_early: flags & 2 != 0,
        degraded: flags & 4 != 0,
        shards: u32::from_le_bytes(payload[21..25].try_into().expect("4 bytes")) as usize,
        shard_shortfalls: u32::from_le_bytes(payload[25..29].try_into().expect("4 bytes")) as usize,
    }
}

/// Try to decode one record from the front of `buf` (which starts at byte
/// `offset` of the file, for error reporting).
///
/// - `Ok(Some((record, consumed)))` — a complete, checksummed record.
/// - `Ok(None)` — the buffer holds a valid *prefix* of a record; more
///   bytes may complete it (a live writer mid-append, or a torn tail).
/// - `Err(_)` — the bytes can never become a valid record.
pub fn decode_record(buf: &[u8], offset: u64) -> Result<Option<(WalRecord, usize)>, WalError> {
    if buf.len() < 4 {
        if WAL_MAGIC.to_le_bytes().starts_with(buf) {
            return Ok(None);
        }
        return Err(corrupt(offset, "bad record magic"));
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if magic != WAL_MAGIC {
        return Err(corrupt(offset, format!("bad record magic {magic:#010x}")));
    }
    if buf.len() < 9 {
        return Ok(None);
    }
    let kind = buf[4];
    let len = u32::from_le_bytes(buf[5..9].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD {
        return Err(corrupt(
            offset,
            format!("record payload length {len} exceeds {MAX_PAYLOAD}"),
        ));
    }
    let total = WAL_OVERHEAD + len;
    if buf.len() < total {
        return Ok(None);
    }
    let claimed = u32::from_le_bytes(buf[9 + len..total].try_into().expect("4 bytes"));
    let actual = crc32(&buf[4..9 + len]);
    if claimed != actual {
        return Err(corrupt(
            offset,
            format!("record checksum mismatch: header says {claimed:#010x}, bytes hash to {actual:#010x}"),
        ));
    }
    let payload = &buf[9..9 + len];
    let record = match (kind, len) {
        (KIND_EVENT, EVENT_PAYLOAD) => WalRecord::Event(parse_event(payload, offset)?),
        (KIND_CLOSE, CLOSE_PAYLOAD) => WalRecord::Close(parse_close(payload)),
        (KIND_EVENT, _) | (KIND_CLOSE, _) => {
            return Err(corrupt(
                offset,
                format!("record kind {kind} cannot carry a {len}-byte payload"),
            ))
        }
        (other, _) => return Err(corrupt(offset, format!("unknown record kind {other}"))),
    };
    Ok(Some((record, total)))
}

/// The append side of the write-ahead log: an open file plus its logical
/// length. Every append writes one whole record and `fsync`s before
/// returning.
#[derive(Debug)]
pub struct JournalWal {
    file: File,
    path: PathBuf,
    len: u64,
}

/// What [`JournalWal::open`] recovers: the writer positioned at the
/// clean tail, the committed records with their byte offsets, and how
/// many torn-tail bytes were truncated away.
pub type RecoveredWal = (JournalWal, Vec<(u64, WalRecord)>, u64);

impl JournalWal {
    /// Create a fresh, empty WAL at `path` (truncating any existing
    /// file), creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file error.
    pub fn create(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(JournalWal {
            file,
            path: path.to_path_buf(),
            len: 0,
        })
    }

    /// Open an existing WAL for recovery: decode every whole record and
    /// truncate away the torn tail (anything after the first invalid or
    /// incomplete record). Returns the writer positioned at the clean
    /// end, the decoded records with their byte offsets, and how many
    /// torn-tail bytes were discarded.
    ///
    /// # Errors
    ///
    /// Only file errors are fatal here — corruption at the tail is
    /// *recovered from*, not reported, because a torn final write is the
    /// expected crash signature.
    pub fn open(path: &Path) -> Result<RecoveredWal, WalError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            match decode_record(&bytes[pos..], pos as u64) {
                Ok(Some((record, consumed))) => {
                    records.push((pos as u64, record));
                    pos += consumed;
                }
                // A valid prefix that never completed, or bytes that can
                // never decode: both are the crash's torn tail. Stop at
                // the last whole record and cut the rest away.
                Ok(None) | Err(WalError::Corrupt { .. }) => break,
                Err(e @ WalError::Io(_)) => return Err(e),
            }
        }
        let torn = (bytes.len() - pos) as u64;
        file.set_len(pos as u64)?;
        file.seek(SeekFrom::End(0))?;
        if torn > 0 {
            file.sync_data()?;
        }
        let wal = JournalWal {
            file,
            path: path.to_path_buf(),
            len: pos as u64,
        };
        Ok((wal, records, torn))
    }

    /// Append one record and `fsync` it.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file error; on error the record must be
    /// considered *not* durable.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let bytes = encode_record(record);
        self.file.write_all(&bytes)?;
        self.file.sync_data()?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    /// Append one journalled transition.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file error.
    pub fn append_event(&mut self, entry: &EventEntry) -> io::Result<()> {
        self.append(&WalRecord::Event(*entry))
    }

    /// Append one round-close commit marker.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file error.
    pub fn append_close(&mut self, close: &RoundClose) -> io::Result<()> {
        self.append(&WalRecord::Close(*close))
    }

    /// Truncate the log to `offset` bytes (used by resume to discard
    /// whole-but-uncommitted records of a round that never closed).
    ///
    /// # Errors
    ///
    /// Propagates the underlying file error.
    pub fn truncate_to(&mut self, offset: u64) -> io::Result<()> {
        self.file.set_len(offset)?;
        self.file.seek(SeekFrom::End(0))?;
        self.file.sync_data()?;
        self.len = offset;
        Ok(())
    }

    /// Logical length in bytes (the clean, durable prefix).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The file path the log writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The read side of the WAL: a follow-mode reader that polls the file
/// for new records without ever writing to it.
///
/// Decoding is incremental, so a record the writer is mid-way through
/// appending reads as `Ok(None)` ("no more records yet") rather than
/// corruption — polling a live WAL is always safe and never blocks or
/// perturbs the writer.
#[derive(Debug)]
pub struct JournalTail {
    file: File,
    buf: Vec<u8>,
    /// Byte offset of the front of `buf` in the file (for error reports).
    offset: u64,
}

impl JournalTail {
    /// Open `path` read-only for tailing.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file error.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).open(path)?;
        Ok(JournalTail {
            file,
            buf: Vec::new(),
            offset: 0,
        })
    }

    /// Pop the next whole record, reading newly appended bytes as needed.
    ///
    /// - `Ok(Some(record))` — the next record, in append order.
    /// - `Ok(None)` — caught up: no complete record is available *yet*.
    ///   Poll again later (the writer may still be appending).
    /// - `Err(_)` — a record in the durable prefix is genuinely corrupt,
    ///   or the file went away.
    pub fn poll(&mut self) -> Result<Option<WalRecord>, WalError> {
        loop {
            if let Some((record, consumed)) = decode_record(&self.buf, self.offset)? {
                self.buf.drain(..consumed);
                self.offset += consumed as u64;
                return Ok(Some(record));
            }
            let mut chunk = [0u8; 4096];
            match self.file.read(&mut chunk) {
                Ok(0) => return Ok(None),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(None),
                Err(e) => return Err(WalError::Io(e)),
            }
        }
    }

    /// Drain every record currently available (a non-follow, read-to-end
    /// pass).
    ///
    /// # Errors
    ///
    /// Propagates the first poll error.
    pub fn drain(&mut self) -> Result<Vec<WalRecord>, WalError> {
        let mut out = Vec::new();
        while let Some(record) = self.poll()? {
            out.push(record);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::EventCause as C;
    use crate::state::ClientState as S;

    fn event(seq: u64) -> EventEntry {
        EventEntry {
            seq,
            round: 3,
            client: 7,
            from: S::Reporting,
            to: S::Aggregated,
            cause: C::UploadDelivered,
            t_s: 12.5 + seq as f64,
        }
    }

    fn close() -> RoundClose {
        RoundClose {
            round: 3,
            t_s: 99.25,
            accepted: 5,
            quorum: 4,
            quorum_met: true,
            closed_early: true,
            degraded: false,
            shards: 2,
            shard_shortfalls: 1,
        }
    }

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bofl-wal-{}-{name}.wal", std::process::id()))
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        for record in [
            WalRecord::Event(event(42)),
            WalRecord::Close(close()),
            WalRecord::Event(EventEntry {
                t_s: f64::from_bits(0x3FF0_0000_0000_0001), // not representable in %.6f
                ..event(0)
            }),
        ] {
            let bytes = encode_record(&record);
            let (decoded, consumed) = decode_record(&bytes, 0).unwrap().unwrap();
            assert_eq!(decoded, record);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn partial_prefixes_ask_for_more_bytes() {
        let bytes = encode_record(&WalRecord::Event(event(1)));
        for cut in 0..bytes.len() {
            assert!(
                decode_record(&bytes[..cut], 0).unwrap().is_none(),
                "cut at {cut} must be a valid prefix"
            );
        }
    }

    #[test]
    fn corruption_is_rejected_not_misread() {
        let mut bytes = encode_record(&WalRecord::Event(event(1)));
        bytes[12] ^= 0x40;
        assert!(matches!(
            decode_record(&bytes, 0),
            Err(WalError::Corrupt { .. })
        ));
        // Unknown state byte: checksum passes (re-stamped), decode rejects.
        let mut bad_state = encode_record(&WalRecord::Event(event(1)));
        bad_state[9 + 16] = 200;
        let crc = crc32(&bad_state[4..bad_state.len() - 4]);
        let at = bad_state.len() - 4;
        bad_state[at..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_record(&bad_state, 0),
            Err(WalError::Corrupt { .. })
        ));
        assert!(matches!(
            decode_record(&[0xFFu8, 0, 0, 0, 0], 7),
            Err(WalError::Corrupt { offset: 7, .. })
        ));
    }

    #[test]
    fn open_truncates_the_torn_tail() {
        let path = temp("torn");
        let mut wal = JournalWal::create(&path).unwrap();
        wal.append_event(&event(0)).unwrap();
        wal.append_event(&event(1)).unwrap();
        wal.append_close(&close()).unwrap();
        let clean_len = wal.len();
        drop(wal);
        // Simulate a crash mid-append: half a record, then garbage.
        let mut torn = encode_record(&WalRecord::Event(event(2)));
        torn.truncate(torn.len() / 2);
        torn.extend_from_slice(&[0xAB; 5]);
        let torn_len = torn.len() as u64;
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&torn).unwrap();
        }
        let (wal, records, discarded) = JournalWal::open(&path).unwrap();
        assert_eq!(discarded, torn_len);
        assert_eq!(wal.len(), clean_len);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].1, WalRecord::Event(event(0)));
        assert_eq!(records[2].1, WalRecord::Close(close()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_after_recovery_continues_the_clean_prefix() {
        let path = temp("resume-append");
        let mut wal = JournalWal::create(&path).unwrap();
        wal.append_event(&event(0)).unwrap();
        drop(wal);
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x12, 0x34]).unwrap(); // torn garbage
        }
        let (mut wal, records, discarded) = JournalWal::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(discarded, 2);
        wal.append_event(&event(1)).unwrap();
        drop(wal);
        let (_, records, discarded) = JournalWal::open(&path).unwrap();
        assert_eq!(discarded, 0);
        let events: Vec<u64> = records
            .iter()
            .map(|(_, r)| match r {
                WalRecord::Event(e) => e.seq,
                WalRecord::Close(_) => panic!("no closes appended"),
            })
            .collect();
        assert_eq!(events, vec![0, 1]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tail_reads_everything_and_waits_at_a_partial_record() {
        let path = temp("tail");
        let mut wal = JournalWal::create(&path).unwrap();
        wal.append_event(&event(0)).unwrap();
        wal.append_close(&close()).unwrap();

        let mut tail = JournalTail::open(&path).unwrap();
        assert_eq!(tail.poll().unwrap(), Some(WalRecord::Event(event(0))));
        assert_eq!(tail.poll().unwrap(), Some(WalRecord::Close(close())));
        assert_eq!(tail.poll().unwrap(), None);

        // The writer appends while the tail is open: the tail catches up.
        wal.append_event(&event(1)).unwrap();
        assert_eq!(tail.poll().unwrap(), Some(WalRecord::Event(event(1))));

        // A half-written record is "not yet", not corruption.
        let half = encode_record(&WalRecord::Event(event(2)));
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&half[..10]).unwrap();
        }
        assert_eq!(tail.poll().unwrap(), None);
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&half[10..]).unwrap();
        }
        assert_eq!(tail.poll().unwrap(), Some(WalRecord::Event(event(2))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drain_collects_in_append_order() {
        let path = temp("drain");
        let mut wal = JournalWal::create(&path).unwrap();
        for seq in 0..5 {
            wal.append_event(&event(seq)).unwrap();
        }
        let records = JournalTail::open(&path).unwrap().drain().unwrap();
        let seqs: Vec<u64> = records
            .iter()
            .map(|r| match r {
                WalRecord::Event(e) => e.seq,
                WalRecord::Close(_) => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        std::fs::remove_file(&path).ok();
    }
}
