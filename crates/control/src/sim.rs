//! The high-level event-driven simulation: fleet generator + event-driven
//! engine + metrics + journal in one builder, mirroring
//! `bofl_fleet::FleetSimulation` so the two harnesses read the same way.

use crate::chaos::ChaosPlan;
use crate::engine::{EventDrivenEngine, PlaneHandle};
use crate::journal::{EventJournal, RoundClose, DEFAULT_JOURNAL_CAPACITY};
use crate::liveness::LivenessPolicy;
use crate::plane::{ControlPlane, ResumeReport};
use crate::transport::Transport;
use crate::wal::JournalWal;
use bofl::task::PaceController;
use bofl_fl::network::RetryPolicy;
use bofl_fl::server::{Federation, FederationConfig, RunHistory};
use bofl_fleet::compress::Compressor;
use bofl_fleet::fault::FaultPlan;
use bofl_fleet::generator::FleetSpec;
use bofl_fleet::metrics::FleetMetrics;
use bofl_fleet::shard::ShardPlan;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A ready-to-run event-driven fleet simulation. Build one with
/// [`ControlSimulation::builder`].
pub struct ControlSimulation {
    federation: Federation,
    plane: PlaneHandle,
    rounds: usize,
    next_round: usize,
    resume_report: Option<ResumeReport>,
}

impl std::fmt::Debug for ControlSimulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlSimulation")
            .field("clients", &self.federation.num_clients())
            .field("rounds", &self.rounds)
            .field("engine", &self.federation.engine_label())
            .finish()
    }
}

impl ControlSimulation {
    /// Starts building a simulation over the given fleet.
    pub fn builder(spec: FleetSpec) -> ControlSimulationBuilder {
        let config = FederationConfig {
            num_clients: spec.num_clients,
            seed: spec.seed,
            ..FederationConfig::default()
        };
        ControlSimulationBuilder {
            spec,
            config,
            workers: 1,
            faults: FaultPlan::none(),
            retry: RetryPolicy::none(),
            controller_factory: None,
            journal_capacity: None,
            transport: None,
            chaos: ChaosPlan::none(),
            liveness: LivenessPolicy::none(),
            shard_plan: None,
            compressor: None,
            wal_path: None,
            resume_path: None,
        }
    }

    /// Runs every remaining round (all of them on a fresh build; the
    /// uncommitted tail on a resumed one), collecting fleet metrics and
    /// annotating each round's churn, chaos, and liveness counts from the
    /// event journal and the transport's wire statistics.
    pub fn run(&mut self) -> ControlRunReport {
        self.run_rounds(self.rounds - self.next_round.min(self.rounds))
    }

    /// Runs at most `n` further rounds (stopping at the configured round
    /// count) and reports on the run so far. Calling this repeatedly is
    /// how the kill-and-resume tests stage a "crash" between rounds: run
    /// a prefix, drop the simulation, resume from the WAL.
    pub fn run_rounds(&mut self, n: usize) -> ControlRunReport {
        let mut metrics = FleetMetrics::new();
        let end = self.rounds.min(self.next_round + n);
        let mut rounds = Vec::with_capacity(end.saturating_sub(self.next_round));
        for round in self.next_round..end {
            let (record, outcomes) = self.federation.run_round_detailed(round);
            metrics.record(&record, &outcomes);
            {
                let plane = self.plane.lock().expect("control plane poisoned");
                let (arrivals, departures) = plane.journal().churn_counts(round as u32);
                metrics.annotate_churn(round, arrivals, departures);
                if let Some(wire) = plane.wire_stats(round) {
                    metrics.annotate_chaos(
                        round,
                        wire.dropped,
                        wire.delayed,
                        wire.duplicated,
                        wire.reordered,
                        wire.partition_held,
                    );
                }
                let (suspected, expired, healed) = plane.journal().liveness_counts(round as u32);
                metrics.annotate_liveness(round, suspected, expired, healed);
                if let Some(close) = plane.closes().iter().find(|c| c.round == round as u32) {
                    metrics.annotate_shards(round, close.shards, close.shard_shortfalls);
                }
                if let Some(wire) = plane.wire_stats(round) {
                    metrics.annotate_wire_bytes(round, wire.bytes_on_wire, wire.bytes_raw);
                }
            }
            rounds.push(record);
        }
        self.next_round = end;
        let plane = self.plane.lock().expect("control plane poisoned");
        ControlRunReport {
            history: RunHistory { rounds },
            metrics,
            journal: plane.journal().clone(),
            closes: plane.closes().to_vec(),
        }
    }

    /// The next round [`ControlSimulation::run`] would execute (nonzero
    /// on a freshly resumed simulation).
    pub fn next_round(&self) -> usize {
        self.next_round
    }

    /// What the WAL resume reconstructed, if this simulation was built
    /// with [`ControlSimulationBuilder::resume_from_wal`].
    pub fn resume_report(&self) -> Option<&ResumeReport> {
        self.resume_report.as_ref()
    }

    /// The underlying federation (e.g. for inspecting clients).
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    /// A live handle onto the engine's control plane.
    pub fn plane(&self) -> PlaneHandle {
        PlaneHandle::clone(&self.plane)
    }
}

/// What an event-driven run produces: FedAvg history, fleet metrics, the
/// event journal, and every round-close record.
#[derive(Debug, Clone)]
pub struct ControlRunReport {
    /// Per-round FedAvg records (selection, accuracy, energy).
    pub history: RunHistory,
    /// Per-round fleet distributions, fault counts and churn annotations.
    pub metrics: FleetMetrics,
    /// The event journal at the end of the run.
    pub journal: EventJournal,
    /// How each round closed (quorum bookkeeping).
    pub closes: Vec<RoundClose>,
}

impl ControlRunReport {
    /// Total fleet energy, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.history.total_energy_j()
    }

    /// Final global-model test accuracy.
    pub fn final_accuracy(&self) -> f64 {
        self.history.final_accuracy()
    }

    /// Rounds that closed early on their quorum target.
    pub fn early_closes(&self) -> usize {
        self.closes.iter().filter(|c| c.closed_early).count()
    }

    /// Rounds in which at least one shard closed below its local quorum.
    pub fn shard_shortfall_rounds(&self) -> usize {
        self.closes
            .iter()
            .filter(|c| c.shard_shortfalls > 0)
            .count()
    }

    /// Writes the run's artifacts into `dir`: `metrics.csv` (fleet
    /// metrics with churn columns), `journal.csv` and `journal.jsonl`
    /// (the event journal).
    pub fn write_artifacts(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        self.metrics.write_csv(&dir.join("metrics.csv"))?;
        self.journal.write_csv(&dir.join("journal.csv"))?;
        self.journal.write_jsonl(&dir.join("journal.jsonl"))
    }
}

/// A per-client pace-controller factory: client id → controller.
type ControllerFactory = Box<dyn Fn(usize) -> Box<dyn PaceController>>;

/// Builder for [`ControlSimulation`].
pub struct ControlSimulationBuilder {
    spec: FleetSpec,
    config: FederationConfig,
    workers: usize,
    faults: FaultPlan,
    retry: RetryPolicy,
    controller_factory: Option<ControllerFactory>,
    journal_capacity: Option<usize>,
    transport: Option<Box<dyn Transport>>,
    chaos: ChaosPlan,
    liveness: LivenessPolicy,
    shard_plan: Option<(ShardPlan, f64)>,
    compressor: Option<Box<dyn Compressor>>,
    wal_path: Option<PathBuf>,
    resume_path: Option<PathBuf>,
}

impl std::fmt::Debug for ControlSimulationBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlSimulationBuilder")
            .field("spec", &self.spec)
            .field("workers", &self.workers)
            .finish()
    }
}

impl ControlSimulationBuilder {
    /// Overrides the federation configuration. `num_clients` is forced to
    /// the fleet spec's population size. The configuration's
    /// [`bofl_fl::server::AggregationPolicy`] doubles as the engine's
    /// round-close policy.
    #[must_use]
    pub fn federation(mut self, config: FederationConfig) -> Self {
        self.config = FederationConfig {
            num_clients: self.spec.num_clients,
            ..config
        };
        self
    }

    /// Sets the worker-thread count (default 1 = sequential).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Attaches a fault-injection plan (churn included).
    #[must_use]
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches an upload retry policy (defaults to
    /// [`RetryPolicy::none`]).
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the per-client pace-controller factory (client id →
    /// controller; defaults to the Performant baseline).
    #[must_use]
    pub fn controller_factory(
        mut self,
        f: impl Fn(usize) -> Box<dyn PaceController> + 'static,
    ) -> Self {
        self.controller_factory = Some(Box::new(f));
        self
    }

    /// Bounds the event journal ring.
    #[must_use]
    pub fn journal_capacity(mut self, capacity: usize) -> Self {
        self.journal_capacity = Some(capacity);
        self
    }

    /// Replaces the delivery transport (default
    /// [`crate::transport::VirtualTransport`]).
    #[must_use]
    pub fn transport(mut self, transport: impl Transport + 'static) -> Self {
        self.transport = Some(Box::new(transport));
        self
    }

    /// Wraps the transport in a [`crate::chaos::ChaosTransport`]
    /// injecting the given plan (no-op for an empty plan).
    #[must_use]
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = plan;
        self
    }

    /// Arms server-side liveness tracking (defaults to
    /// [`LivenessPolicy::none`]).
    #[must_use]
    pub fn liveness(mut self, liveness: LivenessPolicy) -> Self {
        self.liveness = liveness;
        self
    }

    /// Arms hierarchical shard accounting: the round's runnable cohort is
    /// partitioned by `plan`, each shard closing against a local quorum
    /// of `ceil(members × quorum_fraction)`. Shard counts and shortfalls
    /// surface in the round-close records and the metrics CSV.
    #[must_use]
    pub fn shard_plan(mut self, plan: ShardPlan, quorum_fraction: f64) -> Self {
        self.shard_plan = Some((plan, quorum_fraction));
        self
    }

    /// Arms an uplink compressor (stream seeds derive from the federation
    /// seed). Compressed/raw byte counts surface in the wire statistics
    /// and the metrics CSV.
    #[must_use]
    pub fn compressor(mut self, compressor: impl Compressor + 'static) -> Self {
        self.compressor = Some(Box::new(compressor));
        self
    }

    /// Arms the crash-safety write-ahead log at `path` (truncating any
    /// existing file): every journalled transition and round close is
    /// fsync'd there before the engine proceeds, so a killed coordinator
    /// can be revived with [`ControlSimulationBuilder::resume_from_wal`].
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be created — a run that silently loses
    /// its crash safety is worse than one that fails to start.
    #[must_use]
    pub fn wal(mut self, path: impl Into<PathBuf>) -> Self {
        self.wal_path = Some(path.into());
        self.resume_path = None;
        self
    }

    /// Resumes a crashed run from the write-ahead log at `path`: the
    /// plane is rebuilt from the committed prefix (torn tails and the
    /// uncommitted in-flight round are truncated away), the engine's
    /// virtual clock restarts at the commit point, and
    /// [`ControlSimulation::run`] continues from the first uncommitted
    /// round — appending to the same WAL.
    ///
    /// # Panics
    ///
    /// Panics if the log cannot be read or its committed prefix
    /// contradicts the transition contract (see
    /// [`crate::plane::ResumeError`]).
    #[must_use]
    pub fn resume_from_wal(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume_path = Some(path.into());
        self.wal_path = None;
        self
    }

    /// Builds the simulation.
    pub fn build(self) -> ControlSimulation {
        let spec = self.spec;
        let mut engine = EventDrivenEngine::new(self.workers.max(1))
            .with_faults(self.faults)
            .with_retry(self.retry)
            .with_close_policy(self.config.aggregation, self.config.clients_per_round)
            .with_liveness(self.liveness);
        if let Some(transport) = self.transport {
            engine = engine.with_boxed_transport(transport);
        }
        if let Some((plan, quorum_fraction)) = self.shard_plan {
            engine = engine.with_shard_plan(plan, quorum_fraction);
        }
        if let Some(compressor) = self.compressor {
            engine = engine.with_boxed_compressor(compressor, self.config.seed);
        }
        if !self.chaos.is_none() {
            engine = engine.with_chaos(self.chaos);
        }
        if let Some(capacity) = self.journal_capacity {
            engine = engine.with_journal_capacity(capacity);
        }
        // WAL/resume wiring comes last: both replace or mutate the plane
        // the earlier builders installed.
        let mut next_round = 0usize;
        let mut resume_report = None;
        if let Some(path) = &self.resume_path {
            let (plane, report) = ControlPlane::resume_with_capacity(
                path,
                spec.num_clients,
                self.journal_capacity.unwrap_or(DEFAULT_JOURNAL_CAPACITY),
            )
            .unwrap_or_else(|e| panic!("cannot resume from WAL {}: {e}", path.display()));
            next_round = report.next_round;
            engine = engine.with_resumed(plane, report.now_s);
            resume_report = Some(report);
        } else if let Some(path) = &self.wal_path {
            let wal = JournalWal::create(path)
                .unwrap_or_else(|e| panic!("cannot create WAL {}: {e}", path.display()));
            engine = engine.with_wal(Arc::new(Mutex::new(wal)));
        }
        let plane = engine.plane();
        let rounds = self.config.rounds;
        let mut builder = Federation::builder(self.config)
            .device_factory(move |id| spec.device(id))
            .engine(engine);
        if let Some(f) = self.controller_factory {
            builder = builder.controller_factory(f);
        }
        let mut federation = builder.build();
        // The server's selection RNG is threaded across rounds; replay
        // the committed rounds' draws so the resumed run selects the
        // cohorts the crashed run would have.
        for round in 0..next_round {
            federation.skip_round_draws(round);
        }
        ControlSimulation {
            federation,
            plane,
            rounds,
            next_round,
            resume_report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> FleetSpec {
        FleetSpec::mixed(6, 21)
    }

    fn quick_config() -> FederationConfig {
        FederationConfig {
            clients_per_round: 3,
            rounds: 3,
            classes: 3,
            feature_dims: 6,
            seed: 21,
            ..FederationConfig::default()
        }
    }

    #[test]
    fn simulation_runs_and_journals() {
        let mut sim = ControlSimulation::builder(quick_spec())
            .federation(quick_config())
            .workers(2)
            .build();
        let report = sim.run();
        assert_eq!(report.history.rounds.len(), 3);
        assert_eq!(report.closes.len(), 3);
        assert!(report.total_energy_j() > 0.0);
        // 3 selected clients × (select + start + finish + accept + reset)
        // per healthy round = 15 events/round minimum.
        assert!(report.journal.len() >= 45);
    }

    #[test]
    fn healthy_runs_match_the_barrier_fleet_history() {
        use bofl_fleet::sim::FleetSimulation;
        let event = ControlSimulation::builder(quick_spec())
            .federation(quick_config())
            .workers(2)
            .build()
            .run();
        let barrier = FleetSimulation::builder(quick_spec())
            .federation(quick_config())
            .workers(2)
            .build()
            .run();
        assert_eq!(event.history, barrier.history);
        assert_eq!(event.early_closes(), 0);
    }

    #[test]
    fn artifacts_land_on_disk() {
        let mut sim = ControlSimulation::builder(quick_spec())
            .federation(quick_config())
            .build();
        let report = sim.run();
        let dir = std::env::temp_dir().join(format!("bofl-control-sim-{}", std::process::id()));
        report.write_artifacts(&dir).unwrap();
        let journal = std::fs::read_to_string(dir.join("journal.csv")).unwrap();
        assert!(journal.starts_with("seq,round,client,from,to,cause,t_s\n"));
        let metrics = std::fs::read_to_string(dir.join("metrics.csv")).unwrap();
        assert!(metrics.contains("churn_arrivals"));
        assert!(dir.join("journal.jsonl").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
