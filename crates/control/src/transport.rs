//! The [`Transport`] seam: how finished updates travel from clients to
//! the server.
//!
//! The event-driven engine used to *assume* delivery: a finished update
//! arrived at exactly its virtual send time. This module turns that
//! assumption into a trait so the wire becomes pluggable:
//!
//! - [`VirtualTransport`] — the identity carrier. Every message arrives
//!   at its send time; byte-identical to the pre-transport engine.
//! - [`LoopbackTransport`] — the same contract executed over real
//!   `std::thread` lanes and mpsc channels. Lanes race on the OS
//!   scheduler, but arrival *times* are virtual, so sorting the collected
//!   deliveries restores the deterministic timeline: with zero faults the
//!   journal is byte-identical to [`VirtualTransport`] at any lane count.
//! - [`crate::chaos::ChaosTransport`] — a decorator over either of the
//!   above that injects seeded delay, drop, duplication, reordering and
//!   partitions.
//!
//! # The contract
//!
//! [`Transport::carry`] receives one round's outgoing [`Envelope`]s and
//! returns [`Carried`]: the surviving [`Delivery`] records **sorted by
//! `(t_arrive_s, client_id, copy)`** plus [`WireStats`] totals. A carrier
//! may drop messages (absent from the output), delay them
//! (`t_arrive_s > t_send_s`), or duplicate them (`copy > 0`), but must
//! never invent a client that did not send, and must be a pure function
//! of `(round, t0_s, messages)` plus its own seeded configuration —
//! thread scheduling must not leak into the output.

use std::sync::mpsc;

/// One update leaving a client, stamped with its virtual send time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Federation round the update belongs to.
    pub round: usize,
    /// The sending client.
    pub client_id: usize,
    /// Virtual send time, simulated seconds since the run began
    /// (training finish plus any retry backoff).
    pub t_send_s: f64,
}

/// One update arriving at the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// The sending client.
    pub client_id: usize,
    /// When the client sent it.
    pub t_send_s: f64,
    /// When the server receives it (`>= t_send_s`).
    pub t_arrive_s: f64,
    /// Duplicate index: `0` is the original, `1..` are injected copies.
    pub copy: u32,
}

/// What the wire did to one round's messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Envelopes handed to the carrier.
    pub sent: usize,
    /// Envelopes lost outright (no copy arrived).
    pub dropped: usize,
    /// Envelopes that arrived later than they were sent.
    pub delayed: usize,
    /// Extra copies injected beyond the originals.
    pub duplicated: usize,
    /// Original deliveries overtaken on the wire: a message sent strictly
    /// later arrived strictly earlier.
    pub reordered: usize,
    /// Envelopes held back by an unhealed partition at send time.
    pub partition_held: usize,
    /// Simulated application bytes actually put on the wire (compressed
    /// encoding; `0` when the engine has no compressor armed).
    pub bytes_on_wire: u64,
    /// Bytes the same payloads would have cost as dense f64 updates.
    pub bytes_raw: u64,
}

impl WireStats {
    /// Element-wise accumulate (for multi-round totals).
    pub fn merge(&mut self, other: &WireStats) {
        self.sent += other.sent;
        self.dropped += other.dropped;
        self.delayed += other.delayed;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.partition_held += other.partition_held;
        self.bytes_on_wire += other.bytes_on_wire;
        self.bytes_raw += other.bytes_raw;
    }
}

/// The result of carrying one round's messages.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Carried {
    /// Surviving deliveries, sorted by `(t_arrive_s, client_id, copy)`.
    pub deliveries: Vec<Delivery>,
    /// What happened on the wire.
    pub stats: WireStats,
}

/// A carrier of one round's updates from clients to the server.
///
/// Implementations must be deterministic: the same `(round, t0_s,
/// messages)` on any thread, any machine, any number of internal lanes
/// must produce the same [`Carried`].
pub trait Transport: Send {
    /// Short human-readable name (shows up in debug output).
    fn label(&self) -> &str;

    /// Carry `messages` sent during the round that started at `t0_s`.
    /// The returned deliveries must be sorted by
    /// `(t_arrive_s, client_id, copy)`.
    fn carry(&mut self, round: usize, t0_s: f64, messages: &[Envelope]) -> Carried;

    /// Clone into a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn Transport>;
}

impl Clone for Box<dyn Transport> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl std::fmt::Debug for Box<dyn Transport> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Transport({})", self.label())
    }
}

/// Sort deliveries into the canonical `(t_arrive_s, client_id, copy)`
/// order every carrier must return.
pub fn sort_deliveries(deliveries: &mut [Delivery]) {
    deliveries.sort_by(|a, b| {
        a.t_arrive_s
            .total_cmp(&b.t_arrive_s)
            .then_with(|| a.client_id.cmp(&b.client_id))
            .then_with(|| a.copy.cmp(&b.copy))
    });
}

/// Count original (`copy == 0`) deliveries overtaken on the wire: a
/// message sent strictly later arrived strictly earlier. Quadratic, but
/// cohorts are small and the count is only bookkeeping.
pub fn count_reordered(deliveries: &[Delivery]) -> usize {
    let originals: Vec<&Delivery> = deliveries.iter().filter(|d| d.copy == 0).collect();
    originals
        .iter()
        .filter(|d| {
            originals
                .iter()
                .any(|e| e.t_send_s > d.t_send_s && e.t_arrive_s < d.t_arrive_s)
        })
        .count()
}

/// The identity carrier: every message arrives exactly when it was sent.
/// This is the pre-transport engine's behavior, kept as the default so
/// existing journals stay byte-identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualTransport;

impl Transport for VirtualTransport {
    fn label(&self) -> &str {
        "virtual"
    }

    fn carry(&mut self, _round: usize, _t0_s: f64, messages: &[Envelope]) -> Carried {
        let mut deliveries: Vec<Delivery> = messages
            .iter()
            .map(|m| Delivery {
                client_id: m.client_id,
                t_send_s: m.t_send_s,
                t_arrive_s: m.t_send_s,
                copy: 0,
            })
            .collect();
        sort_deliveries(&mut deliveries);
        Carried {
            deliveries,
            stats: WireStats {
                sent: messages.len(),
                ..WireStats::default()
            },
        }
    }

    fn clone_box(&self) -> Box<dyn Transport> {
        Box::new(*self)
    }
}

/// The same contract executed over real OS threads: messages are sharded
/// round-robin across `lanes` `std::thread`s, each lane pushes its
/// deliveries through an mpsc channel, and the collector sorts the merged
/// stream back into canonical order.
///
/// The lanes genuinely race — the OS scheduler decides which lane's
/// channel send lands first — but arrival *times* are virtual, so the
/// final sort erases the race. With zero faults the result is
/// byte-identical to [`VirtualTransport`] at any lane count, which is
/// exactly the property the loopback acceptance suite pins down.
#[derive(Debug, Clone)]
pub struct LoopbackTransport {
    lanes: usize,
    label: String,
}

impl LoopbackTransport {
    /// A loopback transport with `lanes` OS-thread lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "a loopback transport needs at least one lane");
        LoopbackTransport {
            lanes,
            label: format!("loopback({lanes} lanes)"),
        }
    }

    /// Lane count.
    pub fn lanes(&self) -> usize {
        self.lanes
    }
}

impl Transport for LoopbackTransport {
    fn label(&self) -> &str {
        &self.label
    }

    fn carry(&mut self, _round: usize, _t0_s: f64, messages: &[Envelope]) -> Carried {
        let lanes = self.lanes.min(messages.len()).max(1);
        let (tx, rx) = mpsc::channel::<Delivery>();
        std::thread::scope(|scope| {
            for lane in 0..lanes {
                let tx = tx.clone();
                let shard: Vec<Envelope> =
                    messages.iter().skip(lane).step_by(lanes).copied().collect();
                scope.spawn(move || {
                    for m in shard {
                        // A real client stack would serialize and push
                        // bytes here; the simulation carries the virtual
                        // timestamp instead.
                        tx.send(Delivery {
                            client_id: m.client_id,
                            t_send_s: m.t_send_s,
                            t_arrive_s: m.t_send_s,
                            copy: 0,
                        })
                        .expect("collector outlives the lanes");
                    }
                });
            }
        });
        drop(tx);
        let mut deliveries: Vec<Delivery> = rx.into_iter().collect();
        sort_deliveries(&mut deliveries);
        Carried {
            deliveries,
            stats: WireStats {
                sent: messages.len(),
                ..WireStats::default()
            },
        }
    }

    fn clone_box(&self) -> Box<dyn Transport> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelopes() -> Vec<Envelope> {
        (0..7)
            .map(|id| Envelope {
                round: 0,
                client_id: id,
                t_send_s: 10.0 + (7 - id) as f64, // reverse send order
            })
            .collect()
    }

    #[test]
    fn virtual_transport_is_the_identity() {
        let msgs = envelopes();
        let carried = VirtualTransport.carry(0, 0.0, &msgs);
        assert_eq!(carried.stats.sent, 7);
        assert_eq!(carried.stats.dropped, 0);
        assert_eq!(carried.deliveries.len(), 7);
        for d in &carried.deliveries {
            assert_eq!(d.t_arrive_s, d.t_send_s);
            assert_eq!(d.copy, 0);
        }
        // Canonical order: ascending arrival time.
        let times: Vec<f64> = carried.deliveries.iter().map(|d| d.t_arrive_s).collect();
        let mut sorted = times.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(times, sorted);
    }

    #[test]
    fn loopback_matches_virtual_at_any_lane_count() {
        let msgs = envelopes();
        let reference = VirtualTransport.carry(3, 5.0, &msgs);
        for lanes in [1, 2, 8] {
            let carried = LoopbackTransport::new(lanes).carry(3, 5.0, &msgs);
            assert_eq!(carried, reference, "lanes = {lanes}");
        }
        // Empty rounds carry nothing.
        assert_eq!(
            LoopbackTransport::new(4).carry(0, 0.0, &[]).deliveries,
            Vec::new()
        );
    }

    #[test]
    fn reorder_count_sees_send_order_inversions() {
        let mut deliveries = vec![
            Delivery {
                client_id: 0,
                t_send_s: 1.0,
                t_arrive_s: 5.0,
                copy: 0,
            },
            Delivery {
                client_id: 1,
                t_send_s: 2.0,
                t_arrive_s: 3.0,
                copy: 0,
            },
            Delivery {
                client_id: 2,
                t_send_s: 4.0,
                t_arrive_s: 6.0,
                copy: 1, // copies never count
            },
        ];
        sort_deliveries(&mut deliveries);
        // Client 0 was overtaken by client 1.
        assert_eq!(count_reordered(&deliveries), 1);
    }

    #[test]
    fn wire_stats_merge_accumulates() {
        let mut total = WireStats::default();
        total.merge(&WireStats {
            sent: 5,
            dropped: 1,
            delayed: 2,
            duplicated: 1,
            reordered: 1,
            partition_held: 1,
            bytes_on_wire: 100,
            bytes_raw: 800,
        });
        total.merge(&WireStats {
            sent: 3,
            ..WireStats::default()
        });
        assert_eq!(total.sent, 8);
        assert_eq!(total.dropped, 1);
        assert_eq!(total.delayed, 2);
        assert_eq!(total.bytes_on_wire, 100);
        assert_eq!(total.bytes_raw, 800);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn loopback_rejects_zero_lanes() {
        let _ = LoopbackTransport::new(0);
    }
}
