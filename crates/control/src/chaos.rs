//! Adversarial wire faults: [`ChaosPlan`] + [`ChaosTransport`].
//!
//! A [`ChaosTransport`] decorates any inner [`Transport`] and injects
//! delay, drop, duplication, reordering and network partitions into the
//! deliveries the inner carrier produced. Every injection is drawn from a
//! seeded plan with the same stream discipline as
//! [`bofl_fleet::fault::FaultPlan`]: pure in `(seed, round, client)` with
//! a per-fault-family salt (see [`bofl_fleet::fault::stream_seed`]), so
//! the exact same chaos fires regardless of the inner transport's lane
//! count or the OS scheduler — chaos is adversarial, never flaky.
//!
//! Fault semantics, per original envelope:
//!
//! - **drop** — the message (and any would-be duplicates) never arrives.
//! - **partition** — the client's uplink is cut from round start for a
//!   seeded duration; messages sent before it heals are held and arrive
//!   at heal time (a partition outliving the round turns into a late or
//!   lost update — the engine's liveness layer decides which).
//! - **delay** — an extra uplink transfer drawn from a
//!   [`NetworkModel`] is added to the arrival time.
//! - **duplicate** — a second copy arrives shortly after the first; the
//!   control plane's state machine makes redelivery a no-op.
//! - **reorder** — a jitter draw perturbs the arrival time so messages
//!   overtake each other; the stats count actual send-order inversions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bofl_fl::network::NetworkModel;
use bofl_fleet::fault::stream_seed;

use crate::transport::{
    count_reordered, sort_deliveries, Carried, Delivery, Envelope, Transport, VirtualTransport,
};

const DROP_SALT: u64 = 0xC4A0_5D80_9000_0001;
const DELAY_SALT: u64 = 0xC4A0_5DE1_A700_0002;
const DUP_SALT: u64 = 0xC4A0_5D09_0000_0003;
const REORDER_SALT: u64 = 0xC4A0_502D_E200_0004;
const PARTITION_SALT: u64 = 0xC4A0_59A2_7000_0005;

/// Probabilities and magnitudes of injected wire faults, plus the seed
/// that makes every draw a pure function of `(round, client)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    seed: u64,
    drop_probability: f64,
    delay_probability: f64,
    delay_model: NetworkModel,
    delay_bytes: f64,
    duplicate_probability: f64,
    reorder_probability: f64,
    reorder_jitter_s: f64,
    partition_probability: f64,
    partition_window_s: (f64, f64),
}

impl ChaosPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        ChaosPlan {
            seed: 0,
            drop_probability: 0.0,
            delay_probability: 0.0,
            delay_model: NetworkModel::lte(),
            delay_bytes: 0.0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            reorder_jitter_s: 0.0,
            partition_probability: 0.0,
            partition_window_s: (0.0, 0.0),
        }
    }

    /// Starts a plan with the given chaos seed and no faults enabled.
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            ..ChaosPlan::none()
        }
    }

    /// Sets the per-message drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn with_drops(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.drop_probability = p;
        self
    }

    /// Sets the per-message delay probability; a delayed message pays one
    /// extra uplink transfer of `bytes` drawn from `model`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or `bytes` is negative/non-finite.
    #[must_use]
    pub fn with_delays(mut self, p: f64, model: NetworkModel, bytes: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        assert!(bytes >= 0.0 && bytes.is_finite(), "bytes must be finite");
        self.delay_probability = p;
        self.delay_model = model;
        self.delay_bytes = bytes;
        self
    }

    /// Sets the per-message duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn with_duplicates(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.duplicate_probability = p;
        self
    }

    /// Sets the per-message reorder probability and the arrival jitter
    /// (uniform in `[0, jitter_s)`) a reordered message receives.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or `jitter_s` is
    /// negative/non-finite.
    #[must_use]
    pub fn with_reordering(mut self, p: f64, jitter_s: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        assert!(
            jitter_s >= 0.0 && jitter_s.is_finite(),
            "jitter must be finite and non-negative"
        );
        self.reorder_probability = p;
        self.reorder_jitter_s = jitter_s;
        self
    }

    /// Sets the per-`(round, client)` partition probability and the
    /// `[lo_s, hi_s]` window the partition's duration is drawn from
    /// (measured from round start).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or the window is not
    /// `0 ≤ lo ≤ hi < ∞`.
    #[must_use]
    pub fn with_partitions(mut self, p: f64, window_s: (f64, f64)) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        assert!(
            0.0 <= window_s.0 && window_s.0 <= window_s.1 && window_s.1.is_finite(),
            "partition window must satisfy 0 <= lo <= hi"
        );
        self.partition_probability = p;
        self.partition_window_s = window_s;
        self
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_none(&self) -> bool {
        self.drop_probability == 0.0
            && self.delay_probability == 0.0
            && self.duplicate_probability == 0.0
            && self.reorder_probability == 0.0
            && self.partition_probability == 0.0
    }

    fn chance(&self, round: usize, client: usize, salt: u64, p: f64) -> (bool, StdRng) {
        let mut rng = StdRng::seed_from_u64(stream_seed(self.seed, round, client, salt));
        let hit = p > 0.0 && rng.gen::<f64>() < p;
        (hit, rng)
    }

    /// Whether the message from `client` in `round` is dropped outright.
    pub fn drops(&self, round: usize, client: usize) -> bool {
        self.chance(round, client, DROP_SALT, self.drop_probability)
            .0
    }

    /// The partition healing time for `(round, client)` measured from
    /// round start: `None` when the client is not partitioned this round.
    pub fn partition_heal_s(&self, round: usize, client: usize) -> Option<f64> {
        let (hit, mut rng) = self.chance(round, client, PARTITION_SALT, self.partition_probability);
        if !hit {
            return None;
        }
        let (lo, hi) = self.partition_window_s;
        Some(lo + (hi - lo) * rng.gen::<f64>())
    }

    /// The extra uplink delay for `(round, client)`: `None` when the
    /// message is not delayed.
    pub fn delay_s(&self, round: usize, client: usize) -> Option<f64> {
        let (hit, mut rng) = self.chance(round, client, DELAY_SALT, self.delay_probability);
        if !hit {
            return None;
        }
        let (duration, _bw) = self.delay_model.transfer(self.delay_bytes, &mut rng);
        Some(duration)
    }

    /// The reorder jitter for `(round, client)`: `None` when the message
    /// is not jittered.
    pub fn reorder_jitter(&self, round: usize, client: usize) -> Option<f64> {
        let (hit, mut rng) = self.chance(round, client, REORDER_SALT, self.reorder_probability);
        if !hit {
            return None;
        }
        Some(rng.gen::<f64>() * self.reorder_jitter_s)
    }

    /// The duplicate lag for `(round, client)`: `None` when no duplicate
    /// copy is injected, otherwise how long after the original the copy
    /// arrives (always > 0 so the copy never ties the original).
    pub fn duplicate_lag_s(&self, round: usize, client: usize) -> Option<f64> {
        let (hit, mut rng) = self.chance(round, client, DUP_SALT, self.duplicate_probability);
        if !hit {
            return None;
        }
        Some(0.01 + 0.1 * rng.gen::<f64>())
    }
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan::none()
    }
}

/// A decorator that applies a [`ChaosPlan`] to whatever an inner
/// [`Transport`] delivers.
#[derive(Debug, Clone)]
pub struct ChaosTransport {
    inner: Box<dyn Transport>,
    plan: ChaosPlan,
    label: String,
}

impl ChaosTransport {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: Box<dyn Transport>, plan: ChaosPlan) -> Self {
        let label = format!("chaos({})", inner.label());
        ChaosTransport { inner, plan, label }
    }

    /// Chaos over the identity carrier.
    pub fn over_virtual(plan: ChaosPlan) -> Self {
        ChaosTransport::new(Box::new(VirtualTransport), plan)
    }

    /// The plan in force.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }
}

impl Transport for ChaosTransport {
    fn label(&self) -> &str {
        &self.label
    }

    fn carry(&mut self, round: usize, t0_s: f64, messages: &[Envelope]) -> Carried {
        let inner = self.inner.carry(round, t0_s, messages);
        if self.plan.is_none() {
            return inner;
        }
        let mut stats = inner.stats;
        let mut out: Vec<Delivery> = Vec::with_capacity(inner.deliveries.len());
        for d in inner.deliveries {
            // Decorate originals only; an inner transport that already
            // duplicates would pass its copies through untouched.
            if d.copy > 0 {
                out.push(d);
                continue;
            }
            let id = d.client_id;
            if self.plan.drops(round, id) {
                stats.dropped += 1;
                continue;
            }
            let mut t = d.t_arrive_s;
            if let Some(heal) = self.plan.partition_heal_s(round, id) {
                let heals_at = t0_s + heal;
                if d.t_send_s < heals_at {
                    t = t.max(heals_at);
                    stats.partition_held += 1;
                }
            }
            if let Some(delay) = self.plan.delay_s(round, id) {
                t += delay;
                stats.delayed += 1;
            }
            if let Some(jitter) = self.plan.reorder_jitter(round, id) {
                t += jitter;
            }
            let delivered = Delivery { t_arrive_s: t, ..d };
            if let Some(lag) = self.plan.duplicate_lag_s(round, id) {
                out.push(Delivery {
                    t_arrive_s: t + lag,
                    copy: d.copy + 1,
                    ..d
                });
                stats.duplicated += 1;
            }
            out.push(delivered);
        }
        sort_deliveries(&mut out);
        stats.reordered = count_reordered(&out);
        Carried {
            deliveries: out,
            stats,
        }
    }

    fn clone_box(&self) -> Box<dyn Transport> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LoopbackTransport;

    fn envelopes(n: usize) -> Vec<Envelope> {
        (0..n)
            .map(|id| Envelope {
                round: 2,
                client_id: id,
                t_send_s: 100.0 + id as f64,
            })
            .collect()
    }

    #[test]
    fn empty_plan_is_a_passthrough() {
        let msgs = envelopes(5);
        let plain = VirtualTransport.carry(2, 90.0, &msgs);
        let chaotic = ChaosTransport::over_virtual(ChaosPlan::none()).carry(2, 90.0, &msgs);
        assert_eq!(plain, chaotic);
        assert!(ChaosPlan::none().is_none());
        assert!(!ChaosPlan::new(1).with_drops(0.1).is_none());
    }

    #[test]
    fn chaos_is_deterministic_and_independent_of_the_inner_transport() {
        let msgs = envelopes(24);
        let plan = ChaosPlan::new(7)
            .with_drops(0.2)
            .with_delays(0.3, NetworkModel::lte(), 1.0e6)
            .with_duplicates(0.2)
            .with_reordering(0.4, 5.0)
            .with_partitions(0.1, (5.0, 30.0));
        let a = ChaosTransport::over_virtual(plan).carry(2, 90.0, &msgs);
        let b = ChaosTransport::over_virtual(plan).carry(2, 90.0, &msgs);
        assert_eq!(a, b);
        for lanes in [1, 2, 8] {
            let c = ChaosTransport::new(Box::new(LoopbackTransport::new(lanes)), plan)
                .carry(2, 90.0, &msgs);
            assert_eq!(a, c, "lanes = {lanes}");
        }
        // At these probabilities some fault of every armed family fires.
        assert!(a.stats.dropped > 0);
        assert!(a.stats.delayed > 0);
        assert!(a.stats.duplicated > 0);
        assert_eq!(
            a.deliveries.iter().filter(|d| d.copy == 0).count(),
            a.stats.sent - a.stats.dropped
        );
    }

    #[test]
    fn certain_drops_lose_everything() {
        let msgs = envelopes(6);
        let carried =
            ChaosTransport::over_virtual(ChaosPlan::new(1).with_drops(1.0)).carry(0, 0.0, &msgs);
        assert!(carried.deliveries.is_empty());
        assert_eq!(carried.stats.dropped, 6);
        assert_eq!(carried.stats.sent, 6);
    }

    #[test]
    fn partitions_hold_messages_until_heal_time() {
        let plan = ChaosPlan::new(9).with_partitions(1.0, (50.0, 60.0));
        let msgs = envelopes(8); // sent at 100..108, round start 90
        let carried = ChaosTransport::over_virtual(plan).carry(2, 90.0, &msgs);
        assert_eq!(carried.stats.partition_held, 8);
        for d in &carried.deliveries {
            let heal = plan.partition_heal_s(2, d.client_id).unwrap();
            assert!((50.0..=60.0).contains(&heal));
            assert_eq!(d.t_arrive_s, d.t_send_s.max(90.0 + heal));
        }
        // A message sent after the heal passes through unheld.
        let late_sender = [Envelope {
            round: 2,
            client_id: 0,
            t_send_s: 90.0 + 61.0,
        }];
        let carried = ChaosTransport::over_virtual(plan).carry(2, 90.0, &late_sender);
        assert_eq!(carried.stats.partition_held, 0);
        assert_eq!(carried.deliveries[0].t_arrive_s, 151.0);
    }

    #[test]
    fn duplicates_arrive_after_their_original() {
        let msgs = envelopes(10);
        let carried = ChaosTransport::over_virtual(ChaosPlan::new(3).with_duplicates(1.0))
            .carry(0, 0.0, &msgs);
        assert_eq!(carried.stats.duplicated, 10);
        assert_eq!(carried.deliveries.len(), 20);
        for d in carried.deliveries.iter().filter(|d| d.copy == 1) {
            let original = carried
                .deliveries
                .iter()
                .find(|o| o.client_id == d.client_id && o.copy == 0)
                .unwrap();
            assert!(d.t_arrive_s > original.t_arrive_s);
        }
    }

    #[test]
    fn reordering_counts_send_order_inversions() {
        // Heavy jitter on close-together sends must invert some pairs.
        let msgs: Vec<Envelope> = (0..16)
            .map(|id| Envelope {
                round: 0,
                client_id: id,
                t_send_s: 10.0 + 0.1 * id as f64,
            })
            .collect();
        let carried = ChaosTransport::over_virtual(ChaosPlan::new(5).with_reordering(1.0, 20.0))
            .carry(0, 0.0, &msgs);
        assert!(carried.stats.reordered > 0);
        assert_eq!(carried.stats.dropped, 0);
    }
}
