//! The bounded event journal.
//!
//! Every successful transition the control plane applies is appended
//! here as an [`EventEntry`]: a monotonically increasing sequence
//! number, the round, the client, the `(from, to)` edge, a semantic
//! [`EventCause`], and a *virtual* timestamp in simulated seconds. The
//! ring is bounded — old entries are evicted once `capacity` is reached —
//! but sequence numbers never reset, so a reader can always tell whether
//! (and how much of) the prefix was evicted.
//!
//! Timestamps are virtual, derived from simulated training durations and
//! retry backoff, never from the wall clock. That is what makes the
//! journal byte-identical across worker counts: the OS scheduler decides
//! when a worker thread *computes* an outcome, but not when the modelled
//! update would have *arrived*.

use std::collections::VecDeque;
use std::io;
use std::path::Path;

use crate::state::ClientState;

/// Default journal capacity: comfortably holds several hundred rounds of
/// a mid-size cohort before eviction begins.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

/// Why a transition happened — the semantic tag alongside the raw
/// `(from, to)` edge, so exports stay interpretable without cross-
/// referencing engine internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventCause {
    /// Churn: the client rejoined the fleet.
    ChurnArrival = 0,
    /// Churn: the client left the fleet.
    ChurnDeparture = 1,
    /// The server invited the client into the round.
    Selection = 2,
    /// Training began.
    RoundStart = 3,
    /// The deadline guardian escalated the remaining jobs mid-round.
    GuardianEscalation = 4,
    /// The controller quarantined contaminated observations.
    ObservationQuarantine = 5,
    /// Local training finished; the update entered the uplink.
    TrainingComplete = 6,
    /// The update arrived on the first upload attempt.
    UploadDelivered = 7,
    /// The update arrived after at least one upload retry.
    UploadRecovered = 8,
    /// The server's own dropout draw removed the client pre-round.
    ServerDropout = 9,
    /// The fault plan's dropout draw removed the client mid-round.
    FaultDropout = 10,
    /// Training overran the round deadline.
    DeadlineMiss = 11,
    /// Every upload attempt within the retry budget failed.
    UploadFailure = 12,
    /// The update arrived after the round had closed on its quorum.
    RoundClosed = 13,
    /// End-of-round housekeeping returned the client to the pool.
    RoundReset = 14,
    /// The liveness tracker's heartbeat deadline lapsed with the report
    /// still outstanding.
    LivenessSuspect = 15,
    /// A suspected client's update arrived after all (delayed packet or
    /// healed partition).
    LivenessHeal = 16,
    /// A suspected client stayed silent past its expiry deadline and was
    /// declared dead for the round.
    LivenessExpired = 17,
    /// The transport lost the update outright (chaos drop or a partition
    /// that outlived the round) and no liveness tracker was armed to
    /// notice earlier.
    TransportLoss = 18,
    /// The client's aggregator shard closed the round under its local
    /// quorum — the client's reset carries the shard's distress signal so
    /// an operator can localize *where* in the tree the cohort starved.
    ShardQuorumShortfall = 19,
}

impl EventCause {
    /// Every cause, in discriminant order (for exhaustive table tests and
    /// binary decoding).
    pub const ALL: [EventCause; 20] = [
        EventCause::ChurnArrival,
        EventCause::ChurnDeparture,
        EventCause::Selection,
        EventCause::RoundStart,
        EventCause::GuardianEscalation,
        EventCause::ObservationQuarantine,
        EventCause::TrainingComplete,
        EventCause::UploadDelivered,
        EventCause::UploadRecovered,
        EventCause::ServerDropout,
        EventCause::FaultDropout,
        EventCause::DeadlineMiss,
        EventCause::UploadFailure,
        EventCause::RoundClosed,
        EventCause::RoundReset,
        EventCause::LivenessSuspect,
        EventCause::LivenessHeal,
        EventCause::LivenessExpired,
        EventCause::TransportLoss,
        EventCause::ShardQuorumShortfall,
    ];

    /// The cause with discriminant `b`, if any — the inverse of `as u8`,
    /// used when decoding binary journal records (the WAL).
    pub fn from_u8(b: u8) -> Option<EventCause> {
        EventCause::ALL.get(b as usize).copied()
    }

    /// Stable lowercase name (journal CSV/JSONL vocabulary).
    pub fn as_str(&self) -> &'static str {
        match self {
            EventCause::ChurnArrival => "churn_arrival",
            EventCause::ChurnDeparture => "churn_departure",
            EventCause::Selection => "selection",
            EventCause::RoundStart => "round_start",
            EventCause::GuardianEscalation => "guardian_escalation",
            EventCause::ObservationQuarantine => "observation_quarantine",
            EventCause::TrainingComplete => "training_complete",
            EventCause::UploadDelivered => "upload_delivered",
            EventCause::UploadRecovered => "upload_recovered",
            EventCause::ServerDropout => "server_dropout",
            EventCause::FaultDropout => "fault_dropout",
            EventCause::DeadlineMiss => "deadline_miss",
            EventCause::UploadFailure => "upload_failure",
            EventCause::RoundClosed => "round_closed",
            EventCause::RoundReset => "round_reset",
            EventCause::LivenessSuspect => "liveness_suspect",
            EventCause::LivenessHeal => "liveness_heal",
            EventCause::LivenessExpired => "liveness_expired",
            EventCause::TransportLoss => "transport_loss",
            EventCause::ShardQuorumShortfall => "shard_quorum_shortfall",
        }
    }
}

impl std::fmt::Display for EventCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One journalled transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventEntry {
    /// Monotonic sequence number; survives ring eviction.
    pub seq: u64,
    /// Federation round the transition belongs to.
    pub round: u32,
    /// Client id.
    pub client: u32,
    /// State before the transition.
    pub from: ClientState,
    /// State after the transition.
    pub to: ClientState,
    /// Semantic reason for the transition.
    pub cause: EventCause,
    /// Virtual timestamp, simulated seconds since the run began.
    pub t_s: f64,
}

impl EventEntry {
    /// The entry as one CSV row (no trailing newline).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{:.6}",
            self.seq,
            self.round,
            self.client,
            self.from.as_str(),
            self.to.as_str(),
            self.cause.as_str(),
            self.t_s
        )
    }

    /// The entry as one JSON object (no trailing newline). Hand-rolled:
    /// every field is numeric or from a fixed lowercase vocabulary, so
    /// no escaping is needed.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"round\":{},\"client\":{},\"from\":\"{}\",\"to\":\"{}\",\"cause\":\"{}\",\"t_s\":{:.6}}}",
            self.seq,
            self.round,
            self.client,
            self.from.as_str(),
            self.to.as_str(),
            self.cause.as_str(),
            self.t_s
        )
    }
}

/// How a round ended: the quorum bookkeeping the server consults when it
/// decides whether the global step is usable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundClose {
    /// The round that closed.
    pub round: u32,
    /// Virtual close time (seconds since the run began).
    pub t_s: f64,
    /// Updates accepted into the aggregate.
    pub accepted: usize,
    /// The minimum acceptances the aggregation policy demanded.
    pub quorum: usize,
    /// Whether `accepted >= quorum`.
    pub quorum_met: bool,
    /// Whether the round closed on its aggregation target while work
    /// with a later virtual time was still outstanding (in practice only
    /// possible with over-selection; a close landing on the round's final
    /// event is just the barrier behavior).
    pub closed_early: bool,
    /// Whether the round closed in *degraded mode*: the liveness tracker
    /// concluded the close target was unreachable (outstanding reports
    /// lost, expired, or partitioned away) and closed on whatever had
    /// been accepted instead of waiting. A degraded close arms
    /// over-selection escalation for the next round.
    pub degraded: bool,
    /// How many aggregator shards the round's cohort was partitioned
    /// into (`0` when no shard plan was armed).
    pub shards: usize,
    /// How many of those shards closed under their local quorum.
    pub shard_shortfalls: usize,
}

impl RoundClose {
    /// The close as one JSON object (no trailing newline) — the
    /// vocabulary `journal_tail --closes` interleaves with event lines.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"close\":{{\"round\":{},\"t_s\":{:.6},\"accepted\":{},\"quorum\":{},\"quorum_met\":{},\"closed_early\":{},\"degraded\":{},\"shards\":{},\"shard_shortfalls\":{}}}}}",
            self.round,
            self.t_s,
            self.accepted,
            self.quorum,
            self.quorum_met,
            self.closed_early,
            self.degraded,
            self.shards,
            self.shard_shortfalls
        )
    }
}

/// A bounded ring of [`EventEntry`] with a never-resetting sequence
/// counter.
#[derive(Debug, Clone)]
pub struct EventJournal {
    entries: VecDeque<EventEntry>,
    capacity: usize,
    next_seq: u64,
    evicted: u64,
}

impl EventJournal {
    /// An empty journal with the given ring capacity (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        EventJournal {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
            next_seq: 0,
            evicted: 0,
        }
    }

    /// Append one transition, evicting the oldest entry if the ring is
    /// full. Returns the sequence number assigned to the entry.
    #[allow(clippy::too_many_arguments)]
    pub fn append(
        &mut self,
        round: u32,
        client: u32,
        from: ClientState,
        to: ClientState,
        cause: EventCause,
        t_s: f64,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
        self.entries.push_back(EventEntry {
            seq,
            round,
            client,
            from,
            to,
            cause,
            t_s,
        });
        seq
    }

    /// Re-adopt an entry replayed from a write-ahead log, preserving its
    /// original sequence number. The entry must continue this journal's
    /// own counter exactly — resume treats a gap as corruption.
    ///
    /// # Panics
    ///
    /// Panics if `e.seq != self.total_appended()` (callers validate the
    /// sequence before adopting; see `ControlPlane::resume`).
    pub(crate) fn adopt(&mut self, e: EventEntry) {
        assert_eq!(
            e.seq, self.next_seq,
            "WAL entry out of sequence: expected {}, found {}",
            self.next_seq, e.seq
        );
        self.next_seq += 1;
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
        self.entries.push_back(e);
    }

    /// Entries currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &EventEntry> {
        self.entries.iter()
    }

    /// Number of entries currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total transitions ever journalled (including evicted ones).
    pub fn total_appended(&self) -> u64 {
        self.next_seq
    }

    /// Entries evicted from the front of the ring so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Count `(arrivals, departures)` churn events recorded for `round`.
    pub fn churn_counts(&self, round: u32) -> (usize, usize) {
        let mut arrivals = 0;
        let mut departures = 0;
        for e in self.entries.iter().filter(|e| e.round == round) {
            match e.cause {
                EventCause::ChurnArrival => arrivals += 1,
                EventCause::ChurnDeparture => departures += 1,
                _ => {}
            }
        }
        (arrivals, departures)
    }

    /// Count resets that carried the shard-quorum-shortfall cause in
    /// `round` — members of shards that closed starved.
    pub fn shard_shortfall_resets(&self, round: u32) -> usize {
        self.entries
            .iter()
            .filter(|e| e.round == round && e.cause == EventCause::ShardQuorumShortfall)
            .count()
    }

    /// Count `(suspected, expired, healed)` liveness events recorded for
    /// `round`.
    pub fn liveness_counts(&self, round: u32) -> (usize, usize, usize) {
        let mut suspected = 0;
        let mut expired = 0;
        let mut healed = 0;
        for e in self.entries.iter().filter(|e| e.round == round) {
            match e.cause {
                EventCause::LivenessSuspect => suspected += 1,
                EventCause::LivenessExpired => expired += 1,
                EventCause::LivenessHeal => healed += 1,
                _ => {}
            }
        }
        (suspected, expired, healed)
    }

    /// The whole journal as CSV (header + one row per entry).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("seq,round,client,from,to,cause,t_s\n");
        for e in &self.entries {
            out.push_str(&e.to_csv_row());
            out.push('\n');
        }
        out
    }

    /// The whole journal as JSONL (one JSON object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Write the CSV export crash-safely (temp file + rename), creating
    /// parent directories as needed.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        bofl_fleet::metrics::write_atomic(path, &self.to_csv())
    }

    /// Write the JSONL export crash-safely (temp file + rename), creating
    /// parent directories as needed.
    pub fn write_jsonl(&self, path: &Path) -> io::Result<()> {
        bofl_fleet::metrics::write_atomic(path, &self.to_jsonl())
    }
}

impl Default for EventJournal {
    fn default() -> Self {
        EventJournal::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ClientState as S;

    fn entry(journal: &mut EventJournal, seq_hint: u32) -> u64 {
        journal.append(
            seq_hint,
            seq_hint,
            S::Idle,
            S::Selected,
            EventCause::Selection,
            seq_hint as f64,
        )
    }

    #[test]
    fn sequence_numbers_survive_eviction() {
        let mut j = EventJournal::with_capacity(2);
        for i in 0..5 {
            let seq = entry(&mut j, i);
            assert_eq!(seq, i as u64);
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.evicted(), 3);
        assert_eq!(j.total_appended(), 5);
        let seqs: Vec<u64> = j.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn csv_and_jsonl_have_fixed_shape() {
        let mut j = EventJournal::default();
        j.append(
            2,
            7,
            S::Reporting,
            S::Aggregated,
            EventCause::UploadDelivered,
            12.5,
        );
        assert_eq!(
            j.to_csv(),
            "seq,round,client,from,to,cause,t_s\n0,2,7,reporting,aggregated,upload_delivered,12.500000\n"
        );
        assert_eq!(
            j.to_jsonl(),
            "{\"seq\":0,\"round\":2,\"client\":7,\"from\":\"reporting\",\"to\":\"aggregated\",\"cause\":\"upload_delivered\",\"t_s\":12.500000}\n"
        );
    }

    #[test]
    fn churn_counts_filter_by_round() {
        let mut j = EventJournal::default();
        j.append(0, 1, S::Idle, S::Departed, EventCause::ChurnDeparture, 0.0);
        j.append(1, 1, S::Departed, S::Idle, EventCause::ChurnArrival, 1.0);
        j.append(1, 2, S::Idle, S::Departed, EventCause::ChurnDeparture, 1.0);
        j.append(1, 3, S::Idle, S::Selected, EventCause::Selection, 1.0);
        assert_eq!(j.churn_counts(0), (0, 1));
        assert_eq!(j.churn_counts(1), (1, 1));
        assert_eq!(j.churn_counts(2), (0, 0));
    }
}
