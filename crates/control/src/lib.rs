//! **bofl-control** — an event-driven federation control plane for BoFL.
//!
//! The barrier engines in `bofl-fl`/`bofl-fleet` treat a round as a join:
//! run every selected client, then aggregate the survivors. This crate
//! re-frames the same round as a *timeline of lifecycle events*:
//!
//! - [`state`] — every client is an explicit `#[repr(u8)]` state machine
//!   (`Idle → Selected → Training → Reporting → Aggregated`, with
//!   `Dropped`, `Escalated`, `Quarantined` and `Departed` as ordinary
//!   transitions, not special cases). Illegal `(state, event)` pairs are
//!   typed [`TransitionError`]s — never panics.
//! - [`journal`] — every transition appends a timestamped [`EventEntry`]
//!   to a bounded [`EventJournal`] ring with a never-resetting sequence
//!   counter, exportable as CSV or JSONL next to the fleet-metrics CSV.
//! - [`plane`] — [`ControlPlane`] holds the fleet's state vector,
//!   enforces the transition contract, journals what it applies, and can
//!   [`ControlPlane::replay`] a journal to reconstruct final states.
//! - [`engine`] — [`EventDrivenEngine`] implements `bofl_fl`'s
//!   `RoundEngine` seam: execution still runs on a deterministic
//!   `bofl-fleet` worker pool, but rounds *close on quorum events* (the
//!   first `close_target` accepted reports, in virtual arrival order)
//!   instead of waiting for every straggler, and churn (clients joining
//!   and leaving the fleet mid-run, even mid-round) is handled as
//!   ordinary transitions.
//! - [`transport`] — delivery is a pluggable [`Transport`] seam:
//!   [`VirtualTransport`] (identity, the default) and
//!   [`LoopbackTransport`] (real `std::thread` lanes + mpsc channels,
//!   byte-identical journal with zero faults).
//! - [`socket`] — [`SocketTransport`] carries the same envelopes over
//!   real localhost TCP (length-prefixed, checksummed frames from
//!   `bofl_fleet::wire`) with bounded seeded reconnect/backoff, per-send
//!   ack timeouts and a ping/pong heartbeat lane; virtual timestamps
//!   ride inside the frames, so the zero-fault journal stays
//!   byte-identical to [`VirtualTransport`].
//! - [`chaos`] — [`ChaosTransport`] decorates any carrier with seeded
//!   delay, drop, duplication, reordering and partitions drawn from a
//!   [`ChaosPlan`] (same stream discipline as `FaultPlan`).
//! - [`wal`] — [`JournalWal`], an fsync'd append-only write-ahead log of
//!   journal records with torn-tail truncation on open, powering
//!   [`ControlPlane::resume`] (crash-safe coordinator restart) and
//!   [`JournalTail`] (a follow-mode reader that never perturbs the
//!   writer — the `journal_tail` bin).
//! - [`liveness`] — [`LivenessPolicy`] arms per-client heartbeat
//!   deadlines: silent clients are `Suspected`, then expired; an update
//!   arriving in between heals them. When the close target becomes
//!   unreachable the round closes *degraded* and the next round's close
//!   target widens (over-selection escalation) instead of hanging.
//! - [`sim`] — [`ControlSimulation`], the one-stop builder mirroring
//!   `bofl_fleet::FleetSimulation`.
//!
//! Virtual timestamps are derived from simulated durations, seeded
//! retry backoffs and seeded chaos draws — never the wall clock — so for
//! a fixed fleet seed the journal is **byte-identical at any worker
//! count and any transport lane count**.
//!
//! # Example
//!
//! ```
//! use bofl_control::prelude::*;
//! use bofl_fl::server::{AggregationPolicy, FederationConfig};
//!
//! let spec = FleetSpec::mixed(12, 7);
//! let mut sim = ControlSimulation::builder(spec)
//!     .federation(FederationConfig {
//!         clients_per_round: 4,
//!         rounds: 2,
//!         seed: 7,
//!         aggregation: AggregationPolicy::recovery(),
//!         ..FederationConfig::default()
//!     })
//!     .workers(4)
//!     .faults(FaultPlan::new(1).with_churn(0.05, 2))
//!     .build();
//! let report = sim.run();
//! assert_eq!(report.closes.len(), 2);
//! // The same run at any worker count journals the identical events.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod engine;
pub mod journal;
pub mod liveness;
pub mod plane;
pub mod sim;
pub mod socket;
pub mod state;
pub mod transport;
pub mod wal;

pub use chaos::{ChaosPlan, ChaosTransport};
pub use engine::{EventDrivenEngine, PlaneHandle};
pub use journal::{EventCause, EventEntry, EventJournal, RoundClose, DEFAULT_JOURNAL_CAPACITY};
pub use liveness::LivenessPolicy;
pub use plane::{ControlPlane, ReplayError, ResumeError, ResumeReport};
pub use sim::{ControlRunReport, ControlSimulation, ControlSimulationBuilder};
pub use socket::{ReconnectPolicy, SocketTransport};
pub use state::{ClientEvent, ClientState, TransitionError};
pub use transport::{
    Carried, Delivery, Envelope, LoopbackTransport, Transport, VirtualTransport, WireStats,
};
pub use wal::{JournalTail, JournalWal, WalError, WalRecord};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::chaos::{ChaosPlan, ChaosTransport};
    pub use crate::engine::{EventDrivenEngine, PlaneHandle};
    pub use crate::journal::{EventCause, EventEntry, EventJournal, RoundClose};
    pub use crate::liveness::LivenessPolicy;
    pub use crate::plane::{ControlPlane, ReplayError, ResumeError, ResumeReport};
    pub use crate::sim::{ControlRunReport, ControlSimulation, ControlSimulationBuilder};
    pub use crate::socket::{ReconnectPolicy, SocketTransport};
    pub use crate::state::{ClientEvent, ClientState, TransitionError};
    pub use crate::transport::{
        Carried, Delivery, Envelope, LoopbackTransport, Transport, VirtualTransport, WireStats,
    };
    pub use crate::wal::{JournalTail, JournalWal, WalError, WalRecord};
    pub use bofl_fl::network::{NetworkModel, RetryPolicy};
    pub use bofl_fl::server::AggregationPolicy;
    pub use bofl_fleet::compress::{
        CompressedUpdate, Compressor, Int8Quantizer, NoCompression, TopKSparsifier,
    };
    pub use bofl_fleet::fault::{ChurnStatus, FaultPlan};
    pub use bofl_fleet::generator::FleetSpec;
    pub use bofl_fleet::shard::ShardPlan;
}
