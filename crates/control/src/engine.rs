//! [`EventDrivenEngine`]: the event-driven implementation of `bofl_fl`'s
//! [`RoundEngine`] seam.
//!
//! The barrier engines (`SequentialEngine`, `FleetEngine`) treat a round
//! as a join: every selected client runs to completion, then the server
//! aggregates whatever survived. This engine replays the same round as a
//! *timeline of events* against a [`ControlPlane`]:
//!
//! 1. **Churn sweep** — before selection takes effect, clients scheduled
//!    to rejoin the fleet this round `Join`, and departing clients that
//!    were not selected `Depart` immediately.
//! 2. **Admission** — each selected client transitions
//!    `Idle → Selected → Training`. A client that is absent (churned
//!    away) cannot be admitted: the engine refuses the `Select` and
//!    synthesizes a dropped, zero-energy outcome instead.
//! 3. **Execution** — runnable jobs go through an inner [`FleetEngine`]
//!    worker pool (same fault injection, same retry arithmetic, same
//!    per-`(client, round)` seeds).
//! 4. **Delivery** — outcomes are replayed in *virtual arrival order*:
//!    `t_report = round_start + duration + Σ retry backoffs`, ties broken
//!    by client id. The first deliveries to satisfy the aggregation
//!    policy's close target close the round; anything aggregatable that
//!    arrives after the close is marked `late` and dropped.
//! 5. **Reset** — at the round's close every settled client returns to
//!    `Idle` (or `Departed`, if it churned away mid-round).
//!
//! Because virtual arrival times are derived from simulated durations and
//! seeded backoff draws — never from the wall clock — the journal this
//! produces is byte-identical at any worker count.

use std::sync::{Arc, Mutex};

use bofl_fl::client::FlClient;
use bofl_fl::engine::{ClientJob, ClientOutcome, RoundEngine};
use bofl_fl::network::RetryPolicy;
use bofl_fl::server::AggregationPolicy;
use bofl_fleet::engine::upload_backoff_seed;
use bofl_fleet::fault::{ChurnStatus, FaultPlan};
use bofl_fleet::FleetEngine;

use crate::journal::EventCause;
use crate::plane::ControlPlane;
use crate::state::{ClientEvent, ClientState, TransitionError};

/// A shared, lockable handle onto an engine's [`ControlPlane`]. The
/// federation owns the boxed engine, so callers that want to read the
/// journal after a run keep one of these.
pub type PlaneHandle = Arc<Mutex<ControlPlane>>;

/// An event-driven round engine: a [`FleetEngine`] worker pool for
/// execution, a [`ControlPlane`] for lifecycle bookkeeping, and
/// quorum-based round closes instead of a barrier join.
#[derive(Debug, Clone)]
pub struct EventDrivenEngine {
    inner: FleetEngine,
    /// Nominal cohort size for the close target; `0` disables early
    /// closes entirely (the engine then behaves as a journalling barrier).
    cohort: usize,
    policy: AggregationPolicy,
    plane: PlaneHandle,
    /// Virtual clock: simulated seconds since the run began. Advances to
    /// each round's close time.
    now_s: f64,
    label: String,
}

impl EventDrivenEngine {
    /// An event-driven engine executing on `workers` OS threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        EventDrivenEngine {
            inner: FleetEngine::new(workers),
            cohort: 0,
            policy: AggregationPolicy::none(),
            plane: Arc::new(Mutex::new(ControlPlane::new(0))),
            now_s: 0.0,
            label: format!("event-driven({workers} workers)"),
        }
    }

    /// The single-threaded variant (reference for determinism checks).
    pub fn sequential() -> Self {
        let mut engine = EventDrivenEngine::new(1);
        engine.label = "event-driven(sequential)".to_string();
        engine
    }

    /// Attaches a fault-injection plan (including churn, which only this
    /// engine acts on — barrier engines ignore churn draws).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.inner = self.inner.with_faults(faults);
        self
    }

    /// Attaches an upload retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.inner = self.inner.with_retry(retry);
        self
    }

    /// Enables quorum-based round closes: once
    /// [`AggregationPolicy::close_target`] updates for a nominal cohort of
    /// `clients_per_round` have been accepted, the round closes and any
    /// update still in flight lands late. Pass the same policy and cohort
    /// the federation was configured with.
    #[must_use]
    pub fn with_close_policy(
        mut self,
        policy: AggregationPolicy,
        clients_per_round: usize,
    ) -> Self {
        self.policy = policy;
        self.cohort = clients_per_round;
        self
    }

    /// Bounds the event journal ring (default
    /// [`crate::journal::DEFAULT_JOURNAL_CAPACITY`]).
    #[must_use]
    pub fn with_journal_capacity(mut self, capacity: usize) -> Self {
        self.plane = Arc::new(Mutex::new(ControlPlane::with_journal_capacity(0, capacity)));
        self
    }

    /// A handle onto the control plane, for reading the journal and round
    /// closes after the federation has taken ownership of the engine.
    pub fn plane(&self) -> PlaneHandle {
        Arc::clone(&self.plane)
    }

    /// Worker threads in the inner pool.
    pub fn workers(&self) -> usize {
        self.inner.workers()
    }

    fn faults(&self) -> &FaultPlan {
        self.inner.faults()
    }

    /// Total retry backoff a finished client waited before its final
    /// upload attempt — pure in `(round, client, attempts)`, mirroring
    /// the arithmetic inside [`FleetEngine`]'s retry loop.
    fn waited_s(&self, retry: &RetryPolicy, round: usize, client_id: usize, attempts: u32) -> f64 {
        if attempts <= 1 {
            return 0.0;
        }
        let seed = upload_backoff_seed(round, client_id);
        (1..attempts).map(|a| retry.backoff_s(a, seed)).sum()
    }
}

/// Transitions the engine emits are derived from its own bookkeeping, so
/// a contract violation here is an engine bug, not bad input.
fn must(result: Result<ClientState, TransitionError>) -> ClientState {
    result.unwrap_or_else(|e| panic!("control-plane invariant broken: {e}"))
}

/// A zero-energy outcome for a client that could not participate (absent
/// from the fleet when the server selected it).
fn absent_outcome(job: &ClientJob) -> ClientOutcome {
    ClientOutcome {
        client_id: job.client_id,
        result: bofl_fl::client::ClientRoundResult {
            parameters: Vec::new(),
            samples: 0,
            deadline_met: false,
            energy_j: 0.0,
            duration_s: 0.0,
            last_loss: 0.0,
            phase: None,
            escalated_jobs: 0,
            quarantined: 0,
            suggest_ms: 0.0,
        },
        dropped: true,
        straggler_factor: 1.0,
        upload_failed: false,
        upload_attempts: 1,
        late: false,
    }
}

impl RoundEngine for EventDrivenEngine {
    fn label(&self) -> &str {
        &self.label
    }

    fn run_batch(
        &mut self,
        clients: &mut [FlClient],
        global: &[f64],
        jobs: &[ClientJob],
    ) -> Vec<ClientOutcome> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let round = jobs[0].round;
        let t0 = self.now_s;
        let retry = *self.inner.retry();
        let faults = *self.faults();
        let plane = Arc::clone(&self.plane);
        let mut plane = plane.lock().expect("control plane poisoned");
        plane.ensure_clients(clients.len());

        // 1. Churn sweep (id order, all at round start). Clients due back
        //    rejoin; departing clients that were not selected leave now.
        //    Departing clients that *were* selected stay for one last
        //    round of training — their update is lost mid-flight below.
        let selected: Vec<bool> = {
            let mut s = vec![false; clients.len()];
            for job in jobs {
                s[job.client_id] = true;
            }
            s
        };
        let mut departing = vec![false; clients.len()];
        for id in 0..clients.len() {
            let status = faults.churn_status(round, id);
            if plane.state(id) == ClientState::Departed && status != ChurnStatus::Absent {
                must(plane.apply(id, ClientEvent::Join, EventCause::ChurnArrival, round, t0));
            }
            if status == ChurnStatus::Departing {
                if selected[id] {
                    departing[id] = true;
                } else if plane.state(id) == ClientState::Idle {
                    must(plane.apply(
                        id,
                        ClientEvent::Depart,
                        EventCause::ChurnDeparture,
                        round,
                        t0,
                    ));
                }
            }
        }

        // 2. Admission (id order). Absent clients cannot be selected —
        //    the engine refuses without journalling anything and answers
        //    the server with a synthetic dropped outcome.
        let mut synthetic: Vec<ClientOutcome> = Vec::new();
        let mut runnable: Vec<ClientJob> = Vec::with_capacity(jobs.len());
        for job in jobs {
            if plane.state(job.client_id) == ClientState::Departed {
                synthetic.push(absent_outcome(job));
                continue;
            }
            must(plane.apply(
                job.client_id,
                ClientEvent::Select,
                EventCause::Selection,
                round,
                t0,
            ));
            must(plane.apply(
                job.client_id,
                ClientEvent::Start,
                EventCause::RoundStart,
                round,
                t0,
            ));
            runnable.push(*job);
        }

        // 3. Execution through the inner worker pool. Outcomes come back
        //    sorted by client id regardless of scheduling.
        let mut outcomes = if runnable.is_empty() {
            Vec::new()
        } else {
            self.inner.run_batch(clients, global, &runnable)
        };

        // 4a. Training-phase transitions (id order, at each client's
        //     virtual finish time t_fin = t0 + duration).
        let mut reporting: Vec<(f64, usize)> = Vec::new(); // (t_report, index into outcomes)
        let mut t_end = t0;
        for (idx, (out, job)) in outcomes.iter_mut().zip(&runnable).enumerate() {
            let id = out.client_id;
            let t_fin = t0 + out.result.duration_s;
            if out.result.escalated_jobs > 0 {
                must(plane.apply(
                    id,
                    ClientEvent::Escalate,
                    EventCause::GuardianEscalation,
                    round,
                    t_fin,
                ));
            }
            if out.result.quarantined > 0 {
                must(plane.apply(
                    id,
                    ClientEvent::Quarantine,
                    EventCause::ObservationQuarantine,
                    round,
                    t_fin,
                ));
            }
            if departing[id] {
                // Mid-round churn: the client trained, but nobody is left
                // to deliver (or receive credit for) the update.
                out.dropped = true;
                must(plane.apply(
                    id,
                    ClientEvent::Drop,
                    EventCause::ChurnDeparture,
                    round,
                    t_fin,
                ));
            } else if out.dropped {
                let cause = if job.dropped {
                    EventCause::ServerDropout
                } else {
                    EventCause::FaultDropout
                };
                must(plane.apply(id, ClientEvent::Drop, cause, round, t_fin));
            } else if !out.result.deadline_met {
                must(plane.apply(
                    id,
                    ClientEvent::Drop,
                    EventCause::DeadlineMiss,
                    round,
                    t_fin,
                ));
            } else {
                must(plane.apply(
                    id,
                    ClientEvent::Finish,
                    EventCause::TrainingComplete,
                    round,
                    t_fin,
                ));
                let t_report = t_fin + self.waited_s(&retry, round, id, out.upload_attempts);
                reporting.push((t_report, idx));
            }
            t_end = t_end.max(t_fin);
        }

        // 4b. Delivery (virtual arrival order: t_report, then id). The
        //     round closes the moment the aggregation policy's close
        //     target is met; aggregatable updates arriving after that are
        //     late — dropped with cause `round_closed`.
        reporting.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then_with(|| outcomes[a.1].client_id.cmp(&outcomes[b.1].client_id))
        });
        let close_target = if self.cohort > 0 {
            Some(self.policy.close_target(self.cohort))
        } else {
            None
        };
        let mut accepted = 0usize;
        let mut closed_at: Option<f64> = None;
        for (t_report, idx) in reporting {
            let out = &mut outcomes[idx];
            let id = out.client_id;
            if out.upload_failed {
                must(plane.apply(
                    id,
                    ClientEvent::Drop,
                    EventCause::UploadFailure,
                    round,
                    t_report,
                ));
            } else if closed_at.is_some() {
                out.late = true;
                must(plane.apply(
                    id,
                    ClientEvent::Drop,
                    EventCause::RoundClosed,
                    round,
                    t_report,
                ));
            } else {
                let cause = if out.upload_attempts > 1 {
                    EventCause::UploadRecovered
                } else {
                    EventCause::UploadDelivered
                };
                must(plane.apply(id, ClientEvent::Accept, cause, round, t_report));
                accepted += 1;
                if close_target.is_some_and(|target| accepted >= target) {
                    closed_at = Some(t_report);
                }
            }
            t_end = t_end.max(t_report);
        }

        // 5. Close the round and reset (id order, at the close time).
        let t_close = closed_at.unwrap_or(t_end);
        let quorum = self.policy.quorum(self.cohort);
        // "Early" means the close actually cut something off: work with a
        // later virtual time was still outstanding when the target was
        // met. A close that lands on the round's final event is just the
        // barrier behavior with bookkeeping.
        let closed_early = closed_at.is_some_and(|t| t < t_end);
        plane.close_round(round, t_close, accepted, quorum, closed_early);
        for (id, &leaving) in departing.iter().enumerate() {
            match plane.state(id) {
                ClientState::Dropped if leaving => {
                    must(plane.apply(
                        id,
                        ClientEvent::Depart,
                        EventCause::ChurnDeparture,
                        round,
                        t_end,
                    ));
                }
                ClientState::Aggregated | ClientState::Dropped => {
                    must(plane.apply(id, ClientEvent::Reset, EventCause::RoundReset, round, t_end));
                }
                ClientState::Idle | ClientState::Departed => {}
                other => panic!("client {id} still `{other}` at round close"),
            }
        }
        self.now_s = t_end;

        // Merge synthetic (absent) outcomes back in and restore id order.
        outcomes.extend(synthetic);
        outcomes.sort_by_key(|o| o.client_id);
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_wire_the_inner_engine() {
        let engine = EventDrivenEngine::new(4)
            .with_faults(FaultPlan::new(3).with_dropout(0.2))
            .with_retry(RetryPolicy::recovery())
            .with_close_policy(AggregationPolicy::recovery(), 4)
            .with_journal_capacity(128);
        assert_eq!(engine.workers(), 4);
        assert_eq!(engine.label(), "event-driven(4 workers)");
        assert_eq!(engine.plane().lock().unwrap().journal().capacity(), 128);
    }

    #[test]
    fn waited_reconstruction_matches_the_retry_loop() {
        let engine = EventDrivenEngine::sequential().with_retry(RetryPolicy::recovery());
        let retry = RetryPolicy::recovery();
        let seed = upload_backoff_seed(3, 7);
        // attempts = 3 means backoffs before retries 1 and 2 were waited.
        let expect = retry.backoff_s(1, seed) + retry.backoff_s(2, seed);
        assert!((engine.waited_s(&retry, 3, 7, 3) - expect).abs() < 1e-12);
        assert_eq!(engine.waited_s(&retry, 3, 7, 1), 0.0);
    }
}
