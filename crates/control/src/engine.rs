//! [`EventDrivenEngine`]: the event-driven implementation of `bofl_fl`'s
//! [`RoundEngine`] seam.
//!
//! The barrier engines (`SequentialEngine`, `FleetEngine`) treat a round
//! as a join: every selected client runs to completion, then the server
//! aggregates whatever survived. This engine replays the same round as a
//! *timeline of events* against a [`ControlPlane`]:
//!
//! 1. **Churn sweep** — before selection takes effect, clients scheduled
//!    to rejoin the fleet this round `Join`, and departing clients that
//!    were not selected `Depart` immediately.
//! 2. **Admission** — each selected client transitions
//!    `Idle → Selected → Training`. A client that is absent (churned
//!    away) cannot be admitted: the engine refuses the `Select` and
//!    synthesizes a dropped, zero-energy outcome instead.
//! 3. **Execution** — runnable jobs go through an inner [`FleetEngine`]
//!    worker pool (same fault injection, same retry arithmetic, same
//!    per-`(client, round)` seeds).
//! 4. **The wire** — each finished update becomes an
//!    [`Envelope`] sent at `t_send = round_start + duration +
//!    Σ retry backoffs` and handed to the engine's pluggable
//!    [`Transport`] (default [`VirtualTransport`]: arrival = send, the
//!    pre-transport behavior). A [`crate::chaos::ChaosTransport`] can
//!    drop, delay, duplicate, reorder, or partition the messages.
//! 5. **The timeline** — deliveries, client-side upload failures, and
//!    (when a [`LivenessPolicy`] is armed) suspect/expire deadlines merge
//!    into one virtual timeline, sorted by `(time, kind, client, copy)`.
//!    The first acceptances to satisfy the close target close the round;
//!    anything aggregatable arriving after that is `late`. Silent clients
//!    are suspected, then expired; an update arriving in between heals
//!    them. When liveness concludes the close target is unreachable (all
//!    outstanding reports lost or expired), the round *degrades*: it
//!    closes immediately on whatever was accepted instead of waiting, and
//!    the next round's close target widens to the full admitted cohort
//!    (over-selection escalation), so no surviving update is cut off
//!    while the fleet recovers.
//! 6. **Reset** — at the round's close every settled client returns to
//!    `Idle` (or `Departed`, if it churned away mid-round); clients the
//!    wire never resolved are settled first (`transport_loss` /
//!    `liveness_expired`).
//!
//! Because virtual arrival times are derived from simulated durations,
//! seeded backoffs and seeded chaos draws — never from the wall clock —
//! the journal this produces is byte-identical at any worker count and
//! any transport lane count.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use bofl_fl::client::FlClient;
use bofl_fl::engine::{ClientJob, ClientOutcome, RoundEngine};
use bofl_fl::network::RetryPolicy;
use bofl_fl::server::AggregationPolicy;
use bofl_fleet::compress::{CompressedUpdate, Compressor};
use bofl_fleet::engine::upload_backoff_seed;
use bofl_fleet::fault::{stream_seed, ChurnStatus, FaultPlan};
use bofl_fleet::shard::ShardPlan;
use bofl_fleet::FleetEngine;

use crate::chaos::{ChaosPlan, ChaosTransport};
use crate::journal::EventCause;
use crate::liveness::LivenessPolicy;
use crate::plane::ControlPlane;
use crate::state::{ClientEvent, ClientState, TransitionError};
use crate::transport::{Envelope, Transport, VirtualTransport};

/// Salt for the per-`(round, client)` compression streams — the same
/// stream family `bofl_fleet::scale` uses, so an engine and a scale
/// simulation given the same seed quantize identically.
const COMPRESS_SALT: u64 = 0xC0_4B_1E_55_ED_B1_75;

/// A shared, lockable handle onto an engine's [`ControlPlane`]. The
/// federation owns the boxed engine, so callers that want to read the
/// journal after a run keep one of these.
pub type PlaneHandle = Arc<Mutex<ControlPlane>>;

/// An event-driven round engine: a [`FleetEngine`] worker pool for
/// execution, a pluggable [`Transport`] for delivery, a [`ControlPlane`]
/// for lifecycle bookkeeping, and quorum-based round closes instead of a
/// barrier join.
#[derive(Debug, Clone)]
pub struct EventDrivenEngine {
    inner: FleetEngine,
    /// Nominal cohort size for the close target; `0` disables early
    /// closes entirely (the engine then behaves as a journalling barrier).
    cohort: usize,
    policy: AggregationPolicy,
    plane: PlaneHandle,
    transport: Box<dyn Transport>,
    liveness: LivenessPolicy,
    /// Over-selection escalation armed by a degraded close: the next
    /// round's close target widens to the full admitted cohort.
    escalated: bool,
    /// Hierarchical aggregation accounting: the runnable cohort (id
    /// order) is partitioned into contiguous shards, each with a local
    /// quorum of `ceil(members × shard_quorum_fraction)`.
    shard_plan: Option<ShardPlan>,
    shard_quorum_fraction: f64,
    /// Uplink encoder: updates are compressed (and decoded back, so the
    /// server aggregates exactly the lossy bytes) at send time.
    compressor: Option<Box<dyn Compressor>>,
    compress_seed: u64,
    /// Per-client error-feedback residuals carried across rounds.
    residuals: HashMap<usize, Vec<f64>>,
    /// Virtual clock: simulated seconds since the run began. Advances to
    /// each round's close time.
    now_s: f64,
    label: String,
}

impl EventDrivenEngine {
    /// An event-driven engine executing on `workers` OS threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        EventDrivenEngine {
            inner: FleetEngine::new(workers),
            cohort: 0,
            policy: AggregationPolicy::none(),
            plane: Arc::new(Mutex::new(ControlPlane::new(0))),
            transport: Box::new(VirtualTransport),
            liveness: LivenessPolicy::none(),
            escalated: false,
            shard_plan: None,
            shard_quorum_fraction: 0.5,
            compressor: None,
            compress_seed: 0,
            residuals: HashMap::new(),
            now_s: 0.0,
            label: format!("event-driven({workers} workers)"),
        }
    }

    /// The single-threaded variant (reference for determinism checks).
    pub fn sequential() -> Self {
        let mut engine = EventDrivenEngine::new(1);
        engine.label = "event-driven(sequential)".to_string();
        engine
    }

    /// Attaches a fault-injection plan (including churn, which only this
    /// engine acts on — barrier engines ignore churn draws).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.inner = self.inner.with_faults(faults);
        self
    }

    /// Attaches an upload retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.inner = self.inner.with_retry(retry);
        self
    }

    /// Enables quorum-based round closes: once
    /// [`AggregationPolicy::close_target`] updates for a nominal cohort of
    /// `clients_per_round` have been accepted, the round closes and any
    /// update still in flight lands late. Pass the same policy and cohort
    /// the federation was configured with.
    #[must_use]
    pub fn with_close_policy(
        mut self,
        policy: AggregationPolicy,
        clients_per_round: usize,
    ) -> Self {
        self.policy = policy;
        self.cohort = clients_per_round;
        self
    }

    /// Replaces the delivery transport (default [`VirtualTransport`]).
    #[must_use]
    pub fn with_transport(self, transport: impl Transport + 'static) -> Self {
        self.with_boxed_transport(Box::new(transport))
    }

    /// [`EventDrivenEngine::with_transport`] for an already-boxed carrier.
    #[must_use]
    pub fn with_boxed_transport(mut self, transport: Box<dyn Transport>) -> Self {
        self.transport = transport;
        self
    }

    /// Wraps the current transport in a [`ChaosTransport`] injecting the
    /// given plan.
    #[must_use]
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        let inner = std::mem::replace(&mut self.transport, Box::new(VirtualTransport));
        self.transport = Box::new(ChaosTransport::new(inner, plan));
        self
    }

    /// Arms server-side liveness tracking (default
    /// [`LivenessPolicy::none`]). Required for degraded closes and
    /// over-selection escalation.
    #[must_use]
    pub fn with_liveness(mut self, liveness: LivenessPolicy) -> Self {
        self.liveness = liveness;
        self
    }

    /// Arms hierarchical shard accounting: each round's runnable cohort
    /// is partitioned by `plan` into contiguous id-ordered shards, each
    /// closing against a local quorum of
    /// `ceil(members × quorum_fraction)`. A shard that falls short is a
    /// *shortfall*: the round close records it, and every member of the
    /// starved shard resets with
    /// [`EventCause::ShardQuorumShortfall`] instead of `RoundReset`.
    /// Accounting only — no accepted update is ever discarded.
    ///
    /// # Panics
    ///
    /// Panics if `quorum_fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn with_shard_plan(mut self, plan: ShardPlan, quorum_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&quorum_fraction),
            "shard quorum fraction must be in [0, 1]"
        );
        self.shard_plan = Some(plan);
        self.shard_quorum_fraction = quorum_fraction;
        self
    }

    /// Arms an uplink compressor: every finished update is encoded at
    /// send time with a per-`(round, client)` stream seed derived from
    /// `seed`, decoded back in place (so aggregation sees exactly the
    /// lossy bytes the wire carried), and its compressed/raw byte counts
    /// flow into the round's [`crate::transport::WireStats`]. Error
    /// feedback is always on: a per-client residual carries what each
    /// encoding could not express into the next round.
    #[must_use]
    pub fn with_compressor(self, compressor: impl Compressor + 'static, seed: u64) -> Self {
        self.with_boxed_compressor(Box::new(compressor), seed)
    }

    /// [`EventDrivenEngine::with_compressor`] for an already-boxed
    /// encoder.
    #[must_use]
    pub fn with_boxed_compressor(mut self, compressor: Box<dyn Compressor>, seed: u64) -> Self {
        self.compressor = Some(compressor);
        self.compress_seed = seed;
        self
    }

    /// Bounds the event journal ring (default
    /// [`crate::journal::DEFAULT_JOURNAL_CAPACITY`]).
    #[must_use]
    pub fn with_journal_capacity(mut self, capacity: usize) -> Self {
        self.plane = Arc::new(Mutex::new(ControlPlane::with_journal_capacity(0, capacity)));
        self
    }

    /// Arm the crash-safety write-ahead log: every journalled transition
    /// and round close is fsync'd to `wal` before the engine proceeds.
    /// Apply this *after* [`EventDrivenEngine::with_journal_capacity`],
    /// which replaces the plane.
    #[must_use]
    pub fn with_wal(self, wal: Arc<Mutex<crate::wal::JournalWal>>) -> Self {
        self.plane
            .lock()
            .expect("control plane poisoned")
            .attach_wal(wal);
        self
    }

    /// Adopt a plane reconstructed by `ControlPlane::resume` and restart
    /// the virtual clock at `now_s` (the resume report's commit-point
    /// clock). The resumed run continues from the round after the last
    /// committed close.
    #[must_use]
    pub fn with_resumed(mut self, plane: ControlPlane, now_s: f64) -> Self {
        self.plane = Arc::new(Mutex::new(plane));
        self.now_s = now_s;
        self
    }

    /// A handle onto the control plane, for reading the journal and round
    /// closes after the federation has taken ownership of the engine.
    pub fn plane(&self) -> PlaneHandle {
        Arc::clone(&self.plane)
    }

    /// Worker threads in the inner pool.
    pub fn workers(&self) -> usize {
        self.inner.workers()
    }

    /// The delivery transport's label.
    pub fn transport_label(&self) -> &str {
        self.transport.label()
    }

    fn faults(&self) -> &FaultPlan {
        self.inner.faults()
    }

    /// Total retry backoff a finished client waited before its final
    /// upload attempt — pure in `(round, client, attempts)`, mirroring
    /// the arithmetic inside [`FleetEngine`]'s retry loop.
    fn waited_s(&self, retry: &RetryPolicy, round: usize, client_id: usize, attempts: u32) -> f64 {
        if attempts <= 1 {
            return 0.0;
        }
        let seed = upload_backoff_seed(round, client_id);
        (1..attempts).map(|a| retry.backoff_s(a, seed)).sum()
    }
}

/// Transitions the engine emits are derived from its own bookkeeping, so
/// a contract violation here is an engine bug, not bad input.
fn must(result: Result<ClientState, TransitionError>) -> ClientState {
    result.unwrap_or_else(|e| panic!("control-plane invariant broken: {e}"))
}

/// A zero-energy outcome for a client that could not participate (absent
/// from the fleet when the server selected it).
fn absent_outcome(job: &ClientJob) -> ClientOutcome {
    ClientOutcome {
        client_id: job.client_id,
        result: bofl_fl::client::ClientRoundResult {
            parameters: Vec::new(),
            samples: 0,
            deadline_met: false,
            energy_j: 0.0,
            duration_s: 0.0,
            last_loss: 0.0,
            phase: None,
            escalated_jobs: 0,
            quarantined: 0,
            suggest_ms: 0.0,
        },
        dropped: true,
        straggler_factor: 1.0,
        upload_failed: false,
        upload_attempts: 1,
        late: false,
    }
}

/// One entry on the round's merged virtual timeline.
enum WireItem {
    /// The client's final upload attempt failed on its side.
    Failure { idx: usize },
    /// A (possibly duplicate) copy of an update reached the server.
    Deliver { idx: usize },
    /// The server's liveness tracker starts doubting the client.
    Suspect { id: usize },
    /// The server's liveness tracker gives the client up.
    Expire { id: usize },
}

impl RoundEngine for EventDrivenEngine {
    fn label(&self) -> &str {
        &self.label
    }

    fn run_batch(
        &mut self,
        clients: &mut [FlClient],
        global: &[f64],
        jobs: &[ClientJob],
    ) -> Vec<ClientOutcome> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let round = jobs[0].round;
        let t0 = self.now_s;
        let retry = *self.inner.retry();
        let faults = *self.faults();
        let liveness = self.liveness;
        let live = !liveness.is_none();
        let plane = Arc::clone(&self.plane);
        let mut plane = plane.lock().expect("control plane poisoned");
        plane.ensure_clients(clients.len());

        // 1. Churn sweep (id order, all at round start). Clients due back
        //    rejoin; departing clients that were not selected leave now.
        //    Departing clients that *were* selected stay for one last
        //    round of training — their update is lost mid-flight below.
        let selected: Vec<bool> = {
            let mut s = vec![false; clients.len()];
            for job in jobs {
                s[job.client_id] = true;
            }
            s
        };
        let mut departing = vec![false; clients.len()];
        for id in 0..clients.len() {
            let status = faults.churn_status(round, id);
            if plane.state(id) == ClientState::Departed && status != ChurnStatus::Absent {
                must(plane.apply(id, ClientEvent::Join, EventCause::ChurnArrival, round, t0));
            }
            if status == ChurnStatus::Departing {
                if selected[id] {
                    departing[id] = true;
                } else if plane.state(id) == ClientState::Idle {
                    must(plane.apply(
                        id,
                        ClientEvent::Depart,
                        EventCause::ChurnDeparture,
                        round,
                        t0,
                    ));
                }
            }
        }

        // 2. Admission (id order). Absent clients cannot be selected —
        //    the engine refuses without journalling anything and answers
        //    the server with a synthetic dropped outcome.
        let mut synthetic: Vec<ClientOutcome> = Vec::new();
        let mut runnable: Vec<ClientJob> = Vec::with_capacity(jobs.len());
        for job in jobs {
            if plane.state(job.client_id) == ClientState::Departed {
                synthetic.push(absent_outcome(job));
                continue;
            }
            must(plane.apply(
                job.client_id,
                ClientEvent::Select,
                EventCause::Selection,
                round,
                t0,
            ));
            must(plane.apply(
                job.client_id,
                ClientEvent::Start,
                EventCause::RoundStart,
                round,
                t0,
            ));
            runnable.push(*job);
        }

        // 3. Execution through the inner worker pool. Outcomes come back
        //    sorted by client id regardless of scheduling.
        let mut outcomes = if runnable.is_empty() {
            Vec::new()
        } else {
            self.inner.run_batch(clients, global, &runnable)
        };

        // 4a. Training-phase transitions (id order, at each client's
        //     virtual finish time t_fin = t0 + duration).
        let mut reporting: Vec<(f64, usize, f64)> = Vec::new(); // (t_report, idx, deadline_s)
        let mut t_end = t0;
        for (idx, (out, job)) in outcomes.iter_mut().zip(&runnable).enumerate() {
            let id = out.client_id;
            let t_fin = t0 + out.result.duration_s;
            if out.result.escalated_jobs > 0 {
                must(plane.apply(
                    id,
                    ClientEvent::Escalate,
                    EventCause::GuardianEscalation,
                    round,
                    t_fin,
                ));
            }
            if out.result.quarantined > 0 {
                must(plane.apply(
                    id,
                    ClientEvent::Quarantine,
                    EventCause::ObservationQuarantine,
                    round,
                    t_fin,
                ));
            }
            if departing[id] {
                // Mid-round churn: the client trained, but nobody is left
                // to deliver (or receive credit for) the update.
                out.dropped = true;
                must(plane.apply(
                    id,
                    ClientEvent::Drop,
                    EventCause::ChurnDeparture,
                    round,
                    t_fin,
                ));
            } else if out.dropped {
                let cause = if job.dropped {
                    EventCause::ServerDropout
                } else {
                    EventCause::FaultDropout
                };
                must(plane.apply(id, ClientEvent::Drop, cause, round, t_fin));
            } else if !out.result.deadline_met {
                must(plane.apply(
                    id,
                    ClientEvent::Drop,
                    EventCause::DeadlineMiss,
                    round,
                    t_fin,
                ));
            } else {
                must(plane.apply(
                    id,
                    ClientEvent::Finish,
                    EventCause::TrainingComplete,
                    round,
                    t_fin,
                ));
                let t_report = t_fin + self.waited_s(&retry, round, id, out.upload_attempts);
                reporting.push((t_report, idx, job.deadline.limit_s()));
            }
            t_end = t_end.max(t_fin);
        }

        // 4b'. The uplink encoder. Every finisher compresses its update
        //      at send time (id order — reporting is built in id order),
        //      then decodes it back in place so aggregation sees exactly
        //      the lossy bytes the wire carried. Error-feedback residuals
        //      persist per client across rounds.
        let mut bytes_of: Vec<(u64, u64)> = Vec::new();
        if let Some(compressor) = &self.compressor {
            bytes_of.resize(clients.len(), (0, 0));
            let mut buf = CompressedUpdate::new();
            let mut decoded: Vec<f64> = Vec::new();
            for &(_, idx, _) in &reporting {
                let id = outcomes[idx].client_id;
                let seed = stream_seed(self.compress_seed, round, id, COMPRESS_SALT);
                let residual = self.residuals.entry(id).or_default();
                compressor.compress(
                    &outcomes[idx].result.parameters,
                    seed,
                    Some(residual),
                    &mut buf,
                );
                bytes_of[id] = (buf.wire_bytes(), buf.raw_bytes());
                buf.decode_into(&mut decoded);
                outcomes[idx].result.parameters.clone_from(&decoded);
            }
        }

        // 4b. The wire. Successful finishers hand their update to the
        //     transport; client-side upload failures never reach it. A
        //     sender with no surviving copy lost its update on the wire.
        let mut idx_of: Vec<Option<usize>> = vec![None; clients.len()];
        let mut envelopes: Vec<Envelope> = Vec::new();
        let mut failures: Vec<(f64, usize)> = Vec::new();
        let mut sent = vec![false; clients.len()];
        for &(t_report, idx, _) in &reporting {
            let id = outcomes[idx].client_id;
            idx_of[id] = Some(idx);
            if outcomes[idx].upload_failed {
                failures.push((t_report, idx));
            } else {
                sent[id] = true;
                envelopes.push(Envelope {
                    round,
                    client_id: id,
                    t_send_s: t_report,
                });
            }
        }
        let mut carried = self.transport.carry(round, t0, &envelopes);
        // Byte accounting: only envelopes actually handed to the
        // transport spent uplink bytes (client-side failures never sent).
        if !bytes_of.is_empty() {
            for e in &envelopes {
                let (wire, raw) = bytes_of[e.client_id];
                carried.stats.bytes_on_wire += wire;
                carried.stats.bytes_raw += raw;
            }
        }
        let mut arrived = vec![false; clients.len()];
        for d in &carried.deliveries {
            arrived[d.client_id] = true;
        }
        for id in 0..clients.len() {
            if sent[id] && !arrived[id] {
                let idx = idx_of[id].expect("sender has an outcome");
                outcomes[idx].upload_failed = true;
            }
        }

        // 4c. One merged timeline: deliveries and failures (kind 0), then
        //     suspects (kind 1), then expiries (kind 2); ties broken by
        //     client id, then copy. With the identity transport and no
        //     liveness this is exactly the old `(t_report, client)` order.
        let mut pending = vec![0usize; clients.len()];
        let mut timeline: Vec<(f64, u8, usize, u32, WireItem)> = Vec::new();
        for &(t, idx) in &failures {
            timeline.push((t, 0, outcomes[idx].client_id, 0, WireItem::Failure { idx }));
        }
        for d in &carried.deliveries {
            let idx = idx_of[d.client_id].expect("transport must not invent clients");
            pending[d.client_id] += 1;
            timeline.push((
                d.t_arrive_s,
                0,
                d.client_id,
                d.copy,
                WireItem::Deliver { idx },
            ));
        }
        if live {
            for &(_, idx, deadline_s) in &reporting {
                let id = outcomes[idx].client_id;
                timeline.push((
                    t0 + liveness.suspect_deadline_s(deadline_s, round, id),
                    1,
                    id,
                    0,
                    WireItem::Suspect { id },
                ));
                timeline.push((
                    t0 + liveness.expire_deadline_s(deadline_s, round, id),
                    2,
                    id,
                    0,
                    WireItem::Expire { id },
                ));
            }
        }
        timeline.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then_with(|| a.1.cmp(&b.1))
                .then_with(|| a.2.cmp(&b.2))
                .then_with(|| a.3.cmp(&b.3))
        });

        // 4d. Play the timeline. The round closes the moment the close
        //     target is met — or, degraded, the moment liveness concludes
        //     the target is unreachable.
        // Degradation is always judged against the *base* close target;
        // escalation only widens how long the round keeps waiting.
        let base_target = (self.cohort > 0).then(|| self.policy.close_target(self.cohort));
        let close_target = base_target.map(|base| {
            if self.escalated && live {
                // Over-selection escalation after a degraded round: widen
                // the target to the full admitted cohort so no surviving
                // update is cut off while the fleet recovers.
                base.max(runnable.len())
            } else {
                base
            }
        });
        let mut accepted = 0usize;
        let mut closed_at: Option<f64> = None;
        let mut degraded = false;
        for (t, _kind, _client, _copy, item) in timeline {
            match item {
                WireItem::Failure { idx } => {
                    let id = outcomes[idx].client_id;
                    must(plane.apply(id, ClientEvent::Drop, EventCause::UploadFailure, round, t));
                    t_end = t_end.max(t);
                }
                WireItem::Deliver { idx } => {
                    let id = outcomes[idx].client_id;
                    pending[id] -= 1;
                    match plane.state(id) {
                        ClientState::Reporting | ClientState::Suspected => {
                            if closed_at.is_some() {
                                outcomes[idx].late = true;
                                must(plane.apply(
                                    id,
                                    ClientEvent::Drop,
                                    EventCause::RoundClosed,
                                    round,
                                    t,
                                ));
                            } else {
                                if plane.state(id) == ClientState::Suspected {
                                    must(plane.apply(
                                        id,
                                        ClientEvent::Heal,
                                        EventCause::LivenessHeal,
                                        round,
                                        t,
                                    ));
                                }
                                let cause = if outcomes[idx].upload_attempts > 1 {
                                    EventCause::UploadRecovered
                                } else {
                                    EventCause::UploadDelivered
                                };
                                must(plane.apply(id, ClientEvent::Accept, cause, round, t));
                                accepted += 1;
                                if close_target.is_some_and(|target| accepted >= target) {
                                    closed_at = Some(t);
                                }
                            }
                            t_end = t_end.max(t);
                        }
                        // Ghost arrival: a duplicate copy, or a packet for
                        // an already-settled client. The state machine has
                        // no legal edge here, so the wire noise is ignored.
                        _ => {}
                    }
                }
                WireItem::Suspect { id } => {
                    if closed_at.is_none() && plane.state(id) == ClientState::Reporting {
                        must(plane.apply(
                            id,
                            ClientEvent::Suspect,
                            EventCause::LivenessSuspect,
                            round,
                            t,
                        ));
                        t_end = t_end.max(t);
                    }
                }
                WireItem::Expire { id } => {
                    if closed_at.is_none() && plane.state(id) == ClientState::Suspected {
                        must(plane.apply(
                            id,
                            ClientEvent::Drop,
                            EventCause::LivenessExpired,
                            round,
                            t,
                        ));
                        if let Some(idx) = idx_of[id] {
                            outcomes[idx].upload_failed = true;
                        }
                        t_end = t_end.max(t);
                    }
                }
            }
            // Degraded close: enough of the cohort is settled that the
            // close target can no longer be reached — close on what we
            // have instead of waiting for reports that cannot come.
            if live && closed_at.is_none() {
                if let Some(target) = close_target {
                    let unreachable = accepted < target
                        && pending.iter().enumerate().all(|(id, &n)| {
                            n == 0
                                || !matches!(
                                    plane.state(id),
                                    ClientState::Reporting | ClientState::Suspected
                                )
                        });
                    if unreachable {
                        closed_at = Some(t);
                        degraded = accepted < base_target.unwrap_or(0);
                    }
                }
            }
        }
        // An admitted cohort that never reached its base target still
        // counts as degraded — even if no single event tripped the
        // unreachability check (e.g. nothing was ever sent).
        if live && closed_at.is_none() {
            if let Some(base) = base_target {
                if accepted < base {
                    degraded = true;
                }
            }
        }

        // 5. Close the round and reset (id order, at the close time).
        //    Clients the wire never resolved are settled first: lost
        //    updates (still `Reporting`) and suspects cut off by the
        //    close (still `Suspected`).
        let t_close = closed_at.unwrap_or(t_end);
        let quorum = self.policy.quorum(self.cohort);
        // "Early" means the close actually cut something off: work with a
        // later virtual time was still outstanding when the target was
        // met. A close that lands on the round's final event is just the
        // barrier behavior with bookkeeping.
        let closed_early = closed_at.is_some_and(|t| t < t_end);
        for (id, idx) in idx_of.iter().enumerate() {
            let cause = match plane.state(id) {
                ClientState::Reporting => EventCause::TransportLoss,
                ClientState::Suspected => EventCause::LivenessExpired,
                _ => continue,
            };
            must(plane.apply(id, ClientEvent::Drop, cause, round, t_close));
            if let Some(idx) = idx {
                outcomes[*idx].upload_failed = true;
            }
        }
        // Per-shard quorum accounting (states still reflect the close —
        // the reset loop below has not run). Shard membership is the
        // runnable cohort in id order, partitioned contiguously by the
        // plan, exactly as the sharded aggregator folds it.
        let mut starved = vec![false; clients.len()];
        let (shards, shard_shortfalls) = match self.shard_plan {
            Some(plan) if !runnable.is_empty() => {
                let count = plan.shard_count(runnable.len());
                let mut shortfalls = 0usize;
                for range in plan.ranges(runnable.len()) {
                    let members = &runnable[range];
                    let accepted_here = members
                        .iter()
                        .filter(|j| plane.state(j.client_id) == ClientState::Aggregated)
                        .count();
                    let local_quorum =
                        (members.len() as f64 * self.shard_quorum_fraction).ceil() as usize;
                    if accepted_here < local_quorum {
                        shortfalls += 1;
                        for j in members {
                            starved[j.client_id] = true;
                        }
                    }
                }
                (count, shortfalls)
            }
            _ => (0, 0),
        };
        for (id, &leaving) in departing.iter().enumerate() {
            match plane.state(id) {
                ClientState::Dropped if leaving => {
                    must(plane.apply(
                        id,
                        ClientEvent::Depart,
                        EventCause::ChurnDeparture,
                        round,
                        t_end,
                    ));
                }
                ClientState::Aggregated | ClientState::Dropped => {
                    // A member of a starved shard carries the shard's
                    // distress signal on its reset edge — same transition,
                    // different cause, so replay is untouched.
                    let cause = if starved[id] {
                        EventCause::ShardQuorumShortfall
                    } else {
                        EventCause::RoundReset
                    };
                    must(plane.apply(id, ClientEvent::Reset, cause, round, t_end));
                }
                ClientState::Idle | ClientState::Departed => {}
                other => panic!("client {id} still `{other}` at round close"),
            }
        }
        // The Close record lands *after* the resets: with a WAL attached
        // it is the round's commit marker, so resume never sees a round
        // whose resets are missing. (The in-memory EventJournal is
        // untouched by this ordering — closes are not journal entries.)
        plane.close_round(
            round,
            t_close,
            accepted,
            quorum,
            closed_early,
            degraded,
            shards,
            shard_shortfalls,
        );
        plane.record_wire(round, carried.stats);
        if live {
            self.escalated = degraded;
        }
        self.now_s = t_end;

        // Merge synthetic (absent) outcomes back in and restore id order.
        outcomes.extend(synthetic);
        outcomes.sort_by_key(|o| o.client_id);
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LoopbackTransport;

    #[test]
    fn builders_wire_the_inner_engine() {
        let engine = EventDrivenEngine::new(4)
            .with_faults(FaultPlan::new(3).with_dropout(0.2))
            .with_retry(RetryPolicy::recovery())
            .with_close_policy(AggregationPolicy::recovery(), 4)
            .with_journal_capacity(128);
        assert_eq!(engine.workers(), 4);
        assert_eq!(engine.label(), "event-driven(4 workers)");
        assert_eq!(engine.transport_label(), "virtual");
        assert_eq!(engine.plane().lock().unwrap().journal().capacity(), 128);
    }

    #[test]
    fn transport_builders_stack() {
        let engine = EventDrivenEngine::sequential()
            .with_transport(LoopbackTransport::new(2))
            .with_chaos(ChaosPlan::new(1).with_drops(0.5))
            .with_liveness(LivenessPolicy::recovery(1));
        assert_eq!(engine.transport_label(), "chaos(loopback(2 lanes))");
        // Cloning an engine clones its boxed transport.
        assert_eq!(engine.clone().transport_label(), engine.transport_label());
    }

    #[test]
    fn waited_reconstruction_matches_the_retry_loop() {
        let engine = EventDrivenEngine::sequential().with_retry(RetryPolicy::recovery());
        let retry = RetryPolicy::recovery();
        let seed = upload_backoff_seed(3, 7);
        // attempts = 3 means backoffs before retries 1 and 2 were waited.
        let expect = retry.backoff_s(1, seed) + retry.backoff_s(2, seed);
        assert!((engine.waited_s(&retry, 3, 7, 3) - expect).abs() < 1e-12);
        assert_eq!(engine.waited_s(&retry, 3, 7, 1), 0.0);
    }
}
