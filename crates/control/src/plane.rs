//! The control plane: the fleet's state vector plus its event journal.
//!
//! [`ControlPlane`] is deliberately dumb — it owns *no* policy. It knows
//! the current [`ClientState`] of every client, refuses transitions
//! outside the contract with a typed [`TransitionError`], and journals
//! every transition it does apply. All decisions about *which* events to
//! emit (quorum closes, churn, retries) live in the engine; all rules
//! about which transitions are legal live in [`ClientState::next`].

use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::journal::{EventCause, EventEntry, EventJournal, RoundClose, DEFAULT_JOURNAL_CAPACITY};
use crate::state::{ClientEvent, ClientState, TransitionError};
use crate::transport::WireStats;
use crate::wal::{JournalWal, WalError, WalRecord};

/// Tracks every client's lifecycle state and journals transitions.
///
/// With a WAL attached ([`ControlPlane::attach_wal`]) every journalled
/// transition and round close is also appended — fsync'd — to an on-disk
/// write-ahead log, and [`ControlPlane::resume`] can rebuild the plane
/// from that log after a coordinator crash. Wire statistics are *not*
/// persisted: they are derived observability, reproduced by re-running.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    states: Vec<ClientState>,
    journal: EventJournal,
    closes: Vec<RoundClose>,
    wire: Vec<(u32, WireStats)>,
    wal: Option<Arc<Mutex<JournalWal>>>,
}

impl ControlPlane {
    /// A plane over `clients` clients, all starting [`ClientState::Idle`],
    /// with the default journal capacity.
    pub fn new(clients: usize) -> Self {
        ControlPlane {
            states: vec![ClientState::Idle; clients],
            journal: EventJournal::default(),
            closes: Vec::new(),
            wire: Vec::new(),
            wal: None,
        }
    }

    /// Same, with an explicit journal ring capacity.
    pub fn with_journal_capacity(clients: usize, capacity: usize) -> Self {
        ControlPlane {
            states: vec![ClientState::Idle; clients],
            journal: EventJournal::with_capacity(capacity),
            closes: Vec::new(),
            wire: Vec::new(),
            wal: None,
        }
    }

    /// Arm the write-ahead log: from now on every journalled transition
    /// and round close is appended (and fsync'd) to `wal` before the
    /// call that produced it returns.
    pub fn attach_wal(&mut self, wal: Arc<Mutex<JournalWal>>) {
        self.wal = Some(wal);
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<&Arc<Mutex<JournalWal>>> {
        self.wal.as_ref()
    }

    /// Grow the tracked fleet to at least `clients` entries (new clients
    /// start Idle). Shrinking is never done — ids are stable.
    pub fn ensure_clients(&mut self, clients: usize) {
        if self.states.len() < clients {
            self.states.resize(clients, ClientState::Idle);
        }
    }

    /// Number of clients tracked.
    pub fn num_clients(&self) -> usize {
        self.states.len()
    }

    /// Current state of one client.
    ///
    /// # Panics
    /// If `client` is out of range.
    pub fn state(&self, client: usize) -> ClientState {
        self.states[client]
    }

    /// The full state vector, indexed by client id.
    pub fn states(&self) -> &[ClientState] {
        &self.states
    }

    /// The event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// Every round close recorded so far, in round order.
    pub fn closes(&self) -> &[RoundClose] {
        &self.closes
    }

    /// Apply `event` to `client`, journalling the transition on success.
    /// An illegal `(state, event)` pair leaves both the state vector and
    /// the journal untouched and returns the typed error.
    pub fn apply(
        &mut self,
        client: usize,
        event: ClientEvent,
        cause: EventCause,
        round: usize,
        t_s: f64,
    ) -> Result<ClientState, TransitionError> {
        let from = self.states[client];
        let to = from.next(event).ok_or(TransitionError {
            client,
            from,
            event,
        })?;
        self.states[client] = to;
        let seq = self
            .journal
            .append(round as u32, client as u32, from, to, cause, t_s);
        if let Some(wal) = &self.wal {
            let entry = EventEntry {
                seq,
                round: round as u32,
                client: client as u32,
                from,
                to,
                cause,
                t_s,
            };
            wal.lock()
                .expect("journal WAL poisoned")
                .append_event(&entry)
                .expect("journal WAL append failed — the run is no longer crash-safe");
        }
        Ok(to)
    }

    /// Record how a round ended. `shards` is the number of aggregator
    /// shards the round ran with (0 when no shard plan was armed) and
    /// `shard_shortfalls` counts shards that closed below their local
    /// quorum.
    #[allow(clippy::too_many_arguments)]
    pub fn close_round(
        &mut self,
        round: usize,
        t_s: f64,
        accepted: usize,
        quorum: usize,
        closed_early: bool,
        degraded: bool,
        shards: usize,
        shard_shortfalls: usize,
    ) {
        let close = RoundClose {
            round: round as u32,
            t_s,
            accepted,
            quorum,
            quorum_met: accepted >= quorum,
            closed_early,
            degraded,
            shards,
            shard_shortfalls,
        };
        if let Some(wal) = &self.wal {
            wal.lock()
                .expect("journal WAL poisoned")
                .append_close(&close)
                .expect("journal WAL append failed — the run is no longer crash-safe");
        }
        self.closes.push(close);
    }

    /// Record what the transport did to one round's messages.
    pub fn record_wire(&mut self, round: usize, stats: WireStats) {
        self.wire.push((round as u32, stats));
    }

    /// The transport's wire statistics for `round`, if any were recorded.
    pub fn wire_stats(&self, round: usize) -> Option<WireStats> {
        self.wire
            .iter()
            .find(|(r, _)| *r == round as u32)
            .map(|(_, s)| *s)
    }

    /// Wire statistics accumulated over every recorded round.
    pub fn wire_totals(&self) -> WireStats {
        let mut total = WireStats::default();
        for (_, s) in &self.wire {
            total.merge(s);
        }
        total
    }

    /// Replay a journal slice over a fresh fleet of `clients` Idle
    /// clients and return the reconstructed state vector. Each entry's
    /// `from` must match the reconstructed current state and its
    /// `(from, event)` edge must be legal — the entry's `to` is derived
    /// from the contract, not trusted. Used by tests to prove the
    /// journal alone determines final states.
    pub fn replay<'a>(
        entries: impl IntoIterator<Item = &'a EventEntry>,
        clients: usize,
    ) -> Result<Vec<ClientState>, ReplayError> {
        let mut states = vec![ClientState::Idle; clients];
        for e in entries {
            let id = e.client as usize;
            if id >= clients {
                return Err(ReplayError::UnknownClient {
                    seq: e.seq,
                    client: id,
                });
            }
            let current = states[id];
            if current != e.from {
                return Err(ReplayError::StateMismatch {
                    seq: e.seq,
                    client: id,
                    expected: e.from,
                    actual: current,
                });
            }
            // Recover the event from the edge: the contract is sparse
            // enough that each (from, to) pair maps to one event.
            let event = ClientEvent::ALL
                .into_iter()
                .find(|ev| current.next(*ev) == Some(e.to))
                .ok_or(ReplayError::IllegalEdge {
                    seq: e.seq,
                    client: id,
                    from: e.from,
                    to: e.to,
                })?;
            states[id] = current.next(event).expect("edge just validated");
        }
        Ok(states)
    }

    /// Rebuild a plane from the write-ahead log at `path` after a
    /// coordinator crash, with the default journal capacity. See
    /// [`ControlPlane::resume_with_capacity`].
    ///
    /// # Errors
    ///
    /// See [`ControlPlane::resume_with_capacity`].
    pub fn resume(
        path: &Path,
        clients: usize,
    ) -> Result<(ControlPlane, ResumeReport), ResumeError> {
        ControlPlane::resume_with_capacity(path, clients, DEFAULT_JOURNAL_CAPACITY)
    }

    /// Rebuild a plane from the write-ahead log at `path` after a
    /// coordinator crash.
    ///
    /// Recovery is two truncations deep. [`JournalWal::open`] first cuts
    /// away the torn tail (a record the crash interrupted mid-write).
    /// Then the **last `Close` record is treated as the round commit
    /// marker**: whole event records after it belong to a round that
    /// never finished, so they are discarded and truncated too. The
    /// surviving prefix is replayed — with the same validation as
    /// [`ControlPlane::replay`], plus a strict sequence-number check —
    /// into a fresh plane whose journal, closes, state vector and virtual
    /// clock match the uninterrupted run at that round boundary exactly.
    /// The re-opened (truncated) WAL is attached to the returned plane,
    /// so the resumed run appends its re-executed round in place of the
    /// discarded one.
    ///
    /// # Errors
    ///
    /// - [`ResumeError::Wal`] — the file cannot be read or truncated.
    /// - [`ResumeError::Replay`] — a committed record contradicts the
    ///   transition contract (real corruption, not a torn tail).
    /// - [`ResumeError::SeqGap`] — committed event records are not a
    ///   gapless sequence from 0 (a missing or duplicated append).
    pub fn resume_with_capacity(
        path: &Path,
        clients: usize,
        capacity: usize,
    ) -> Result<(ControlPlane, ResumeReport), ResumeError> {
        let (mut wal, records, torn_bytes) = JournalWal::open(path)?;
        let last_close = records
            .iter()
            .rposition(|(_, r)| matches!(r, WalRecord::Close(_)));
        // Everything after the last Close is an uncommitted in-flight
        // round: discard it so the resumed run re-executes that round.
        let committed = match last_close {
            Some(i) => i + 1,
            None => 0,
        };
        let commit_end = match records.get(committed) {
            Some((offset, _)) => *offset,
            None => wal.len(),
        };
        let in_flight_discarded = records.len() - committed;
        wal.truncate_to(commit_end)?;

        let mut plane = ControlPlane::with_journal_capacity(clients, capacity);
        let mut now_s = 0.0_f64;
        let mut events_replayed = 0usize;
        for (_, record) in &records[..committed] {
            now_s = now_s.max(record.t_s());
            match record {
                WalRecord::Event(e) => {
                    let expected = plane.journal.total_appended();
                    if e.seq != expected {
                        return Err(ResumeError::SeqGap {
                            expected,
                            found: e.seq,
                        });
                    }
                    let id = e.client as usize;
                    // The live run grows the fleet before applying churn
                    // events, so resume mirrors that instead of erroring.
                    plane.ensure_clients(id + 1);
                    let current = plane.states[id];
                    if current != e.from {
                        return Err(ResumeError::Replay(ReplayError::StateMismatch {
                            seq: e.seq,
                            client: id,
                            expected: e.from,
                            actual: current,
                        }));
                    }
                    let legal = ClientEvent::ALL
                        .into_iter()
                        .any(|ev| current.next(ev) == Some(e.to));
                    if !legal {
                        return Err(ResumeError::Replay(ReplayError::IllegalEdge {
                            seq: e.seq,
                            client: id,
                            from: e.from,
                            to: e.to,
                        }));
                    }
                    plane.states[id] = e.to;
                    plane.journal.adopt(*e);
                    events_replayed += 1;
                }
                WalRecord::Close(c) => plane.closes.push(*c),
            }
        }
        let next_round = match plane.closes.last() {
            Some(c) => c.round as usize + 1,
            None => 0,
        };
        plane.attach_wal(Arc::new(Mutex::new(wal)));
        Ok((
            plane,
            ResumeReport {
                next_round,
                now_s,
                events_replayed,
                in_flight_discarded,
                torn_bytes,
            },
        ))
    }
}

/// What [`ControlPlane::resume`] reconstructed and discarded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResumeReport {
    /// The first round the resumed run should execute (last committed
    /// round + 1; `0` if no round ever closed).
    pub next_round: usize,
    /// The virtual clock at the commit point — the resumed engine's
    /// `now_s`.
    pub now_s: f64,
    /// Committed event records replayed into the journal.
    pub events_replayed: usize,
    /// Whole records discarded because their round never closed.
    pub in_flight_discarded: usize,
    /// Torn-tail bytes (a record interrupted mid-write) cut by open.
    pub torn_bytes: u64,
}

/// Why a WAL resume was rejected.
#[derive(Debug)]
pub enum ResumeError {
    /// The log could not be read, decoded, or truncated.
    Wal(WalError),
    /// A committed record contradicts the transition contract.
    Replay(ReplayError),
    /// Committed event records are not a gapless sequence from 0.
    SeqGap {
        /// The sequence number the reconstruction expected next.
        expected: u64,
        /// The sequence number the record carried.
        found: u64,
    },
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Wal(e) => write!(f, "resume: {e}"),
            ResumeError::Replay(e) => write!(f, "resume: {e}"),
            ResumeError::SeqGap { expected, found } => {
                write!(f, "resume: expected event seq {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<WalError> for ResumeError {
    fn from(e: WalError) -> Self {
        ResumeError::Wal(e)
    }
}

impl From<std::io::Error> for ResumeError {
    fn from(e: std::io::Error) -> Self {
        ResumeError::Wal(WalError::Io(e))
    }
}

impl From<ReplayError> for ResumeError {
    fn from(e: ReplayError) -> Self {
        ResumeError::Replay(e)
    }
}

/// Why a journal replay was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// An entry referenced a client id outside the fleet.
    UnknownClient {
        /// Sequence number of the offending entry.
        seq: u64,
        /// The out-of-range client id.
        client: usize,
    },
    /// An entry's `from` state disagreed with the reconstruction.
    StateMismatch {
        /// Sequence number of the offending entry.
        seq: u64,
        /// The client whose state diverged.
        client: usize,
        /// The state the entry claimed.
        expected: ClientState,
        /// The state the reconstruction holds.
        actual: ClientState,
    },
    /// An entry's `(from, to)` edge has no event in the contract.
    IllegalEdge {
        /// Sequence number of the offending entry.
        seq: u64,
        /// The client with the illegal edge.
        client: usize,
        /// The claimed source state.
        from: ClientState,
        /// The claimed destination state.
        to: ClientState,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::UnknownClient { seq, client } => {
                write!(f, "entry {seq}: unknown client {client}")
            }
            ReplayError::StateMismatch {
                seq,
                client,
                expected,
                actual,
            } => write!(
                f,
                "entry {seq}: client {client} claimed state `{expected}` but replay holds `{actual}`"
            ),
            ReplayError::IllegalEdge {
                seq,
                client,
                from,
                to,
            } => write!(
                f,
                "entry {seq}: client {client} edge `{from}` -> `{to}` is not in the contract"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{ClientEvent as E, ClientState as S};

    #[test]
    fn apply_journals_legal_transitions_only() {
        let mut plane = ControlPlane::new(2);
        plane
            .apply(0, E::Select, EventCause::Selection, 0, 0.0)
            .unwrap();
        let err = plane
            .apply(1, E::Accept, EventCause::UploadDelivered, 0, 0.0)
            .unwrap_err();
        assert_eq!(
            err,
            TransitionError {
                client: 1,
                from: S::Idle,
                event: E::Accept
            }
        );
        assert_eq!(plane.state(0), S::Selected);
        assert_eq!(plane.state(1), S::Idle);
        assert_eq!(plane.journal().len(), 1);
    }

    #[test]
    fn replay_reconstructs_final_states() {
        let mut plane = ControlPlane::new(3);
        for (client, event, cause) in [
            (0usize, E::Select, EventCause::Selection),
            (0, E::Start, EventCause::RoundStart),
            (0, E::Finish, EventCause::TrainingComplete),
            (0, E::Accept, EventCause::UploadDelivered),
            (1, E::Depart, EventCause::ChurnDeparture),
            (2, E::Select, EventCause::Selection),
            (2, E::Drop, EventCause::ServerDropout),
        ] {
            plane.apply(client, event, cause, 0, 0.0).unwrap();
        }
        let entries: Vec<EventEntry> = plane.journal().iter().copied().collect();
        let rebuilt = ControlPlane::replay(entries.iter(), 3).unwrap();
        assert_eq!(rebuilt, plane.states());
    }

    #[test]
    fn replay_rejects_tampered_entries() {
        let mut plane = ControlPlane::new(1);
        plane
            .apply(0, E::Select, EventCause::Selection, 0, 0.0)
            .unwrap();
        let mut entries: Vec<EventEntry> = plane.journal().iter().copied().collect();
        entries[0].from = S::Training;
        assert!(matches!(
            ControlPlane::replay(entries.iter(), 1),
            Err(ReplayError::StateMismatch { .. })
        ));
        entries[0].from = S::Idle;
        entries[0].to = S::Aggregated;
        assert!(matches!(
            ControlPlane::replay(entries.iter(), 1),
            Err(ReplayError::IllegalEdge { .. })
        ));
    }

    #[test]
    fn close_round_records_quorum_bookkeeping() {
        let mut plane = ControlPlane::new(4);
        plane.close_round(0, 30.0, 3, 2, true, false, 0, 0);
        plane.close_round(1, 61.5, 1, 2, false, true, 4, 1);
        assert_eq!(plane.closes().len(), 2);
        assert!(plane.closes()[0].quorum_met);
        assert!(plane.closes()[0].closed_early);
        assert!(!plane.closes()[0].degraded);
        assert_eq!(plane.closes()[0].shards, 0);
        assert!(!plane.closes()[1].quorum_met);
        assert!(plane.closes()[1].degraded);
        assert_eq!(plane.closes()[1].shards, 4);
        assert_eq!(plane.closes()[1].shard_shortfalls, 1);
    }

    fn wal_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bofl-plane-{}-{name}.wal", std::process::id()))
    }

    fn drive_round(plane: &mut ControlPlane, round: usize, t0: f64) {
        for client in 0..2usize {
            plane
                .apply(client, E::Select, EventCause::Selection, round, t0)
                .unwrap();
            plane
                .apply(client, E::Start, EventCause::RoundStart, round, t0)
                .unwrap();
            plane
                .apply(
                    client,
                    E::Finish,
                    EventCause::TrainingComplete,
                    round,
                    t0 + 5.0,
                )
                .unwrap();
            plane
                .apply(
                    client,
                    E::Accept,
                    EventCause::UploadDelivered,
                    round,
                    t0 + 6.0,
                )
                .unwrap();
        }
        // Mirror the engine's commit order: resets first, then the Close
        // record as the round's commit marker.
        for client in 0..2usize {
            plane
                .apply(client, E::Reset, EventCause::RoundReset, round, t0 + 10.0)
                .unwrap();
        }
        plane.close_round(round, t0 + 7.0, 2, 2, false, false, 0, 0);
    }

    #[test]
    fn resume_rebuilds_the_plane_from_the_wal() {
        let path = wal_path("round-trip");
        let mut plane = ControlPlane::new(3);
        plane.attach_wal(std::sync::Arc::new(std::sync::Mutex::new(
            crate::wal::JournalWal::create(&path).unwrap(),
        )));
        drive_round(&mut plane, 0, 0.0);
        drive_round(&mut plane, 1, 10.0);
        drop(plane.wal.take());

        let (resumed, report) = ControlPlane::resume(&path, 3).unwrap();
        assert_eq!(report.next_round, 2);
        assert_eq!(report.in_flight_discarded, 0);
        assert_eq!(report.torn_bytes, 0);
        assert_eq!(report.events_replayed, 20);
        assert_eq!(report.now_s, 20.0);
        assert_eq!(resumed.journal().total_appended(), 20);
        assert_eq!(resumed.closes().len(), 2);
        assert!(resumed.states().iter().all(|s| *s == S::Idle));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_discards_the_uncommitted_round_and_continues() {
        let path = wal_path("in-flight");
        let mut plane = ControlPlane::new(3);
        plane.attach_wal(std::sync::Arc::new(std::sync::Mutex::new(
            crate::wal::JournalWal::create(&path).unwrap(),
        )));
        drive_round(&mut plane, 0, 0.0);
        // Round 1 starts but the coordinator dies before its close.
        plane
            .apply(0, E::Select, EventCause::Selection, 1, 10.0)
            .unwrap();
        plane
            .apply(0, E::Start, EventCause::RoundStart, 1, 10.0)
            .unwrap();
        let committed_journal: Vec<EventEntry> = plane.journal().iter().take(10).copied().collect();
        drop(plane.wal.take());
        // A torn half-record on top, as a crash mid-append would leave.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[0xB0, 0xF1]).unwrap();
        }

        let (resumed, report) = ControlPlane::resume(&path, 3).unwrap();
        assert_eq!(report.next_round, 1);
        assert_eq!(report.in_flight_discarded, 2);
        assert!(report.torn_bytes > 0);
        assert_eq!(report.events_replayed, 10);
        assert_eq!(resumed.state(0), S::Idle, "in-flight Select was discarded");
        let replayed: Vec<EventEntry> = resumed.journal().iter().copied().collect();
        assert_eq!(replayed, committed_journal);
        assert_eq!(resumed.closes().len(), 1);
        // The resumed plane keeps logging into the truncated WAL: its
        // sequence numbers continue where the committed prefix ended.
        let mut resumed = resumed;
        drive_round(&mut resumed, 1, 10.0);
        drop(resumed.wal.take());
        let (again, report) = ControlPlane::resume(&path, 3).unwrap();
        assert_eq!(report.next_round, 2);
        assert_eq!(report.in_flight_discarded, 0);
        assert_eq!(again.journal().total_appended(), 20);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_a_corrupt_committed_prefix() {
        let path = wal_path("seq-gap");
        {
            let mut wal = crate::wal::JournalWal::create(&path).unwrap();
            wal.append_event(&EventEntry {
                seq: 5, // gap: first record must be seq 0
                round: 0,
                client: 0,
                from: S::Idle,
                to: S::Selected,
                cause: EventCause::Selection,
                t_s: 0.0,
            })
            .unwrap();
            wal.append_close(&RoundClose {
                round: 0,
                t_s: 1.0,
                accepted: 1,
                quorum: 1,
                quorum_met: true,
                closed_early: false,
                degraded: false,
                shards: 0,
                shard_shortfalls: 0,
            })
            .unwrap();
        }
        assert!(matches!(
            ControlPlane::resume(&path, 1),
            Err(ResumeError::SeqGap {
                expected: 0,
                found: 5
            })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wire_stats_are_recorded_per_round() {
        let mut plane = ControlPlane::new(2);
        assert_eq!(plane.wire_stats(0), None);
        plane.record_wire(
            0,
            WireStats {
                sent: 4,
                dropped: 1,
                ..WireStats::default()
            },
        );
        plane.record_wire(
            1,
            WireStats {
                sent: 3,
                delayed: 2,
                ..WireStats::default()
            },
        );
        assert_eq!(plane.wire_stats(0).unwrap().dropped, 1);
        assert_eq!(plane.wire_stats(1).unwrap().delayed, 2);
        let totals = plane.wire_totals();
        assert_eq!(totals.sent, 7);
        assert_eq!(totals.dropped, 1);
        assert_eq!(totals.delayed, 2);
    }
}
