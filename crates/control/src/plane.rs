//! The control plane: the fleet's state vector plus its event journal.
//!
//! [`ControlPlane`] is deliberately dumb — it owns *no* policy. It knows
//! the current [`ClientState`] of every client, refuses transitions
//! outside the contract with a typed [`TransitionError`], and journals
//! every transition it does apply. All decisions about *which* events to
//! emit (quorum closes, churn, retries) live in the engine; all rules
//! about which transitions are legal live in [`ClientState::next`].

use crate::journal::{EventCause, EventEntry, EventJournal, RoundClose};
use crate::state::{ClientEvent, ClientState, TransitionError};
use crate::transport::WireStats;

/// Tracks every client's lifecycle state and journals transitions.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    states: Vec<ClientState>,
    journal: EventJournal,
    closes: Vec<RoundClose>,
    wire: Vec<(u32, WireStats)>,
}

impl ControlPlane {
    /// A plane over `clients` clients, all starting [`ClientState::Idle`],
    /// with the default journal capacity.
    pub fn new(clients: usize) -> Self {
        ControlPlane {
            states: vec![ClientState::Idle; clients],
            journal: EventJournal::default(),
            closes: Vec::new(),
            wire: Vec::new(),
        }
    }

    /// Same, with an explicit journal ring capacity.
    pub fn with_journal_capacity(clients: usize, capacity: usize) -> Self {
        ControlPlane {
            states: vec![ClientState::Idle; clients],
            journal: EventJournal::with_capacity(capacity),
            closes: Vec::new(),
            wire: Vec::new(),
        }
    }

    /// Grow the tracked fleet to at least `clients` entries (new clients
    /// start Idle). Shrinking is never done — ids are stable.
    pub fn ensure_clients(&mut self, clients: usize) {
        if self.states.len() < clients {
            self.states.resize(clients, ClientState::Idle);
        }
    }

    /// Number of clients tracked.
    pub fn num_clients(&self) -> usize {
        self.states.len()
    }

    /// Current state of one client.
    ///
    /// # Panics
    /// If `client` is out of range.
    pub fn state(&self, client: usize) -> ClientState {
        self.states[client]
    }

    /// The full state vector, indexed by client id.
    pub fn states(&self) -> &[ClientState] {
        &self.states
    }

    /// The event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// Every round close recorded so far, in round order.
    pub fn closes(&self) -> &[RoundClose] {
        &self.closes
    }

    /// Apply `event` to `client`, journalling the transition on success.
    /// An illegal `(state, event)` pair leaves both the state vector and
    /// the journal untouched and returns the typed error.
    pub fn apply(
        &mut self,
        client: usize,
        event: ClientEvent,
        cause: EventCause,
        round: usize,
        t_s: f64,
    ) -> Result<ClientState, TransitionError> {
        let from = self.states[client];
        let to = from.next(event).ok_or(TransitionError {
            client,
            from,
            event,
        })?;
        self.states[client] = to;
        self.journal
            .append(round as u32, client as u32, from, to, cause, t_s);
        Ok(to)
    }

    /// Record how a round ended. `shards` is the number of aggregator
    /// shards the round ran with (0 when no shard plan was armed) and
    /// `shard_shortfalls` counts shards that closed below their local
    /// quorum.
    #[allow(clippy::too_many_arguments)]
    pub fn close_round(
        &mut self,
        round: usize,
        t_s: f64,
        accepted: usize,
        quorum: usize,
        closed_early: bool,
        degraded: bool,
        shards: usize,
        shard_shortfalls: usize,
    ) {
        self.closes.push(RoundClose {
            round: round as u32,
            t_s,
            accepted,
            quorum,
            quorum_met: accepted >= quorum,
            closed_early,
            degraded,
            shards,
            shard_shortfalls,
        });
    }

    /// Record what the transport did to one round's messages.
    pub fn record_wire(&mut self, round: usize, stats: WireStats) {
        self.wire.push((round as u32, stats));
    }

    /// The transport's wire statistics for `round`, if any were recorded.
    pub fn wire_stats(&self, round: usize) -> Option<WireStats> {
        self.wire
            .iter()
            .find(|(r, _)| *r == round as u32)
            .map(|(_, s)| *s)
    }

    /// Wire statistics accumulated over every recorded round.
    pub fn wire_totals(&self) -> WireStats {
        let mut total = WireStats::default();
        for (_, s) in &self.wire {
            total.merge(s);
        }
        total
    }

    /// Replay a journal slice over a fresh fleet of `clients` Idle
    /// clients and return the reconstructed state vector. Each entry's
    /// `from` must match the reconstructed current state and its
    /// `(from, event)` edge must be legal — the entry's `to` is derived
    /// from the contract, not trusted. Used by tests to prove the
    /// journal alone determines final states.
    pub fn replay<'a>(
        entries: impl IntoIterator<Item = &'a EventEntry>,
        clients: usize,
    ) -> Result<Vec<ClientState>, ReplayError> {
        let mut states = vec![ClientState::Idle; clients];
        for e in entries {
            let id = e.client as usize;
            if id >= clients {
                return Err(ReplayError::UnknownClient {
                    seq: e.seq,
                    client: id,
                });
            }
            let current = states[id];
            if current != e.from {
                return Err(ReplayError::StateMismatch {
                    seq: e.seq,
                    client: id,
                    expected: e.from,
                    actual: current,
                });
            }
            // Recover the event from the edge: the contract is sparse
            // enough that each (from, to) pair maps to one event.
            let event = ClientEvent::ALL
                .into_iter()
                .find(|ev| current.next(*ev) == Some(e.to))
                .ok_or(ReplayError::IllegalEdge {
                    seq: e.seq,
                    client: id,
                    from: e.from,
                    to: e.to,
                })?;
            states[id] = current.next(event).expect("edge just validated");
        }
        Ok(states)
    }
}

/// Why a journal replay was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// An entry referenced a client id outside the fleet.
    UnknownClient {
        /// Sequence number of the offending entry.
        seq: u64,
        /// The out-of-range client id.
        client: usize,
    },
    /// An entry's `from` state disagreed with the reconstruction.
    StateMismatch {
        /// Sequence number of the offending entry.
        seq: u64,
        /// The client whose state diverged.
        client: usize,
        /// The state the entry claimed.
        expected: ClientState,
        /// The state the reconstruction holds.
        actual: ClientState,
    },
    /// An entry's `(from, to)` edge has no event in the contract.
    IllegalEdge {
        /// Sequence number of the offending entry.
        seq: u64,
        /// The client with the illegal edge.
        client: usize,
        /// The claimed source state.
        from: ClientState,
        /// The claimed destination state.
        to: ClientState,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::UnknownClient { seq, client } => {
                write!(f, "entry {seq}: unknown client {client}")
            }
            ReplayError::StateMismatch {
                seq,
                client,
                expected,
                actual,
            } => write!(
                f,
                "entry {seq}: client {client} claimed state `{expected}` but replay holds `{actual}`"
            ),
            ReplayError::IllegalEdge {
                seq,
                client,
                from,
                to,
            } => write!(
                f,
                "entry {seq}: client {client} edge `{from}` -> `{to}` is not in the contract"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{ClientEvent as E, ClientState as S};

    #[test]
    fn apply_journals_legal_transitions_only() {
        let mut plane = ControlPlane::new(2);
        plane
            .apply(0, E::Select, EventCause::Selection, 0, 0.0)
            .unwrap();
        let err = plane
            .apply(1, E::Accept, EventCause::UploadDelivered, 0, 0.0)
            .unwrap_err();
        assert_eq!(
            err,
            TransitionError {
                client: 1,
                from: S::Idle,
                event: E::Accept
            }
        );
        assert_eq!(plane.state(0), S::Selected);
        assert_eq!(plane.state(1), S::Idle);
        assert_eq!(plane.journal().len(), 1);
    }

    #[test]
    fn replay_reconstructs_final_states() {
        let mut plane = ControlPlane::new(3);
        for (client, event, cause) in [
            (0usize, E::Select, EventCause::Selection),
            (0, E::Start, EventCause::RoundStart),
            (0, E::Finish, EventCause::TrainingComplete),
            (0, E::Accept, EventCause::UploadDelivered),
            (1, E::Depart, EventCause::ChurnDeparture),
            (2, E::Select, EventCause::Selection),
            (2, E::Drop, EventCause::ServerDropout),
        ] {
            plane.apply(client, event, cause, 0, 0.0).unwrap();
        }
        let entries: Vec<EventEntry> = plane.journal().iter().copied().collect();
        let rebuilt = ControlPlane::replay(entries.iter(), 3).unwrap();
        assert_eq!(rebuilt, plane.states());
    }

    #[test]
    fn replay_rejects_tampered_entries() {
        let mut plane = ControlPlane::new(1);
        plane
            .apply(0, E::Select, EventCause::Selection, 0, 0.0)
            .unwrap();
        let mut entries: Vec<EventEntry> = plane.journal().iter().copied().collect();
        entries[0].from = S::Training;
        assert!(matches!(
            ControlPlane::replay(entries.iter(), 1),
            Err(ReplayError::StateMismatch { .. })
        ));
        entries[0].from = S::Idle;
        entries[0].to = S::Aggregated;
        assert!(matches!(
            ControlPlane::replay(entries.iter(), 1),
            Err(ReplayError::IllegalEdge { .. })
        ));
    }

    #[test]
    fn close_round_records_quorum_bookkeeping() {
        let mut plane = ControlPlane::new(4);
        plane.close_round(0, 30.0, 3, 2, true, false, 0, 0);
        plane.close_round(1, 61.5, 1, 2, false, true, 4, 1);
        assert_eq!(plane.closes().len(), 2);
        assert!(plane.closes()[0].quorum_met);
        assert!(plane.closes()[0].closed_early);
        assert!(!plane.closes()[0].degraded);
        assert_eq!(plane.closes()[0].shards, 0);
        assert!(!plane.closes()[1].quorum_met);
        assert!(plane.closes()[1].degraded);
        assert_eq!(plane.closes()[1].shards, 4);
        assert_eq!(plane.closes()[1].shard_shortfalls, 1);
    }

    #[test]
    fn wire_stats_are_recorded_per_round() {
        let mut plane = ControlPlane::new(2);
        assert_eq!(plane.wire_stats(0), None);
        plane.record_wire(
            0,
            WireStats {
                sent: 4,
                dropped: 1,
                ..WireStats::default()
            },
        );
        plane.record_wire(
            1,
            WireStats {
                sent: 3,
                delayed: 2,
                ..WireStats::default()
            },
        );
        assert_eq!(plane.wire_stats(0).unwrap().dropped, 1);
        assert_eq!(plane.wire_stats(1).unwrap().delayed, 2);
        let totals = plane.wire_totals();
        assert_eq!(totals.sent, 7);
        assert_eq!(totals.dropped, 1);
        assert_eq!(totals.delayed, 2);
    }
}
