//! `socket_client` — the client side of the socket transport, as a real
//! OS process.
//!
//! Connects to the coordinator, sends one Data frame for `(round,
//! client)` at the given virtual send time, and waits for the matching
//! Ack. Spawned by `SocketTransport::spawned` (one process per envelope)
//! and by the process-mode acceptance tests.
//!
//! ```text
//! socket_client --addr 127.0.0.1:9001 --client 7 --round 3 \
//!     --t-send 1.2345e1 [--ack-timeout-ms 2000]
//! ```
//!
//! Exit codes: 0 = acked, 1 = protocol/socket failure, 2 = bad usage.

use bofl_fleet::process::{client_main, parse_client_args};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, spec, ack_timeout) = match parse_client_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("socket_client: {e}");
            eprintln!(
                "usage: socket_client --addr HOST:PORT --client N --round R \
                 --t-send SECONDS [--ack-timeout-ms MILLIS]"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = client_main(&addr, spec, ack_timeout) {
        eprintln!("socket_client: {e}");
        std::process::exit(1);
    }
}
