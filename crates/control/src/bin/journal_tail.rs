//! `journal_tail` — stream a control-plane write-ahead log as JSONL.
//!
//! Reads the WAL a running (or finished) simulation writes via
//! `ControlSimulationBuilder::wal` and prints one JSON object per event,
//! in the same format as the run's `journal.jsonl` artifact. The reader
//! is strictly read-only and decodes incrementally, so tailing a *live*
//! run never blocks or corrupts the writer: a half-appended record just
//! means "wait and poll again".
//!
//! ```text
//! journal_tail run.wal                 # print committed events, exit
//! journal_tail run.wal --follow        # keep streaming as the run appends
//! journal_tail run.wal --closes       # also print round-close records
//! journal_tail run.wal --poll-ms 50   # follow-mode poll interval
//! journal_tail run.wal --limit 100    # exit after 100 printed records
//! ```
//!
//! Exit codes: 0 = done, 1 = unreadable or corrupt log, 2 = bad usage.

use std::path::PathBuf;
use std::time::Duration;

use bofl_control::wal::{JournalTail, WalRecord};

#[derive(Debug)]
struct Options {
    path: PathBuf,
    follow: bool,
    closes: bool,
    poll: Duration,
    limit: Option<u64>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut path = None;
    let mut follow = false;
    let mut closes = false;
    let mut poll = Duration::from_millis(100);
    let mut limit = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--follow" => follow = true,
            "--closes" => closes = true,
            "--poll-ms" => {
                let value = it.next().ok_or("--poll-ms is missing its value")?;
                poll = Duration::from_millis(
                    value
                        .parse::<u64>()
                        .map_err(|e| format!("--poll-ms: {e}"))?,
                );
            }
            "--limit" => {
                let value = it.next().ok_or("--limit is missing its value")?;
                limit = Some(value.parse::<u64>().map_err(|e| format!("--limit: {e}"))?);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => {
                if path.replace(PathBuf::from(other)).is_some() {
                    return Err("more than one WAL path given".to_string());
                }
            }
        }
    }
    Ok(Options {
        path: path.ok_or("a WAL path is required")?,
        follow,
        closes,
        poll,
        limit,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("journal_tail: {e}");
            eprintln!(
                "usage: journal_tail PATH [--follow] [--closes] [--poll-ms MILLIS] [--limit N]"
            );
            std::process::exit(2);
        }
    };
    let mut tail = match JournalTail::open(&opts.path) {
        Ok(tail) => tail,
        Err(e) => {
            eprintln!("journal_tail: cannot open {}: {e}", opts.path.display());
            std::process::exit(1);
        }
    };
    let mut printed = 0u64;
    loop {
        match tail.poll() {
            Ok(Some(record)) => {
                match record {
                    WalRecord::Event(e) => println!("{}", e.to_json()),
                    WalRecord::Close(c) => {
                        if opts.closes {
                            println!("{}", c.to_json());
                        } else {
                            continue;
                        }
                    }
                }
                printed += 1;
                if opts.limit.is_some_and(|n| printed >= n) {
                    return;
                }
            }
            Ok(None) => {
                if !opts.follow {
                    return;
                }
                std::thread::sleep(opts.poll);
            }
            Err(e) => {
                eprintln!("journal_tail: {e}");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn args_round_trip() {
        let opts = parse_args(&s(&[
            "run.wal",
            "--follow",
            "--closes",
            "--poll-ms",
            "25",
            "--limit",
            "9",
        ]))
        .unwrap();
        assert_eq!(opts.path, PathBuf::from("run.wal"));
        assert!(opts.follow);
        assert!(opts.closes);
        assert_eq!(opts.poll, Duration::from_millis(25));
        assert_eq!(opts.limit, Some(9));
    }

    #[test]
    fn bad_usage_is_named() {
        assert!(parse_args(&s(&[])).unwrap_err().contains("required"));
        assert!(parse_args(&s(&["a.wal", "--frobnicate"]))
            .unwrap_err()
            .contains("--frobnicate"));
        assert!(parse_args(&s(&["a.wal", "b.wal"]))
            .unwrap_err()
            .contains("more than one"));
    }
}
