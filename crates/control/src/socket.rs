//! [`SocketTransport`]: the [`Transport`] contract carried over real
//! localhost TCP.
//!
//! Where [`crate::transport::LoopbackTransport`] moves deliveries through
//! in-process mpsc channels, this carrier pushes them through actual
//! sockets using the length-prefixed, checksummed frame codec in
//! [`bofl_fleet::wire`]. Each `carry` call binds an ephemeral coordinator
//! listener on `127.0.0.1`, shards the round's envelopes round-robin
//! across client lanes (threads, or spawned `socket_client` OS processes
//! in [`SocketTransport::spawned`] mode), and every lane speaks the
//! Data/Ack protocol:
//!
//! - a lane writes one `Data` frame per envelope and waits for the
//!   coordinator's matching `Ack` within [`SocketTransport::with_ack_timeout`];
//! - a missing ack, write error, or EOF tears the connection down and the
//!   lane retries under a bounded, *seeded* [`ReconnectPolicy`] —
//!   exponential backoff whose jitter is drawn from
//!   `stream_seed(seed, round, client, salt + attempt)`, never the wall
//!   clock, so two runs retry on the same schedule;
//! - before reusing a pooled connection a lane can probe it with a
//!   `Ping`/`Pong` heartbeat (on by default), which is what detects the
//!   half-open connections a silently dropped peer leaves behind;
//! - the coordinator deduplicates on `(round, client, copy)` and re-acks
//!   duplicates, so a retry after a lost ack stays exactly-once.
//!
//! Virtual timestamps travel *inside* the frames (`t_send_s`), and every
//! delivery arrives at its virtual send time — real TCP timing never
//! leaks into the output. After the canonical
//! [`crate::transport::sort_deliveries`] pass, a zero-fault socket run is
//! therefore byte-identical to [`crate::transport::VirtualTransport`] at
//! any lane count, and even a run with injected accept faults
//! ([`SocketTransport::with_accept_faults`]) converges to the same
//! journal once the retries land. A message whose retries are exhausted
//! is simply absent from the output; the engine surfaces it through the
//! existing `transport_loss` / liveness machinery.

use std::collections::HashSet;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bofl_fleet::fault::stream_seed;
use bofl_fleet::process::{ClientSpec, ProcessClientHarness};
use bofl_fleet::wire::{encode_frame, Frame, FrameReader, WireMsg};

use crate::transport::{sort_deliveries, Carried, Delivery, Envelope, Transport, WireStats};

/// Stream salt for reconnect backoff jitter (attempt index is added on
/// top, so every attempt draws from its own stream).
const RECONNECT_SALT: u64 = 0x50CE_7B0F_F000_0001;
/// Stream salt for heartbeat nonces.
const HEARTBEAT_SALT: u64 = 0x50CE_7B0F_F000_0002;

/// Hard cap on any single backoff sleep, so exhausting retries in a test
/// stays fast regardless of the policy's curve.
const MAX_BACKOFF_SLEEP: Duration = Duration::from_millis(250);

/// Bounded, seeded exponential backoff for reconnect attempts.
///
/// `backoff_s` is a pure function of `(seed, round, client, attempt)` —
/// the schedule is reproducible and independent of thread scheduling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconnectPolicy {
    /// Total send attempts per message (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt, in seconds.
    pub base_s: f64,
    /// Multiplier applied per further attempt.
    pub factor: f64,
    /// Jitter fraction in `[0, 1)`: each sleep is scaled by a seeded
    /// draw from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed for the jitter streams.
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 4,
            base_s: 0.01,
            factor: 2.0,
            jitter: 0.2,
            seed: 0xB0F1,
        }
    }
}

impl ReconnectPolicy {
    /// The backoff slept *before* `attempt` (attempts count from 1; the
    /// first attempt never waits).
    pub fn backoff_s(&self, round: usize, client: usize, attempt: u32) -> f64 {
        if attempt <= 1 {
            return 0.0;
        }
        let nominal = self.base_s * self.factor.powi(attempt as i32 - 2);
        let mut rng = StdRng::seed_from_u64(stream_seed(
            self.seed,
            round,
            client,
            RECONNECT_SALT + attempt as u64,
        ));
        let scale = 1.0 + self.jitter * (2.0 * rng.gen::<f64>() - 1.0);
        nominal * scale
    }
}

/// How client lanes are realized.
#[derive(Debug, Clone)]
enum SocketMode {
    /// Lanes are threads in this process (fast, the default).
    InProcess,
    /// One spawned OS process per envelope, running the `socket_client`
    /// binary at this path.
    Spawn(PathBuf),
}

/// A [`Transport`] that carries each round's updates over real localhost
/// TCP sockets. See the module docs for the protocol and determinism
/// argument.
#[derive(Debug, Clone)]
pub struct SocketTransport {
    lanes: usize,
    mode: SocketMode,
    reconnect: ReconnectPolicy,
    ack_timeout: Duration,
    heartbeat: bool,
    accept_faults: u32,
    label: String,
}

impl SocketTransport {
    /// A socket transport whose client lanes are `lanes` threads in this
    /// process.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn in_process(lanes: usize) -> Self {
        assert!(lanes > 0, "a socket transport needs at least one lane");
        SocketTransport {
            lanes,
            mode: SocketMode::InProcess,
            reconnect: ReconnectPolicy::default(),
            ack_timeout: Duration::from_secs(2),
            heartbeat: true,
            accept_faults: 0,
            label: format!("socket({lanes} lanes)"),
        }
    }

    /// A socket transport that spawns one `socket_client` OS process per
    /// envelope (`exe` is the binary's path — in tests,
    /// `env!("CARGO_BIN_EXE_socket_client")`).
    pub fn spawned(exe: impl Into<PathBuf>) -> Self {
        SocketTransport {
            lanes: 1,
            mode: SocketMode::Spawn(exe.into()),
            reconnect: ReconnectPolicy::default(),
            ack_timeout: Duration::from_secs(2),
            heartbeat: false,
            accept_faults: 0,
            label: "socket(spawn)".to_string(),
        }
    }

    /// Replace the reconnect/backoff policy.
    pub fn with_reconnect(mut self, policy: ReconnectPolicy) -> Self {
        self.reconnect = policy;
        self
    }

    /// How long a lane waits for the coordinator's ack before tearing the
    /// connection down and retrying.
    pub fn with_ack_timeout(mut self, timeout: Duration) -> Self {
        self.ack_timeout = timeout;
        self
    }

    /// Enable or disable the ping/pong probe on pooled connections
    /// (half-open detection; on by default for in-process lanes).
    pub fn with_heartbeat(mut self, on: bool) -> Self {
        self.heartbeat = on;
        self
    }

    /// Fault-injection knob: the coordinator drops the first `n` accepted
    /// connections per `carry` call, forcing the affected lanes through
    /// the reconnect path. Used by the acceptance tests to prove the
    /// journal is invariant under real reconnects.
    pub fn with_accept_faults(mut self, n: u32) -> Self {
        self.accept_faults = n;
        self
    }

    /// Lane count (1 in spawned mode — each envelope gets a process).
    pub fn lanes(&self) -> usize {
        self.lanes
    }
}

/// One pooled client-side connection.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
}

fn connect(addr: SocketAddr) -> Option<Conn> {
    let stream = TcpStream::connect(addr).ok()?;
    stream.set_nodelay(true).ok()?;
    Some(Conn {
        stream,
        reader: FrameReader::new(),
    })
}

/// Wait until `want(frame)` matches, the deadline passes, or the
/// connection errors. Non-matching frames are discarded (stale acks from
/// a previous retry, say).
fn await_frame(conn: &mut Conn, timeout: Duration, want: impl Fn(&Frame) -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return false;
        }
        if conn
            .stream
            .set_read_timeout(Some(remaining.min(Duration::from_millis(50))))
            .is_err()
        {
            return false;
        }
        match conn.reader.poll(&mut conn.stream) {
            Ok(Some(frame)) if want(&frame) => return true,
            Ok(Some(_)) | Ok(None) => {}
            Err(_) => return false,
        }
    }
}

/// Probe a pooled connection: a dead or half-open peer fails to echo the
/// nonce and the lane reconnects instead of writing into a black hole.
fn ping_pong(conn: &mut Conn, nonce: u64, timeout: Duration) -> bool {
    if conn
        .stream
        .write_all(&encode_frame(&Frame::Ping(nonce)))
        .is_err()
    {
        return false;
    }
    await_frame(
        conn,
        timeout,
        |f| matches!(f, Frame::Pong(n) if *n == nonce),
    )
}

/// Send one Data frame and wait for its matching Ack.
fn send_and_await_ack(conn: &mut Conn, msg: WireMsg, timeout: Duration) -> bool {
    if conn
        .stream
        .write_all(&encode_frame(&Frame::Data(msg)))
        .is_err()
    {
        return false;
    }
    await_frame(conn, timeout, |f| {
        matches!(f, Frame::Ack(a)
            if a.round == msg.round && a.client == msg.client && a.copy == msg.copy)
    })
}

/// The body of one in-process client lane: deliver every envelope in the
/// shard, reconnecting under the policy. Returns how many envelopes were
/// acked.
fn lane_main(
    addr: SocketAddr,
    shard: &[Envelope],
    reconnect: ReconnectPolicy,
    ack_timeout: Duration,
    heartbeat: bool,
) -> usize {
    let mut conn: Option<Conn> = None;
    let mut acked = 0usize;
    for env in shard {
        let msg = WireMsg {
            round: env.round as u32,
            client: env.client_id as u32,
            copy: 0,
            t_send_s: env.t_send_s,
        };
        for attempt in 1..=reconnect.max_attempts.max(1) {
            let backoff = reconnect.backoff_s(env.round, env.client_id, attempt);
            if backoff > 0.0 {
                thread::sleep(Duration::from_secs_f64(backoff).min(MAX_BACKOFF_SLEEP));
            }
            let pooled = conn.is_some();
            if conn.is_none() {
                conn = connect(addr);
            }
            let Some(c) = conn.as_mut() else { continue };
            if pooled && heartbeat {
                let nonce = stream_seed(reconnect.seed, env.round, env.client_id, HEARTBEAT_SALT);
                if !ping_pong(c, nonce, ack_timeout) {
                    conn = None;
                    continue;
                }
            }
            if send_and_await_ack(c, msg, ack_timeout) {
                acked += 1;
                break;
            }
            conn = None;
        }
    }
    acked
}

/// Coordinator side of one accepted connection: decode frames, hand fresh
/// Data deliveries to the collector, ack everything (re-acking duplicates
/// keeps retries exactly-once), echo Pings.
fn serve_connection(
    mut stream: TcpStream,
    tx: mpsc::Sender<Delivery>,
    done: &AtomicBool,
    seen: &Mutex<HashSet<(u32, u32, u32)>>,
) {
    if stream.set_nodelay(true).is_err() {
        return;
    }
    if stream
        .set_read_timeout(Some(Duration::from_millis(10)))
        .is_err()
    {
        return;
    }
    let mut reader = FrameReader::new();
    while !done.load(Ordering::SeqCst) {
        match reader.poll(&mut stream) {
            Ok(Some(Frame::Data(msg))) => {
                let fresh = seen
                    .lock()
                    .expect("dedup set poisoned")
                    .insert((msg.round, msg.client, msg.copy));
                if fresh {
                    // Arrival is the *virtual* send time carried in the
                    // frame — real TCP latency must not leak.
                    let _ = tx.send(Delivery {
                        client_id: msg.client as usize,
                        t_send_s: msg.t_send_s,
                        t_arrive_s: msg.t_send_s,
                        copy: msg.copy,
                    });
                }
                if stream.write_all(&encode_frame(&Frame::Ack(msg))).is_err() {
                    return;
                }
            }
            Ok(Some(Frame::Ping(nonce))) => {
                if stream
                    .write_all(&encode_frame(&Frame::Pong(nonce)))
                    .is_err()
                {
                    return;
                }
            }
            Ok(Some(_)) => {}
            Ok(None) => {}
            Err(_) => return,
        }
    }
}

impl Transport for SocketTransport {
    fn label(&self) -> &str {
        &self.label
    }

    fn carry(&mut self, _round: usize, _t0_s: f64, messages: &[Envelope]) -> Carried {
        if messages.is_empty() {
            return Carried::default();
        }
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind coordinator listener");
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let addr = listener.local_addr().expect("listener address");

        let (tx, rx) = mpsc::channel::<Delivery>();
        let done = AtomicBool::new(false);
        let drops_left = AtomicU32::new(self.accept_faults);
        let seen: Mutex<HashSet<(u32, u32, u32)>> = Mutex::new(HashSet::new());
        let reconnect = self.reconnect;
        let ack_timeout = self.ack_timeout;
        let heartbeat = self.heartbeat;
        let mode = self.mode.clone();
        let lanes = self.lanes.min(messages.len()).max(1);

        thread::scope(|s| {
            let done_ref = &done;
            let seen_ref = &seen;
            let drops_ref = &drops_left;
            let accept_tx = tx.clone();
            // Accept loop: spawns one handler per connection on the same
            // scope, so everything joins before carry returns.
            s.spawn(move || {
                while !done_ref.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            // Fault injection: drop the first N accepted
                            // connections cold, forcing reconnects.
                            if drops_ref
                                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                                    n.checked_sub(1)
                                })
                                .is_ok()
                            {
                                drop(stream);
                                continue;
                            }
                            let tx = accept_tx.clone();
                            s.spawn(move || serve_connection(stream, tx, done_ref, seen_ref));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                }
            });

            match &mode {
                SocketMode::InProcess => {
                    let handles: Vec<_> = (0..lanes)
                        .map(|lane| {
                            let shard: Vec<Envelope> =
                                messages.iter().skip(lane).step_by(lanes).copied().collect();
                            s.spawn(move || {
                                lane_main(addr, &shard, reconnect, ack_timeout, heartbeat)
                            })
                        })
                        .collect();
                    for h in handles {
                        let _ = h.join();
                    }
                }
                SocketMode::Spawn(exe) => {
                    let mut harness = ProcessClientHarness::new(exe.clone(), addr.to_string());
                    for env in messages {
                        let _ = harness.spawn(ClientSpec {
                            client_id: env.client_id,
                            round: env.round,
                            t_send_s: env.t_send_s,
                        });
                    }
                    let _ = harness.wait_all();
                }
            }
            done.store(true, Ordering::SeqCst);
        });
        drop(tx);

        let mut deliveries: Vec<Delivery> = rx.into_iter().collect();
        sort_deliveries(&mut deliveries);
        // Dedup guarantees at most one delivery per envelope, so the
        // shortfall is exactly the messages whose retries were exhausted.
        let stats = WireStats {
            sent: messages.len(),
            dropped: messages.len().saturating_sub(deliveries.len()),
            ..WireStats::default()
        };
        Carried { deliveries, stats }
    }

    fn clone_box(&self) -> Box<dyn Transport> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::VirtualTransport;

    fn envelopes(n: usize, round: usize) -> Vec<Envelope> {
        (0..n)
            .map(|i| Envelope {
                round,
                client_id: i,
                // Deliberately not in send order, to exercise the sort.
                t_send_s: 10.0 + ((n - i) as f64) * 0.25,
            })
            .collect()
    }

    #[test]
    fn zero_fault_socket_matches_virtual_at_any_lane_count() {
        let msgs = envelopes(9, 2);
        let want = VirtualTransport.carry(2, 0.0, &msgs);
        for lanes in [1, 2, 4, 8] {
            let got = SocketTransport::in_process(lanes).carry(2, 0.0, &msgs);
            assert_eq!(got, want, "lanes={lanes}");
        }
    }

    #[test]
    fn accept_faults_force_reconnects_but_not_divergence() {
        let msgs = envelopes(6, 1);
        let want = VirtualTransport.carry(1, 0.0, &msgs);
        let got = SocketTransport::in_process(3)
            .with_accept_faults(4)
            .with_ack_timeout(Duration::from_millis(300))
            .carry(1, 0.0, &msgs);
        assert_eq!(got, want, "reconnects must not change the delivered set");
    }

    #[test]
    fn exhausted_retries_surface_as_drops_not_hangs() {
        let msgs = envelopes(3, 0);
        // More accept faults than total attempts: nothing ever connects.
        let got = SocketTransport::in_process(2)
            .with_reconnect(ReconnectPolicy {
                max_attempts: 2,
                base_s: 0.001,
                ..ReconnectPolicy::default()
            })
            .with_ack_timeout(Duration::from_millis(100))
            .with_accept_faults(u32::MAX)
            .carry(0, 0.0, &msgs);
        assert!(got.deliveries.is_empty());
        assert_eq!(got.stats.sent, 3);
        assert_eq!(got.stats.dropped, 3);
    }

    #[test]
    fn backoff_is_seeded_and_monotone_in_nominal_terms() {
        let p = ReconnectPolicy::default();
        assert_eq!(p.backoff_s(3, 7, 1), 0.0, "first attempt never waits");
        let a2 = p.backoff_s(3, 7, 2);
        let b2 = p.backoff_s(3, 7, 2);
        assert_eq!(
            a2, b2,
            "same (round, client, attempt) draws the same jitter"
        );
        assert!(a2 > 0.0);
        // Jitter is bounded, so attempt 4's sleep dominates attempt 2's.
        assert!(p.backoff_s(3, 7, 4) > a2);
        assert_ne!(
            p.backoff_s(3, 7, 2),
            p.backoff_s(3, 8, 2),
            "different clients draw different jitter"
        );
    }

    #[test]
    fn empty_round_is_a_no_op() {
        let got = SocketTransport::in_process(4).carry(0, 0.0, &[]);
        assert_eq!(got, Carried::default());
    }

    #[test]
    fn labels_name_the_mode() {
        assert_eq!(SocketTransport::in_process(4).label(), "socket(4 lanes)");
        assert_eq!(
            SocketTransport::spawned("/bin/true").label(),
            "socket(spawn)"
        );
    }
}
