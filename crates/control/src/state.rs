//! The per-client lifecycle state machine.
//!
//! Every client the control plane tracks is in exactly one
//! [`ClientState`] at all times, and the only way to move between states
//! is a [`ClientEvent`] whose `(state, event)` pair appears in the
//! transition contract below (the same table lives in DESIGN.md §
//! "Control plane" and is pinned exhaustively by
//! `tests/transition_contract.rs`). Fault handling is *not* special-cased
//! anywhere: a dropout, a guardian escalation, a quarantined observation
//! and a churn departure are ordinary transitions like any other.
//!
//! ```text
//!            Select          Start
//!   Idle ────────────► Selected ────────► Training ──┐
//!    ▲  ▲                  │                │  │     │ Escalate
//!    │  │                  │ Drop           │  │     ▼
//!    │  │ Join             │                │  │  Escalated ──┐
//!    │  │                  │       Quarantine  │     │        │
//!    │  │                  │                │  │     │ Finish │ Quarantine
//!    │  Departed ◄─────────┼──── Depart ────┼──┼─────┼───┐    │
//!    │       (from Idle / Dropped)          │  │     │   │    │
//!    │                     │                ▼  │     │   │    ▼
//!    │                     │      Quarantined  │     │   │ (same Finish/
//!    │                     │                │  │     │   │  Drop edges)
//!    │                     ▼         Finish │  ▼     ▼   │
//!    │ Reset            Dropped ◄── Drop ── Reporting ◄──┘
//!    │                     │  ▲   Suspect ─► │  ▲ Suspected
//!    │                     │  │   ◄─ Heal ───┘  │ (Drop from there too)
//!    └─────────────────────┘  └── Drop ──────┤ Accept
//!    └◄──────── Reset ─────────── Aggregated ◄┘
//! ```
//!
//! The liveness overlay (PR 7) adds exactly one state and two events: a
//! `Reporting` client whose heartbeat deadline lapses is `Suspect`ed; a
//! suspected client whose update finally arrives (a healed partition, a
//! delayed packet) `Heal`s back to `Reporting`, while one that stays
//! silent past its expiry deadline `Drop`s like any other casualty.
//!
//! All three enums are `#[repr(u8)]` with stable discriminants so a
//! journal entry serializes to one byte per field in a binary transport
//! and the CSV/JSONL exports have a fixed vocabulary.

use std::error::Error;
use std::fmt;

/// Where a client is in its per-round lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum ClientState {
    /// In the fleet, not participating in the current round.
    Idle = 0,
    /// Invited into the current round; has not started training yet.
    Selected = 1,
    /// Running its local training jobs.
    Training = 2,
    /// Still training, but the deadline guardian has escalated the
    /// remaining jobs to `x_max` after observing an overrun in progress.
    Escalated = 3,
    /// Still training, but the controller has quarantined contaminated
    /// latency observations out of its surrogate's training set.
    Quarantined = 4,
    /// Finished training; its update is in flight to the server.
    Reporting = 5,
    /// Its update was received while the round was open and folded into
    /// the global model.
    Aggregated = 6,
    /// Out of this round without a usable update — dropout, deadline
    /// miss, upload loss, a churn departure, or a late report after the
    /// round closed. The journal's cause field says which.
    Dropped = 7,
    /// Out of the fleet entirely (churn); not selectable until it rejoins.
    Departed = 8,
    /// Its update is overdue: the liveness tracker's heartbeat deadline
    /// lapsed with the report still outstanding. A suspect either heals
    /// (the update arrives after all) or expires into `Dropped`.
    Suspected = 9,
}

/// The stimuli that move a client between states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ClientEvent {
    /// The server invited the client into the round.
    Select = 0,
    /// The client began its local training.
    Start = 1,
    /// The deadline guardian diverted the remaining jobs to `x_max`.
    Escalate = 2,
    /// The controller quarantined contaminated observations.
    Quarantine = 3,
    /// Local training completed; the update entered the uplink.
    Finish = 4,
    /// The server accepted the update into the aggregate.
    Accept = 5,
    /// The client left the round without a usable update.
    Drop = 6,
    /// The round closed; the client returned to the pool.
    Reset = 7,
    /// The client left the fleet (churn).
    Depart = 8,
    /// The client rejoined the fleet (churn).
    Join = 9,
    /// The liveness tracker's heartbeat deadline lapsed with the report
    /// still in flight.
    Suspect = 10,
    /// A suspected client's update arrived after all — the silence was a
    /// delay or a healed partition, not a death.
    Heal = 11,
}

impl ClientState {
    /// Every state, in discriminant order (for exhaustive table tests).
    pub const ALL: [ClientState; 10] = [
        ClientState::Idle,
        ClientState::Selected,
        ClientState::Training,
        ClientState::Escalated,
        ClientState::Quarantined,
        ClientState::Reporting,
        ClientState::Aggregated,
        ClientState::Dropped,
        ClientState::Departed,
        ClientState::Suspected,
    ];

    /// The state with discriminant `b`, if any — the inverse of `as u8`,
    /// used when decoding binary journal records (the WAL).
    pub fn from_u8(b: u8) -> Option<ClientState> {
        ClientState::ALL.get(b as usize).copied()
    }

    /// Stable lowercase name (journal CSV/JSONL vocabulary).
    pub fn as_str(&self) -> &'static str {
        match self {
            ClientState::Idle => "idle",
            ClientState::Selected => "selected",
            ClientState::Training => "training",
            ClientState::Escalated => "escalated",
            ClientState::Quarantined => "quarantined",
            ClientState::Reporting => "reporting",
            ClientState::Aggregated => "aggregated",
            ClientState::Dropped => "dropped",
            ClientState::Departed => "departed",
            ClientState::Suspected => "suspected",
        }
    }

    /// The transition contract: the state `event` leads to from `self`,
    /// or `None` if the pair is illegal. This is the single source of
    /// truth every other layer (control plane, engine, replay) consults —
    /// there is no second copy of the rules to drift.
    pub fn next(self, event: ClientEvent) -> Option<ClientState> {
        use ClientEvent as E;
        use ClientState as S;
        match (self, event) {
            (S::Idle, E::Select) => Some(S::Selected),
            (S::Idle, E::Depart) => Some(S::Departed),
            (S::Selected, E::Start) => Some(S::Training),
            (S::Selected, E::Drop) => Some(S::Dropped),
            (S::Training, E::Escalate) => Some(S::Escalated),
            (S::Training, E::Quarantine) => Some(S::Quarantined),
            (S::Training, E::Finish) => Some(S::Reporting),
            (S::Training, E::Drop) => Some(S::Dropped),
            (S::Escalated, E::Quarantine) => Some(S::Quarantined),
            (S::Escalated, E::Finish) => Some(S::Reporting),
            (S::Escalated, E::Drop) => Some(S::Dropped),
            (S::Quarantined, E::Finish) => Some(S::Reporting),
            (S::Quarantined, E::Drop) => Some(S::Dropped),
            (S::Reporting, E::Accept) => Some(S::Aggregated),
            (S::Reporting, E::Drop) => Some(S::Dropped),
            (S::Reporting, E::Suspect) => Some(S::Suspected),
            (S::Suspected, E::Heal) => Some(S::Reporting),
            (S::Suspected, E::Drop) => Some(S::Dropped),
            (S::Aggregated, E::Reset) => Some(S::Idle),
            (S::Dropped, E::Reset) => Some(S::Idle),
            (S::Dropped, E::Depart) => Some(S::Departed),
            (S::Departed, E::Join) => Some(S::Idle),
            _ => None,
        }
    }

    /// Whether the client is mid-round (selected but not yet settled). A
    /// suspect is still in flight: its update may yet heal and arrive.
    pub fn in_flight(&self) -> bool {
        matches!(
            self,
            ClientState::Selected
                | ClientState::Training
                | ClientState::Escalated
                | ClientState::Quarantined
                | ClientState::Reporting
                | ClientState::Suspected
        )
    }
}

impl ClientEvent {
    /// Every event, in discriminant order (for exhaustive table tests).
    pub const ALL: [ClientEvent; 12] = [
        ClientEvent::Select,
        ClientEvent::Start,
        ClientEvent::Escalate,
        ClientEvent::Quarantine,
        ClientEvent::Finish,
        ClientEvent::Accept,
        ClientEvent::Drop,
        ClientEvent::Reset,
        ClientEvent::Depart,
        ClientEvent::Join,
        ClientEvent::Suspect,
        ClientEvent::Heal,
    ];

    /// Stable lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            ClientEvent::Select => "select",
            ClientEvent::Start => "start",
            ClientEvent::Escalate => "escalate",
            ClientEvent::Quarantine => "quarantine",
            ClientEvent::Finish => "finish",
            ClientEvent::Accept => "accept",
            ClientEvent::Drop => "drop",
            ClientEvent::Reset => "reset",
            ClientEvent::Depart => "depart",
            ClientEvent::Join => "join",
            ClientEvent::Suspect => "suspect",
            ClientEvent::Heal => "heal",
        }
    }
}

impl fmt::Display for ClientState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Display for ClientEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An `(state, event)` pair outside the transition contract. Returned —
/// never panicked — so callers decide whether a violation is a bug (the
/// engine) or expected input to reject (a replayed journal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionError {
    /// The client whose transition was refused.
    pub client: usize,
    /// The state it was in.
    pub from: ClientState,
    /// The event that had no legal edge from that state.
    pub event: ClientEvent,
}

impl fmt::Display for TransitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "client {}: no legal transition from `{}` on `{}`",
            self.client, self.from, self.event
        )
    }
}

impl Error for TransitionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_u8_inverts_the_discriminant() {
        for s in ClientState::ALL {
            assert_eq!(ClientState::from_u8(s as u8), Some(s));
        }
        assert_eq!(ClientState::from_u8(10), None);
        assert_eq!(ClientState::from_u8(255), None);
    }

    #[test]
    fn discriminants_are_stable_bytes() {
        assert_eq!(ClientState::Idle as u8, 0);
        assert_eq!(ClientState::Departed as u8, 8);
        assert_eq!(ClientState::Suspected as u8, 9);
        assert_eq!(ClientEvent::Select as u8, 0);
        assert_eq!(ClientEvent::Join as u8, 9);
        assert_eq!(ClientEvent::Suspect as u8, 10);
        assert_eq!(ClientEvent::Heal as u8, 11);
        assert_eq!(std::mem::size_of::<ClientState>(), 1);
        assert_eq!(std::mem::size_of::<ClientEvent>(), 1);
    }

    #[test]
    fn happy_path_walks_the_lifecycle() {
        use ClientEvent as E;
        let mut s = ClientState::Idle;
        for e in [E::Select, E::Start, E::Finish, E::Accept, E::Reset] {
            s = s.next(e).expect("happy path is legal");
        }
        assert_eq!(s, ClientState::Idle);
    }

    #[test]
    fn faults_are_ordinary_transitions() {
        use ClientEvent as E;
        use ClientState as S;
        assert_eq!(S::Training.next(E::Escalate), Some(S::Escalated));
        assert_eq!(S::Escalated.next(E::Quarantine), Some(S::Quarantined));
        assert_eq!(S::Quarantined.next(E::Finish), Some(S::Reporting));
        assert_eq!(S::Reporting.next(E::Drop), Some(S::Dropped));
        assert_eq!(S::Dropped.next(E::Depart), Some(S::Departed));
        assert_eq!(S::Departed.next(E::Join), Some(S::Idle));
        // Liveness is no more special than churn: suspect, then heal or
        // expire, all along ordinary edges.
        assert_eq!(S::Reporting.next(E::Suspect), Some(S::Suspected));
        assert_eq!(S::Suspected.next(E::Heal), Some(S::Reporting));
        assert_eq!(S::Suspected.next(E::Drop), Some(S::Dropped));
        assert_eq!(S::Suspected.next(E::Accept), None);
    }

    #[test]
    fn illegal_pairs_have_no_edge() {
        use ClientEvent as E;
        use ClientState as S;
        assert_eq!(S::Idle.next(E::Accept), None);
        assert_eq!(S::Aggregated.next(E::Select), None);
        assert_eq!(S::Departed.next(E::Select), None);
        assert_eq!(S::Escalated.next(E::Escalate), None);
        let err = TransitionError {
            client: 3,
            from: S::Idle,
            event: E::Accept,
        };
        assert_eq!(
            err.to_string(),
            "client 3: no legal transition from `idle` on `accept`"
        );
    }

    #[test]
    fn in_flight_covers_exactly_the_open_states() {
        let open: Vec<ClientState> = ClientState::ALL
            .into_iter()
            .filter(|s| s.in_flight())
            .collect();
        assert_eq!(
            open,
            vec![
                ClientState::Selected,
                ClientState::Training,
                ClientState::Escalated,
                ClientState::Quarantined,
                ClientState::Reporting,
                ClientState::Suspected
            ]
        );
    }
}
