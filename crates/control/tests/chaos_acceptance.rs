//! Chaos acceptance: under an adversarial wire — 20% drops, 10% round
//! partitions — the event-driven engine still completes every round via
//! its quorum machinery instead of hanging, and the recovery posture
//! (over-selection + retries + liveness tracking) strictly beats the
//! bare configuration on aggregated updates.

use bofl_control::prelude::*;
use bofl_fl::server::FederationConfig;
use proptest::prelude::*;

const ROUNDS: usize = 5;
const COHORT: usize = 4;

fn config(seed: u64, aggregation: AggregationPolicy) -> FederationConfig {
    FederationConfig {
        clients_per_round: COHORT,
        rounds: ROUNDS,
        classes: 3,
        feature_dims: 6,
        seed,
        aggregation,
        ..FederationConfig::default()
    }
}

/// The acceptance plan: every fifth update lost outright, every tenth
/// client partitioned away for a window that can outlive the round.
fn hostile_wire(seed: u64) -> ChaosPlan {
    ChaosPlan::new(seed ^ 0xC4A0)
        .with_drops(0.2)
        .with_partitions(0.1, (10.0, 400.0))
}

fn run_bare(seed: u64) -> ControlRunReport {
    ControlSimulation::builder(FleetSpec::mixed(12, seed))
        .federation(config(seed, AggregationPolicy::none()))
        .workers(2)
        .chaos(hostile_wire(seed))
        .build()
        .run()
}

fn run_recovery(seed: u64) -> ControlRunReport {
    ControlSimulation::builder(FleetSpec::mixed(12, seed))
        .federation(config(seed, AggregationPolicy::recovery()))
        .workers(2)
        .retry(RetryPolicy::recovery())
        .chaos(hostile_wire(seed))
        .liveness(LivenessPolicy::recovery(seed))
        .build()
        .run()
}

fn total_aggregated(report: &ControlRunReport) -> usize {
    report
        .history
        .rounds
        .iter()
        .map(|r| r.aggregated.len())
        .sum()
}

#[test]
fn chaotic_rounds_complete_via_quorum_instead_of_hanging() {
    let report = run_recovery(42);
    // Every round reached a close record: nothing hung waiting for
    // updates the wire had eaten.
    assert_eq!(report.closes.len(), ROUNDS);
    assert!(report
        .closes
        .windows(2)
        .all(|w| w[0].t_s <= w[1].t_s && w[0].t_s.is_finite()));
    // The chaos genuinely fired (otherwise this suite proves nothing).
    assert!(report.metrics.chaos_dropped() > 0, "no drops injected");
    // The training itself still made progress.
    assert!(total_aggregated(&report) > 0);
    assert!(report.total_energy_j() > 0.0);
}

#[test]
fn recovery_strictly_beats_no_recovery_on_aggregated_updates() {
    let bare = run_bare(42);
    let recovered = run_recovery(42);
    assert_eq!(bare.closes.len(), ROUNDS);
    assert_eq!(recovered.closes.len(), ROUNDS);
    let (b, r) = (total_aggregated(&bare), total_aggregated(&recovered));
    assert!(
        r > b,
        "recovery must aggregate strictly more updates under chaos: bare={b}, recovery={r}"
    );
}

#[test]
fn degraded_closes_and_liveness_verdicts_are_journalled() {
    // Accumulate over several seeds: at 20% drops some round somewhere
    // loses enough of its cohort to expire suspects or degrade a close,
    // and every such verdict must be visible in the journal.
    let mut suspects = 0;
    let mut settled = 0;
    for seed in 0..12u64 {
        let report = run_recovery(seed);
        for e in report.journal.iter() {
            match e.cause {
                EventCause::LivenessSuspect => suspects += 1,
                EventCause::LivenessExpired | EventCause::TransportLoss => settled += 1,
                _ => {}
            }
        }
    }
    assert!(suspects > 0, "no client was ever suspected");
    assert!(settled > 0, "no lost update was ever settled");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Partitions that heal before the round deadline are only latency:
    /// with over-selection and liveness armed, every round still makes
    /// its quorum — no partition-held update is mistaken for a death.
    #[test]
    fn partitions_healing_before_the_deadline_still_reach_quorum(seed in 0u64..1_000_000) {
        // Learn the deadline scale from a chaos-free run, then partition
        // clients for strictly less than the shortest round deadline.
        let baseline = ControlSimulation::builder(FleetSpec::mixed(12, seed))
            .federation(config(seed, AggregationPolicy::recovery()))
            .build()
            .run();
        let min_deadline = baseline
            .history
            .rounds
            .iter()
            .map(|r| r.deadline_s)
            .fold(f64::INFINITY, f64::min);
        prop_assert!(min_deadline.is_finite() && min_deadline > 0.0);

        let plan = ChaosPlan::new(seed)
            .with_partitions(0.5, (0.0, 0.9 * min_deadline));
        let report = ControlSimulation::builder(FleetSpec::mixed(12, seed))
            .federation(config(seed, AggregationPolicy::recovery()))
            .workers(2)
            .chaos(plan)
            .liveness(LivenessPolicy::recovery(seed))
            .build()
            .run();
        prop_assert_eq!(report.closes.len(), ROUNDS);
        for close in &report.closes {
            prop_assert!(
                close.quorum_met,
                "round {} missed quorum ({}/{}) despite heal-before-deadline partitions",
                close.round, close.accepted, close.quorum
            );
            prop_assert!(!close.degraded);
        }
    }
}
