//! The control plane's headline guarantee: for a fixed fleet seed the
//! event journal is **byte-identical at any worker count**. Virtual
//! arrival times are derived from simulated durations and seeded backoff
//! draws, so the OS scheduler can reorder *computation* however it likes
//! without reordering *events*.

use bofl_control::prelude::*;
use bofl_fl::server::FederationConfig;
use proptest::prelude::*;

/// A deliberately hostile run: dropout, stragglers, upload failures,
/// churn, retries and quorum closes all active at once.
fn run_control(seed: u64, workers: usize) -> ControlRunReport {
    let spec = FleetSpec::mixed(10, seed);
    ControlSimulation::builder(spec)
        .federation(FederationConfig {
            clients_per_round: 4,
            rounds: 3,
            classes: 3,
            feature_dims: 6,
            seed,
            aggregation: AggregationPolicy::recovery(),
            ..FederationConfig::default()
        })
        .workers(workers)
        .faults(
            FaultPlan::new(seed ^ 0xFA17)
                .with_dropout(0.15)
                .with_stragglers(0.25, (1.5, 3.0))
                .with_upload_failures(0.1)
                .with_churn(0.1, 1),
        )
        .retry(RetryPolicy::recovery())
        .build()
        .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Workers ∈ {1, 2, 8}: identical histories, identical metrics, and a
    /// byte-identical journal in both export formats.
    #[test]
    fn journal_is_byte_identical_across_worker_counts(seed in 0u64..1_000_000) {
        let one = run_control(seed, 1);
        let two = run_control(seed, 2);
        let eight = run_control(seed, 8);
        prop_assert_eq!(&one.history, &two.history);
        prop_assert_eq!(&one.history, &eight.history);
        prop_assert_eq!(one.metrics.to_csv(), two.metrics.to_csv());
        prop_assert_eq!(one.metrics.to_csv(), eight.metrics.to_csv());
        prop_assert_eq!(one.journal.to_csv(), two.journal.to_csv());
        prop_assert_eq!(one.journal.to_csv(), eight.journal.to_csv());
        prop_assert_eq!(one.journal.to_jsonl(), eight.journal.to_jsonl());
        prop_assert_eq!(&one.closes, &eight.closes);
    }

    /// Replaying the journal any run produced reconstructs the final
    /// state vector the live plane holds — on top of determinism, the
    /// journal is *sufficient*.
    #[test]
    fn any_seeds_journal_replays_to_the_live_states(seed in 0u64..1_000_000, workers in 1usize..9) {
        let spec = FleetSpec::mixed(10, seed);
        let mut sim = ControlSimulation::builder(spec)
            .federation(FederationConfig {
                clients_per_round: 4,
                rounds: 2,
                classes: 3,
                feature_dims: 6,
                seed,
                aggregation: AggregationPolicy::recovery(),
                ..FederationConfig::default()
            })
            .workers(workers)
            .faults(FaultPlan::new(seed).with_dropout(0.2).with_churn(0.15, 1))
            .build();
        let report = sim.run();
        prop_assert_eq!(report.journal.evicted(), 0);
        let entries: Vec<EventEntry> = report.journal.iter().copied().collect();
        let rebuilt = ControlPlane::replay(entries.iter(), 10).expect("journal must replay");
        let plane = sim.plane();
        let plane = plane.lock().unwrap();
        prop_assert_eq!(rebuilt.as_slice(), plane.states());
    }
}

#[test]
fn different_seeds_diverge() {
    // Determinism must come from the seed, not from a constant journal.
    let a = run_control(1, 4);
    let b = run_control(2, 4);
    assert_ne!(a.journal.to_csv(), b.journal.to_csv());
}

#[test]
fn repeated_runs_are_reproducible() {
    let first = run_control(77, 4);
    let second = run_control(77, 4);
    assert_eq!(first.history, second.history);
    assert_eq!(first.journal.to_csv(), second.journal.to_csv());
    assert_eq!(first.closes, second.closes);
}

#[test]
fn timestamps_are_virtual_not_wall_clock() {
    // A parallel run finishes its wall-clock work in a different order
    // and duration than a sequential one; the journalled times must not
    // care. Also pin basic sanity: time never moves backwards across
    // rounds' close records.
    let report = run_control(5, 8);
    let closes = &report.closes;
    assert!(closes.windows(2).all(|w| w[0].t_s <= w[1].t_s));
    assert!(report
        .journal
        .iter()
        .all(|e| e.t_s.is_finite() && e.t_s >= 0.0));
}
