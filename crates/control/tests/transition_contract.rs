//! The transition contract, pinned exhaustively.
//!
//! Every `(state, event)` pair — all 120 of them — is classified as either
//! a legal edge with a known destination or an illegal pair that must
//! come back as a typed `TransitionError` without panicking. The legal
//! set below is the *complete* contract: adding or removing an edge in
//! `ClientState::next` fails this test until the table here (and in
//! DESIGN.md) is updated to match.

use bofl_control::prelude::*;
use bofl_control::{plane::ControlPlane, ReplayError};
use proptest::prelude::*;

use ClientEvent as E;
use ClientState as S;

/// The complete legal-edge table: `(from, event, to)`.
const LEGAL: [(S, E, S); 22] = [
    (S::Idle, E::Select, S::Selected),
    (S::Idle, E::Depart, S::Departed),
    (S::Selected, E::Start, S::Training),
    (S::Selected, E::Drop, S::Dropped),
    (S::Training, E::Escalate, S::Escalated),
    (S::Training, E::Quarantine, S::Quarantined),
    (S::Training, E::Finish, S::Reporting),
    (S::Training, E::Drop, S::Dropped),
    (S::Escalated, E::Quarantine, S::Quarantined),
    (S::Escalated, E::Finish, S::Reporting),
    (S::Escalated, E::Drop, S::Dropped),
    (S::Quarantined, E::Finish, S::Reporting),
    (S::Quarantined, E::Drop, S::Dropped),
    (S::Reporting, E::Accept, S::Aggregated),
    (S::Reporting, E::Drop, S::Dropped),
    (S::Reporting, E::Suspect, S::Suspected),
    (S::Suspected, E::Heal, S::Reporting),
    (S::Suspected, E::Drop, S::Dropped),
    (S::Aggregated, E::Reset, S::Idle),
    (S::Dropped, E::Reset, S::Idle),
    (S::Dropped, E::Depart, S::Departed),
    (S::Departed, E::Join, S::Idle),
];

fn expected(from: S, event: E) -> Option<S> {
    LEGAL
        .iter()
        .find(|(f, e, _)| *f == from && *e == event)
        .map(|(_, _, to)| *to)
}

#[test]
fn every_state_event_pair_matches_the_table() {
    let mut legal = 0;
    for from in S::ALL {
        for event in E::ALL {
            assert_eq!(
                from.next(event),
                expected(from, event),
                "contract mismatch at ({from}, {event})"
            );
            if from.next(event).is_some() {
                legal += 1;
            }
        }
    }
    assert_eq!(
        legal,
        LEGAL.len(),
        "the table must be the complete contract"
    );
    assert_eq!(S::ALL.len() * E::ALL.len(), 120);
}

#[test]
fn illegal_pairs_error_through_the_plane_without_panicking() {
    for from in S::ALL {
        for event in E::ALL {
            if expected(from, event).is_some() {
                continue;
            }
            // Walk a fresh plane into `from`, then hit it with `event`.
            let mut plane = ControlPlane::new(1);
            drive_to(&mut plane, from);
            let before = plane.journal().total_appended();
            let err = plane
                .apply(0, event, EventCause::Selection, 0, 0.0)
                .expect_err("illegal pair must be refused");
            assert_eq!(
                err,
                TransitionError {
                    client: 0,
                    from,
                    event
                }
            );
            assert_eq!(plane.state(0), from, "refusal must not move the state");
            assert_eq!(
                plane.journal().total_appended(),
                before,
                "refusal must not journal"
            );
        }
    }
}

/// Drive client 0 of a fresh plane from Idle into `target` along legal
/// edges only.
fn drive_to(plane: &mut ControlPlane, target: S) {
    let path: &[E] = match target {
        S::Idle => &[],
        S::Selected => &[E::Select],
        S::Training => &[E::Select, E::Start],
        S::Escalated => &[E::Select, E::Start, E::Escalate],
        S::Quarantined => &[E::Select, E::Start, E::Quarantine],
        S::Reporting => &[E::Select, E::Start, E::Finish],
        S::Suspected => &[E::Select, E::Start, E::Finish, E::Suspect],
        S::Aggregated => &[E::Select, E::Start, E::Finish, E::Accept],
        S::Dropped => &[E::Select, E::Drop],
        S::Departed => &[E::Depart],
    };
    for &event in path {
        plane
            .apply(0, event, EventCause::Selection, 0, 0.0)
            .expect("setup path is legal");
    }
    assert_eq!(plane.state(0), target);
}

#[test]
fn terminal_states_do_not_exist() {
    // Every state must have at least one outgoing edge: the lifecycle
    // never wedges a client permanently.
    for from in S::ALL {
        assert!(
            E::ALL.iter().any(|&e| from.next(e).is_some()),
            "state {from} has no outgoing edges"
        );
    }
}

/// A strategy producing random event sequences; applying them through a
/// plane (ignoring refusals) yields an arbitrary reachable journal.
fn random_events() -> impl Strategy<Value = Vec<(usize, u8)>> {
    proptest::collection::vec((0usize..4, 0u8..12), 0..200)
}

proptest! {
    /// Replaying any reachable journal over a fresh fleet reconstructs
    /// exactly the final state vector — the journal alone carries the
    /// whole lifecycle history.
    #[test]
    fn replay_reconstructs_final_states(events in random_events()) {
        let mut plane = ControlPlane::new(4);
        for (client, raw) in events {
            let event = E::ALL[raw as usize];
            // Refusals are fine: we only care that what *was* journalled
            // replays exactly.
            let _ = plane.apply(client, event, EventCause::Selection, 0, 0.0);
        }
        let entries: Vec<EventEntry> = plane.journal().iter().copied().collect();
        let rebuilt = ControlPlane::replay(entries.iter(), 4)
            .expect("a journal the plane wrote must replay");
        prop_assert_eq!(rebuilt.as_slice(), plane.states());
    }

    /// Tampering with a journalled `from` state is always detected.
    #[test]
    fn replay_rejects_corrupted_from(events in random_events(), victim in 0usize..200) {
        let mut plane = ControlPlane::new(4);
        for (client, raw) in events {
            let _ = plane.apply(client, E::ALL[raw as usize], EventCause::Selection, 0, 0.0);
        }
        let mut entries: Vec<EventEntry> = plane.journal().iter().copied().collect();
        if entries.is_empty() {
            return Ok(());
        }
        let victim = victim % entries.len();
        // Flip `from` to a state it wasn't — a prefix mismatch must
        // surface as StateMismatch (or IllegalEdge if the forged edge is
        // impossible outright).
        let forged = S::ALL[(entries[victim].from as usize + 1) % S::ALL.len()];
        entries[victim].from = forged;
        prop_assert!(matches!(
            ControlPlane::replay(entries.iter(), 4),
            Err(ReplayError::StateMismatch { .. }) | Err(ReplayError::IllegalEdge { .. })
        ));
    }
}
