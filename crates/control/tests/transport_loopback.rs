//! Loopback acceptance: swapping the identity wire for real OS-thread
//! lanes must change *nothing*. With zero injected faults the
//! [`LoopbackTransport`] journal is byte-identical to the virtual
//! engine's at any lane count and any worker count — the lanes race on
//! the OS scheduler, but arrival times are virtual, so the race is
//! erased before the timeline is played.

use bofl_control::chaos::ChaosTransport;
use bofl_control::prelude::*;
use bofl_fl::server::FederationConfig;
use proptest::prelude::*;

/// The same deliberately hostile baseline the determinism suite uses:
/// dropout, stragglers, upload failures, churn, retries and quorum
/// closes all active at once — everything except wire faults.
fn builder(seed: u64, workers: usize) -> ControlSimulationBuilder {
    ControlSimulation::builder(FleetSpec::mixed(10, seed))
        .federation(FederationConfig {
            clients_per_round: 4,
            rounds: 3,
            classes: 3,
            feature_dims: 6,
            seed,
            aggregation: AggregationPolicy::recovery(),
            ..FederationConfig::default()
        })
        .workers(workers)
        .faults(
            FaultPlan::new(seed ^ 0xFA17)
                .with_dropout(0.15)
                .with_stragglers(0.25, (1.5, 3.0))
                .with_upload_failures(0.1)
                .with_churn(0.1, 1),
        )
        .retry(RetryPolicy::recovery())
}

fn run_virtual(seed: u64, workers: usize) -> ControlRunReport {
    builder(seed, workers).build().run()
}

fn run_loopback(seed: u64, workers: usize, lanes: usize) -> ControlRunReport {
    builder(seed, workers)
        .transport(LoopbackTransport::new(lanes))
        .build()
        .run()
}

#[test]
fn zero_fault_loopback_is_byte_identical_to_virtual() {
    let seed = 42;
    let reference = run_virtual(seed, 1);
    for workers in [1, 2, 8] {
        for lanes in [1, 2, 8] {
            let loopback = run_loopback(seed, workers, lanes);
            assert_eq!(
                reference.journal.to_csv(),
                loopback.journal.to_csv(),
                "journal diverged at workers={workers}, lanes={lanes}"
            );
            assert_eq!(
                reference.metrics.to_csv(),
                loopback.metrics.to_csv(),
                "metrics diverged at workers={workers}, lanes={lanes}"
            );
            assert_eq!(reference.history, loopback.history);
            assert_eq!(reference.closes, loopback.closes);
        }
    }
}

#[test]
fn loopback_under_an_empty_chaos_plan_stays_identical() {
    // The full acceptance stack — loopback lanes wrapped in a chaos
    // decorator — with an *empty* plan must still be a byte-identical
    // no-op: chaos only changes the run when a fault family is armed.
    let seed = 7;
    let reference = run_virtual(seed, 2);
    let chaotic = builder(seed, 2)
        .transport(ChaosTransport::new(
            Box::new(LoopbackTransport::new(4)),
            ChaosPlan::none(),
        ))
        .build()
        .run();
    assert_eq!(reference.journal.to_csv(), chaotic.journal.to_csv());
    assert_eq!(reference.journal.to_jsonl(), chaotic.journal.to_jsonl());
    assert_eq!(reference.metrics.to_csv(), chaotic.metrics.to_csv());
    assert_eq!(reference.history, chaotic.history);
}

#[test]
fn loopback_reports_wire_stats_per_round() {
    let mut sim = builder(11, 2).transport(LoopbackTransport::new(3)).build();
    let report = sim.run();
    let plane = sim.plane();
    let plane = plane.lock().unwrap();
    let totals = plane.wire_totals();
    // Every round recorded its stats; a faultless wire loses nothing.
    assert!(totals.sent > 0);
    assert_eq!(totals.dropped, 0);
    assert_eq!(totals.duplicated, 0);
    assert_eq!(totals.partition_held, 0);
    assert_eq!(report.metrics.chaos_dropped(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seed, any worker count, any lane count: one canonical journal.
    #[test]
    fn any_lane_count_reproduces_the_virtual_journal(
        seed in 0u64..1_000_000,
        workers in 1usize..9,
        lanes in 1usize..9,
    ) {
        let reference = run_virtual(seed, 1);
        let loopback = run_loopback(seed, workers, lanes);
        prop_assert_eq!(reference.journal.to_csv(), loopback.journal.to_csv());
        prop_assert_eq!(reference.metrics.to_csv(), loopback.metrics.to_csv());
        prop_assert_eq!(&reference.history, &loopback.history);
        prop_assert_eq!(&reference.closes, &loopback.closes);
    }
}
