//! The event-driven engine must clear the same recovery acceptance bar
//! the barrier fleet engine does (see `bofl-fleet`'s `recovery` suite):
//! under the reference fault plan the recovery stack strictly beats the
//! no-recovery baseline — now with quorum-*closed* rounds instead of a
//! barrier join, and with mid-round churn as an ordinary lifecycle event.

use bofl::baselines::OracleController;
use bofl::exploit::ExploitParams;
use bofl_control::prelude::*;
use bofl_fl::server::FederationConfig;
use bofl_workload::{FlTask, TaskKind, Testbed};

/// The reference fault plan: 30% transient stragglers slowed 2–4×, 10%
/// of uploads lost.
fn reference_faults(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_stragglers(0.3, (2.0, 4.0))
        .with_upload_failures(0.1)
}

fn federation_config(seed: u64, aggregation: AggregationPolicy) -> FederationConfig {
    FederationConfig {
        clients_per_round: 4,
        rounds: 10,
        classes: 3,
        feature_dims: 6,
        seed,
        aggregation,
        ..FederationConfig::default()
    }
}

/// Every client runs the Oracle controller for its own device — the
/// deadline-filling posture that mid-round escalation rescues.
fn oracle_sim(
    spec: FleetSpec,
    seed: u64,
    aggregation: AggregationPolicy,
    retry: RetryPolicy,
    exploit: ExploitParams,
) -> ControlSimulation {
    ControlSimulation::builder(spec)
        .federation(federation_config(seed, aggregation))
        .faults(reference_faults(seed ^ 0xFA17))
        .retry(retry)
        .controller_factory(move |id| {
            let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
            let profile = spec.device(id).profile_all(&task);
            Box::new(OracleController::new(profile).with_params(exploit))
        })
        .build()
}

/// The acceptance criterion, ported verbatim onto the event-driven
/// engine: strictly lower miss rate AND strictly more aggregated updates
/// per round than the no-recovery baseline, on the same seed and plan.
#[test]
fn event_driven_recovery_beats_no_recovery_baseline() {
    let seed = 33;
    let spec = FleetSpec::mixed(8, seed);

    let no_escalation = ExploitParams {
        escalation_enabled: false,
        ..ExploitParams::default()
    };
    let baseline = oracle_sim(
        spec,
        seed,
        AggregationPolicy::none(),
        RetryPolicy::none(),
        no_escalation,
    )
    .run();
    let recovered = oracle_sim(
        spec,
        seed,
        AggregationPolicy::recovery(),
        RetryPolicy::recovery(),
        ExploitParams::default(),
    )
    .run();

    let base_miss = baseline.metrics.mean_miss_rate();
    let rec_miss = recovered.metrics.mean_miss_rate();
    assert!(
        rec_miss < base_miss,
        "recovery must strictly lower the deadline-miss rate: {rec_miss:.3} vs {base_miss:.3}"
    );

    let base_agg = baseline.metrics.mean_aggregated_per_round();
    let rec_agg = recovered.metrics.mean_aggregated_per_round();
    assert!(
        rec_agg > base_agg,
        "recovery must strictly raise aggregated updates per round: {rec_agg:.2} vs {base_agg:.2}"
    );

    // The recovery machinery fired, and the journal shows it as ordinary
    // transitions — escalation and retried deliveries both present.
    assert!(recovered.metrics.escalated_jobs() > 0);
    assert!(recovered
        .journal
        .iter()
        .any(|e| e.cause == EventCause::GuardianEscalation));
    assert!(recovered
        .journal
        .iter()
        .any(|e| e.cause == EventCause::UploadRecovered));
    // Every round records its close, and the quorum bar matches policy.
    assert_eq!(recovered.closes.len(), 10);
    assert!(recovered.closes.iter().all(|c| c.quorum == 2));
}

/// Without over-selection the close target equals the cohort, so the
/// event-driven engine degenerates to the barrier join: same history as
/// `FleetEngine` on the same seed and faults, and nothing lands late.
#[test]
fn no_over_selection_matches_the_barrier_engine_trace() {
    use bofl_fleet::sim::FleetSimulation;
    let seed = 19;
    let spec = FleetSpec::mixed(8, seed);
    let config = federation_config(seed, AggregationPolicy::none());
    let event = ControlSimulation::builder(spec)
        .federation(config)
        .workers(4)
        .faults(reference_faults(seed ^ 0xFA17))
        .retry(RetryPolicy::recovery())
        .build()
        .run();
    let barrier = FleetSimulation::builder(spec)
        .federation(config)
        .workers(4)
        .faults(reference_faults(seed ^ 0xFA17))
        .retry(RetryPolicy::recovery())
        .build()
        .run();
    assert_eq!(event.history, barrier.history);
    assert_eq!(event.metrics.to_csv(), barrier.metrics.to_csv());
    assert!(event
        .journal
        .iter()
        .all(|e| e.cause != EventCause::RoundClosed));
}

/// With aggressive over-selection, rounds actually close early on their
/// quorum of first deliveries, and late arrivals are journalled as
/// `round_closed` drops instead of silently aggregated.
#[test]
fn over_selection_closes_rounds_early() {
    let seed = 45;
    let spec = FleetSpec::mixed(12, seed);
    let report = ControlSimulation::builder(spec)
        .federation(federation_config(
            seed,
            AggregationPolicy {
                quorum_fraction: 0.5,
                over_select_fraction: 1.0,
            },
        ))
        .workers(4)
        .faults(reference_faults(seed ^ 0xFA17))
        .retry(RetryPolicy::recovery())
        .build()
        .run();
    assert!(
        report.early_closes() > 0,
        "2× over-selection under the reference plan must close some round early"
    );
    let late: Vec<_> = report
        .journal
        .iter()
        .filter(|e| e.cause == EventCause::RoundClosed)
        .collect();
    assert!(!late.is_empty(), "early closes must strand late arrivals");
    // A late arrival is excluded from aggregation: its id never shows up
    // in the round's aggregated set.
    for e in &late {
        let round = &report.history.rounds[e.round as usize];
        assert!(!round.aggregated.contains(&(e.client as usize)));
    }
    // Closing early never starves a round below its nominal cohort: the
    // close target is the full cohort, so accepted ≥ cohort whenever a
    // round closed early.
    for c in report.closes.iter().filter(|c| c.closed_early) {
        assert!(c.accepted >= 4);
        assert!(c.quorum_met);
    }
}

/// Mid-round churn: clients join and leave the fleet while rounds are in
/// flight, every departure/arrival is journalled, and the run still
/// completes with quorum-closed rounds and a learning global model.
#[test]
fn churn_scenario_completes_with_quorum_closed_rounds() {
    let seed = 7;
    let spec = FleetSpec::mixed(12, seed);
    let mut sim = ControlSimulation::builder(spec)
        .federation(FederationConfig {
            clients_per_round: 4,
            rounds: 12,
            classes: 3,
            feature_dims: 6,
            seed,
            aggregation: AggregationPolicy::recovery(),
            ..FederationConfig::default()
        })
        .workers(4)
        .faults(reference_faults(seed ^ 0xFA17).with_churn(0.12, 2))
        .retry(RetryPolicy::recovery())
        .build();
    let report = sim.run();

    // The run completed every round and recorded every close.
    assert_eq!(report.history.rounds.len(), 12);
    assert_eq!(report.closes.len(), 12);

    // Churn actually happened, in both directions, and the journal and
    // the metrics CSV agree on the counts.
    let departures: usize = (0..12).map(|r| report.journal.churn_counts(r).1).sum();
    let arrivals: usize = (0..12).map(|r| report.journal.churn_counts(r).0).sum();
    assert!(departures > 0, "churn plan must produce departures");
    assert!(arrivals > 0, "absent clients must come back");
    assert_eq!(report.metrics.churn_departures(), departures);
    assert_eq!(report.metrics.churn_arrivals(), arrivals);
    let csv = report.metrics.to_csv();
    let header = csv.lines().next().unwrap();
    assert!(header.contains("churn_arrivals") && header.contains("churn_departures"));

    // Aggregation kept going despite the churn: most rounds met quorum.
    let met = report.closes.iter().filter(|c| c.quorum_met).count();
    assert!(met >= 8, "churned fleet met quorum only {met}/12 rounds");
    assert!(report.final_accuracy() > 0.0);
    assert!(report.total_energy_j() > 0.0);
}
