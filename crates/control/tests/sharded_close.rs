//! Hierarchical aggregation through the control plane: per-shard quorum
//! accounting on round closes, shard-shortfall causes on reset edges,
//! and byte accounting for the compressed uplink — all without ever
//! discarding an accepted update or perturbing the journalled lifecycle.

use bofl_control::prelude::*;
use bofl_fl::server::FederationConfig;

fn config(seed: u64) -> FederationConfig {
    FederationConfig {
        clients_per_round: 6,
        rounds: 4,
        classes: 3,
        feature_dims: 6,
        seed,
        aggregation: AggregationPolicy::recovery(),
        ..FederationConfig::default()
    }
}

fn hostile_faults(seed: u64) -> FaultPlan {
    FaultPlan::new(seed ^ 0xFA17)
        .with_dropout(0.25)
        .with_stragglers(0.2, (1.5, 3.0))
        .with_upload_failures(0.15)
}

fn build(seed: u64, workers: usize) -> ControlSimulation {
    ControlSimulation::builder(FleetSpec::mixed(12, seed))
        .federation(config(seed))
        .workers(workers)
        .faults(hostile_faults(seed))
        .retry(RetryPolicy::recovery())
        .shard_plan(ShardPlan::with_shards(3), 1.0)
        .build()
}

#[test]
fn shard_accounting_surfaces_in_closes_journal_and_metrics() {
    let report = build(11, 1).run();
    // Every close carries the plan's shard count (3 shards over a
    // 6-client cohort, minus any absent clients).
    assert!(report.closes.iter().all(|c| c.shards >= 1 && c.shards <= 3));
    // A full-quorum fraction under 25% dropout must starve some shard.
    let shortfalls: usize = report.closes.iter().map(|c| c.shard_shortfalls).sum();
    assert!(
        shortfalls > 0,
        "hostile faults must starve at least one shard"
    );
    assert!(report.shard_shortfall_rounds() > 0);
    // Starved shards label their members' reset edges with the dedicated
    // cause — the journal carries the distress signal.
    let labelled: usize = (0..4)
        .map(|r| report.journal.shard_shortfall_resets(r))
        .sum();
    assert!(
        labelled > 0,
        "starved members must reset with the shard cause"
    );
    // And the metrics CSV surfaces the same bookkeeping.
    assert!(report.metrics.shard_shortfall_rounds() > 0);
    let csv = report.metrics.to_csv();
    let header = csv.lines().next().unwrap();
    assert!(header.contains(",shards,shard_shortfalls,"));
}

#[test]
fn shard_accounting_is_labels_only_never_discards_updates() {
    // The same run with and without a shard plan aggregates the same
    // updates: identical FedAvg history, identical accepted counts.
    let with_plan = build(23, 2).run();
    let without = ControlSimulation::builder(FleetSpec::mixed(12, 23))
        .federation(config(23))
        .workers(2)
        .faults(hostile_faults(23))
        .retry(RetryPolicy::recovery())
        .build()
        .run();
    assert_eq!(with_plan.history, without.history);
    assert_eq!(with_plan.journal.len(), without.journal.len());
    for (a, b) in with_plan.closes.iter().zip(without.closes.iter()) {
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.quorum_met, b.quorum_met);
    }
    assert_eq!(without.closes.iter().map(|c| c.shards).sum::<usize>(), 0);
}

#[test]
fn sharded_journal_is_identical_across_worker_counts() {
    let one = build(37, 1).run();
    let eight = build(37, 8).run();
    assert_eq!(one.history, eight.history);
    assert_eq!(one.journal.to_csv(), eight.journal.to_csv());
    assert_eq!(one.closes, eight.closes);
    assert_eq!(one.metrics.to_csv(), eight.metrics.to_csv());
}

#[test]
fn compressed_uplink_accounts_bytes_and_stays_deterministic() {
    let run = |workers: usize| {
        ControlSimulation::builder(FleetSpec::mixed(12, 5))
            .federation(config(5))
            .workers(workers)
            .faults(hostile_faults(5))
            .retry(RetryPolicy::recovery())
            .compressor(Int8Quantizer)
            .build()
            .run()
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a.history, b.history);
    assert_eq!(a.journal.to_csv(), b.journal.to_csv());
    // Int8 puts roughly one byte per parameter on the wire vs eight raw.
    let wire = a.metrics.wire_bytes();
    let raw = a.metrics.wire_raw_bytes();
    assert!(wire > 0, "compressed uploads must account bytes");
    assert!(wire < raw / 4, "int8 must beat dense f64 by a wide margin");
    let csv = a.metrics.to_csv();
    assert!(csv
        .lines()
        .next()
        .unwrap()
        .contains(",wire_bytes,wire_raw_bytes,"));
}

#[test]
fn identity_compressor_changes_nothing_but_byte_accounting() {
    let base = ControlSimulation::builder(FleetSpec::mixed(10, 9))
        .federation(config(9))
        .faults(hostile_faults(9))
        .build()
        .run();
    let dense = ControlSimulation::builder(FleetSpec::mixed(10, 9))
        .federation(config(9))
        .faults(hostile_faults(9))
        .compressor(NoCompression)
        .build()
        .run();
    // The identity encoding decodes to the exact same f64s, so the whole
    // run — history and journal — is unchanged; only bytes are counted.
    assert_eq!(base.history, dense.history);
    assert_eq!(base.journal.to_csv(), dense.journal.to_csv());
    assert_eq!(base.metrics.wire_bytes(), 0);
    assert!(dense.metrics.wire_bytes() > 0);
    assert_eq!(dense.metrics.wire_bytes(), dense.metrics.wire_raw_bytes());
}
