//! Socket acceptance: carrying a round over real localhost TCP must
//! change *nothing*. Virtual timestamps ride inside the frames, so after
//! the canonical sort a zero-fault socket run — at any lane count, with
//! forced reconnects, or with one spawned OS process per client — is
//! byte-identical to the virtual engine. The chaos decorator composes
//! over the socket exactly as it does over the virtual wire: the seeded
//! fault schedule is transport-independent.

use std::time::Duration;

use bofl_control::chaos::ChaosTransport;
use bofl_control::prelude::*;
use bofl_fl::server::FederationConfig;
use proptest::prelude::*;

/// The same hostile baseline the loopback suite uses: dropout,
/// stragglers, upload failures, churn, retries and quorum closes all
/// active at once — everything except wire faults.
fn builder(seed: u64, workers: usize) -> ControlSimulationBuilder {
    ControlSimulation::builder(FleetSpec::mixed(10, seed))
        .federation(FederationConfig {
            clients_per_round: 4,
            rounds: 3,
            classes: 3,
            feature_dims: 6,
            seed,
            aggregation: AggregationPolicy::recovery(),
            ..FederationConfig::default()
        })
        .workers(workers)
        .faults(
            FaultPlan::new(seed ^ 0xFA17)
                .with_dropout(0.15)
                .with_stragglers(0.25, (1.5, 3.0))
                .with_upload_failures(0.1)
                .with_churn(0.1, 1),
        )
        .retry(RetryPolicy::recovery())
}

fn run_virtual(seed: u64, workers: usize) -> ControlRunReport {
    builder(seed, workers).build().run()
}

fn assert_identical(reference: &ControlRunReport, got: &ControlRunReport, what: &str) {
    assert_eq!(
        reference.journal.to_jsonl(),
        got.journal.to_jsonl(),
        "journal diverged: {what}"
    );
    assert_eq!(
        reference.metrics.to_csv(),
        got.metrics.to_csv(),
        "metrics diverged: {what}"
    );
    assert_eq!(reference.history, got.history, "history diverged: {what}");
    assert_eq!(reference.closes, got.closes, "closes diverged: {what}");
}

#[test]
fn zero_fault_socket_is_byte_identical_to_virtual_at_any_lane_count() {
    let seed = 42;
    let reference = run_virtual(seed, 1);
    for lanes in [1, 2, 8] {
        let socket = builder(seed, 2)
            .transport(SocketTransport::in_process(lanes))
            .build()
            .run();
        assert_identical(&reference, &socket, &format!("lanes={lanes}"));
    }
}

#[test]
fn socket_matches_loopback_too() {
    // All three carriers implement one contract; pin them to each other,
    // not just pairwise to virtual.
    let seed = 1312;
    let loopback = builder(seed, 2)
        .transport(LoopbackTransport::new(4))
        .build()
        .run();
    let socket = builder(seed, 2)
        .transport(SocketTransport::in_process(4))
        .build()
        .run();
    assert_identical(&loopback, &socket, "socket vs loopback");
}

#[test]
fn forced_reconnects_leave_the_journal_invariant() {
    // The coordinator drops the first accepted connections of every
    // round; lanes must come back through seeded backoff and deliver the
    // same set — exactly once, thanks to (round, client, copy) dedup.
    let seed = 97;
    let reference = run_virtual(seed, 1);
    let reconnecting = builder(seed, 2)
        .transport(
            SocketTransport::in_process(2)
                .with_accept_faults(3)
                .with_ack_timeout(Duration::from_millis(300)),
        )
        .build()
        .run();
    assert_identical(&reference, &reconnecting, "accept_faults=3");
}

#[test]
fn chaos_schedule_is_transport_independent() {
    // Satellite: the same seeded ChaosPlan over the socket produces the
    // same faults, the same journal, the same labels' structure as over
    // the virtual wire — chaos draws only on (seed, round, client).
    let seed = 5150;
    let plan = ChaosPlan::new(seed ^ 0xC4A0)
        .with_drops(0.2)
        .with_duplicates(0.1)
        .with_reordering(0.2, 0.5);
    let over_virtual = builder(seed, 2).chaos(plan).build().run();
    let over_socket = builder(seed, 2)
        .transport(SocketTransport::in_process(4))
        .chaos(plan)
        .build()
        .run();
    assert_identical(&over_virtual, &over_socket, "chaos over socket");
}

#[test]
fn chaos_decorator_composes_over_the_socket_at_carry_level() {
    use bofl_control::transport::Transport;
    let plan = ChaosPlan::new(0xBEEF)
        .with_drops(0.25)
        .with_duplicates(0.2)
        .with_reordering(0.3, 0.4);
    let messages: Vec<Envelope> = (0..12)
        .map(|i| Envelope {
            round: 2,
            client_id: i,
            t_send_s: 30.0 + i as f64 * 0.5,
        })
        .collect();
    let mut over_virtual = ChaosTransport::over_virtual(plan);
    let mut over_socket = ChaosTransport::new(Box::new(SocketTransport::in_process(4)), plan);
    assert_eq!(over_socket.label(), "chaos(socket(4 lanes))");
    assert_eq!(
        over_virtual.carry(2, 30.0, &messages),
        over_socket.carry(2, 30.0, &messages),
        "the decorated fault schedule must not depend on the carrier"
    );
}

#[test]
fn spawned_processes_reproduce_the_virtual_carry() {
    use bofl_control::transport::Transport;
    let exe = env!("CARGO_BIN_EXE_socket_client");
    let messages: Vec<Envelope> = (0..6)
        .map(|i| Envelope {
            round: 1,
            client_id: i,
            // Bit-awkward values, to prove f64s survive the exec boundary.
            t_send_s: 10.0 + (i as f64) / 3.0,
        })
        .collect();
    let want = VirtualTransport.carry(1, 10.0, &messages);
    let got = SocketTransport::spawned(exe).carry(1, 10.0, &messages);
    assert_eq!(got, want, "process clients must match the virtual carry");
}

#[test]
fn spawned_process_sim_matches_virtual() {
    // A shorter config — each envelope costs a process spawn.
    let seed = 77;
    let short = |transport: Option<SocketTransport>| {
        let mut b =
            ControlSimulation::builder(FleetSpec::mixed(6, seed)).federation(FederationConfig {
                clients_per_round: 3,
                rounds: 2,
                classes: 3,
                feature_dims: 6,
                seed,
                aggregation: AggregationPolicy::recovery(),
                ..FederationConfig::default()
            });
        if let Some(t) = transport {
            b = b.transport(t);
        }
        b.build().run()
    };
    let reference = short(None);
    let spawned = short(Some(SocketTransport::spawned(env!(
        "CARGO_BIN_EXE_socket_client"
    ))));
    assert_identical(&reference, &spawned, "spawned processes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any seed, any worker count, any lane count: one canonical journal,
    /// even when every lane is a real TCP connection.
    #[test]
    fn any_socket_lane_count_reproduces_the_virtual_journal(
        seed in 0u64..1_000_000,
        workers in 1usize..5,
        lanes in 1usize..6,
    ) {
        let reference = run_virtual(seed, 1);
        let socket = builder(seed, workers)
            .transport(SocketTransport::in_process(lanes))
            .build()
            .run();
        prop_assert_eq!(reference.journal.to_jsonl(), socket.journal.to_jsonl());
        prop_assert_eq!(reference.metrics.to_csv(), socket.metrics.to_csv());
        prop_assert_eq!(&reference.history, &socket.history);
        prop_assert_eq!(&reference.closes, &socket.closes);
    }
}
