//! Liveness deadline edge cases, pinned at the exact tick.
//!
//! The merged timeline orders same-time entries `(t, kind, client, copy)`
//! with deliveries (kind 0) before suspects (kind 1) before expiries
//! (kind 2). These tests drive [`EventDrivenEngine`] directly with a
//! scripted transport whose arrival times land *exactly* on the zero-
//! jitter suspect and expire deadlines, and pin the tie-breaks:
//!
//! - a report arriving exactly at its suspect deadline is accepted
//!   without ever being suspected;
//! - a report arriving exactly at its expire deadline heals and is
//!   accepted — the expiry fires into an already-settled state and is
//!   ignored;
//! - suspects cut off by an early close are dropped with `RoundClosed`,
//!   reset to `Idle`, and stay selectable in the next round.

use std::collections::HashMap;

use bofl::baselines::PerformantController;
use bofl_control::prelude::*;
use bofl_control::transport::sort_deliveries;
use bofl_fl::client::FlClient;
use bofl_fl::data::SyntheticDataset;
use bofl_fl::engine::{ClientJob, RoundDeadline, RoundEngine};
use bofl_fl::model::{SoftmaxModel, TrainableModel};
use bofl_workload::{FlTask, TaskKind, Testbed};

/// Factors chosen so the zero-jitter deadlines are exact products:
/// suspect at `1.25 · D`, expire at `1.25 · D + 0.5 · D`.
const SUSPECT_FACTOR: f64 = 1.25;
const EXPIRE_FACTOR: f64 = 0.5;

fn policy() -> LivenessPolicy {
    LivenessPolicy::new(9, SUSPECT_FACTOR, EXPIRE_FACTOR, 0.0)
}

fn pool(n: usize) -> Vec<FlClient> {
    let spec = FleetSpec::mixed(n, 7);
    (0..n)
        .map(|id| {
            let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
            let data = SyntheticDataset::gaussian_blobs(task.local_samples(), 6, 3, 0.4, id as u64);
            FlClient::new(
                id,
                spec.device(id),
                task,
                data,
                Box::new(SoftmaxModel::new(6, 3, id as u64)),
                Box::new(PerformantController::new()),
                0.2,
                1000 + id as u64,
            )
        })
        .collect()
}

/// A generous deadline every client trains inside of, so reports exist
/// and the scripted arrival time is the only variable under test.
fn deadline_s(clients: &[FlClient]) -> f64 {
    clients.iter().map(|c| c.t_min_s()).fold(0.0, f64::max) * 2.0
}

fn jobs_for(clients: &[FlClient], round: usize, deadline: f64) -> Vec<ClientJob> {
    clients
        .iter()
        .map(|c| ClientJob {
            client_id: c.id(),
            round,
            deadline: RoundDeadline::Training(deadline),
            dropped: false,
            slowdown: 1.0,
        })
        .collect()
}

/// A transport that arrives each `(round, client)` at a scripted offset
/// from the round start (never before its send time); everything not in
/// the script behaves as the identity carrier. Pure in `(round, t0_s,
/// messages)` plus the script, as the [`Transport`] contract demands.
#[derive(Clone, Default)]
struct ScriptedTransport {
    offsets: HashMap<(usize, usize), f64>,
}

impl ScriptedTransport {
    fn arrive_at(mut self, round: usize, client: usize, offset_s: f64) -> Self {
        self.offsets.insert((round, client), offset_s);
        self
    }
}

impl Transport for ScriptedTransport {
    fn label(&self) -> &str {
        "scripted"
    }

    fn carry(&mut self, round: usize, t0_s: f64, messages: &[Envelope]) -> Carried {
        let mut deliveries: Vec<Delivery> = messages
            .iter()
            .map(|m| Delivery {
                client_id: m.client_id,
                t_send_s: m.t_send_s,
                t_arrive_s: match self.offsets.get(&(round, m.client_id)) {
                    Some(offset) => (t0_s + offset).max(m.t_send_s),
                    None => m.t_send_s,
                },
                copy: 0,
            })
            .collect();
        sort_deliveries(&mut deliveries);
        Carried {
            deliveries,
            stats: WireStats {
                sent: messages.len(),
                ..WireStats::default()
            },
        }
    }

    fn clone_box(&self) -> Box<dyn Transport> {
        Box::new(self.clone())
    }
}

#[test]
fn arrival_exactly_at_the_suspect_deadline_is_never_suspected() {
    let mut clients = pool(2);
    let d = deadline_s(&clients);
    let global = SoftmaxModel::new(6, 3, 77).parameters();
    // Both reports land on the suspect deadline to the bit: the engine
    // computes `t0 + D · SUSPECT_FACTOR` and so does the script.
    let transport = ScriptedTransport::default()
        .arrive_at(0, 0, d * SUSPECT_FACTOR)
        .arrive_at(0, 1, d * SUSPECT_FACTOR);
    let mut engine = EventDrivenEngine::sequential()
        .with_transport(transport)
        .with_liveness(policy());
    let jobs = jobs_for(&clients, 0, d);
    let outcomes = engine.run_batch(&mut clients, &global, &jobs);

    // Delivery (kind 0) wins the tie against suspect (kind 1): both
    // updates are accepted and the liveness tracker never fired.
    assert!(outcomes.iter().all(|o| !o.upload_failed && !o.late));
    let plane = engine.plane();
    let plane = plane.lock().unwrap();
    assert_eq!(plane.journal().liveness_counts(0), (0, 0, 0));
    assert!(plane
        .journal()
        .iter()
        .all(|e| e.cause != EventCause::LivenessSuspect));
    assert!(plane.states().iter().all(|s| *s == ClientState::Idle));
}

#[test]
fn arrival_exactly_at_the_expire_deadline_heals_instead_of_expiring() {
    let mut clients = pool(2);
    let d = deadline_s(&clients);
    let global = SoftmaxModel::new(6, 3, 77).parameters();
    // Client 0 reports on time; client 1 lands exactly on its expire
    // deadline, `1.25·D + 0.5·D` after round start.
    let transport =
        ScriptedTransport::default().arrive_at(0, 1, d * SUSPECT_FACTOR + d * EXPIRE_FACTOR);
    let mut engine = EventDrivenEngine::sequential()
        .with_transport(transport)
        .with_liveness(policy());
    let jobs = jobs_for(&clients, 0, d);
    let outcomes = engine.run_batch(&mut clients, &global, &jobs);

    // The suspect fired at 1.25·D; at the expire tick the delivery
    // (kind 0) is played before the expiry (kind 2), so the client heals
    // and is accepted — the expiry then finds `Aggregated` and is noise.
    assert!(outcomes.iter().all(|o| !o.upload_failed && !o.late));
    let plane = engine.plane();
    let plane = plane.lock().unwrap();
    assert_eq!(
        plane.journal().liveness_counts(0),
        (1, 0, 1),
        "one suspect, zero expiries, one heal"
    );
    let causes: Vec<EventCause> = plane
        .journal()
        .iter()
        .filter(|e| e.client == 1)
        .map(|e| e.cause)
        .collect();
    assert!(causes.contains(&EventCause::LivenessSuspect));
    assert!(causes.contains(&EventCause::LivenessHeal));
    assert!(causes.contains(&EventCause::UploadDelivered));
    assert!(!causes.contains(&EventCause::LivenessExpired));
    assert!(plane.states().iter().all(|s| *s == ClientState::Idle));
}

#[test]
fn suspects_cut_off_by_an_early_close_reset_and_stay_selectable() {
    let mut clients = pool(3);
    let d = deadline_s(&clients);
    let global = SoftmaxModel::new(6, 3, 77).parameters();
    // All three overshoot their suspect deadline; the first two heal and
    // are accepted, and the second acceptance meets the close target of
    // 2, cutting off the third while it is still `Suspected`.
    let transport = ScriptedTransport::default()
        .arrive_at(0, 0, d * 1.30)
        .arrive_at(0, 1, d * 1.35)
        .arrive_at(0, 2, d * 1.50);
    let mut engine = EventDrivenEngine::sequential()
        .with_transport(transport)
        .with_close_policy(AggregationPolicy::none(), 2)
        .with_liveness(policy());
    let jobs = jobs_for(&clients, 0, d);
    let outcomes = engine.run_batch(&mut clients, &global, &jobs);

    assert!(!outcomes[0].late && !outcomes[1].late);
    assert!(outcomes[2].late, "the third report arrived after the close");
    // Late is not lost: the upload reached the server, the round had
    // just already closed.
    assert!(!outcomes[2].upload_failed);
    {
        let plane = engine.plane();
        let plane = plane.lock().unwrap();
        // Three suspects, two heals, no expiries: the expire entries at
        // 1.75·D are ignored once the round is closed.
        assert_eq!(plane.journal().liveness_counts(0), (3, 0, 2));
        let third: Vec<(EventCause, ClientState)> = plane
            .journal()
            .iter()
            .filter(|e| e.client == 2)
            .map(|e| (e.cause, e.to))
            .collect();
        assert!(
            third.contains(&(EventCause::RoundClosed, ClientState::Dropped)),
            "the cut-off suspect is dropped with RoundClosed, not expired: {third:?}"
        );
        let close = plane.closes().last().copied().unwrap();
        assert_eq!(close.accepted, 2);
        assert!(close.closed_early);
        assert!(!close.degraded);
        // The churned client is back to Idle after the reset sweep …
        assert!(plane.states().iter().all(|s| *s == ClientState::Idle));
    }

    // … and selectable: the same cohort is re-admitted for round 1 (a
    // client stuck in a stale state would panic the admission sweep).
    // Everyone reports on time, so the close target of 2 is met without
    // any liveness traffic; the slowest report is simply cut off late.
    let jobs = jobs_for(&clients, 1, d);
    let outcomes = engine.run_batch(&mut clients, &global, &jobs);
    assert_eq!(outcomes.len(), 3);
    let plane = engine.plane();
    let plane = plane.lock().unwrap();
    assert!(
        plane
            .journal()
            .iter()
            .any(|e| e.round == 1 && e.client == 2 && e.cause == EventCause::Selection),
        "the previously cut-off client must be selectable again"
    );
    assert_eq!(plane.journal().liveness_counts(1), (0, 0, 0));
    assert_eq!(plane.closes().last().unwrap().accepted, 2);
    assert!(plane.states().iter().all(|s| *s == ClientState::Idle));
}
