//! Kill-and-resume acceptance: a coordinator killed mid-run and revived
//! from its write-ahead log must be indistinguishable from one that
//! never died. The interrupted run replays the WAL's committed prefix
//! (torn tails and the uncommitted in-flight round are truncated away),
//! re-executes from the first uncommitted round, and ends with the same
//! journal — byte for byte — the same final client states, the same
//! round closes, and the same WAL file bytes as the uninterrupted
//! reference. A live `JournalTail` can stream the log the whole time
//! without perturbing the writer.

use std::io::Write;
use std::path::PathBuf;

use bofl_control::prelude::*;
use bofl_control::wal::encode_record;
use bofl_fl::server::FederationConfig;

const ROUNDS: usize = 6;

fn wal_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bofl-kar-{}-{name}.wal", std::process::id()))
}

/// Deterministic but non-trivial: stragglers and dropout are seeded per
/// `(round, client)`, so the resumed tail re-derives the exact same
/// faults the uninterrupted run saw. Liveness stays off — over-selection
/// escalation is engine-local state, not WAL'd.
fn builder(seed: u64, workers: usize) -> ControlSimulationBuilder {
    ControlSimulation::builder(FleetSpec::mixed(10, seed))
        .federation(FederationConfig {
            clients_per_round: 4,
            rounds: ROUNDS,
            classes: 3,
            feature_dims: 6,
            seed,
            aggregation: AggregationPolicy::recovery(),
            ..FederationConfig::default()
        })
        .workers(workers)
        .faults(
            FaultPlan::new(seed ^ 0xFA17)
                .with_dropout(0.1)
                .with_stragglers(0.2, (1.5, 2.5)),
        )
        .retry(RetryPolicy::recovery())
}

#[test]
fn a_killed_coordinator_resumes_to_the_identical_run() {
    let seed = 2026;
    let reference_wal = wal_path("reference");
    let crashed_wal = wal_path("crashed");

    // The uninterrupted reference, WAL'd for the byte comparison.
    let mut reference = builder(seed, 2).wal(&reference_wal).build();
    let reference_report = reference.run();
    let reference_states = reference.plane().lock().unwrap().states().to_vec();
    drop(reference);

    // The victim: three committed rounds, then the "crash" — the process
    // state is simply dropped; only the WAL survives.
    let mut victim = builder(seed, 2).wal(&crashed_wal).build();
    victim.run_rounds(3);
    let committed_events = victim.plane().lock().unwrap().journal().total_appended();
    drop(victim);

    // Dress the crash site: a whole-but-uncommitted in-flight record
    // (round 3 started selecting), then a torn half-record. Both must be
    // discarded by resume.
    {
        let in_flight = encode_record(&WalRecord::Event(EventEntry {
            seq: committed_events,
            round: 3,
            client: 0,
            from: ClientState::Idle,
            to: ClientState::Selected,
            cause: EventCause::Selection,
            t_s: 1.0e9, // nonsense on purpose: it must not leak into now_s
        }));
        let mut torn = in_flight.clone();
        torn.truncate(torn.len() / 2);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&crashed_wal)
            .unwrap();
        f.write_all(&in_flight).unwrap();
        f.write_all(&torn).unwrap();
    }

    // Revive — at a different worker count, to prove the journal never
    // depended on scheduling.
    let mut resumed = builder(seed, 4).resume_from_wal(&crashed_wal).build();
    let report = *resumed.resume_report().expect("resume report");
    assert_eq!(resumed.next_round(), 3);
    assert_eq!(report.next_round, 3);
    assert_eq!(report.events_replayed as u64, committed_events);
    assert_eq!(report.in_flight_discarded, 1);
    assert!(report.torn_bytes > 0);
    assert!(report.now_s > 0.0 && report.now_s < 1.0e9);

    let resumed_report = resumed.run();
    assert_eq!(resumed.next_round(), ROUNDS);
    let resumed_states = resumed.plane().lock().unwrap().states().to_vec();
    drop(resumed);

    assert_eq!(
        reference_report.journal.to_jsonl(),
        resumed_report.journal.to_jsonl(),
        "the resumed journal must be byte-identical to the uninterrupted run"
    );
    assert_eq!(reference_report.closes, resumed_report.closes);
    assert_eq!(resumed_report.closes.len(), ROUNDS);
    assert!(!resumed_report.closes.last().unwrap().degraded);
    assert_eq!(reference_states, resumed_states);
    assert_eq!(
        std::fs::read(&reference_wal).unwrap(),
        std::fs::read(&crashed_wal).unwrap(),
        "the recovered WAL must converge to the uninterrupted WAL, byte for byte"
    );

    std::fs::remove_file(&reference_wal).ok();
    std::fs::remove_file(&crashed_wal).ok();
}

#[test]
fn resume_of_a_completed_run_has_nothing_left_to_do() {
    let seed = 31;
    let path = wal_path("complete");
    let finished = builder(seed, 2).wal(&path).build().run();

    let mut resumed = builder(seed, 1).resume_from_wal(&path).build();
    let report = *resumed.resume_report().unwrap();
    assert_eq!(report.next_round, ROUNDS);
    assert_eq!(report.in_flight_discarded, 0);
    assert_eq!(report.torn_bytes, 0);
    let tail_report = resumed.run();
    assert!(tail_report.history.rounds.is_empty(), "no rounds remain");
    assert_eq!(tail_report.journal.to_jsonl(), finished.journal.to_jsonl());
    assert_eq!(tail_report.closes, finished.closes);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_works_under_a_socket_transport_and_chaos() {
    // Crash-safety composes with the rest of the stack: the same journal
    // comes back when the resumed run carries its rounds over TCP with a
    // seeded chaos schedule on top.
    let seed = 404;
    let plan = ChaosPlan::new(seed ^ 0xC4A0)
        .with_drops(0.15)
        .with_duplicates(0.1);
    let stack = |workers: usize| {
        builder(seed, workers)
            .transport(SocketTransport::in_process(2))
            .chaos(plan)
    };
    let path = wal_path("socket-chaos");
    let reference = stack(2).build().run();

    let mut victim = stack(2).wal(&path).build();
    victim.run_rounds(2);
    drop(victim);
    let mut resumed = stack(3).resume_from_wal(&path).build();
    assert_eq!(resumed.next_round(), 2);
    let resumed_report = resumed.run();
    assert_eq!(
        reference.journal.to_jsonl(),
        resumed_report.journal.to_jsonl()
    );
    assert_eq!(reference.closes, resumed_report.closes);
    std::fs::remove_file(&path).ok();
}

#[test]
fn a_live_tail_streams_the_wal_without_perturbing_the_writer() {
    let seed = 55;
    let path = wal_path("live-tail");
    // Writer: a real simulation appending round by round on its own
    // thread. Reader: a JournalTail polling the same file concurrently.
    let writer_path = path.clone();
    let writer = std::thread::spawn(move || {
        let mut sim = builder(seed, 2).wal(&writer_path).build();
        for _ in 0..ROUNDS {
            sim.run_rounds(1);
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        sim.plane().lock().unwrap().journal().to_jsonl()
    });
    // Wait for the WAL file to exist, then stream it as it grows.
    while !path.exists() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let mut tail = JournalTail::open(&path).unwrap();
    let mut streamed = String::new();
    let mut events = 0usize;
    let mut closes = 0usize;
    while closes < ROUNDS {
        match tail.poll().unwrap() {
            Some(WalRecord::Event(e)) => {
                streamed.push_str(&e.to_json());
                streamed.push('\n');
                events += 1;
            }
            Some(WalRecord::Close(_)) => closes += 1,
            None => std::thread::sleep(std::time::Duration::from_millis(1)),
        }
    }
    let written = writer.join().unwrap();
    assert_eq!(streamed, written, "the tail must reproduce journal.jsonl");
    assert!(events > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn the_journal_tail_bin_prints_the_journal_jsonl() {
    let seed = 808;
    let path = wal_path("bin");
    let report = builder(seed, 1).wal(&path).build().run();
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_journal_tail"))
        .arg(&path)
        .output()
        .unwrap();
    assert!(output.status.success());
    assert_eq!(
        String::from_utf8_lossy(&output.stdout),
        report.journal.to_jsonl()
    );

    // --limit caps the stream; --closes adds the close records.
    let limited = std::process::Command::new(env!("CARGO_BIN_EXE_journal_tail"))
        .arg(&path)
        .args(["--limit", "3"])
        .output()
        .unwrap();
    assert_eq!(String::from_utf8_lossy(&limited.stdout).lines().count(), 3);
    let with_closes = std::process::Command::new(env!("CARGO_BIN_EXE_journal_tail"))
        .arg(&path)
        .arg("--closes")
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&with_closes.stdout).into_owned();
    assert_eq!(
        text.matches("\"close\":").count(),
        ROUNDS,
        "one close record per round: {text}"
    );
    std::fs::remove_file(&path).ok();
}
