//! An FL client: real SGD training driven job-by-job through a pace
//! controller, with the simulated device charging latency and energy.

use crate::data::SyntheticDataset;
use crate::model::{Minibatch, TrainableModel};
use crate::network::{BandwidthEstimator, NetworkModel, ReportingDeadline};
use bofl::task::PaceController;
use bofl::{JobExecutor, Phase, RoundSpec};
use bofl_device::{
    ConfigSpace, Device, DvfsActuator, DvfsConfig, JobCost, SimulatedActuator, VirtualClock,
};
use bofl_workload::FlTask;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A [`JobExecutor`] that performs one *real* SGD minibatch step per job
/// while the simulated device accounts the job's latency and energy.
///
/// This is the piece that makes the FL examples genuine: the pace
/// controller's decisions gate actual learning progress — a dropped round
/// is an update the global model never sees.
pub struct TrainingExecutor<'a> {
    device: &'a Device,
    task: &'a FlTask,
    model: &'a mut dyn TrainableModel,
    data: &'a SyntheticDataset,
    batch_cursor: usize,
    learning_rate: f64,
    actuator: SimulatedActuator,
    clock: VirtualClock,
    rng: StdRng,
    round_start_s: f64,
    energy_j: f64,
    last_loss: f64,
    slowdown: f64,
}

impl std::fmt::Debug for TrainingExecutor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainingExecutor")
            .field("device", &self.device.name())
            .field("samples", &self.data.len())
            .field("elapsed_s", &self.elapsed_s())
            .finish()
    }
}

impl<'a> TrainingExecutor<'a> {
    /// Creates an executor for one round of local training.
    pub fn new(
        device: &'a Device,
        task: &'a FlTask,
        model: &'a mut dyn TrainableModel,
        data: &'a SyntheticDataset,
        learning_rate: f64,
        seed: u64,
    ) -> Self {
        TrainingExecutor {
            device,
            task,
            model,
            data,
            batch_cursor: 0,
            learning_rate,
            actuator: SimulatedActuator::new(
                device.config_space().clone(),
                device.transition_latency_s(),
            ),
            clock: VirtualClock::new(),
            rng: StdRng::seed_from_u64(seed),
            round_start_s: 0.0,
            energy_j: 0.0,
            last_loss: f64::NAN,
            slowdown: 1.0,
        }
    }

    /// Inflates every job's latency by `slowdown` (≥ 1), modeling a
    /// transient fault such as thermal throttling or a contended
    /// accelerator. The pace controller sees the inflated latencies in its
    /// observations — which is the point: mid-round recovery (guardian
    /// escalation, observation quarantine) must trigger off what the
    /// controller can actually measure. Energy is left unscaled.
    ///
    /// # Panics
    ///
    /// Panics if `slowdown < 1`.
    pub fn with_slowdown(mut self, slowdown: f64) -> Self {
        assert!(slowdown >= 1.0, "slowdown must be at least 1");
        self.slowdown = slowdown;
        self
    }

    /// Energy consumed so far this round, joules.
    pub fn round_energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Mean loss of the most recent minibatch (NaN before the first job).
    pub fn last_loss(&self) -> f64 {
        self.last_loss
    }

    fn next_batch(&mut self) -> (usize, usize) {
        let b = self.task.minibatch_size().min(self.data.len()).max(1);
        let n_batches = (self.data.len() / b).max(1);
        let start = (self.batch_cursor % n_batches) * b;
        self.batch_cursor += 1;
        (start, (start + b).min(self.data.len()))
    }
}

impl JobExecutor for TrainingExecutor<'_> {
    fn config_space(&self) -> &ConfigSpace {
        self.device.config_space()
    }

    fn run_job(&mut self, x: DvfsConfig) -> JobCost {
        // 1. Real learning: one SGD step on the next minibatch.
        let (lo, hi) = self.next_batch();
        let batch = Minibatch {
            features: &self.data.features()[lo..hi],
            labels: &self.data.labels()[lo..hi],
        };
        if !batch.is_empty() {
            self.last_loss = self.model.sgd_step(&batch, self.learning_rate);
        }

        // 2. Simulated cost: what the job did to the battery and clock.
        let transition = self
            .actuator
            .apply(x)
            .expect("controllers must request grid configurations");
        self.clock.advance(transition);
        let mut cost = self.device.run_job(self.task, x, &mut self.rng);
        cost.latency_s *= self.slowdown;
        self.clock.advance(cost.latency_s);
        self.energy_j += cost.energy_j;
        cost
    }

    fn elapsed_s(&self) -> f64 {
        self.clock.now_s() - self.round_start_s
    }
}

/// The result of one client-side training round.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientRoundResult {
    /// Updated model parameters (uploaded to the server on success).
    pub parameters: Vec<f64>,
    /// Number of local samples (FedAvg weighting).
    pub samples: usize,
    /// Whether training finished before the deadline.
    pub deadline_met: bool,
    /// Energy the round consumed, joules.
    pub energy_j: f64,
    /// Wall time the round took, seconds.
    pub duration_s: f64,
    /// Final minibatch loss, as a cheap progress signal.
    pub last_loss: f64,
    /// The controller phase this round ran in (`None` for phase-less
    /// baselines like Performant/Oracle).
    pub phase: Option<Phase>,
    /// Jobs the deadline guardian escalated to `x_max` mid-round after
    /// detecting an overrun in progress.
    pub escalated_jobs: u64,
    /// Latency observations the controller quarantined as contaminated
    /// (excluded from its surrogate-model training set).
    pub quarantined: u64,
    /// Wall-clock milliseconds the controller's MBO `suggest` call took
    /// this round (`0.0` when no surrogate ran — baselines, or BoFL
    /// phases that did not re-plan).
    pub suggest_ms: f64,
}

/// One federated client: local data, a simulated device, and a pluggable
/// pace controller (BoFL or a baseline).
pub struct FlClient {
    id: usize,
    device: Device,
    task: FlTask,
    data: SyntheticDataset,
    model: Box<dyn TrainableModel>,
    controller: Box<dyn PaceController>,
    learning_rate: f64,
    seed: u64,
    uplink: Option<NetworkModel>,
    bandwidth: BandwidthEstimator,
}

impl std::fmt::Debug for FlClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlClient")
            .field("id", &self.id)
            .field("device", &self.device.name())
            .field("samples", &self.data.len())
            .field("controller", &self.controller.name())
            .finish()
    }
}

impl FlClient {
    /// Creates a client.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        device: Device,
        task: FlTask,
        data: SyntheticDataset,
        model: Box<dyn TrainableModel>,
        controller: Box<dyn PaceController>,
        learning_rate: f64,
        seed: u64,
    ) -> Self {
        FlClient {
            id,
            device,
            task,
            data,
            model,
            controller,
            learning_rate,
            seed,
            uplink: None,
            bandwidth: BandwidthEstimator::default(),
        }
    }

    /// Attaches a simulated uplink, enabling
    /// [`FlClient::train_round_reporting`] (the paper's footnote-3
    /// reporting-deadline mode).
    pub fn with_uplink(mut self, network: NetworkModel) -> Self {
        self.uplink = Some(network);
        self
    }

    /// Client identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of local samples.
    pub fn samples(&self) -> usize {
        self.data.len()
    }

    /// The device this client trains on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The controller name (for reports).
    pub fn controller_name(&self) -> &str {
        self.controller.name()
    }

    /// `T_min` for this client: one full round at `x_max`.
    pub fn t_min_s(&self) -> f64 {
        self.device.round_latency_at_max(&self.task)
    }

    /// Estimated energy of one full round at `x_max` (the quantity an
    /// AutoFL-style energy-aware server ranks clients by).
    pub fn round_energy_at_max_j(&self) -> f64 {
        let x_max = self.device.config_space().x_max();
        self.device.true_cost(&self.task, x_max).energy_j * self.task.jobs_per_round() as f64
    }

    /// Runs one local training round: download `global` parameters, run
    /// `W` jobs under the pace controller, report the update.
    pub fn train_round(
        &mut self,
        round: usize,
        global: &[f64],
        deadline_s: f64,
    ) -> ClientRoundResult {
        self.train_round_paced(round, global, deadline_s, 1.0)
    }

    /// [`FlClient::train_round`] with a transient per-job latency
    /// `slowdown` (≥ 1, `1.0` = healthy) injected into the executor, so
    /// engine-level fault plans perturb training *while the controller is
    /// watching* rather than after the fact.
    pub fn train_round_paced(
        &mut self,
        round: usize,
        global: &[f64],
        deadline_s: f64,
        slowdown: f64,
    ) -> ClientRoundResult {
        self.model.set_parameters(global);
        let spec = RoundSpec::new(round, self.task.jobs_per_round(), deadline_s);

        let seed = self.seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut exec = TrainingExecutor::new(
            &self.device,
            &self.task,
            self.model.as_mut(),
            &self.data,
            self.learning_rate,
            seed,
        )
        .with_slowdown(slowdown);
        let stats = self.controller.run_round(&spec, &mut exec);
        let duration_s = exec.elapsed_s();
        let energy_j = exec.round_energy_j();
        let last_loss = exec.last_loss();
        drop(exec);

        ClientRoundResult {
            parameters: self.model.parameters(),
            samples: self.data.len(),
            deadline_met: duration_s <= deadline_s + 1e-9,
            energy_j,
            duration_s,
            last_loss,
            phase: stats.phase,
            escalated_jobs: stats.escalated_jobs,
            quarantined: stats.quarantined,
            suggest_ms: stats
                .mbo_duration
                .map(|d| d.as_secs_f64() * 1e3)
                .unwrap_or(0.0),
        }
    }

    /// Runs one local round against a *reporting* deadline (the time by
    /// which the server must have received the update): the client infers
    /// its training deadline by subtracting a conservative upload budget
    /// from its bandwidth estimator, trains, then simulates the upload and
    /// feeds the observed rate back into the estimator.
    ///
    /// The returned result's `duration_s` and `deadline_met` refer to the
    /// *reporting* deadline (training + upload).
    ///
    /// # Panics
    ///
    /// Panics if no uplink was attached via [`FlClient::with_uplink`].
    pub fn train_round_reporting(
        &mut self,
        round: usize,
        global: &[f64],
        reporting: ReportingDeadline,
    ) -> ClientRoundResult {
        self.train_round_reporting_paced(round, global, reporting, 1.0)
    }

    /// [`FlClient::train_round_reporting`] with a transient per-job
    /// latency `slowdown` (≥ 1), mirroring [`FlClient::train_round_paced`].
    ///
    /// # Panics
    ///
    /// Panics if no uplink was attached via [`FlClient::with_uplink`].
    pub fn train_round_reporting_paced(
        &mut self,
        round: usize,
        global: &[f64],
        reporting: ReportingDeadline,
        slowdown: f64,
    ) -> ClientRoundResult {
        let network = self
            .uplink
            .expect("train_round_reporting requires with_uplink");
        let upload_bytes = self.task.model().parameter_bytes();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            self.seed ^ (round as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        );

        // The client just *downloaded* the global model during the
        // configuration window — a free bandwidth measurement, so even the
        // very first round budgets its upload from data rather than hope.
        let (download_s, _) = network.transfer(upload_bytes, &mut rng);
        self.bandwidth.observe(upload_bytes, download_s);

        // The training window must at least admit the x_max schedule.
        let min_training = self.t_min_s() * 1.02;
        let training_deadline =
            reporting.training_deadline_s(&self.bandwidth, upload_bytes, min_training);

        let mut result = self.train_round_paced(round, global, training_deadline, slowdown);

        // Simulate the upload and learn from it.
        let (upload_s, _) = network.transfer(upload_bytes, &mut rng);
        self.bandwidth.observe(upload_bytes, upload_s);

        result.duration_s += upload_s;
        result.deadline_met = result.duration_s <= reporting.reporting_s + 1e-9;
        result
    }

    /// The client's current conservative bandwidth estimate, if any
    /// transfer has completed.
    pub fn bandwidth_estimate_bps(&self) -> Option<f64> {
        self.bandwidth.estimate_bps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SoftmaxModel;
    use bofl::baselines::PerformantController;
    use bofl_workload::{TaskKind, Testbed};

    fn setup() -> (Device, FlTask, SyntheticDataset) {
        let device = Device::jetson_agx();
        let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
        let data = SyntheticDataset::gaussian_blobs(task.local_samples(), 8, 4, 0.4, 3);
        (device, task, data)
    }

    #[test]
    fn executor_trains_while_charging_energy() {
        let (device, task, data) = setup();
        let mut model = SoftmaxModel::new(8, 4, 1);
        let before_loss = model.loss(data.features(), data.labels());
        let mut exec = TrainingExecutor::new(&device, &task, &mut model, &data, 0.2, 5);
        let x = device.config_space().x_max();
        for _ in 0..50 {
            let cost = exec.run_job(x);
            assert!(cost.latency_s > 0.0);
        }
        assert!(exec.round_energy_j() > 0.0);
        assert!(exec.elapsed_s() > 0.0);
        assert!(exec.last_loss().is_finite());
        drop(exec);
        let after_loss = model.loss(data.features(), data.labels());
        assert!(
            after_loss < before_loss,
            "training must make progress: {before_loss} -> {after_loss}"
        );
    }

    #[test]
    fn client_round_reports_consistent_result() {
        let (device, task, data) = setup();
        let samples = data.len();
        let model = Box::new(SoftmaxModel::new(8, 4, 2));
        let global = model.parameters();
        let mut client = FlClient::new(
            0,
            device,
            task,
            data,
            model,
            Box::new(PerformantController::new()),
            0.2,
            7,
        );
        let deadline = client.t_min_s() * 2.0;
        let res = client.train_round(0, &global, deadline);
        assert!(res.deadline_met);
        assert_eq!(res.samples, samples);
        assert!(res.energy_j > 0.0);
        assert!(res.duration_s > 0.0);
        assert_eq!(res.parameters.len(), global.len());
        assert_ne!(res.parameters, global, "training must change the model");
        assert_eq!(client.controller_name(), "Performant");
        assert_eq!(client.id(), 0);
    }
}
