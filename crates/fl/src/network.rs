//! Network modeling and bandwidth estimation: the paper's footnote-3
//! extension.
//!
//! The paper assumes the server hands out *training* deadlines. Real FL
//! servers (e.g. the Google system the paper cites) often specify a
//! *reporting* deadline instead — the time by which the server must have
//! *received* the update, which includes the model upload. Footnote 3
//! says BoFL "can be easily extended to work well with a network
//! bandwidth measurement module that can infer its training deadlines from
//! the reporting deadlines"; this module is that extension:
//!
//! - [`NetworkModel`] — a simulated wireless uplink (lognormal-ish
//!   bandwidth around a nominal rate, e.g. 4G LTE ≈ 5 Mbps in the
//!   paper's §6.5 example);
//! - [`BandwidthEstimator`] — an EWMA over observed transfer rates with a
//!   conservative quantile, exactly what a client needs to subtract a safe
//!   upload-time estimate from a reporting deadline;
//! - [`ReportingDeadline`] — the conversion itself.

use rand::Rng;

/// A simulated client uplink.
///
/// Bandwidth for each transfer is drawn as
/// `nominal × exp(σ·Z − σ²/2)` (mean-preserving lognormal), so transfers
/// vary the way congested wireless links do.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetworkModel {
    /// Nominal uplink bandwidth, bytes per second.
    pub nominal_bps: f64,
    /// Lognormal σ of per-transfer variation.
    pub sigma: f64,
    /// Fixed per-transfer latency (connection setup, TLS), seconds.
    pub setup_latency_s: f64,
}

impl NetworkModel {
    /// A 4G LTE-ish uplink: 5 Mbps nominal (the paper's §6.5 example:
    /// "sending and receiving \[a\] ResNet50 model may take
    /// 51.2 Mb / 5 Mbps = 10.2 s"), moderate variation.
    pub fn lte() -> Self {
        NetworkModel {
            nominal_bps: 5.0e6 / 8.0,
            sigma: 0.3,
            setup_latency_s: 0.15,
        }
    }

    /// A home Wi-Fi uplink: 40 Mbps nominal, low variation.
    pub fn wifi() -> Self {
        NetworkModel {
            nominal_bps: 40.0e6 / 8.0,
            sigma: 0.15,
            setup_latency_s: 0.05,
        }
    }

    /// Simulates one upload of `bytes`, returning
    /// `(duration_s, achieved_bps)`.
    pub fn transfer(&self, bytes: f64, rng: &mut impl Rng) -> (f64, f64) {
        assert!(bytes >= 0.0 && bytes.is_finite(), "bytes must be finite");
        let z = standard_normal(rng);
        let raw = self.nominal_bps * (self.sigma * z - 0.5 * self.sigma * self.sigma).exp();
        debug_assert!(raw.is_finite(), "bandwidth draw must be finite");
        // Floor the draw at a small fraction of nominal: a pathological σ
        // or an extreme tail Z could otherwise underflow toward zero and
        // turn one transfer into an effectively infinite duration.
        let bw = raw.max(self.nominal_bps * 1e-4);
        let duration = self.setup_latency_s + bytes / bw;
        (duration, bw)
    }

    /// Expected upload duration at nominal bandwidth (no variation).
    pub fn nominal_duration_s(&self, bytes: f64) -> f64 {
        self.setup_latency_s + bytes / self.nominal_bps
    }
}

/// An exponentially weighted bandwidth estimator with a pessimism factor.
///
/// Clients feed in `(bytes, duration)` of every completed transfer; the
/// estimator tracks a smoothed rate and answers "how long should I budget
/// to upload `n` bytes?" with a configurable safety factor, so the
/// inferred training deadline errs toward finishing early.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BandwidthEstimator {
    alpha: f64,
    pessimism: f64,
    estimate_bps: Option<f64>,
    variance: f64,
}

impl BandwidthEstimator {
    /// Creates an estimator.
    ///
    /// `alpha` is the EWMA weight of the newest sample (0 < α ≤ 1);
    /// `pessimism` ≥ 0 is how many smoothed standard deviations to
    /// subtract when budgeting (1–2 is typical).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or `pessimism < 0`.
    pub fn new(alpha: f64, pessimism: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(pessimism >= 0.0, "pessimism must be non-negative");
        BandwidthEstimator {
            alpha,
            pessimism,
            estimate_bps: None,
            variance: 0.0,
        }
    }

    /// Records one completed transfer.
    ///
    /// # Panics
    ///
    /// Panics on non-positive bytes or duration.
    pub fn observe(&mut self, bytes: f64, duration_s: f64) {
        assert!(bytes > 0.0 && bytes.is_finite(), "bytes must be positive");
        assert!(
            duration_s > 0.0 && duration_s.is_finite(),
            "duration must be positive"
        );
        let rate = bytes / duration_s;
        match self.estimate_bps {
            None => {
                self.estimate_bps = Some(rate);
                self.variance = 0.0;
            }
            Some(est) => {
                let delta = rate - est;
                let new_est = est + self.alpha * delta;
                self.variance = (1.0 - self.alpha) * (self.variance + self.alpha * delta * delta);
                self.estimate_bps = Some(new_est);
            }
        }
    }

    /// The smoothed bandwidth estimate, if any transfer has been seen.
    pub fn estimate_bps(&self) -> Option<f64> {
        self.estimate_bps
    }

    /// A conservative (pessimism-adjusted) bandwidth for budgeting.
    ///
    /// Two safeguards compose: subtract `pessimism` smoothed standard
    /// deviations, and *always* keep at least a 25% relative margin —
    /// early in a session the EWMA variance is still near zero (a single
    /// observation has no spread), and without the floor the very first
    /// upload would be budgeted with no headroom at all.
    pub fn conservative_bps(&self) -> Option<f64> {
        self.estimate_bps.map(|est| {
            let std = self.variance.sqrt();
            (est - self.pessimism * std).min(est * 0.75).max(est * 0.1)
        })
    }

    /// Time to budget for uploading `bytes`, or `None` before the first
    /// observation.
    pub fn budget_upload_s(&self, bytes: f64) -> Option<f64> {
        self.conservative_bps().map(|bw| bytes / bw)
    }
}

impl Default for BandwidthEstimator {
    fn default() -> Self {
        BandwidthEstimator::new(0.3, 1.5)
    }
}

/// Bounded deterministic retry for lost model uploads.
///
/// A transient upload failure (cellular handoff, a dropped TCP stream)
/// does not have to waste the whole round: while reporting budget remains,
/// the client backs off exponentially and tries again. The backoff is
/// jittered — synchronized retries from many clients would just collide
/// again — but the jitter is drawn from a caller-supplied seed, so the
/// exact same retry schedule replays on any thread or worker count (the
/// fleet engine feeds a per-`(client, round)` seed).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RetryPolicy {
    /// Total upload attempts allowed, including the first (`1` = never
    /// retry, the legacy behavior).
    pub max_attempts: u32,
    /// Backoff before the first retry, seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff after every failed retry.
    pub backoff_multiplier: f64,
    /// Fraction of each backoff randomized symmetrically around its
    /// nominal value (`0.25` → ±25%).
    pub jitter: f64,
}

impl RetryPolicy {
    /// No retries: a failed upload is simply lost (legacy behavior).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_s: 0.0,
            backoff_multiplier: 1.0,
            jitter: 0.0,
        }
    }

    /// The recovery default: up to 3 attempts, 0.5 s initial backoff
    /// doubling each time, ±25% jitter.
    pub fn recovery() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_s: 0.5,
            backoff_multiplier: 2.0,
            jitter: 0.25,
        }
    }

    /// Whether this policy ever retries.
    pub fn is_none(&self) -> bool {
        self.max_attempts <= 1
    }

    /// The backoff before retry number `retry` (1-based), jittered
    /// deterministically from `seed`. Pure: the same arguments always
    /// yield the same delay.
    ///
    /// # Panics
    ///
    /// Panics if `retry == 0` (there is no backoff before the first
    /// attempt).
    pub fn backoff_s(&self, retry: u32, seed: u64) -> f64 {
        assert!(retry > 0, "backoff precedes a retry, not the first attempt");
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let nominal = self.base_backoff_s * self.backoff_multiplier.powi(retry as i32 - 1);
        let mut rng =
            StdRng::seed_from_u64(seed ^ (retry as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
        let u: f64 = rng.gen::<f64>();
        nominal * (1.0 + self.jitter * (2.0 * u - 1.0))
    }
}

impl Default for RetryPolicy {
    /// [`RetryPolicy::none`] — retrying is opt-in so existing traces are
    /// untouched.
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// A server-assigned *reporting* deadline plus the conversion to the
/// training deadline BoFL consumes (paper footnote 3).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReportingDeadline {
    /// Seconds from round start by which the server must have *received*
    /// the update.
    pub reporting_s: f64,
}

impl ReportingDeadline {
    /// Creates a reporting deadline.
    ///
    /// # Panics
    ///
    /// Panics if the deadline is non-positive or non-finite.
    pub fn new(reporting_s: f64) -> Self {
        assert!(
            reporting_s.is_finite() && reporting_s > 0.0,
            "reporting deadline must be positive"
        );
        ReportingDeadline { reporting_s }
    }

    /// Infers the training deadline: the reporting deadline minus the
    /// budgeted upload time for `upload_bytes`, floored at
    /// `min_training_s` (so a pathological bandwidth estimate cannot
    /// produce an infeasible zero-length training window — the client
    /// would rather risk a late upload than certainly train nothing).
    pub fn training_deadline_s(
        &self,
        estimator: &BandwidthEstimator,
        upload_bytes: f64,
        min_training_s: f64,
    ) -> f64 {
        let upload = estimator.budget_upload_s(upload_bytes).unwrap_or(0.0);
        (self.reporting_s - upload).max(min_training_s)
    }
}

fn standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lte_resnet_upload_matches_paper_example() {
        // §6.5: ResNet50 (51.2 Mb) over 5 Mbps ≈ 10.2 s plus setup.
        let net = NetworkModel::lte();
        let bytes = 51.2e6 / 8.0;
        let d = net.nominal_duration_s(bytes);
        assert!((10.0..11.0).contains(&d), "nominal upload {d:.1} s");
    }

    #[test]
    fn transfers_vary_but_average_out() {
        let net = NetworkModel::lte();
        let mut rng = StdRng::seed_from_u64(8);
        let bytes = 1.0e7;
        let mut total_bw = 0.0;
        let n = 3000;
        for _ in 0..n {
            let (d, bw) = net.transfer(bytes, &mut rng);
            assert!(d > net.setup_latency_s);
            total_bw += bw;
        }
        let mean_bw = total_bw / n as f64;
        assert!(
            (mean_bw / net.nominal_bps - 1.0).abs() < 0.05,
            "mean bandwidth {mean_bw:.0} vs nominal {:.0}",
            net.nominal_bps
        );
    }

    #[test]
    fn transfer_bandwidth_is_floored_above_zero() {
        // An absurd σ makes the lognormal tail collapse toward zero; the
        // floor keeps every draw positive and every duration finite.
        let net = NetworkModel {
            nominal_bps: 1.0e6,
            sigma: 40.0,
            setup_latency_s: 0.1,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let (d, bw) = net.transfer(1.0e6, &mut rng);
            assert!(bw >= net.nominal_bps * 1e-4, "bandwidth {bw} under floor");
            assert!(d.is_finite() && d > 0.0, "duration {d} not finite");
        }
    }

    #[test]
    fn estimator_converges_to_true_rate() {
        let mut est = BandwidthEstimator::new(0.3, 0.0);
        assert_eq!(est.estimate_bps(), None);
        assert_eq!(est.budget_upload_s(100.0), None);
        for _ in 0..50 {
            est.observe(1000.0, 2.0); // 500 B/s
        }
        let e = est.estimate_bps().unwrap();
        assert!((e - 500.0).abs() < 1.0);
        // Budgeting keeps the 25% relative margin: 1000 B at a
        // conservative 0.75 × 500 B/s takes 2.67 s.
        assert!((est.budget_upload_s(1000.0).unwrap() - 1000.0 / 375.0).abs() < 0.01);
    }

    #[test]
    fn pessimism_budgets_more_time() {
        let mut optimist = BandwidthEstimator::new(0.3, 0.0);
        let mut pessimist = BandwidthEstimator::new(0.3, 2.0);
        // Alternating fast/slow transfers create variance.
        for i in 0..40 {
            let rate = if i % 2 == 0 { 400.0 } else { 600.0 };
            optimist.observe(rate, 1.0);
            pessimist.observe(rate, 1.0);
        }
        let t_opt = optimist.budget_upload_s(1000.0).unwrap();
        let t_pes = pessimist.budget_upload_s(1000.0).unwrap();
        assert!(
            t_pes > t_opt,
            "pessimistic budget {t_pes:.2} must exceed optimistic {t_opt:.2}"
        );
    }

    #[test]
    fn reporting_deadline_conversion() {
        let mut est = BandwidthEstimator::new(0.5, 0.0);
        est.observe(5.0e6, 10.0); // 0.5 MB/s
        let rd = ReportingDeadline::new(60.0);
        // Uploading 5 MB at the conservative 0.75 × 0.5 MB/s rate budgets
        // ≈13.3 s → training window ≈46.7 s.
        let t = rd.training_deadline_s(&est, 5.0e6, 5.0);
        assert!(
            (t - (60.0 - 5.0e6 / 375_000.0)).abs() < 0.5,
            "training deadline {t:.1}"
        );
        // The floor protects against absurd estimates.
        let t_floor = rd.training_deadline_s(&est, 1.0e9, 12.0);
        assert_eq!(t_floor, 12.0);
        // Without observations, the full window is used.
        let blank = BandwidthEstimator::default();
        assert_eq!(rd.training_deadline_s(&blank, 5.0e6, 5.0), 60.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn estimator_validates_alpha() {
        let _ = BandwidthEstimator::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "reporting deadline must be positive")]
    fn reporting_deadline_validates() {
        let _ = ReportingDeadline::new(0.0);
    }

    #[test]
    fn retry_backoff_grows_and_is_deterministic() {
        let p = RetryPolicy::recovery();
        assert!(!p.is_none());
        assert!(RetryPolicy::none().is_none());
        let b1 = p.backoff_s(1, 42);
        let b2 = p.backoff_s(2, 42);
        // Jitter is bounded by ±25%, so doubling dominates it.
        assert!(b2 > b1, "backoff must grow: {b1} -> {b2}");
        assert!((0.375..=0.625).contains(&b1), "jittered base {b1}");
        // Pure in (retry, seed); different seeds jitter differently.
        assert_eq!(b1, p.backoff_s(1, 42));
        assert_ne!(b1, p.backoff_s(1, 43));
    }

    #[test]
    #[should_panic(expected = "backoff precedes a retry")]
    fn retry_backoff_rejects_attempt_zero() {
        let _ = RetryPolicy::recovery().backoff_s(0, 1);
    }
}
