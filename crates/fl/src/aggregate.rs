//! Hierarchical (sharded) FedAvg aggregation.
//!
//! The flat server folds every arrived update into one running average.
//! That is O(cohort) work and O(model) memory *at the root* — fine for
//! hundreds of clients, hopeless for a million. This module provides the
//! two pieces that turn the flat pass into a reduction tree:
//!
//! - [`ShardPlan`] — a pure, `Copy` description of how a round's cohort
//!   (already in canonical ascending-id order) is partitioned into
//!   contiguous shards;
//! - [`UpdateAccumulator`] — a weighted partial sum of updates in
//!   **fixed-point** arithmetic, so that folds and merges are associative
//!   and commutative and the final model is **byte-identical** no matter
//!   how the cohort is grouped into shards or how many workers reduce
//!   them.
//!
//! # Why fixed point
//!
//! Floating-point addition is not associative: `(a + b) + c` and
//! `a + (b + c)` can differ in the last ulp, so a tree-shaped reduction
//! would produce a *different* global model at different shard counts —
//! breaking the repo-wide determinism contract (trace bytes depend only
//! on the seed, never on the execution geometry). Each client
//! contribution is therefore quantized once to a signed 64.32 fixed-point
//! value (`round(p · 2³²)`), scaled by its integer sample count, and
//! summed in `i128`. Integer addition *is* associative, so any grouping —
//! one flat pass, 4 shards, 16 shards, a deeper tree — yields the same
//! bits. The quantization error is bounded by `2⁻³³` per parameter
//! (relative to the weighted mean), far below the noise floor of SGD.
//!
//! # Shard tree
//!
//! ```text
//!          root (merge in canonical shard order, then finish)
//!         /    |    \
//!     shard0 shard1 shard2      each: fold(member updates) in id order
//!      /|\    /|\    /|\
//!     clients (cohort sorted by id, split into contiguous ranges)
//! ```

/// Number of fractional bits in the fixed-point representation.
pub const FIXED_POINT_BITS: u32 = 32;

/// `2^FIXED_POINT_BITS` as an `f64` scale factor.
const SCALE: f64 = (1u64 << FIXED_POINT_BITS) as f64;

/// How a round's cohort is partitioned into aggregator shards.
///
/// The plan is pure geometry: given a cohort of `n` members (already
/// sorted by client id — the canonical order every engine produces), it
/// yields at most `shards` contiguous, near-equal ranges. Contiguity in
/// id order is what makes the partition independent of worker scheduling,
/// and the fixed-point accumulator makes the *result* independent of the
/// partition itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardPlan {
    shards: usize,
}

impl ShardPlan {
    /// The flat plan: one shard, i.e. exactly the pre-sharding server.
    pub fn flat() -> Self {
        ShardPlan { shards: 1 }
    }

    /// A plan with up to `shards` aggregator shards (`shards >= 1`).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "a ShardPlan needs at least one shard");
        ShardPlan { shards }
    }

    /// A plan sized so each shard aggregates about `shard_size` members
    /// of a `cohort`-sized round (`shard_size >= 1`).
    ///
    /// # Panics
    /// Panics if `shard_size == 0`.
    pub fn by_size(cohort: usize, shard_size: usize) -> Self {
        assert!(shard_size > 0, "shard_size must be positive");
        ShardPlan {
            shards: cohort.div_ceil(shard_size).max(1),
        }
    }

    /// The configured maximum number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// How many shards a cohort of `len` members actually uses: never
    /// more than the cohort itself (empty shards are pointless), never
    /// zero for a non-empty cohort.
    pub fn shard_count(&self, len: usize) -> usize {
        self.shards.min(len).max(usize::from(len > 0))
    }

    /// The half-open member range `[start, end)` of shard `shard` for a
    /// cohort of `len` members. Ranges are contiguous, cover `0..len`
    /// exactly, and differ in size by at most one (the first
    /// `len % count` shards get the extra member).
    pub fn range(&self, shard: usize, len: usize) -> std::ops::Range<usize> {
        let count = self.shard_count(len);
        debug_assert!(shard < count.max(1), "shard index out of range");
        let base = len / count.max(1);
        let extra = len % count.max(1);
        let start = shard * base + shard.min(extra);
        let size = base + usize::from(shard < extra);
        start..(start + size).min(len)
    }

    /// All member ranges for a cohort of `len`, in canonical shard order.
    pub fn ranges(&self, len: usize) -> Vec<std::ops::Range<usize>> {
        let count = if len == 0 { 0 } else { self.shard_count(len) };
        (0..count).map(|s| self.range(s, len)).collect()
    }
}

impl Default for ShardPlan {
    fn default() -> Self {
        ShardPlan::flat()
    }
}

/// A weighted partial sum of model updates in 64.32 fixed point.
///
/// `fold` adds one client's parameter vector with an integer weight
/// (its sample count); `merge` combines two partials (shard → root);
/// `finish_into` divides out the accumulated weight and writes the
/// weighted mean. Because the state is integer, `fold`/`merge` commute
/// and associate: every grouping of the same multiset of contributions
/// produces bit-identical output.
///
/// The buffers are reused across rounds — call [`UpdateAccumulator::reset`]
/// once per round and the hot path performs no allocation after the first
/// round (see `crates/fleet/tests/alloc_count.rs`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UpdateAccumulator {
    weight: u64,
    sum: Vec<i128>,
}

impl UpdateAccumulator {
    /// An empty accumulator (dimension set by the first `reset`).
    pub fn new() -> Self {
        UpdateAccumulator::default()
    }

    /// Clears the partial sum and (re)sizes it for `dim` parameters.
    /// Reuses the existing allocation whenever `dim` fits.
    pub fn reset(&mut self, dim: usize) {
        self.weight = 0;
        self.sum.clear();
        self.sum.resize(dim, 0);
    }

    /// Dimensionality of the accumulated update (0 before `reset`).
    pub fn dim(&self) -> usize {
        self.sum.len()
    }

    /// Total accumulated integer weight (sum of sample counts).
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// True when nothing has been folded in.
    pub fn is_empty(&self) -> bool {
        self.weight == 0
    }

    /// Folds one client update in: `sum += fix(params) · samples`.
    ///
    /// `samples` must be positive — a zero-weight update would be
    /// invisible in the mean but still bump no weight, so it is rejected
    /// loudly in debug builds and skipped in release.
    ///
    /// # Panics
    /// Debug builds panic on dimension mismatch or non-finite parameters.
    pub fn fold(&mut self, params: &[f64], samples: u64) {
        debug_assert_eq!(
            params.len(),
            self.sum.len(),
            "update dimension must match the accumulator"
        );
        debug_assert!(samples > 0, "updates must carry a positive weight");
        if samples == 0 || params.len() != self.sum.len() {
            return;
        }
        self.weight += samples;
        let w = samples as i128;
        for (acc, &p) in self.sum.iter_mut().zip(params.iter()) {
            debug_assert!(p.is_finite(), "non-finite parameter in update");
            *acc += fix(p) as i128 * w;
        }
    }

    /// Merges another partial sum in (shard partial → root). The other
    /// accumulator is left untouched.
    ///
    /// # Panics
    /// Debug builds panic on dimension mismatch between non-empty sides.
    pub fn merge(&mut self, other: &UpdateAccumulator) {
        if other.is_empty() {
            return;
        }
        if self.sum.is_empty() {
            self.sum.resize(other.sum.len(), 0);
        }
        debug_assert_eq!(self.sum.len(), other.sum.len(), "shard dimension mismatch");
        self.weight += other.weight;
        for (acc, &o) in self.sum.iter_mut().zip(other.sum.iter()) {
            *acc += o;
        }
    }

    /// Writes the weighted mean into `out` (cleared and refilled, so the
    /// caller can keep one buffer alive across rounds). Returns `false`
    /// and leaves `out` empty when nothing was accumulated.
    pub fn finish_into(&self, out: &mut Vec<f64>) -> bool {
        out.clear();
        if self.weight == 0 {
            return false;
        }
        let denom = SCALE * self.weight as f64;
        out.extend(self.sum.iter().map(|&s| s as f64 / denom));
        true
    }

    /// A stable FNV-1a checksum over the exact accumulator state (weight
    /// plus every fixed-point word) — handy for shard-invariance traces.
    pub fn checksum(&self) -> u64 {
        let mut h = fnv1a(0xcbf2_9ce4_8422_2325, self.weight);
        for &s in &self.sum {
            h = fnv1a(h, s as u64);
            h = fnv1a(h, (s >> 64) as u64);
        }
        h
    }
}

/// Quantizes one parameter to signed 64.32 fixed point.
#[inline]
fn fix(p: f64) -> i64 {
    (p * SCALE).round() as i64
}

#[inline]
fn fnv1a(mut h: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runs one full shard-tree reduction over `updates` (parameter slices
/// paired with sample counts, in canonical cohort order): each shard
/// folds its contiguous member range into `shard_scratch`, the root
/// merges the partials in shard order into `root`, and the weighted mean
/// lands in `out`. Returns `true` when at least one update arrived.
///
/// This is the *sequential* reference reduction — `bofl-fleet` runs the
/// same per-shard folds on its worker pool and merges identically, which
/// is exactly why the two agree byte-for-byte.
pub fn aggregate_sharded(
    plan: ShardPlan,
    dim: usize,
    updates: &[(&[f64], u64)],
    root: &mut UpdateAccumulator,
    shard_scratch: &mut UpdateAccumulator,
    out: &mut Vec<f64>,
) -> bool {
    root.reset(dim);
    for shard in 0..plan.shard_count(updates.len()) {
        shard_scratch.reset(dim);
        for &(params, samples) in &updates[plan.range(shard, updates.len())] {
            shard_scratch.fold(params, samples);
        }
        root.merge(shard_scratch);
    }
    root.finish_into(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth_update(seed: u64, dim: usize) -> Vec<f64> {
        (0..dim)
            .map(|d| {
                let h = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(d as u64)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn plan_ranges_cover_cohort_exactly() {
        for shards in [1usize, 2, 3, 4, 7, 16, 100] {
            for len in [0usize, 1, 2, 5, 16, 97] {
                let plan = ShardPlan::with_shards(shards);
                let ranges = plan.ranges(len);
                if len == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert_eq!(ranges.len(), plan.shard_count(len));
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
                }
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(hi - lo <= 1, "near-equal split: {sizes:?}");
                assert!(*lo >= 1, "no empty shards");
            }
        }
    }

    #[test]
    fn by_size_targets_shard_size() {
        let plan = ShardPlan::by_size(100, 16);
        assert_eq!(plan.shards(), 7);
        assert!(plan.ranges(100).iter().all(|r| r.len() <= 16));
        assert_eq!(ShardPlan::by_size(0, 16).shards(), 1);
    }

    #[test]
    fn sharded_equals_flat_bitwise() {
        let dim = 37;
        let updates: Vec<(Vec<f64>, u64)> = (0..23)
            .map(|i| (synth_update(i * 77 + 5, dim), 10 + i % 7))
            .collect();
        let borrowed: Vec<(&[f64], u64)> =
            updates.iter().map(|(p, n)| (p.as_slice(), *n)).collect();

        let mut reference = Vec::new();
        let (mut root, mut scratch) = (UpdateAccumulator::new(), UpdateAccumulator::new());
        assert!(aggregate_sharded(
            ShardPlan::flat(),
            dim,
            &borrowed,
            &mut root,
            &mut scratch,
            &mut reference,
        ));
        let reference_checksum = root.checksum();

        for shards in [2usize, 3, 4, 16, 23, 64] {
            let mut out = Vec::new();
            assert!(aggregate_sharded(
                ShardPlan::with_shards(shards),
                dim,
                &borrowed,
                &mut root,
                &mut scratch,
                &mut out,
            ));
            assert_eq!(root.checksum(), reference_checksum, "{shards} shards");
            assert!(
                out.iter()
                    .zip(reference.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "sharded mean must be byte-identical at {shards} shards"
            );
        }
    }

    #[test]
    fn fold_merge_commute() {
        let dim = 8;
        let a = synth_update(1, dim);
        let b = synth_update(2, dim);
        let c = synth_update(3, dim);

        let mut left = UpdateAccumulator::new();
        left.reset(dim);
        left.fold(&a, 3);
        left.fold(&b, 5);
        left.fold(&c, 2);

        let mut r1 = UpdateAccumulator::new();
        r1.reset(dim);
        r1.fold(&c, 2);
        let mut r2 = UpdateAccumulator::new();
        r2.reset(dim);
        r2.fold(&b, 5);
        r2.fold(&a, 3);
        r1.merge(&r2);

        assert_eq!(left, r1);
        assert_eq!(left.checksum(), r1.checksum());
        assert_eq!(left.weight(), 10);
    }

    #[test]
    fn mean_matches_float_reference_closely() {
        let dim = 16;
        let updates: Vec<(Vec<f64>, u64)> =
            (0..9).map(|i| (synth_update(i, dim), 1 + i % 4)).collect();
        let total: f64 = updates.iter().map(|(_, n)| *n as f64).sum();
        let mut float_avg = vec![0.0f64; dim];
        for (p, n) in &updates {
            for (a, &v) in float_avg.iter_mut().zip(p.iter()) {
                *a += v * *n as f64 / total;
            }
        }

        let mut acc = UpdateAccumulator::new();
        acc.reset(dim);
        for (p, n) in &updates {
            acc.fold(p, *n);
        }
        let mut fixed = Vec::new();
        assert!(acc.finish_into(&mut fixed));
        for (f, x) in float_avg.iter().zip(fixed.iter()) {
            assert!(
                (f - x).abs() < 1e-8,
                "fixed-point mean within quantization error: {f} vs {x}"
            );
        }
    }

    #[test]
    fn empty_accumulator_reports_nothing() {
        let acc = UpdateAccumulator::new();
        let mut out = vec![1.0, 2.0];
        assert!(!acc.finish_into(&mut out));
        assert!(out.is_empty());
        assert!(acc.is_empty());
    }

    #[test]
    fn buffers_are_reused_across_resets() {
        let mut acc = UpdateAccumulator::new();
        acc.reset(64);
        let cap = acc.sum.capacity();
        acc.reset(32);
        assert_eq!(acc.sum.capacity(), cap, "reset must keep the allocation");
        assert_eq!(acc.dim(), 32);
    }
}
