//! Synthetic federated datasets with controllable non-IID label skew.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labeled synthetic classification dataset: Gaussian blobs, one center
/// per class.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticDataset {
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    classes: usize,
}

impl SyntheticDataset {
    /// Generates `samples` points in `dims` dimensions across `classes`
    /// Gaussian blobs with the given intra-class `noise` (σ).
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero, `classes < 2`, or
    /// `noise < 0`.
    pub fn gaussian_blobs(
        samples: usize,
        dims: usize,
        classes: usize,
        noise: f64,
        seed: u64,
    ) -> Self {
        assert!(samples > 0 && dims > 0, "sizes must be positive");
        assert!(classes >= 2, "need at least two classes");
        assert!(noise >= 0.0, "noise must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        // Class centers on a scaled hypersphere-ish lattice.
        let centers: Vec<Vec<f64>> = (0..classes)
            .map(|c| {
                (0..dims)
                    .map(|d| {
                        let angle = (c * dims + d) as f64 * 2.399963; // golden angle
                        3.0 * angle.sin()
                    })
                    .collect()
            })
            .collect();
        let mut features = Vec::with_capacity(samples);
        let mut labels = Vec::with_capacity(samples);
        for i in 0..samples {
            let c = i % classes;
            let x: Vec<f64> = centers[c]
                .iter()
                .map(|&m| m + noise * gaussian(&mut rng))
                .collect();
            features.push(x);
            labels.push(c);
        }
        SyntheticDataset {
            features,
            labels,
            classes,
        }
    }

    /// Feature rows.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Labels, parallel to the feature rows.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `true` if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Splits off the last `fraction` of samples as a test set (the data
    /// is class-interleaved, so this preserves class balance).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1`.
    pub fn train_test_split(self, fraction: f64) -> (SyntheticDataset, SyntheticDataset) {
        assert!(
            (0.0..1.0).contains(&fraction) && fraction > 0.0,
            "fraction must be in (0, 1)"
        );
        let cut = ((1.0 - fraction) * self.len() as f64).round() as usize;
        let (fx_train, fx_test) = {
            let mut f = self.features;
            let test = f.split_off(cut);
            (f, test)
        };
        let (ly_train, ly_test) = {
            let mut l = self.labels;
            let test = l.split_off(cut);
            (l, test)
        };
        (
            SyntheticDataset {
                features: fx_train,
                labels: ly_train,
                classes: self.classes,
            },
            SyntheticDataset {
                features: fx_test,
                labels: ly_test,
                classes: self.classes,
            },
        )
    }
}

/// A federated partition of a dataset across clients, with Dirichlet
/// label skew (the standard non-IID benchmark: lower `alpha` → each client
/// sees fewer classes).
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedData {
    shards: Vec<SyntheticDataset>,
}

impl FederatedData {
    /// Partitions `data` across `clients` with Dirichlet(`alpha`) class
    /// proportions per client.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0` or `alpha <= 0`.
    pub fn dirichlet_split(data: &SyntheticDataset, clients: usize, alpha: f64, seed: u64) -> Self {
        assert!(clients > 0, "need at least one client");
        assert!(alpha > 0.0, "alpha must be positive");
        let mut rng = StdRng::seed_from_u64(seed);

        // Indices per class.
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); data.classes()];
        for (i, &y) in data.labels().iter().enumerate() {
            per_class[y].push(i);
        }

        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); clients];
        for class_indices in &per_class {
            // Dirichlet proportions via normalized Gamma(alpha, 1) draws.
            let weights: Vec<f64> = (0..clients).map(|_| gamma(alpha, &mut rng)).collect();
            let total: f64 = weights.iter().sum();
            let mut cursor = 0usize;
            for (c, w) in weights.iter().enumerate() {
                let take = if c + 1 == clients {
                    class_indices.len() - cursor
                } else {
                    ((w / total) * class_indices.len() as f64).floor() as usize
                };
                for &idx in &class_indices[cursor..cursor + take] {
                    assignment[c].push(idx);
                }
                cursor += take;
            }
        }

        let shards = assignment
            .into_iter()
            .map(|idxs| SyntheticDataset {
                features: idxs.iter().map(|&i| data.features()[i].clone()).collect(),
                labels: idxs.iter().map(|&i| data.labels()[i]).collect(),
                classes: data.classes(),
            })
            .collect();
        FederatedData { shards }
    }

    /// Number of client shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` if there are no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard for one client.
    pub fn shard(&self, client: usize) -> &SyntheticDataset {
        &self.shards[client]
    }

    /// Iterates over shards in client order.
    pub fn iter(&self) -> impl Iterator<Item = &SyntheticDataset> + '_ {
        self.shards.iter()
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Marsaglia–Tsang Gamma(shape, 1) sampler (with the shape<1 boost).
fn gamma(shape: f64, rng: &mut StdRng) -> f64 {
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = gaussian(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4)
            || u.max(f64::MIN_POSITIVE).ln() < 0.5 * x * x + d * (1.0 - v + v.ln())
        {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_are_balanced_and_separable() {
        let d = SyntheticDataset::gaussian_blobs(300, 4, 3, 0.3, 1);
        assert_eq!(d.len(), 300);
        assert_eq!(d.classes(), 3);
        // Balanced classes.
        for c in 0..3 {
            let n = d.labels().iter().filter(|&&y| y == c).count();
            assert_eq!(n, 100);
        }
        // Distinct class means (separability proxy): centers differ.
        let mean = |c: usize| -> Vec<f64> {
            let rows: Vec<&Vec<f64>> = d
                .features()
                .iter()
                .zip(d.labels())
                .filter(|(_, &y)| y == c)
                .map(|(x, _)| x)
                .collect();
            (0..4)
                .map(|j| rows.iter().map(|r| r[j]).sum::<f64>() / rows.len() as f64)
                .collect()
        };
        let (m0, m1) = (mean(0), mean(1));
        let dist: f64 = m0
            .iter()
            .zip(&m1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 1.0, "class centers too close: {dist}");
    }

    #[test]
    fn split_preserves_everything() {
        let d = SyntheticDataset::gaussian_blobs(200, 3, 2, 0.2, 2);
        let (train, test) = d.train_test_split(0.25);
        assert_eq!(train.len() + test.len(), 200);
        assert_eq!(test.len(), 50);
        assert_eq!(train.classes(), 2);
    }

    #[test]
    fn dirichlet_partition_covers_all_samples() {
        let d = SyntheticDataset::gaussian_blobs(400, 3, 4, 0.2, 3);
        let fed = FederatedData::dirichlet_split(&d, 8, 0.5, 4);
        assert_eq!(fed.len(), 8);
        let total: usize = fed.iter().map(|s| s.len()).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn low_alpha_is_skewed_high_alpha_is_uniform() {
        let d = SyntheticDataset::gaussian_blobs(2000, 3, 4, 0.2, 5);
        let skew = |alpha: f64| -> f64 {
            let fed = FederatedData::dirichlet_split(&d, 5, alpha, 6);
            // Mean over clients of the max class share on that client.
            fed.iter()
                .filter(|s| !s.is_empty())
                .map(|s| {
                    let mut counts = vec![0usize; s.classes()];
                    for &y in s.labels() {
                        counts[y] += 1;
                    }
                    *counts.iter().max().unwrap() as f64 / s.len() as f64
                })
                .sum::<f64>()
                / 5.0
        };
        let skewed = skew(0.1);
        let uniform = skew(100.0);
        assert!(
            skewed > uniform + 0.1,
            "alpha=0.1 should be more skewed: {skewed} vs {uniform}"
        );
    }

    #[test]
    fn gamma_sampler_mean_is_shape() {
        let mut rng = StdRng::seed_from_u64(9);
        for shape in [0.5, 1.0, 3.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| gamma(shape, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.1 * shape.max(1.0),
                "gamma({shape}) mean {mean}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn dirichlet_rejects_bad_alpha() {
        let d = SyntheticDataset::gaussian_blobs(10, 2, 2, 0.1, 0);
        let _ = FederatedData::dirichlet_split(&d, 2, 0.0, 0);
    }
}
