//! A FedAvg server with client selection, deadline assignment and
//! straggler handling (the workflow of the paper's Fig. 1).

use crate::aggregate::{aggregate_sharded, ShardPlan, UpdateAccumulator};
use crate::client::FlClient;
use crate::data::{FederatedData, SyntheticDataset};
use crate::engine::{ClientJob, ClientOutcome, RoundDeadline, RoundEngine, SequentialEngine};
use crate::model::{SoftmaxModel, TrainableModel};
use crate::network::{NetworkModel, ReportingDeadline};
use bofl::task::PaceController;
use bofl_device::Device;
use bofl_workload::{FlTask, TaskKind, Testbed};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How the server selects participants each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// Uniform random selection without replacement (the vanilla FedAvg
    /// server and the paper's assumption).
    #[default]
    Uniform,
    /// AutoFL-style energy-aware selection (paper §2.1): prefer clients
    /// whose devices finish a round with less energy at `x_max`,
    /// randomized by rank so slower devices still participate
    /// occasionally (statistical coverage of non-IID data).
    EnergyAware,
}

/// How the server expresses its per-round deadline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DeadlinePolicy {
    /// The paper's main model: the server assigns a *training* deadline
    /// (gradient computation must finish by then).
    #[default]
    Training,
    /// The footnote-3 extension: the server assigns a *reporting*
    /// deadline (update must be *received* by then); each client infers
    /// its training deadline from its own bandwidth estimator and the
    /// given uplink model.
    Reporting(NetworkModel),
}

/// Over-selection and quorum rules for closing a round (the recovery
/// half of the fault loop: selection-side redundancy plus an explicit
/// success target, instead of silently freezing the global model when a
/// round yields nothing).
///
/// With the default (no over-selection, no quorum) the federation behaves
/// exactly as the vanilla FedAvg server did. With a recovery policy the
/// server selects `K · (1 + over_select_fraction)` clients so that
/// stragglers and dropouts still leave roughly `K` usable updates, and
/// records a *quorum shortfall* whenever fewer than
/// `ceil(K · quorum_fraction)` updates arrive. Every update that does
/// arrive is always aggregated — the quorum marks rounds the operator
/// should distrust, it never discards work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregationPolicy {
    /// Fraction of `clients_per_round` whose updates must arrive for the
    /// round to count as healthy (`0.0` disables the quorum check).
    pub quorum_fraction: f64,
    /// Extra clients to select beyond `clients_per_round`, as a fraction
    /// (`0.25` selects 25% more, rounded up; `0.0` disables).
    pub over_select_fraction: f64,
}

impl AggregationPolicy {
    /// No over-selection, no quorum — byte-identical to the pre-recovery
    /// server.
    pub fn none() -> Self {
        AggregationPolicy {
            quorum_fraction: 0.0,
            over_select_fraction: 0.0,
        }
    }

    /// A reasonable recovery posture: select 50% extra clients and expect
    /// at least half of the nominal cohort to report back.
    pub fn recovery() -> Self {
        AggregationPolicy {
            quorum_fraction: 0.5,
            over_select_fraction: 0.5,
        }
    }

    /// Number of clients to select for a nominal cohort of
    /// `clients_per_round` (always at least the cohort itself).
    pub fn selection_target(&self, clients_per_round: usize) -> usize {
        let extra = (clients_per_round as f64 * self.over_select_fraction).ceil() as usize;
        clients_per_round + extra
    }

    /// The quorum: how many aggregated updates the round needs to count
    /// as healthy (`0` when the quorum check is disabled).
    pub fn quorum(&self, clients_per_round: usize) -> usize {
        if self.quorum_fraction <= 0.0 {
            return 0;
        }
        ((clients_per_round as f64 * self.quorum_fraction).ceil() as usize).max(1)
    }

    /// The event-driven round-close target: once this many updates have
    /// been aggregated, an open round stops waiting for the stragglers
    /// still in flight. The target is the nominal cohort (never below the
    /// quorum), so with over-selection a round can close the moment a full
    /// cohort has reported — which is only ever *earlier* than the barrier
    /// join. Without over-selection every selected client is needed to
    /// reach the target, and the close degenerates to the barrier.
    pub fn close_target(&self, clients_per_round: usize) -> usize {
        clients_per_round.max(self.quorum(clients_per_round))
    }
}

impl Default for AggregationPolicy {
    fn default() -> Self {
        AggregationPolicy::none()
    }
}

/// Configuration of a federated simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FederationConfig {
    /// Total clients in the pool.
    pub num_clients: usize,
    /// Clients selected per round.
    pub clients_per_round: usize,
    /// Number of FL rounds.
    pub rounds: usize,
    /// Deadline ratio: each round's training deadline is drawn uniformly
    /// from `[T_min, ratio × T_min]` of the slowest selected client.
    pub deadline_ratio: f64,
    /// Dirichlet α for the label-skew partition.
    pub dirichlet_alpha: f64,
    /// Feature dimensionality of the synthetic dataset.
    pub feature_dims: usize,
    /// Number of classes.
    pub classes: usize,
    /// SGD learning rate on the clients.
    pub learning_rate: f64,
    /// Probability a selected client drops out (network loss etc.).
    pub dropout_probability: f64,
    /// How deadlines are expressed (training vs reporting).
    pub deadline_policy: DeadlinePolicy,
    /// How participants are selected each round.
    pub selection_policy: SelectionPolicy,
    /// Over-selection and quorum rules (defaults to
    /// [`AggregationPolicy::none`], the vanilla server).
    pub aggregation: AggregationPolicy,
    /// Server-side multiplier on the nominal upload duration when
    /// converting a training deadline into a reporting deadline — slack
    /// for slow links. The pre-recovery server hardcoded `1.5`.
    pub upload_slack_factor: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            num_clients: 8,
            clients_per_round: 4,
            rounds: 10,
            deadline_ratio: 2.0,
            dirichlet_alpha: 0.5,
            feature_dims: 8,
            classes: 4,
            learning_rate: 0.2,
            dropout_probability: 0.0,
            deadline_policy: DeadlinePolicy::Training,
            selection_policy: SelectionPolicy::Uniform,
            aggregation: AggregationPolicy::none(),
            upload_slack_factor: 1.5,
            seed: 42,
        }
    }
}

/// What happened in one federated round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Zero-based round index.
    pub round: usize,
    /// Client ids selected this round.
    pub selected: Vec<usize>,
    /// Client ids whose updates were aggregated (met deadline, no
    /// dropout).
    pub aggregated: Vec<usize>,
    /// The training deadline assigned by the server, seconds.
    pub deadline_s: f64,
    /// The quorum the aggregation policy demanded (`0` = no quorum).
    pub quorum: usize,
    /// How many updates short of the quorum the round fell (`0` when the
    /// quorum was met or disabled). A non-zero shortfall with a non-empty
    /// `aggregated` set means the round progressed but under-sampled the
    /// cohort; a shortfall with an empty set is a wasted round.
    pub quorum_shortfall: usize,
    /// Total client energy this round, joules.
    pub energy_j: f64,
    /// Global-model accuracy on the held-out test set after aggregation.
    pub test_accuracy: f64,
    /// Global-model loss on the held-out test set after aggregation.
    pub test_loss: f64,
}

/// Full history of a federated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunHistory {
    /// Per-round records.
    pub rounds: Vec<RoundRecord>,
}

impl RunHistory {
    /// Total energy across all rounds and clients, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.rounds.iter().map(|r| r.energy_j).sum()
    }

    /// Final test accuracy.
    pub fn final_accuracy(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.test_accuracy)
    }
}

/// A complete federated simulation: server, clients, data and global
/// model. Build one with [`Federation::builder`].
///
/// Rounds execute through a pluggable [`RoundEngine`]. The default is the
/// inline [`SequentialEngine`]; the `bofl-fleet` crate provides a
/// multi-threaded engine with the same trace:
///
/// ```
/// use bofl_fl::prelude::*;
/// use bofl_fleet::FleetEngine;
///
/// let config = FederationConfig { rounds: 2, ..FederationConfig::default() };
/// let mut sim = Federation::builder(config)
///     .engine(FleetEngine::sequential()) // or FleetEngine::new(workers)
///     .build();
/// let history = sim.run();
/// assert_eq!(history.rounds.len(), 2);
/// ```
pub struct Federation {
    clients: Vec<FlClient>,
    global: Box<dyn TrainableModel>,
    test_set: SyntheticDataset,
    config: FederationConfig,
    model_bytes: f64,
    rng: StdRng,
    engine: Box<dyn RoundEngine>,
    shard_plan: ShardPlan,
    // Persistent aggregation buffers: the hot path folds every arrived
    // update into fixed-point accumulators and never clones a parameter
    // vector, so steady-state rounds allocate nothing here.
    agg_root: UpdateAccumulator,
    agg_shard: UpdateAccumulator,
    avg_buf: Vec<f64>,
}

impl std::fmt::Debug for Federation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Federation")
            .field("clients", &self.clients.len())
            .field("rounds", &self.config.rounds)
            .finish()
    }
}

impl Federation {
    /// Starts building a federation.
    pub fn builder(config: FederationConfig) -> FederationBuilder {
        FederationBuilder {
            config,
            device_factory: Box::new(|_| Device::jetson_agx()),
            controller_factory: Box::new(
                |_| Box::new(bofl::baselines::PerformantController::new()),
            ),
            task: None,
            engine: Box::new(SequentialEngine::new()),
            shard_plan: ShardPlan::flat(),
        }
    }

    /// Runs all configured rounds and returns the history.
    pub fn run(&mut self) -> RunHistory {
        let mut rounds = Vec::with_capacity(self.config.rounds);
        for round in 0..self.config.rounds {
            rounds.push(self.run_round(round));
        }
        RunHistory { rounds }
    }

    /// Runs one round: select → assign deadline → train → aggregate.
    pub fn run_round(&mut self, round: usize) -> RoundRecord {
        self.run_round_detailed(round).0
    }

    /// Draw-for-draw replay of one round's server-side randomness —
    /// selection shuffle, deadline stretch, dropout pre-draws — without
    /// training anyone. The server's RNG is threaded across rounds, so a
    /// coordinator resumed from its write-ahead log calls this for every
    /// already-committed round to fast-forward the stream; the continued
    /// run then selects the exact cohorts the crashed run would have.
    pub fn skip_round_draws(&mut self, round: usize) {
        let _ = self.plan_round(round);
    }

    /// Steps 1–3 of a round: select the cohort, assign the deadline,
    /// pre-draw server-side dropout. All of the round's `self.rng` draws
    /// happen here, in a deterministic count and order (independent of
    /// outcomes), which is what makes [`Federation::skip_round_draws`]
    /// an exact replay.
    fn plan_round(&mut self, round: usize) -> (Vec<ClientJob>, f64) {
        // 1. Client selection.
        let mut ids: Vec<usize> = (0..self.clients.len()).collect();
        match self.config.selection_policy {
            SelectionPolicy::Uniform => {
                ids.shuffle(&mut self.rng);
            }
            SelectionPolicy::EnergyAware => {
                // Rank clients by their x_max round energy estimate, then
                // soften with exponential-rank sampling so selection is
                // biased toward efficient devices but never deterministic.
                let mut scored: Vec<(usize, f64)> = ids
                    .iter()
                    .map(|&i| (i, self.clients[i].round_energy_at_max_j()))
                    .collect();
                scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite energies"));
                let mut keyed: Vec<(f64, usize)> = scored
                    .iter()
                    .enumerate()
                    .map(|(rank, &(id, _))| {
                        let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
                        // Smaller key wins; efficient ranks get a boost.
                        (u.ln() * -(1.0 + rank as f64 * 0.5), id)
                    })
                    .collect();
                keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite keys"));
                ids = keyed.into_iter().map(|(_, id)| id).collect();
            }
        }
        // Over-selection: with a recovery policy the server invites extra
        // clients so stragglers and upload failures still leave a full
        // cohort of usable updates.
        let target = self
            .config
            .aggregation
            .selection_target(self.config.clients_per_round);
        ids.truncate(target.min(self.clients.len()));
        ids.sort_unstable();

        // 2. Deadline assignment: feasible for the slowest selected
        //    client, scaled by a uniform draw from [1.02, ratio] (a small
        //    headroom keeps deadlines meaningful under latency jitter).
        let t_min_round = ids
            .iter()
            .map(|&i| self.clients[i].t_min_s())
            .fold(0.0f64, f64::max);
        let lo = 1.02f64.min(self.config.deadline_ratio);
        let stretch = lo + (self.config.deadline_ratio - lo) * self.rng.gen::<f64>();
        let deadline_s = t_min_round * stretch;

        // 3. Build the round's job batch. Server-side dropout is pre-drawn
        //    here, in client-id order, so the decision stream from
        //    `self.rng` is identical to the pre-engine inline loop (which
        //    drew one f64 per selected client in the same order) and —
        //    crucially — independent of how the engine schedules the jobs.
        let deadline = match self.config.deadline_policy {
            DeadlinePolicy::Training => RoundDeadline::Training(deadline_s),
            DeadlinePolicy::Reporting(network) => {
                // Reporting window = training window + nominal upload
                // budget for this task's model.
                let upload =
                    network.nominal_duration_s(self.model_bytes) * self.config.upload_slack_factor;
                RoundDeadline::Reporting(ReportingDeadline::new(deadline_s + upload))
            }
        };
        let jobs: Vec<ClientJob> = ids
            .iter()
            .map(|&id| ClientJob {
                client_id: id,
                round,
                deadline,
                dropped: self.rng.gen::<f64>() < self.config.dropout_probability,
                slowdown: 1.0,
            })
            .collect();
        (jobs, deadline_s)
    }

    /// Like [`Federation::run_round`], but also returns the per-client
    /// [`ClientOutcome`]s the round engine produced — the raw material for
    /// fleet-level metrics (energy/latency histograms, straggler rates).
    pub fn run_round_detailed(&mut self, round: usize) -> (RoundRecord, Vec<ClientOutcome>) {
        let (jobs, deadline_s) = self.plan_round(round);
        let ids: Vec<usize> = jobs.iter().map(|j| j.client_id).collect();

        // 4. Local training through the round engine (sequential by
        //    default; bofl-fleet plugs a worker pool in here).
        let global_params = self.global.parameters();
        let mut outcomes = self
            .engine
            .run_batch(&mut self.clients, &global_params, &jobs);
        outcomes.sort_by_key(|o| o.client_id);
        assert_eq!(
            outcomes.len(),
            jobs.len(),
            "engine `{}` must return one outcome per job",
            self.engine.label()
        );

        let energy_j: f64 = outcomes.iter().map(|o| o.result.energy_j).sum();
        let aggregated: Vec<usize> = outcomes
            .iter()
            .filter(|o| o.aggregatable())
            .map(|o| o.client_id)
            .collect();

        // 5. Hierarchical FedAvg, weighted by sample counts: the cohort's
        //    arrived updates (canonical id order) are folded shard-by-shard
        //    into fixed-point partial sums and merged at the root, so the
        //    result is byte-identical at any shard count — `ShardPlan::flat`
        //    *is* the vanilla single-pass server. Updates are borrowed, not
        //    cloned, and the accumulators/mean buffer persist across rounds.
        let updates: Vec<(&[f64], u64)> = outcomes
            .iter()
            .filter(|o| o.aggregatable())
            .map(|o| (o.result.parameters.as_slice(), o.result.samples as u64))
            .collect();
        if let Some(dim) = updates.first().map(|(p, _)| p.len()) {
            if aggregate_sharded(
                self.shard_plan,
                dim,
                &updates,
                &mut self.agg_root,
                &mut self.agg_shard,
                &mut self.avg_buf,
            ) {
                self.global.set_parameters(&self.avg_buf);
            }
        }

        // Quorum accounting: every arrived update was aggregated above —
        // the quorum only *labels* the round. A shortfall is the signal a
        // fleet operator watches instead of discovering, rounds later,
        // that the global model quietly stopped moving.
        let quorum = self
            .config
            .aggregation
            .quorum(self.config.clients_per_round);
        let quorum_shortfall = quorum.saturating_sub(aggregated.len());

        let record = RoundRecord {
            round,
            selected: ids,
            aggregated,
            deadline_s,
            quorum,
            quorum_shortfall,
            energy_j,
            test_accuracy: self
                .global
                .accuracy(self.test_set.features(), self.test_set.labels()),
            test_loss: self
                .global
                .loss(self.test_set.features(), self.test_set.labels()),
        };
        (record, outcomes)
    }

    /// The global model's accuracy on the held-out test set.
    pub fn test_accuracy(&self) -> f64 {
        self.global
            .accuracy(self.test_set.features(), self.test_set.labels())
    }

    /// Number of clients in the pool.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// The label of the round engine driving this federation.
    pub fn engine_label(&self) -> &str {
        self.engine.label()
    }

    /// Read-only view of the client pool.
    pub fn clients(&self) -> &[FlClient] {
        &self.clients
    }
}

/// Builder for a [`Federation`] (C-BUILDER).
pub struct FederationBuilder {
    config: FederationConfig,
    device_factory: Box<dyn Fn(usize) -> Device>,
    controller_factory: Box<dyn Fn(usize) -> Box<dyn PaceController>>,
    task: Option<FlTask>,
    engine: Box<dyn RoundEngine>,
    shard_plan: ShardPlan,
}

impl std::fmt::Debug for FederationBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FederationBuilder")
            .field("config", &self.config)
            .finish()
    }
}

impl FederationBuilder {
    /// Sets the per-client device factory (client id → device). Defaults
    /// to every client on a Jetson AGX.
    pub fn device_factory(mut self, f: impl Fn(usize) -> Device + 'static) -> Self {
        self.device_factory = Box::new(f);
        self
    }

    /// Sets the pace-controller factory (client id → controller, one per
    /// client). The id lets heterogeneous fleets hand each client a
    /// controller tuned to its device — e.g. an oracle built from that
    /// device's offline profile. Defaults to the Performant baseline.
    pub fn controller_factory(
        mut self,
        f: impl Fn(usize) -> Box<dyn PaceController> + 'static,
    ) -> Self {
        self.controller_factory = Box::new(f);
        self
    }

    /// Overrides the FL task (defaults to the CIFAR10-ViT preset scaled
    /// to the synthetic data).
    pub fn task(mut self, task: FlTask) -> Self {
        self.task = Some(task);
        self
    }

    /// Sets the round engine (defaults to [`SequentialEngine`]). Any
    /// engine honoring the determinism contract in [`crate::engine`]
    /// yields a trace identical to the sequential one.
    pub fn engine(mut self, engine: impl RoundEngine + 'static) -> Self {
        self.engine = Box::new(engine);
        self
    }

    /// Sets the aggregation [`ShardPlan`] (defaults to [`ShardPlan::flat`],
    /// the single-pass server). Any plan produces a byte-identical global
    /// model — sharding changes *how* the reduction is grouped, never what
    /// it computes — so this is safe to tune purely for throughput.
    pub fn shard_plan(mut self, plan: ShardPlan) -> Self {
        self.shard_plan = plan;
        self
    }

    /// Builds the federation: generates data, partitions it, instantiates
    /// clients and the global model.
    pub fn build(self) -> Federation {
        let cfg = self.config;
        let task = self
            .task
            .unwrap_or_else(|| FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx));

        // Enough data for every client to hold `local_samples`.
        let per_client = task.local_samples();
        let total = per_client * cfg.num_clients;
        let test_size = (total / 5).max(cfg.classes * 10);
        let all = SyntheticDataset::gaussian_blobs(
            total + test_size,
            cfg.feature_dims,
            cfg.classes,
            0.5,
            cfg.seed,
        );
        let (train, test_set) = all.train_test_split(test_size as f64 / (total + test_size) as f64);
        let fed = FederatedData::dirichlet_split(
            &train,
            cfg.num_clients,
            cfg.dirichlet_alpha,
            cfg.seed ^ 1,
        );

        let model_bytes = task.model().parameter_bytes();
        let clients = (0..cfg.num_clients)
            .map(|id| {
                let client = FlClient::new(
                    id,
                    (self.device_factory)(id),
                    task.clone(),
                    fed.shard(id).clone(),
                    Box::new(SoftmaxModel::new(
                        cfg.feature_dims,
                        cfg.classes,
                        cfg.seed ^ 0xC11E,
                    )),
                    (self.controller_factory)(id),
                    cfg.learning_rate,
                    cfg.seed ^ (id as u64).wrapping_mul(0x51_7C_C1),
                );
                match cfg.deadline_policy {
                    DeadlinePolicy::Reporting(network) => client.with_uplink(network),
                    DeadlinePolicy::Training => client,
                }
            })
            .collect();

        Federation {
            clients,
            global: Box::new(SoftmaxModel::new(
                cfg.feature_dims,
                cfg.classes,
                cfg.seed ^ 0x61_0B_A1,
            )),
            test_set,
            config: cfg,
            model_bytes,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x5E_1EC7),
            engine: self.engine,
            shard_plan: self.shard_plan,
            agg_root: UpdateAccumulator::new(),
            agg_shard: UpdateAccumulator::new(),
            avg_buf: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> FederationConfig {
        FederationConfig {
            num_clients: 4,
            clients_per_round: 2,
            rounds: 5,
            classes: 3,
            feature_dims: 6,
            seed: 9,
            ..FederationConfig::default()
        }
    }

    #[test]
    fn fedavg_improves_accuracy() {
        let mut sim = Federation::builder(quick_config()).build();
        let initial = sim.test_accuracy();
        let history = sim.run();
        assert_eq!(history.rounds.len(), 5);
        let final_acc = history.final_accuracy();
        // The randomly initialized global model can start anywhere, so ask
        // for a meaningful improvement *or* near-perfect separation of the
        // synthetic blobs — either way FedAvg demonstrably learned.
        assert!(
            final_acc > (initial + 0.2).min(0.95),
            "FedAvg should learn: {initial:.2} -> {final_acc:.2}"
        );
        assert!(history.total_energy_j() > 0.0);
    }

    #[test]
    fn selection_respects_pool_and_count() {
        let mut sim = Federation::builder(quick_config()).build();
        let rec = sim.run_round(0);
        assert_eq!(rec.selected.len(), 2);
        assert!(rec.selected.iter().all(|&id| id < 4));
        // All Performant clients meet deadlines; nobody drops.
        assert_eq!(rec.aggregated, rec.selected);
        assert!(rec.deadline_s > 0.0);
    }

    #[test]
    fn full_dropout_freezes_global_model() {
        let cfg = FederationConfig {
            dropout_probability: 1.0,
            ..quick_config()
        };
        let mut sim = Federation::builder(cfg).build();
        let initial = sim.test_accuracy();
        let history = sim.run();
        assert!(history.rounds.iter().all(|r| r.aggregated.is_empty()));
        assert!((sim.test_accuracy() - initial).abs() < 1e-12);
    }

    #[test]
    fn deadline_scales_with_ratio() {
        let tight = Federation::builder(FederationConfig {
            deadline_ratio: 1.0,
            ..quick_config()
        })
        .build()
        .run_first_deadline();
        let loose = Federation::builder(FederationConfig {
            deadline_ratio: 4.0,
            ..quick_config()
        })
        .build()
        .run_first_deadline();
        assert!(loose >= tight);
    }

    impl Federation {
        fn run_first_deadline(&mut self) -> f64 {
            self.run_round(0).deadline_s
        }
    }

    #[test]
    fn shard_plan_never_changes_the_run() {
        let run = |shards: usize| {
            let mut sim = Federation::builder(quick_config())
                .shard_plan(ShardPlan::with_shards(shards))
                .build();
            sim.run()
        };
        let flat = run(1);
        for shards in [2usize, 4, 16] {
            assert_eq!(flat, run(shards), "{shards} shards must match flat");
        }
    }
}
