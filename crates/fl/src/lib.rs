//! Federated-learning substrate for the BoFL reproduction.
//!
//! The paper evaluates BoFL inside a standard FedAvg deployment (its
//! Fig. 1): a server selects clients each round, ships them the global
//! model, assigns a training deadline, and averages the updates that come
//! back in time. This crate provides that substrate end-to-end so the
//! examples can demonstrate BoFL controlling *real* (small-scale) training
//! rather than a mock:
//!
//! - [`model`] — trainable models with genuine SGD: a softmax linear
//!   classifier and a one-hidden-layer MLP;
//! - [`data`] — synthetic federated datasets with Dirichlet label skew
//!   (the standard non-IID benchmark partition);
//! - [`client`] — an FL client whose [`TrainingExecutor`] performs one
//!   true SGD minibatch step per *job* while the simulated device charges
//!   the corresponding latency and energy; the pace controller (BoFL or a
//!   baseline) decides each job's DVFS configuration;
//! - [`server`] — a FedAvg server with client selection, per-round
//!   deadline assignment, straggler dropping and weighted aggregation;
//! - [`engine`] — the round-execution seam: the server hands each round's
//!   batch of [`engine::ClientJob`]s to a pluggable [`engine::RoundEngine`]
//!   ([`engine::SequentialEngine`] by default; the `bofl-fleet` crate
//!   provides a deterministic multi-threaded engine with fault injection).
//!
//! # Examples
//!
//! ```
//! use bofl_fl::prelude::*;
//! use bofl::BoflConfig;
//!
//! let config = FederationConfig {
//!     num_clients: 4,
//!     clients_per_round: 2,
//!     rounds: 3,
//!     deadline_ratio: 2.0,
//!     seed: 7,
//!     ..FederationConfig::default()
//! };
//! let mut sim = Federation::builder(config)
//!     .controller_factory(|_id| Box::new(bofl::BoflController::new(BoflConfig::fast_test())))
//!     .build();
//! let history = sim.run();
//! assert_eq!(history.rounds.len(), 3);
//! // Training made progress on the synthetic task.
//! assert!(history.rounds.last().unwrap().test_accuracy > 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod client;
pub mod data;
pub mod engine;
pub mod model;
pub mod network;
pub mod server;

pub use aggregate::{aggregate_sharded, ShardPlan, UpdateAccumulator};
pub use client::{FlClient, TrainingExecutor};
pub use data::{FederatedData, SyntheticDataset};
pub use engine::{ClientJob, ClientOutcome, RoundDeadline, RoundEngine, SequentialEngine};
pub use model::{Minibatch, MlpModel, SoftmaxModel, TrainableModel};
pub use network::{BandwidthEstimator, NetworkModel, ReportingDeadline, RetryPolicy};
pub use server::{
    AggregationPolicy, DeadlinePolicy, Federation, FederationBuilder, FederationConfig,
    RoundRecord, RunHistory, SelectionPolicy,
};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::aggregate::{aggregate_sharded, ShardPlan, UpdateAccumulator};
    pub use crate::client::FlClient;
    pub use crate::data::{FederatedData, SyntheticDataset};
    pub use crate::engine::{
        ClientJob, ClientOutcome, RoundDeadline, RoundEngine, SequentialEngine,
    };
    pub use crate::model::{MlpModel, SoftmaxModel, TrainableModel};
    pub use crate::network::{BandwidthEstimator, NetworkModel, ReportingDeadline, RetryPolicy};
    pub use crate::server::{
        AggregationPolicy, DeadlinePolicy, Federation, FederationBuilder, FederationConfig,
        RoundRecord, RunHistory, SelectionPolicy,
    };
}
