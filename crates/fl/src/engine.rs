//! The round-execution engine abstraction: how a federation turns a batch
//! of selected clients into training outcomes.
//!
//! The original server drove every client inline on one thread. That loop
//! is now the [`SequentialEngine`] — one implementation of [`RoundEngine`]
//! — and the server is engine-agnostic: it performs selection, deadline
//! assignment and aggregation, and hands the per-round *batch* of
//! [`ClientJob`]s to whichever engine the federation was built with. The
//! `bofl-fleet` crate plugs a deterministic multi-threaded engine (plus
//! fault injection) into the same seam.
//!
//! # Determinism contract
//!
//! Engines must return one [`ClientOutcome`] per job, **ordered by
//! `client_id`**, and every outcome must depend only on the client's own
//! state and the job — never on scheduling order. Each client trains from
//! per-`(client, round)` seeds, so any engine that honors the ordering rule
//! reproduces the sequential trace bit-for-bit.

use crate::client::{ClientRoundResult, FlClient};
use crate::network::ReportingDeadline;

/// The deadline a job is executed against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoundDeadline {
    /// The paper's main model: a server-assigned *training* deadline in
    /// seconds from round start.
    Training(f64),
    /// The footnote-3 extension: a *reporting* deadline; the client infers
    /// its own training window from its bandwidth estimator.
    Reporting(ReportingDeadline),
}

impl RoundDeadline {
    /// The raw limit in seconds (training or reporting, whichever this is).
    pub fn limit_s(&self) -> f64 {
        match self {
            RoundDeadline::Training(s) => *s,
            RoundDeadline::Reporting(r) => r.reporting_s,
        }
    }
}

/// One unit of work an engine must execute: "this client trains this round
/// against this deadline".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientJob {
    /// Index of the client in the federation's pool.
    pub client_id: usize,
    /// Zero-based federated round.
    pub round: usize,
    /// The deadline the client trains against.
    pub deadline: RoundDeadline,
    /// Server-side dropout, pre-drawn during selection so the decision is
    /// independent of engine scheduling. A dropped client still trains
    /// (and spends energy) — its update is simply never received.
    pub dropped: bool,
    /// Transient per-job latency inflation applied *inside* the client's
    /// training executor (`1.0` = healthy). Injecting the slowdown at the
    /// job level — rather than stretching the finished round's duration —
    /// means the pace controller observes it mid-round and its recovery
    /// machinery (guardian escalation, observation quarantine) can react,
    /// exactly as it would on a thermally-throttled physical board.
    /// Energy is not scaled: a throttled board draws less power for
    /// longer, and modeling that cancellation as neutral keeps the energy
    /// ledger comparable across fault plans.
    pub slowdown: f64,
}

/// What actually happened when a job ran, including any engine-level
/// fault injection.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOutcome {
    /// Which client this outcome belongs to.
    pub client_id: usize,
    /// The client-side training result (post fault adjustments).
    pub result: ClientRoundResult,
    /// Whether the update was lost to dropout (server- or engine-level).
    pub dropped: bool,
    /// Transient slowdown multiplier applied to the round's duration
    /// (`1.0` = none; `> 1.0` = the client ran as a straggler).
    pub straggler_factor: f64,
    /// Whether the model upload failed after training completed (after
    /// all permitted attempts).
    pub upload_failed: bool,
    /// Upload attempts made (`1` = first try succeeded or no retry policy
    /// was active; `> 1` = the retry machinery fired).
    pub upload_attempts: u32,
    /// Whether the update was delivered *after* the round had already
    /// closed on its quorum of earlier reports. Barrier engines never set
    /// this; an event-driven engine closes a round as soon as its
    /// aggregation target is met, and anything still in flight lands late.
    pub late: bool,
}

impl ClientOutcome {
    /// Whether the server may aggregate this update: training met its
    /// deadline, the update actually arrived, and it arrived while the
    /// round was still open.
    pub fn aggregatable(&self) -> bool {
        self.result.deadline_met && !self.dropped && !self.upload_failed && !self.late
    }

    /// Whether the client failed its deadline (a straggler in the paper's
    /// terminology, whatever the cause).
    pub fn missed_deadline(&self) -> bool {
        !self.result.deadline_met
    }

    /// Whether a retried upload ultimately got through — a round the
    /// recovery layer saved from being wasted.
    pub fn recovered_upload(&self) -> bool {
        self.upload_attempts > 1 && !self.upload_failed
    }
}

/// Executes one job against one client. This is the single shared
/// implementation of "run a client's round" — every engine, sequential or
/// parallel, must call it so their traces are comparable bit-for-bit.
pub fn run_client_job(client: &mut FlClient, global: &[f64], job: &ClientJob) -> ClientOutcome {
    let result = match job.deadline {
        RoundDeadline::Training(deadline_s) => {
            client.train_round_paced(job.round, global, deadline_s, job.slowdown)
        }
        RoundDeadline::Reporting(reporting) => {
            client.train_round_reporting_paced(job.round, global, reporting, job.slowdown)
        }
    };
    ClientOutcome {
        client_id: job.client_id,
        result,
        dropped: job.dropped,
        straggler_factor: job.slowdown,
        upload_failed: false,
        upload_attempts: 1,
        late: false,
    }
}

/// A strategy for executing one round's batch of client jobs.
///
/// `Send` so a federation (which owns its engine) can itself move across
/// threads, e.g. when experiments are parallelized at a higher level.
pub trait RoundEngine: Send {
    /// Short human-readable name for reports (e.g. `"sequential"`).
    fn label(&self) -> &str;

    /// Executes `jobs` against `clients` (the federation's full pool,
    /// indexed by `ClientJob::client_id`) and returns one outcome per job
    /// **sorted by `client_id`**.
    fn run_batch(
        &mut self,
        clients: &mut [FlClient],
        global: &[f64],
        jobs: &[ClientJob],
    ) -> Vec<ClientOutcome>;
}

/// The classic single-threaded path: jobs run inline, one after another,
/// in client-id order. This is the reference implementation every other
/// engine must agree with, and the easiest one to step through in a
/// debugger.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialEngine;

impl SequentialEngine {
    /// Creates the sequential engine.
    pub fn new() -> Self {
        SequentialEngine
    }
}

impl RoundEngine for SequentialEngine {
    fn label(&self) -> &str {
        "sequential"
    }

    fn run_batch(
        &mut self,
        clients: &mut [FlClient],
        global: &[f64],
        jobs: &[ClientJob],
    ) -> Vec<ClientOutcome> {
        jobs.iter()
            .map(|job| run_client_job(&mut clients[job.client_id], global, job))
            .collect()
    }
}

// The fleet engine sends `&mut FlClient` into scoped worker threads, so a
// client (and everything it owns) must be `Send`. Assert it here, next to
// the type's definition crate, so a regression fails this build directly.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<FlClient>();
    assert_send::<SequentialEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticDataset;
    use crate::model::{SoftmaxModel, TrainableModel};
    use bofl::baselines::PerformantController;
    use bofl_device::Device;
    use bofl_workload::{FlTask, TaskKind, Testbed};

    fn client(id: usize) -> FlClient {
        let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
        let data = SyntheticDataset::gaussian_blobs(task.local_samples(), 6, 3, 0.4, id as u64);
        FlClient::new(
            id,
            Device::jetson_agx(),
            task,
            data,
            Box::new(SoftmaxModel::new(6, 3, 11)),
            Box::new(PerformantController::new()),
            0.2,
            17 + id as u64,
        )
    }

    #[test]
    fn sequential_engine_orders_outcomes_by_client_id() {
        let mut clients = vec![client(0), client(1), client(2)];
        let params = SoftmaxModel::new(6, 3, 11).parameters();
        let deadline = clients.iter().map(|c| c.t_min_s()).fold(0.0, f64::max) * 2.0;
        let jobs: Vec<ClientJob> = [0usize, 2]
            .iter()
            .map(|&id| ClientJob {
                client_id: id,
                round: 0,
                deadline: RoundDeadline::Training(deadline),
                dropped: false,
                slowdown: 1.0,
            })
            .collect();
        let mut engine = SequentialEngine::new();
        let outcomes = engine.run_batch(&mut clients, &params, &jobs);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].client_id, 0);
        assert_eq!(outcomes[1].client_id, 2);
        assert!(outcomes.iter().all(|o| o.aggregatable()));
        assert!(outcomes.iter().all(|o| o.straggler_factor == 1.0));
        assert_eq!(engine.label(), "sequential");
    }

    #[test]
    fn dropped_jobs_still_train_but_never_aggregate() {
        let mut clients = vec![client(0)];
        let params = SoftmaxModel::new(6, 3, 11).parameters();
        let deadline = clients[0].t_min_s() * 2.0;
        let jobs = [ClientJob {
            client_id: 0,
            round: 0,
            deadline: RoundDeadline::Training(deadline),
            dropped: true,
            slowdown: 1.0,
        }];
        let outcomes = SequentialEngine::new().run_batch(&mut clients, &params, &jobs);
        assert!(outcomes[0].result.energy_j > 0.0, "dropout wastes energy");
        assert!(!outcomes[0].aggregatable());
    }

    #[test]
    fn round_deadline_limits() {
        assert_eq!(RoundDeadline::Training(4.0).limit_s(), 4.0);
        let r = RoundDeadline::Reporting(crate::network::ReportingDeadline::new(9.0));
        assert_eq!(r.limit_s(), 9.0);
    }
}
