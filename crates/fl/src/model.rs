//! Trainable models with real stochastic gradient descent.
//!
//! The device simulator decides how long a minibatch *takes* and what it
//! *costs*; these models decide what the minibatch *learns*. Both are
//! driven from the same job loop, so an example run produces a genuinely
//! converging federated model alongside its energy ledger.

use rand::Rng;

/// One minibatch of training data: rows of features plus integer labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Minibatch<'a> {
    /// Feature rows, one per sample.
    pub features: &'a [Vec<f64>],
    /// Class labels, parallel to `features`.
    pub labels: &'a [usize],
}

impl Minibatch<'_> {
    /// Number of samples in the minibatch.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `true` if the minibatch is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }
}

/// A model trainable by minibatch SGD and aggregable by FedAvg.
pub trait TrainableModel: Send {
    /// Flat parameter vector (read).
    fn parameters(&self) -> Vec<f64>;

    /// Overwrites parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the length differs from
    /// `parameters().len()`.
    fn set_parameters(&mut self, params: &[f64]);

    /// Performs one SGD step on a minibatch; returns the pre-step
    /// mean cross-entropy loss.
    fn sgd_step(&mut self, batch: &Minibatch<'_>, learning_rate: f64) -> f64;

    /// Mean cross-entropy loss on a dataset (no update).
    fn loss(&self, features: &[Vec<f64>], labels: &[usize]) -> f64;

    /// Classification accuracy on a dataset.
    fn accuracy(&self, features: &[Vec<f64>], labels: &[usize]) -> f64;

    /// Clones the model behind a box (object-safe clone).
    fn clone_box(&self) -> Box<dyn TrainableModel>;
}

impl Clone for Box<dyn TrainableModel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

fn softmax_in_place(logits: &mut [f64]) {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in logits.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in logits.iter_mut() {
        *v /= sum;
    }
}

/// Multinomial logistic regression (softmax) with bias, trained by SGD.
///
/// # Examples
///
/// ```
/// use bofl_fl::{Minibatch, SoftmaxModel, TrainableModel};
///
/// let mut m = SoftmaxModel::new(2, 2, 42);
/// let xs = vec![vec![2.0, 0.0], vec![-2.0, 0.0]];
/// let ys = vec![0usize, 1usize];
/// for _ in 0..200 {
///     m.sgd_step(&Minibatch { features: &xs, labels: &ys }, 0.5);
/// }
/// assert_eq!(m.accuracy(&xs, &ys), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxModel {
    features: usize,
    classes: usize,
    /// Row-major `classes × (features + 1)`; last column is the bias.
    weights: Vec<f64>,
}

impl SoftmaxModel {
    /// Creates a model with small random weights (seeded).
    ///
    /// # Panics
    ///
    /// Panics if `features == 0` or `classes < 2`.
    pub fn new(features: usize, classes: usize, seed: u64) -> Self {
        assert!(features > 0, "at least one feature required");
        assert!(classes >= 2, "at least two classes required");
        let mut rng = small_rng(seed);
        let weights = (0..classes * (features + 1))
            .map(|_| (rng.gen::<f64>() - 0.5) * 0.02)
            .collect();
        SoftmaxModel {
            features,
            classes,
            weights,
        }
    }

    /// Input dimensionality.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    fn logits(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.features, "feature dimension mismatch");
        let stride = self.features + 1;
        (0..self.classes)
            .map(|c| {
                let row = &self.weights[c * stride..(c + 1) * stride];
                row[..self.features]
                    .iter()
                    .zip(x)
                    .map(|(w, xi)| w * xi)
                    .sum::<f64>()
                    + row[self.features]
            })
            .collect()
    }

    /// Class probabilities for one sample.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut l = self.logits(x);
        softmax_in_place(&mut l);
        l
    }

    /// Most likely class for one sample.
    pub fn predict(&self, x: &[f64]) -> usize {
        let p = self.predict_proba(x);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .map(|(i, _)| i)
            .expect("at least two classes")
    }
}

impl TrainableModel for SoftmaxModel {
    fn parameters(&self) -> Vec<f64> {
        self.weights.clone()
    }

    fn set_parameters(&mut self, params: &[f64]) {
        assert_eq!(
            params.len(),
            self.weights.len(),
            "parameter length mismatch"
        );
        self.weights.copy_from_slice(params);
    }

    fn sgd_step(&mut self, batch: &Minibatch<'_>, learning_rate: f64) -> f64 {
        assert!(!batch.is_empty(), "minibatch must not be empty");
        let stride = self.features + 1;
        let scale = learning_rate / batch.len() as f64;
        let mut total_loss = 0.0;
        let mut grad = vec![0.0; self.weights.len()];
        for (x, &y) in batch.features.iter().zip(batch.labels) {
            assert!(y < self.classes, "label {y} out of range");
            let mut p = self.logits(x);
            softmax_in_place(&mut p);
            total_loss -= p[y].max(1e-12).ln();
            for c in 0..self.classes {
                let err = p[c] - if c == y { 1.0 } else { 0.0 };
                let row = &mut grad[c * stride..(c + 1) * stride];
                for (g, xi) in row[..self.features].iter_mut().zip(x) {
                    *g += err * xi;
                }
                row[self.features] += err;
            }
        }
        for (w, g) in self.weights.iter_mut().zip(&grad) {
            *w -= scale * g;
        }
        total_loss / batch.len() as f64
    }

    fn loss(&self, features: &[Vec<f64>], labels: &[usize]) -> f64 {
        assert_eq!(features.len(), labels.len());
        if features.is_empty() {
            return 0.0;
        }
        features
            .iter()
            .zip(labels)
            .map(|(x, &y)| -self.predict_proba(x)[y].max(1e-12).ln())
            .sum::<f64>()
            / features.len() as f64
    }

    fn accuracy(&self, features: &[Vec<f64>], labels: &[usize]) -> f64 {
        assert_eq!(features.len(), labels.len());
        if features.is_empty() {
            return 0.0;
        }
        let hits = features
            .iter()
            .zip(labels)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        hits as f64 / features.len() as f64
    }

    fn clone_box(&self) -> Box<dyn TrainableModel> {
        Box::new(self.clone())
    }
}

/// A one-hidden-layer MLP with tanh activation, trained by backprop SGD.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpModel {
    features: usize,
    hidden: usize,
    classes: usize,
    /// `[w1 (hidden × (features+1)) | w2 (classes × (hidden+1))]` flat.
    weights: Vec<f64>,
}

impl MlpModel {
    /// Creates an MLP with Xavier-ish random weights (seeded).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `classes < 2`.
    pub fn new(features: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        assert!(features > 0 && hidden > 0, "dimensions must be positive");
        assert!(classes >= 2, "at least two classes required");
        let mut rng = small_rng(seed);
        let n = hidden * (features + 1) + classes * (hidden + 1);
        let scale = (2.0 / (features + hidden) as f64).sqrt();
        let weights = (0..n).map(|_| (rng.gen::<f64>() - 0.5) * scale).collect();
        MlpModel {
            features,
            hidden,
            classes,
            weights,
        }
    }

    fn split(&self) -> (&[f64], &[f64]) {
        self.weights.split_at(self.hidden * (self.features + 1))
    }

    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(x.len(), self.features, "feature dimension mismatch");
        let (w1, w2) = self.split();
        let s1 = self.features + 1;
        let h: Vec<f64> = (0..self.hidden)
            .map(|j| {
                let row = &w1[j * s1..(j + 1) * s1];
                (row[..self.features]
                    .iter()
                    .zip(x)
                    .map(|(w, xi)| w * xi)
                    .sum::<f64>()
                    + row[self.features])
                    .tanh()
            })
            .collect();
        let s2 = self.hidden + 1;
        let mut logits: Vec<f64> = (0..self.classes)
            .map(|c| {
                let row = &w2[c * s2..(c + 1) * s2];
                row[..self.hidden]
                    .iter()
                    .zip(&h)
                    .map(|(w, hi)| w * hi)
                    .sum::<f64>()
                    + row[self.hidden]
            })
            .collect();
        softmax_in_place(&mut logits);
        (h, logits)
    }

    /// Most likely class for one sample.
    pub fn predict(&self, x: &[f64]) -> usize {
        let (_, p) = self.forward(x);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .map(|(i, _)| i)
            .expect("at least two classes")
    }
}

impl TrainableModel for MlpModel {
    fn parameters(&self) -> Vec<f64> {
        self.weights.clone()
    }

    fn set_parameters(&mut self, params: &[f64]) {
        assert_eq!(
            params.len(),
            self.weights.len(),
            "parameter length mismatch"
        );
        self.weights.copy_from_slice(params);
    }

    fn sgd_step(&mut self, batch: &Minibatch<'_>, learning_rate: f64) -> f64 {
        assert!(!batch.is_empty(), "minibatch must not be empty");
        let s1 = self.features + 1;
        let s2 = self.hidden + 1;
        let w1_len = self.hidden * s1;
        let mut grad = vec![0.0; self.weights.len()];
        let mut total_loss = 0.0;

        for (x, &y) in batch.features.iter().zip(batch.labels) {
            assert!(y < self.classes, "label {y} out of range");
            let (h, p) = self.forward(x);
            total_loss -= p[y].max(1e-12).ln();
            // Output layer gradient.
            let (_, w2) = self.split();
            let mut dh = vec![0.0; self.hidden];
            for c in 0..self.classes {
                let err = p[c] - if c == y { 1.0 } else { 0.0 };
                let row = &mut grad[w1_len + c * s2..w1_len + (c + 1) * s2];
                for (g, hi) in row[..self.hidden].iter_mut().zip(&h) {
                    *g += err * hi;
                }
                row[self.hidden] += err;
                let w2row = &w2[c * s2..(c + 1) * s2];
                for (dhj, w) in dh.iter_mut().zip(&w2row[..self.hidden]) {
                    *dhj += err * w;
                }
            }
            // Hidden layer gradient through tanh.
            for j in 0..self.hidden {
                let dpre = dh[j] * (1.0 - h[j] * h[j]);
                let row = &mut grad[j * s1..(j + 1) * s1];
                for (g, xi) in row[..self.features].iter_mut().zip(x) {
                    *g += dpre * xi;
                }
                row[self.features] += dpre;
            }
        }

        let scale = learning_rate / batch.len() as f64;
        for (w, g) in self.weights.iter_mut().zip(&grad) {
            *w -= scale * g;
        }
        total_loss / batch.len() as f64
    }

    fn loss(&self, features: &[Vec<f64>], labels: &[usize]) -> f64 {
        assert_eq!(features.len(), labels.len());
        if features.is_empty() {
            return 0.0;
        }
        features
            .iter()
            .zip(labels)
            .map(|(x, &y)| -self.forward(x).1[y].max(1e-12).ln())
            .sum::<f64>()
            / features.len() as f64
    }

    fn accuracy(&self, features: &[Vec<f64>], labels: &[usize]) -> f64 {
        assert_eq!(features.len(), labels.len());
        if features.is_empty() {
            return 0.0;
        }
        let hits = features
            .iter()
            .zip(labels)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        hits as f64 / features.len() as f64
    }

    fn clone_box(&self) -> Box<dyn TrainableModel> {
        Box::new(self.clone())
    }
}

fn small_rng(seed: u64) -> impl Rng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![0, 1, 1, 0];
        (xs, ys)
    }

    #[test]
    fn softmax_learns_linear_separation() {
        let mut m = SoftmaxModel::new(2, 2, 1);
        let xs: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let t = i as f64 / 10.0;
                if i % 2 == 0 {
                    vec![1.0 + t, 1.0]
                } else {
                    vec![-1.0 - t, -1.0]
                }
            })
            .collect();
        let ys: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let initial_loss = m.loss(&xs, &ys);
        for _ in 0..100 {
            m.sgd_step(
                &Minibatch {
                    features: &xs,
                    labels: &ys,
                },
                0.5,
            );
        }
        assert!(m.loss(&xs, &ys) < initial_loss * 0.5);
        assert_eq!(m.accuracy(&xs, &ys), 1.0);
    }

    #[test]
    fn softmax_cannot_solve_xor_but_mlp_can() {
        let (xs, ys) = xor_data();
        let batch = Minibatch {
            features: &xs,
            labels: &ys,
        };
        let mut linear = SoftmaxModel::new(2, 2, 3);
        for _ in 0..2000 {
            linear.sgd_step(&batch, 0.5);
        }
        assert!(
            linear.accuracy(&xs, &ys) <= 0.75,
            "linear model solved XOR?"
        );

        let mut mlp = MlpModel::new(2, 8, 2, 3);
        for _ in 0..4000 {
            mlp.sgd_step(&batch, 0.5);
        }
        assert_eq!(mlp.accuracy(&xs, &ys), 1.0, "MLP must solve XOR");
    }

    #[test]
    fn parameter_roundtrip() {
        let mut a = SoftmaxModel::new(3, 4, 7);
        let b = SoftmaxModel::new(3, 4, 8);
        a.set_parameters(&b.parameters());
        assert_eq!(a.parameters(), b.parameters());

        let mut m1 = MlpModel::new(3, 5, 2, 1);
        let m2 = MlpModel::new(3, 5, 2, 2);
        m1.set_parameters(&m2.parameters());
        assert_eq!(m1.parameters(), m2.parameters());
    }

    #[test]
    fn sgd_returns_decreasing_loss() {
        let (xs, ys) = xor_data();
        let batch = Minibatch {
            features: &xs,
            labels: &ys,
        };
        let mut m = MlpModel::new(2, 6, 2, 5);
        let first = m.sgd_step(&batch, 0.3);
        let mut last = first;
        for _ in 0..3000 {
            last = m.sgd_step(&batch, 0.3);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn clone_box_is_independent() {
        let m = SoftmaxModel::new(2, 2, 9);
        let mut boxed: Box<dyn TrainableModel> = m.clone_box();
        let cloned = boxed.clone();
        boxed.set_parameters(&vec![0.0; m.parameters().len()]);
        assert_ne!(cloned.parameters(), boxed.parameters());
    }

    #[test]
    #[should_panic(expected = "parameter length mismatch")]
    fn set_parameters_checks_length() {
        SoftmaxModel::new(2, 2, 0).set_parameters(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn rejects_out_of_range_labels() {
        let mut m = SoftmaxModel::new(2, 2, 0);
        let xs = vec![vec![0.0, 0.0]];
        let ys = vec![5usize];
        m.sgd_step(
            &Minibatch {
                features: &xs,
                labels: &ys,
            },
            0.1,
        );
    }
}
