//! Integration test for the footnote-3 extension: clients facing
//! *reporting* deadlines infer training deadlines from a bandwidth
//! estimator and still deliver updates on time with BoFL pacing.

use bofl::baselines::PerformantController;
use bofl::{BoflConfig, BoflController};
use bofl_device::Device;
use bofl_fl::prelude::*;
use bofl_fl::SoftmaxModel;
use bofl_workload::{FlTask, TaskKind, Testbed};

fn make_client(controller_is_bofl: bool) -> FlClient {
    let device = Device::jetson_agx();
    let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
    let data = SyntheticDataset::gaussian_blobs(task.local_samples(), 8, 4, 0.4, 21);
    let controller: Box<dyn bofl::task::PaceController> = if controller_is_bofl {
        Box::new(BoflController::new(BoflConfig::fast_test()))
    } else {
        Box::new(PerformantController::new())
    };
    FlClient::new(
        0,
        device,
        task,
        data,
        Box::new(SoftmaxModel::new(8, 4, 5)),
        controller,
        0.2,
        77,
    )
    .with_uplink(NetworkModel::lte())
}

#[test]
fn reporting_rounds_meet_the_reporting_deadline() {
    let mut client = make_client(true);
    let t_min = client.t_min_s();
    // ViT ≈ 40 MB over LTE (≈ 0.6 MB/s) ≈ 65 s of upload; grant 2×T_min
    // of training headroom plus a 90 s reporting margin.
    let reporting = ReportingDeadline::new(t_min * 2.0 + 90.0);
    let global = SoftmaxModel::new(8, 4, 5).parameters_vec();

    let mut met = 0;
    for round in 0..10 {
        let res = client.train_round_reporting(round, &global, reporting);
        assert!(res.duration_s > 0.0);
        if res.deadline_met {
            met += 1;
        }
    }
    assert!(
        met >= 9,
        "reporting deadlines should essentially always hold, met {met}/10"
    );
    // After the first round, the estimator has observations.
    assert!(client.bandwidth_estimate_bps().is_some());
    // LTE nominal ≈ 625 kB/s; the EWMA should land in the right decade.
    let bw = client.bandwidth_estimate_bps().unwrap();
    assert!((1e5..5e6).contains(&bw), "bandwidth estimate {bw:.0} B/s");
}

#[test]
fn first_round_uses_whole_window_then_adapts() {
    let mut client = make_client(false);
    let t_min = client.t_min_s();
    let reporting = ReportingDeadline::new(t_min * 2.0 + 120.0);
    let global = SoftmaxModel::new(8, 4, 5).parameters_vec();

    // Round 0 already budgets from the model *download*, so even the
    // first reporting deadline holds.
    let r0 = client.train_round_reporting(0, &global, reporting);
    assert!(
        r0.deadline_met,
        "first round must meet the reporting deadline"
    );
    // The estimator keeps adapting on subsequent rounds.
    let before = client.bandwidth_estimate_bps().unwrap();
    let r1 = client.train_round_reporting(1, &global, reporting);
    assert!(r1.deadline_met, "adapted round must meet the deadline");
    let after = client.bandwidth_estimate_bps().unwrap();
    assert!(before > 0.0 && after > 0.0);
}

/// Helper: `SoftmaxModel::parameters` via the trait (avoids importing the
/// trait everywhere in the test).
trait ParametersVec {
    fn parameters_vec(&self) -> Vec<f64>;
}

impl ParametersVec for SoftmaxModel {
    fn parameters_vec(&self) -> Vec<f64> {
        use bofl_fl::TrainableModel;
        self.parameters()
    }
}
