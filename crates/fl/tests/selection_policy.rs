//! Tests for the AutoFL-style energy-aware client selection (the
//! server-side counterpart BoFL composes with, paper §2.1).

use bofl_device::Device;
use bofl_fl::prelude::*;
use std::collections::HashMap;

fn mixed_fleet_config(policy: SelectionPolicy) -> FederationConfig {
    FederationConfig {
        num_clients: 6,
        clients_per_round: 2,
        // Enough selections (2 × 120) that the AGX-share gap between the
        // two policies clears its threshold well outside sampling noise,
        // whatever RNG stream backs the server.
        rounds: 120,
        deadline_ratio: 2.0,
        classes: 3,
        feature_dims: 6,
        selection_policy: policy,
        seed: 512,
        ..FederationConfig::default()
    }
}

/// AGX clients (even ids) are far more energy-efficient per round than
/// TX2 clients (odd ids) for the default CIFAR10-ViT task.
fn mixed_devices(id: usize) -> Device {
    if id.is_multiple_of(2) {
        Device::jetson_agx()
    } else {
        Device::jetson_tx2()
    }
}

fn selection_counts(policy: SelectionPolicy) -> HashMap<usize, usize> {
    let mut sim = Federation::builder(mixed_fleet_config(policy))
        .device_factory(mixed_devices)
        .build();
    let history = sim.run();
    let mut counts = HashMap::new();
    for r in &history.rounds {
        for &id in &r.selected {
            *counts.entry(id).or_insert(0) += 1;
        }
    }
    counts
}

#[test]
fn energy_aware_selection_prefers_efficient_devices() {
    let uniform = selection_counts(SelectionPolicy::Uniform);
    let aware = selection_counts(SelectionPolicy::EnergyAware);

    let agx_share = |counts: &HashMap<usize, usize>| -> f64 {
        let agx: usize = counts
            .iter()
            .filter(|(id, _)| *id % 2 == 0)
            .map(|(_, c)| c)
            .sum();
        let total: usize = counts.values().sum();
        agx as f64 / total as f64
    };
    let u = agx_share(&uniform);
    let a = agx_share(&aware);
    // Exponential-rank sampling gives AGX (ranks 0–2) a true share around
    // 0.67; uniform selection sits at 0.50. Test the aware share against
    // the *known* uniform baseline rather than the empirical `u` — the
    // latter doubles the sampling variance for no extra information.
    assert!(
        a > 0.58 && a > u,
        "energy-aware selection should favor AGX clients: uniform {u:.2} vs aware {a:.2}"
    );
    // ...but must not starve the inefficient ones entirely (data coverage).
    let tx2_selected = aware.keys().filter(|id| *id % 2 == 1).count();
    assert!(
        tx2_selected >= 1,
        "at least one TX2 client should still participate"
    );
}

#[test]
fn energy_aware_fleet_spends_less() {
    let run = |policy| {
        Federation::builder(mixed_fleet_config(policy))
            .device_factory(mixed_devices)
            .build()
            .run()
    };
    let uniform = run(SelectionPolicy::Uniform);
    let aware = run(SelectionPolicy::EnergyAware);
    assert!(
        aware.total_energy_j() < uniform.total_energy_j(),
        "energy-aware selection should reduce fleet energy: {:.0} vs {:.0}",
        aware.total_energy_j(),
        uniform.total_energy_j()
    );
    // Learning still happens.
    assert!(aware.final_accuracy() > 0.5);
}
