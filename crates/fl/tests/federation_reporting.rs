//! Federation-level test of the reporting-deadline policy: a whole fleet
//! operating on reporting deadlines still converges and aggregates
//! (nearly) every update.

use bofl_fl::prelude::*;

fn base_config() -> FederationConfig {
    FederationConfig {
        num_clients: 4,
        clients_per_round: 2,
        rounds: 6,
        deadline_ratio: 2.5,
        classes: 3,
        feature_dims: 6,
        seed: 88,
        ..FederationConfig::default()
    }
}

#[test]
fn reporting_policy_federation_converges() {
    let mut sim = Federation::builder(FederationConfig {
        deadline_policy: DeadlinePolicy::Reporting(NetworkModel::wifi()),
        ..base_config()
    })
    .build();
    let history = sim.run();
    assert_eq!(history.rounds.len(), 6);
    // Over Wi-Fi the upload budget is small; essentially every update
    // should arrive inside the reporting window.
    let aggregated: usize = history.rounds.iter().map(|r| r.aggregated.len()).sum();
    let selected: usize = history.rounds.iter().map(|r| r.selected.len()).sum();
    assert!(
        aggregated >= selected - 1,
        "reporting policy dropped too many updates: {aggregated}/{selected}"
    );
    assert!(
        history.final_accuracy() > 0.5,
        "federation should learn, accuracy {:.2}",
        history.final_accuracy()
    );
}

#[test]
fn lte_uplink_still_delivers_most_updates() {
    let mut sim = Federation::builder(FederationConfig {
        deadline_policy: DeadlinePolicy::Reporting(NetworkModel::lte()),
        ..base_config()
    })
    .build();
    let history = sim.run();
    let aggregated: usize = history.rounds.iter().map(|r| r.aggregated.len()).sum();
    let selected: usize = history.rounds.iter().map(|r| r.selected.len()).sum();
    // LTE variance can cost an occasional update, but not the majority.
    assert!(
        aggregated as f64 >= selected as f64 * 0.7,
        "LTE delivered only {aggregated}/{selected}"
    );
}

#[test]
fn training_and_reporting_policies_agree_on_energy_scale() {
    let training = Federation::builder(base_config()).build().run();
    let reporting = Federation::builder(FederationConfig {
        deadline_policy: DeadlinePolicy::Reporting(NetworkModel::wifi()),
        ..base_config()
    })
    .build()
    .run();
    // Same devices, same jobs, similar deadlines → energies within 2×.
    let ratio = reporting.total_energy_j() / training.total_energy_j();
    assert!(
        (0.5..2.0).contains(&ratio),
        "energy scales diverged: ratio {ratio:.2}"
    );
}
