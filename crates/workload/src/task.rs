use crate::{Dataset, NnModel};

/// Which physical testbed a preset targets (the paper's Table 1 devices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum Testbed {
    /// Nvidia Jetson AGX Xavier (8-core Carmel CPU, 512-core Volta GPU).
    JetsonAgx,
    /// Nvidia Jetson TX2 (Denver2 + Cortex-A57 CPU, 256-core Pascal GPU).
    JetsonTx2,
}

impl Testbed {
    /// All supported testbeds.
    pub fn all() -> [Testbed; 2] {
        [Testbed::JetsonAgx, Testbed::JetsonTx2]
    }
}

impl std::fmt::Display for Testbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Testbed::JetsonAgx => write!(f, "Jetson AGX"),
            Testbed::JetsonTx2 => write!(f, "Jetson TX2"),
        }
    }
}

/// The three evaluation tasks of the paper's §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum TaskKind {
    /// Vision Transformer on CIFAR10.
    Cifar10Vit,
    /// ResNet50 on ImageNet.
    ImagenetResnet50,
    /// LSTM sentiment analysis on IMDB.
    ImdbLstm,
}

impl TaskKind {
    /// All evaluation tasks, in the paper's order.
    pub fn all() -> [TaskKind; 3] {
        [
            TaskKind::Cifar10Vit,
            TaskKind::ImagenetResnet50,
            TaskKind::ImdbLstm,
        ]
    }
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskKind::Cifar10Vit => write!(f, "CIFAR10-ViT"),
            TaskKind::ImagenetResnet50 => write!(f, "ImageNet-ResNet50"),
            TaskKind::ImdbLstm => write!(f, "IMDB-LSTM"),
        }
    }
}

/// A federated-learning task as seen by one client device: the tuple
/// `(B, E, N)` of the paper's §3.1 plus the model and dataset being
/// trained.
///
/// - `B` — minibatch size,
/// - `E` — SGD epochs per round,
/// - `N` — number of minibatches of local data,
/// - `W = E × N` — jobs (minibatch computations) per round.
///
/// Deadlines are *not* stored here: they arrive from the server round by
/// round (see `bofl::runner` and `bofl-fl::server`).
///
/// # Examples
///
/// ```
/// use bofl_workload::{FlTask, TaskKind, Testbed};
///
/// let t = FlTask::preset(TaskKind::ImagenetResnet50, Testbed::JetsonTx2);
/// assert_eq!(t.epochs(), 2);
/// assert_eq!(t.minibatches(), 30);
/// assert_eq!(t.jobs_per_round(), 60);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlTask {
    model: NnModel,
    dataset: Dataset,
    minibatch_size: usize,
    epochs: usize,
    minibatches: usize,
}

impl FlTask {
    /// Creates a custom FL task.
    ///
    /// # Panics
    ///
    /// Panics if `minibatch_size`, `epochs` or `minibatches` is zero.
    pub fn new(
        model: NnModel,
        dataset: Dataset,
        minibatch_size: usize,
        epochs: usize,
        minibatches: usize,
    ) -> Self {
        assert!(minibatch_size > 0, "minibatch_size must be > 0");
        assert!(epochs > 0, "epochs must be > 0");
        assert!(minibatches > 0, "minibatches must be > 0");
        FlTask {
            model,
            dataset,
            minibatch_size,
            epochs,
            minibatches,
        }
    }

    /// The Table 2 preset for a task/testbed combination.
    ///
    /// `B` and `E` are global (per task); `N` is per device because each
    /// device holds a different amount of local data.
    pub fn preset(kind: TaskKind, testbed: Testbed) -> Self {
        use TaskKind::*;
        use Testbed::*;
        let (model, dataset, b, e) = match kind {
            Cifar10Vit => (NnModel::vit(), Dataset::cifar10(), 32, 5),
            ImagenetResnet50 => (NnModel::resnet50(), Dataset::imagenet(), 8, 2),
            ImdbLstm => (NnModel::lstm(), Dataset::imdb(), 8, 4),
        };
        let n = match (kind, testbed) {
            (Cifar10Vit, JetsonAgx) => 40,
            (Cifar10Vit, JetsonTx2) => 15,
            (ImagenetResnet50, JetsonAgx) => 90,
            (ImagenetResnet50, JetsonTx2) => 30,
            (ImdbLstm, JetsonAgx) => 40,
            (ImdbLstm, JetsonTx2) => 20,
        };
        FlTask::new(model, dataset, b, e, n)
    }

    /// The network model being trained.
    pub fn model(&self) -> &NnModel {
        &self.model
    }

    /// The local dataset descriptor.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Minibatch size `B`.
    pub fn minibatch_size(&self) -> usize {
        self.minibatch_size
    }

    /// SGD epochs per round `E`.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// Number of local minibatches `N`.
    pub fn minibatches(&self) -> usize {
        self.minibatches
    }

    /// Jobs per round `W = E × N` (a *job* is one minibatch computation).
    pub fn jobs_per_round(&self) -> usize {
        self.epochs * self.minibatches
    }

    /// Number of local training samples `B × N`.
    pub fn local_samples(&self) -> usize {
        self.minibatch_size * self.minibatches
    }
}

impl std::fmt::Display for FlTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}-{} (B={}, E={}, N={})",
            self.dataset, self.model, self.minibatch_size, self.epochs, self.minibatches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_presets() {
        // Exact values from Table 2 of the paper.
        let cases = [
            (TaskKind::Cifar10Vit, Testbed::JetsonAgx, 32, 5, 40),
            (TaskKind::Cifar10Vit, Testbed::JetsonTx2, 32, 5, 15),
            (TaskKind::ImagenetResnet50, Testbed::JetsonAgx, 8, 2, 90),
            (TaskKind::ImagenetResnet50, Testbed::JetsonTx2, 8, 2, 30),
            (TaskKind::ImdbLstm, Testbed::JetsonAgx, 8, 4, 40),
            (TaskKind::ImdbLstm, Testbed::JetsonTx2, 8, 4, 20),
        ];
        for (kind, bed, b, e, n) in cases {
            let t = FlTask::preset(kind, bed);
            assert_eq!(t.minibatch_size(), b, "{kind} on {bed}");
            assert_eq!(t.epochs(), e, "{kind} on {bed}");
            assert_eq!(t.minibatches(), n, "{kind} on {bed}");
            assert_eq!(t.jobs_per_round(), e * n, "{kind} on {bed}");
        }
    }

    #[test]
    fn paper_example_client() {
        // §3.1: "a client with 1k images, minibatch size 10, has N = 100".
        let t = FlTask::new(NnModel::vit(), Dataset::cifar10(), 10, 1, 100);
        assert_eq!(t.local_samples(), 1000);
    }

    #[test]
    #[should_panic(expected = "epochs must be > 0")]
    fn rejects_zero_epochs() {
        let _ = FlTask::new(NnModel::vit(), Dataset::cifar10(), 1, 0, 1);
    }

    #[test]
    fn display_mentions_everything() {
        let s = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx).to_string();
        assert!(s.contains("CIFAR10"));
        assert!(s.contains("ViT"));
        assert!(s.contains("B=32"));
    }

    #[test]
    fn enumerations_cover_paper() {
        assert_eq!(TaskKind::all().len(), 3);
        assert_eq!(Testbed::all().len(), 2);
    }
}
