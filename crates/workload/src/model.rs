/// GPU micro-architecture family of a simulated device.
///
/// Kernel efficiency — how much of the GPU's peak FLOP rate a given model
/// actually sustains — is both model- and architecture-dependent. This is
/// the mechanism behind the paper's "hardware dependence" observation
/// (§2.2(3), Fig. 5): the same network speeds up by very different factors
/// when moved from a Pascal-class TX2 to a Volta-class AGX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum GpuArch {
    /// Volta-class GPU (Jetson AGX Xavier).
    Volta,
    /// Pascal-class GPU (Jetson TX2).
    Pascal,
}

impl std::fmt::Display for GpuArch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuArch::Volta => write!(f, "volta"),
            GpuArch::Pascal => write!(f, "pascal"),
        }
    }
}

/// Broad class of a neural network, following the paper's taxonomy
/// (Transformer / CNN / RNN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum ModelClass {
    /// Transformer models (large GEMMs, moderate launch overhead).
    Transformer,
    /// Convolutional networks (GPU- and memory-bound, few launches).
    Cnn,
    /// Recurrent networks (many tiny kernels, CPU-launch-bound).
    Rnn,
}

impl std::fmt::Display for ModelClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelClass::Transformer => write!(f, "transformer"),
            ModelClass::Cnn => write!(f, "cnn"),
            ModelClass::Rnn => write!(f, "rnn"),
        }
    }
}

/// Sustained fraction of peak GPU throughput per architecture.
///
/// Values are in `(0, 1]`; they capture kernel-level efficiency (occupancy,
/// tensor-core usage, launch granularity) fitted per architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArchEfficiency {
    /// Sustained fraction on Volta-class GPUs.
    pub volta: f64,
    /// Sustained fraction on Pascal-class GPUs.
    pub pascal: f64,
}

impl ArchEfficiency {
    /// Efficiency for a given architecture.
    pub fn for_arch(&self, arch: GpuArch) -> f64 {
        match arch {
            GpuArch::Volta => self.volta,
            GpuArch::Pascal => self.pascal,
        }
    }

    /// `true` iff both efficiencies are in `(0, 1]`.
    pub fn is_valid(&self) -> bool {
        (0.0..=1.0).contains(&self.volta)
            && self.volta > 0.0
            && (0.0..=1.0).contains(&self.pascal)
            && self.pascal > 0.0
    }
}

/// A neural-network *training* workload descriptor: everything the device
/// simulator needs to predict per-minibatch latency and energy.
///
/// All per-sample quantities refer to one forward + backward pass of one
/// training sample; per-batch quantities are paid once per minibatch
/// regardless of batch size (kernel launches, gradient-step driver, host
/// synchronization).
///
/// The preset constants were calibrated against the paper's Table 2
/// (`T_min` per task/device) and Figs. 3–5; see `DESIGN.md` §2 for the
/// calibration story.
///
/// # Examples
///
/// ```
/// use bofl_workload::{GpuArch, NnModel};
///
/// let vit = NnModel::vit();
/// assert!(vit.flops_per_sample() > 1e9);
/// assert!(vit.efficiency().for_arch(GpuArch::Volta) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NnModel {
    name: String,
    class: ModelClass,
    flops_per_sample: f64,
    bytes_per_sample: f64,
    host_cycles_per_sample: f64,
    serial_cycles_per_batch: f64,
    parameter_bytes: f64,
    efficiency: ArchEfficiency,
}

impl NnModel {
    /// Creates a custom workload descriptor.
    ///
    /// # Panics
    ///
    /// Panics if any quantity is non-positive or non-finite, or the
    /// efficiency is outside `(0, 1]` (C-VALIDATE).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        class: ModelClass,
        flops_per_sample: f64,
        bytes_per_sample: f64,
        host_cycles_per_sample: f64,
        serial_cycles_per_batch: f64,
        parameter_bytes: f64,
        efficiency: ArchEfficiency,
    ) -> Self {
        let name = name.into();
        for (v, what) in [
            (flops_per_sample, "flops_per_sample"),
            (bytes_per_sample, "bytes_per_sample"),
            (host_cycles_per_sample, "host_cycles_per_sample"),
            (serial_cycles_per_batch, "serial_cycles_per_batch"),
            (parameter_bytes, "parameter_bytes"),
        ] {
            assert!(
                v.is_finite() && v > 0.0,
                "NnModel {name}: {what} must be positive and finite, got {v}"
            );
        }
        assert!(
            efficiency.is_valid(),
            "NnModel {name}: efficiency must be in (0, 1]"
        );
        NnModel {
            name,
            class,
            flops_per_sample,
            bytes_per_sample,
            host_cycles_per_sample,
            serial_cycles_per_batch,
            parameter_bytes,
            efficiency,
        }
    }

    /// Vision Transformer trained on CIFAR10 (the paper's CIFAR10-ViT task).
    ///
    /// Moderately GPU-bound with a non-negligible host pipeline; calibrated
    /// for `T(x_max) ≈ 0.186 s` per 32-sample minibatch on the AGX.
    pub fn vit() -> Self {
        NnModel::new(
            "ViT",
            ModelClass::Transformer,
            1.8e9,  // FLOPs fwd+bwd per 32×32 sample
            1.86e8, // effective DRAM traffic per sample (weights + activations)
            1.8e7,  // host cycles per sample (augmentation, tensor staging)
            4.0e7,  // serialized launch/sync cycles per minibatch
            4.0e7,  // ~10 M parameters × 4 B (a CIFAR-scale ViT)
            ArchEfficiency {
                volta: 0.29,
                pascal: 0.22,
            },
        )
    }

    /// ResNet50 trained on ImageNet (the paper's ImageNet-ResNet50 task).
    ///
    /// Strongly GPU/memory-bound with heavy host-side JPEG decode; latency
    /// is nearly flat in CPU frequency (paper Fig. 4a). Calibrated for
    /// `T(x_max) ≈ 0.26 s` per 8-sample minibatch on the AGX.
    pub fn resnet50() -> Self {
        NnModel::new(
            "ResNet50",
            ModelClass::Cnn,
            1.1e10, // FLOPs fwd+bwd per 224×224 sample
            1.91e9, // effective DRAM traffic per sample
            1.9e7,  // host cycles per sample (decode + resize + normalize)
            2.5e7,  // serialized launch/sync cycles per minibatch
            1.0e8,  // 25.5 M parameters × 4 B
            ArchEfficiency {
                volta: 0.29,
                pascal: 0.20,
            },
        )
    }

    /// LSTM sentiment model trained on IMDB (the paper's IMDB-LSTM task).
    ///
    /// Launch-bound: many tiny recurrent kernels serialize on the CPU, so
    /// latency scales strongly with CPU frequency (paper Fig. 4a) and the
    /// energy curve *decreases* with CPU frequency (Fig. 4b). Calibrated for
    /// `T(x_max) ≈ 0.29 s` per 8-sample minibatch on the AGX.
    pub fn lstm() -> Self {
        NnModel::new(
            "LSTM",
            ModelClass::Rnn,
            1.59e9, // FLOPs fwd+bwd per sequence
            2.1e8,  // effective DRAM traffic per sample
            2.0e7,  // host cycles per sample (tokenize, pad, embed staging)
            4.87e8, // serialized launch/sync cycles per minibatch (recurrence!)
            4.0e7,  // ~10 M parameters × 4 B
            ArchEfficiency {
                volta: 0.18,
                pascal: 0.18,
            },
        )
    }

    /// Model name, e.g. `"ResNet50"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Broad model class.
    pub fn class(&self) -> ModelClass {
        self.class
    }

    /// GPU FLOPs (forward + backward) per training sample.
    pub fn flops_per_sample(&self) -> f64 {
        self.flops_per_sample
    }

    /// Effective DRAM bytes moved per training sample.
    pub fn bytes_per_sample(&self) -> f64 {
        self.bytes_per_sample
    }

    /// Host (CPU) cycles per sample for the data pipeline, overlappable
    /// with GPU execution.
    pub fn host_cycles_per_sample(&self) -> f64 {
        self.host_cycles_per_sample
    }

    /// CPU cycles per minibatch that serialize with GPU execution (kernel
    /// launches, synchronization, optimizer driver).
    pub fn serial_cycles_per_batch(&self) -> f64 {
        self.serial_cycles_per_batch
    }

    /// Size of the model parameters in bytes (used for the FL
    /// upload/download window in `bofl-fl`).
    pub fn parameter_bytes(&self) -> f64 {
        self.parameter_bytes
    }

    /// Per-architecture sustained GPU efficiency.
    pub fn efficiency(&self) -> ArchEfficiency {
        self.efficiency
    }

    /// Total GPU FLOPs for a minibatch of `batch_size` samples.
    pub fn flops_per_batch(&self, batch_size: usize) -> f64 {
        self.flops_per_sample * batch_size as f64
    }

    /// Total effective DRAM traffic for a minibatch of `batch_size` samples.
    pub fn bytes_per_batch(&self, batch_size: usize) -> f64 {
        self.bytes_per_sample * batch_size as f64
    }

    /// Total overlappable host cycles for a minibatch.
    pub fn host_cycles_per_batch(&self, batch_size: usize) -> f64 {
        self.host_cycles_per_sample * batch_size as f64
    }
}

impl std::fmt::Display for NnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.name, self.class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for m in [NnModel::vit(), NnModel::resnet50(), NnModel::lstm()] {
            assert!(m.flops_per_sample() > 0.0);
            assert!(m.bytes_per_sample() > 0.0);
            assert!(m.host_cycles_per_sample() > 0.0);
            assert!(m.serial_cycles_per_batch() > 0.0);
            assert!(m.efficiency().is_valid());
        }
    }

    #[test]
    fn lstm_is_launch_bound() {
        // The defining property of the RNN workload: far more serialized
        // CPU work per batch than the other models.
        let lstm = NnModel::lstm();
        assert!(lstm.serial_cycles_per_batch() > 5.0 * NnModel::vit().serial_cycles_per_batch());
        assert!(
            lstm.serial_cycles_per_batch() > 5.0 * NnModel::resnet50().serial_cycles_per_batch()
        );
        assert_eq!(lstm.class(), ModelClass::Rnn);
    }

    #[test]
    fn resnet_is_compute_heavy() {
        let r = NnModel::resnet50();
        assert!(r.flops_per_sample() > 3.0 * NnModel::vit().flops_per_sample());
        assert_eq!(r.class(), ModelClass::Cnn);
    }

    #[test]
    fn batch_scaling_is_linear() {
        let m = NnModel::vit();
        assert_eq!(m.flops_per_batch(32), 32.0 * m.flops_per_sample());
        assert_eq!(m.bytes_per_batch(8), 8.0 * m.bytes_per_sample());
        assert_eq!(m.host_cycles_per_batch(4), 4.0 * m.host_cycles_per_sample());
    }

    #[test]
    fn arch_efficiency_lookup() {
        let e = ArchEfficiency {
            volta: 0.3,
            pascal: 0.2,
        };
        assert_eq!(e.for_arch(GpuArch::Volta), 0.3);
        assert_eq!(e.for_arch(GpuArch::Pascal), 0.2);
        assert!(e.is_valid());
        assert!(!ArchEfficiency {
            volta: 0.0,
            pascal: 0.2
        }
        .is_valid());
        assert!(!ArchEfficiency {
            volta: 1.5,
            pascal: 0.2
        }
        .is_valid());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn new_rejects_nonpositive() {
        let _ = NnModel::new(
            "bad",
            ModelClass::Cnn,
            0.0,
            1.0,
            1.0,
            1.0,
            1.0,
            ArchEfficiency {
                volta: 0.5,
                pascal: 0.5,
            },
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(NnModel::vit().to_string(), "ViT (transformer)");
        assert_eq!(GpuArch::Volta.to_string(), "volta");
        assert_eq!(ModelClass::Rnn.to_string(), "rnn");
    }
}
