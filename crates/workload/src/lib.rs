//! Workload characterization for the BoFL reproduction.
//!
//! The paper trains three representative neural networks — a Vision
//! Transformer (CIFAR10-ViT), ResNet50 (ImageNet-ResNet50) and an LSTM
//! (IMDB-LSTM) — on Jetson-class edge devices. Since the real hardware and
//! PyTorch stack are not available here, the device simulator in
//! [`bofl-device`] consumes *workload descriptors* instead: per-sample
//! GPU FLOPs, effective memory traffic, host (CPU) preprocessing cycles and
//! per-batch serialized launch/sync cycles. Those quantities are exactly
//! what a profiler would fit from the paper's measurement study (§2.2), and
//! they are everything BoFL's blackbox functions `T(x)`/`E(x)` depend on.
//!
//! This crate provides:
//!
//! - [`NnModel`] — a workload descriptor with presets [`NnModel::vit`],
//!   [`NnModel::resnet50`], and [`NnModel::lstm`], each calibrated so that
//!   the simulated latencies in `bofl-device` match Table 2 of the paper.
//! - [`Dataset`] — dataset descriptors (CIFAR10, ImageNet, IMDB).
//! - [`FlTask`] — the task tuple `(B, E, N)` of the paper's §3.1, with
//!   Table 2 presets per testbed.
//! - [`Testbed`] — which evaluation board a preset targets.
//!
//! # Examples
//!
//! ```
//! use bofl_workload::{FlTask, TaskKind, Testbed};
//!
//! let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
//! assert_eq!(task.minibatch_size(), 32);
//! assert_eq!(task.jobs_per_round(), 5 * 40); // W = E × N
//! ```
//!
//! [`bofl-device`]: https://docs.rs/bofl-device

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod model;
mod task;

pub use dataset::Dataset;
pub use model::{ArchEfficiency, GpuArch, ModelClass, NnModel};
pub use task::{FlTask, TaskKind, Testbed};
