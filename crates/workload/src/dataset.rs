/// A dataset descriptor: what the FL client stores locally and feeds to the
/// training loop.
///
/// Only coarse, pipeline-relevant properties are modeled — raw sample size
/// (drives host preprocessing and I/O), number of classes (drives the
/// synthetic classifier in `bofl-fl`) and a human-readable name.
///
/// # Examples
///
/// ```
/// use bofl_workload::Dataset;
///
/// let d = Dataset::cifar10();
/// assert_eq!(d.num_classes(), 10);
/// assert_eq!(d.sample_bytes(), 32 * 32 * 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dataset {
    name: String,
    sample_bytes: u64,
    num_classes: u32,
}

impl Dataset {
    /// Creates a custom dataset descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `sample_bytes` or `num_classes` is zero.
    pub fn new(name: impl Into<String>, sample_bytes: u64, num_classes: u32) -> Self {
        let name = name.into();
        assert!(sample_bytes > 0, "dataset {name}: sample_bytes must be > 0");
        assert!(num_classes > 0, "dataset {name}: num_classes must be > 0");
        Dataset {
            name,
            sample_bytes,
            num_classes,
        }
    }

    /// CIFAR10: 32×32 RGB images, 10 classes.
    pub fn cifar10() -> Self {
        Dataset::new("CIFAR10", 32 * 32 * 3, 10)
    }

    /// ImageNet: images cropped to 224×224 RGB for training, 1000 classes.
    pub fn imagenet() -> Self {
        Dataset::new("ImageNet", 224 * 224 * 3, 1000)
    }

    /// IMDB movie reviews: ~1 KiB of text per review on average, binary
    /// sentiment labels.
    pub fn imdb() -> Self {
        Dataset::new("IMDB", 1024, 2)
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Raw bytes per sample before preprocessing.
    pub fn sample_bytes(&self) -> u64 {
        self.sample_bytes
    }

    /// Number of label classes.
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(Dataset::cifar10().num_classes(), 10);
        assert_eq!(Dataset::imagenet().num_classes(), 1000);
        assert_eq!(Dataset::imdb().num_classes(), 2);
        assert!(Dataset::imagenet().sample_bytes() > Dataset::cifar10().sample_bytes());
    }

    #[test]
    #[should_panic(expected = "num_classes must be > 0")]
    fn rejects_zero_classes() {
        let _ = Dataset::new("bad", 10, 0);
    }

    #[test]
    fn display_is_name() {
        assert_eq!(Dataset::imdb().to_string(), "IMDB");
    }
}
