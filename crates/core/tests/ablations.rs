//! Controller-level ablation tests for the design choices DESIGN.md §6
//! calls out: EHVI vs random phase-2 exploration, fantasized vs flat
//! batching, ILP vs single-configuration exploitation, and the deadline
//! guardian itself.

use bofl::controller::{BatchStrategy, ExplorationStrategy};
use bofl::exploit::ExploitStrategy;
use bofl::prelude::*;

fn setup() -> (Device, FlTask, DeadlineSchedule, ClientRunner) {
    let device = Device::jetson_agx();
    let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
    let schedule = DeadlineSchedule::uniform(&device, &task, 35, 2.0, 404);
    let runner = ClientRunner::new(device.clone(), task.clone(), 9);
    (device, task, schedule, runner)
}

fn run_variant(
    config: BoflConfig,
    schedule: &DeadlineSchedule,
    runner: &ClientRunner,
) -> (RunSummary, BoflController) {
    let mut ctrl = BoflController::new(config);
    let run = runner.run(&mut ctrl, schedule.deadlines());
    (run, ctrl)
}

#[test]
fn all_variants_run_all_jobs_and_meet_deadlines_when_guarded() {
    let (_, _, schedule, runner) = setup();
    let variants = [
        BoflConfig::fast_test(),
        BoflConfig {
            exploration: ExplorationStrategy::RandomOnly,
            ..BoflConfig::fast_test()
        },
        BoflConfig {
            batching: BatchStrategy::NoFantasy,
            ..BoflConfig::fast_test()
        },
        BoflConfig {
            exploitation: ExploitStrategy::SingleBest,
            ..BoflConfig::fast_test()
        },
    ];
    for (i, cfg) in variants.into_iter().enumerate() {
        let (run, _) = run_variant(cfg, &schedule, &runner);
        assert_eq!(run.deadlines_met(), 35, "variant {i} missed deadlines");
        assert!(run.reports.iter().all(|r| r.jobs == 200));
    }
}

#[test]
fn ilp_exploitation_beats_single_best() {
    let (_, _, schedule, runner) = setup();
    let (ilp_run, _) = run_variant(BoflConfig::fast_test(), &schedule, &runner);
    let (single_run, _) = run_variant(
        BoflConfig {
            exploitation: ExploitStrategy::SingleBest,
            ..BoflConfig::fast_test()
        },
        &schedule,
        &runner,
    );
    // The single-config policy can only pick points *on* the front, so it
    // wastes the deadline slack between front points; the ILP mix fills it.
    assert!(
        ilp_run.total_energy_j() <= single_run.total_energy_j() * 1.002,
        "ILP {:.0} J should not lose to single-best {:.0} J",
        ilp_run.total_energy_j(),
        single_run.total_energy_j()
    );
}

#[test]
fn mbo_exploration_finds_better_fronts_than_random() {
    let (device, task, schedule, runner) = setup();
    let (_, mbo_ctrl) = run_variant(BoflConfig::fast_test(), &schedule, &runner);
    let (_, rnd_ctrl) = run_variant(
        BoflConfig {
            exploration: ExplorationStrategy::RandomOnly,
            ..BoflConfig::fast_test()
        },
        &schedule,
        &runner,
    );

    // Compare the *true* hypervolume of the two searched fronts under the
    // same reference point.
    let truth = device.profile_all(&task);
    let reference = [
        truth.iter().map(|p| p.cost.energy_j).fold(0.0, f64::max) * 1.01,
        truth.iter().map(|p| p.cost.latency_s).fold(0.0, f64::max) * 1.01,
    ];
    let true_front_of = |ctrl: &BoflController| {
        let front: bofl_mobo::ParetoFront = ctrl
            .pareto_configs()
            .into_iter()
            .map(|x| {
                let c = device.true_cost(&task, x);
                [c.energy_j, c.latency_s]
            })
            .collect();
        bofl_mobo::hypervolume::hypervolume(&front, reference)
    };
    let hv_mbo = true_front_of(&mbo_ctrl);
    let hv_rnd = true_front_of(&rnd_ctrl);
    assert!(
        hv_mbo >= hv_rnd * 0.999,
        "MBO front hypervolume {hv_mbo:.3} should not lose to random {hv_rnd:.3}"
    );
}

#[test]
fn guardian_disabled_is_actually_dangerous() {
    // With the guardian off and very tight deadlines, random exploration
    // of straggler configurations must blow at least one deadline —
    // demonstrating the protection is load-bearing, not decorative.
    let device = Device::jetson_agx();
    let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
    // Tight: only 12% slack over T_min.
    let t_min = device.round_latency_at_max(&task);
    let deadlines = vec![t_min * 1.12; 8];
    let runner = ClientRunner::new(device, task, 41);

    let mut unguarded = BoflController::new(BoflConfig {
        guardian_enabled: false,
        ..BoflConfig::fast_test()
    });
    let run_unguarded = runner.run(&mut unguarded, &deadlines);
    assert!(
        run_unguarded.deadlines_met() < 8,
        "without the guardian, tight deadlines should be missed"
    );

    let mut guarded = BoflController::new(BoflConfig::fast_test());
    let run_guarded = runner.run(&mut guarded, &deadlines);
    assert_eq!(
        run_guarded.deadlines_met(),
        8,
        "with the guardian, every deadline holds"
    );
}

#[test]
fn no_fantasy_batching_is_not_better() {
    let (device, task, schedule, runner) = setup();
    let (fantasy_run, fantasy_ctrl) = run_variant(BoflConfig::fast_test(), &schedule, &runner);
    let (flat_run, flat_ctrl) = run_variant(
        BoflConfig {
            batching: BatchStrategy::NoFantasy,
            ..BoflConfig::fast_test()
        },
        &schedule,
        &runner,
    );
    // Both must function; the greedy-fantasy batches should explore at
    // least as diversely (measured by distinct configurations explored)
    // and end up no worse on energy.
    assert!(fantasy_ctrl.observations().len() >= 8);
    assert!(flat_ctrl.observations().len() >= 8);
    let _ = device;
    let _ = task;
    assert!(
        fantasy_run.total_energy_j() <= flat_run.total_energy_j() * 1.03,
        "fantasy {:.0} J vs flat {:.0} J",
        fantasy_run.total_energy_j(),
        flat_run.total_energy_j()
    );
}
