//! Robustness tests: the controller under randomized scenarios and
//! injected failures (straggler spikes, hostile deadline sequences).

use bofl::prelude::*;
use bofl_device::{ConfigSpace, DvfsConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A wrapper executor that multiplies the latency of random jobs by a
/// spike factor — modeling thermal throttling, background daemons or
/// memory pressure that the controller cannot predict.
struct SpikyExecutor<E> {
    inner: E,
    spike_probability: f64,
    spike_factor: f64,
    rng: StdRng,
    extra_elapsed: f64,
    spikes: usize,
}

impl<E: JobExecutor> SpikyExecutor<E> {
    fn new(inner: E, probability: f64, factor: f64, seed: u64) -> Self {
        SpikyExecutor {
            inner,
            spike_probability: probability,
            spike_factor: factor,
            rng: StdRng::seed_from_u64(seed),
            extra_elapsed: 0.0,
            spikes: 0,
        }
    }
}

impl<E: JobExecutor> JobExecutor for SpikyExecutor<E> {
    fn config_space(&self) -> &ConfigSpace {
        self.inner.config_space()
    }

    fn run_job(&mut self, x: DvfsConfig) -> JobCost {
        let mut cost = self.inner.run_job(x);
        if self.rng.gen::<f64>() < self.spike_probability {
            let extra = cost.latency_s * (self.spike_factor - 1.0);
            self.extra_elapsed += extra;
            cost.latency_s *= self.spike_factor;
            cost.energy_j *= self.spike_factor; // device stays powered
            self.spikes += 1;
        }
        cost
    }

    fn elapsed_s(&self) -> f64 {
        self.inner.elapsed_s() + self.extra_elapsed
    }
}

/// Drives the controller manually through spiky rounds (the ClientRunner
/// cannot wrap executors, so this test drives `run_round` directly).
#[test]
fn bofl_survives_latency_spikes() {
    use bofl::runner::SimExecutor;
    use bofl::task::PaceController;

    let device = Device::jetson_agx();
    let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
    let t_min = device.round_latency_at_max(&task);
    let jobs = task.jobs_per_round();
    let mut ctrl = BoflController::new(BoflConfig::fast_test());

    let mut missed = 0;
    let mut total_spikes = 0;
    for round in 0..15 {
        // Generous deadline (×2.5): spikes eat slack, guardian must adapt.
        let deadline = t_min * 2.5;
        let inner = SimExecutor::new(&device, &task, 100 + round as u64);
        let mut exec = SpikyExecutor::new(inner, 0.02, 4.0, 900 + round as u64);
        let spec = bofl::RoundSpec::new(round, jobs, deadline);
        ctrl.run_round(&spec, &mut exec);
        if exec.elapsed_s() > deadline {
            missed += 1;
        }
        total_spikes += exec.spikes;
    }
    assert!(
        total_spikes > 20,
        "spikes must actually occur: {total_spikes}"
    );
    assert!(
        missed <= 1,
        "BoFL should absorb 2% spike rate at ratio 2.5, missed {missed}/15"
    );
}

/// A sustained mid-round slowdown (every job throttled, not isolated
/// spikes): the guardian's escalation must trip, divert the rest of the
/// round to `x_max`, quarantine the contaminated latency samples, and —
/// because it stopped following the doomed plan — finish the round
/// strictly sooner than a controller without escalation.
#[test]
fn sustained_throttling_trips_escalation_and_quarantine() {
    use bofl::runner::SimExecutor;
    use bofl::task::PaceController;

    let device = Device::jetson_agx();
    let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
    let t_min = device.round_latency_at_max(&task);
    let jobs = task.jobs_per_round();

    let run = |escalation: bool| {
        let config = BoflConfig {
            escalation_enabled: escalation,
            ..BoflConfig::fast_test()
        };
        let mut ctrl = BoflController::new(config);
        // Identical healthy warm-up: same seeds, same observations.
        let mut last_phase = None;
        for round in 0..12 {
            let mut exec = SimExecutor::new(&device, &task, 4000 + round as u64);
            let spec = bofl::RoundSpec::new(round, jobs, t_min * 2.5);
            last_phase = ctrl.run_round(&spec, &mut exec).phase;
        }
        assert_eq!(
            last_phase,
            Some(Phase::Exploitation),
            "warm-up must reach exploitation for the test to be meaningful"
        );
        // The throttled round: every job slowed 3.5×.
        let inner = SimExecutor::new(&device, &task, 4100);
        let mut exec = SpikyExecutor::new(inner, 1.0, 3.5, 4200);
        let spec = bofl::RoundSpec::new(12, jobs, t_min * 4.0);
        let stats = ctrl.run_round(&spec, &mut exec);
        (stats, exec.elapsed_s())
    };

    let (escalated, dur_esc) = run(true);
    let (flat, dur_flat) = run(false);

    assert!(
        escalated.escalated_jobs > 0,
        "escalation never tripped under 3.5× sustained throttling"
    );
    assert!(
        escalated.quarantined > 0,
        "3.5×-inflated samples must be quarantined at factor 3"
    );
    assert_eq!(flat.escalated_jobs, 0, "disabled escalation must not fire");
    assert!(
        dur_esc < dur_flat,
        "escalating to x_max must shorten the throttled round: {dur_esc:.2}s vs {dur_flat:.2}s"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Across random tasks, testbeds, deadline ratios and seeds, the
    /// guarded controller never misses a deadline and always runs every
    /// job.
    #[test]
    fn guarded_controller_never_misses(
        kind_idx in 0usize..3,
        agx in proptest::bool::ANY,
        ratio in 1.3f64..4.0,
        seed in 0u64..1000,
    ) {
        let (device, testbed) = if agx {
            (Device::jetson_agx(), Testbed::JetsonAgx)
        } else {
            (Device::jetson_tx2(), Testbed::JetsonTx2)
        };
        let task = FlTask::preset(TaskKind::all()[kind_idx], testbed);
        let rounds = 8;
        let schedule = DeadlineSchedule::uniform(&device, &task, rounds, ratio, seed);
        let runner = ClientRunner::new(device, task.clone(), seed ^ 0xF00D);
        let mut ctrl = BoflController::new(BoflConfig::fast_test());
        let run = runner.run(&mut ctrl, schedule.deadlines());
        prop_assert_eq!(run.deadlines_met(), rounds);
        prop_assert!(run.reports.iter().all(|r| r.jobs == task.jobs_per_round()));
        prop_assert!(run.total_energy_j() > 0.0);
    }

    /// Deadline schedules respect their documented bounds for any ratio.
    #[test]
    fn schedules_respect_bounds(ratio in 1.0f64..6.0, seed in 0u64..500, rounds in 1usize..50) {
        let device = Device::jetson_tx2();
        let task = FlTask::preset(TaskKind::ImdbLstm, Testbed::JetsonTx2);
        let s = DeadlineSchedule::uniform(&device, &task, rounds, ratio, seed);
        let t_min = s.t_min_s();
        prop_assert_eq!(s.deadlines().len(), rounds);
        for &d in s.deadlines() {
            prop_assert!(d >= t_min - 1e-9);
            prop_assert!(d <= ratio * t_min + 1e-9);
        }
    }
}

/// A hostile deadline sequence: alternating loose and barely-feasible
/// rounds. The guardian must adapt its exploration budget round by round.
#[test]
fn alternating_tight_loose_deadlines() {
    let device = Device::jetson_agx();
    let task = FlTask::preset(TaskKind::ImagenetResnet50, Testbed::JetsonAgx);
    let t_min = device.round_latency_at_max(&task);
    let deadlines: Vec<f64> = (0..16)
        .map(|i| {
            if i % 2 == 0 {
                t_min * 1.06
            } else {
                t_min * 3.5
            }
        })
        .collect();
    let runner = ClientRunner::new(device, task, 55);
    let mut ctrl = BoflController::new(BoflConfig::fast_test());
    let run = runner.run(&mut ctrl, &deadlines);
    assert_eq!(
        run.deadlines_met(),
        16,
        "hostile alternation broke a deadline"
    );
    // Exploration should still happen — concentrated in the loose rounds.
    assert!(run.total_explored() >= 10, "exploration starved");
}
