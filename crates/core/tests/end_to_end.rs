//! End-to-end test: BoFL vs Performant vs Oracle on the simulated Jetson
//! AGX, small-scale version of the paper's headline experiment (Fig. 9).

use bofl::baselines::{OracleController, PerformantController};
use bofl::metrics::{improvement_vs, regret_vs, walkthrough};
use bofl::prelude::*;
use bofl::Phase;

fn agx_vit() -> (Device, FlTask) {
    (
        Device::jetson_agx(),
        FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx),
    )
}

#[test]
fn bofl_beats_performant_and_approaches_oracle() {
    let (device, task) = agx_vit();
    let rounds = 30;
    let sched = DeadlineSchedule::uniform(&device, &task, rounds, 2.0, 2022);
    let runner = ClientRunner::new(device.clone(), task.clone(), 7);

    let mut bofl = BoflController::new(BoflConfig::fast_test());
    let bofl_run = runner.run(&mut bofl, sched.deadlines());

    let mut performant = PerformantController::new();
    let perf_run = runner.run(&mut performant, sched.deadlines());

    let profile = device.profile_all(&task);
    let mut oracle = OracleController::new(profile);
    let oracle_run = runner.run(&mut oracle, sched.deadlines());

    // Every controller meets every deadline.
    assert_eq!(bofl_run.deadlines_met(), rounds, "BoFL missed deadlines");
    assert_eq!(perf_run.deadlines_met(), rounds);
    assert_eq!(oracle_run.deadlines_met(), rounds);

    // Ordering: Oracle ≤ BoFL < Performant on total energy.
    let improvement = improvement_vs(&bofl_run, &perf_run);
    let regret = regret_vs(&bofl_run, &oracle_run);
    assert!(
        improvement > 0.05,
        "BoFL should save ≥5% energy vs Performant even in 30 rounds, got {:.1}%",
        improvement * 100.0
    );
    assert!(
        regret > -0.02,
        "BoFL cannot beat the oracle beyond noise: regret {:.2}%",
        regret * 100.0
    );
    assert!(
        regret < 0.35,
        "BoFL regret should be modest over 30 rounds, got {:.1}%",
        regret * 100.0
    );
}

#[test]
fn bofl_transitions_through_all_three_phases() {
    let (device, task) = agx_vit();
    let rounds = 25;
    let sched = DeadlineSchedule::uniform(&device, &task, rounds, 3.0, 11);
    let runner = ClientRunner::new(device, task, 3);

    let mut bofl = BoflController::new(BoflConfig::fast_test());
    let run = runner.run(&mut bofl, sched.deadlines());

    let p1 = run.phase_reports(Phase::RandomExploration).count();
    let p2 = run.phase_reports(Phase::ParetoConstruction).count();
    let p3 = run.phase_reports(Phase::Exploitation).count();
    assert!(p1 >= 1, "no random-exploration rounds");
    assert!(p2 >= 1, "no pareto-construction rounds");
    assert!(p3 >= 5, "exploitation should dominate, got {p3} rounds");
    assert_eq!(p1 + p2 + p3, rounds);

    // Phase-1 explores ≈1% of the space (21 points on the AGX, + x_max).
    let explored_p1: usize = run
        .phase_reports(Phase::RandomExploration)
        .map(|r| r.explored.len())
        .sum();
    assert!(
        (18..=25).contains(&explored_p1),
        "phase 1 explored {explored_p1} configurations, expected ≈22"
    );

    // Walkthrough (Table 3) is consistent with the run reports.
    let pareto_indices: Vec<_> = bofl
        .pareto_configs()
        .into_iter()
        .filter_map(|c| runner_space_index(&runner, c))
        .collect();
    let rows = walkthrough(&run, &pareto_indices);
    assert_eq!(rows.len(), p1 + p2);
    let total_explored: usize = rows.iter().map(|r| r.explorations).sum();
    assert_eq!(total_explored, run.total_explored());
    // The ultimate Pareto set must contain points found during the run.
    let total_hits: usize = rows.iter().map(|r| r.pareto_hits).sum();
    assert_eq!(total_hits, pareto_indices.len());
}

fn runner_space_index(
    runner: &ClientRunner,
    config: DvfsConfig,
) -> Option<bofl_device::ConfigIndex> {
    runner.device().config_space().index_of(config)
}

#[test]
fn longer_deadlines_save_more_energy() {
    // Fig. 12 in miniature: the improvement over Performant grows with
    // the deadline ratio.
    let (device, task) = agx_vit();
    let rounds = 20;
    let runner = ClientRunner::new(device.clone(), task.clone(), 13);
    let mut improvements = Vec::new();
    for ratio in [1.5, 3.0] {
        let sched = DeadlineSchedule::uniform(&device, &task, rounds, ratio, 5);
        let mut bofl = BoflController::new(BoflConfig::fast_test());
        let bofl_run = runner.run(&mut bofl, sched.deadlines());
        let perf_run = runner.run(&mut PerformantController::new(), sched.deadlines());
        assert_eq!(bofl_run.deadlines_met(), rounds, "ratio {ratio}");
        improvements.push(improvement_vs(&bofl_run, &perf_run));
    }
    assert!(
        improvements[1] > improvements[0],
        "larger deadline ratio should help: {improvements:?}"
    );
}
