//! The BoFL controller: the three-phase state machine of the paper's
//! Fig. 6, built on the safe-exploration algorithm ([`crate::guardian`]),
//! the MBO engine ([`bofl_mobo`]) and the exploitation ILP
//! ([`crate::exploit`]).

use crate::exploit::{exploit_remaining_with, ExploitParams, ExploitStrategy};
use crate::guardian::{explore_safely, SafeExplorationParams};
use crate::observation::QuarantinePolicy;
use crate::task::{ControllerRoundStats, PaceController, Phase};
use crate::{JobExecutor, ObservationStore, RoundSpec};
use bofl_device::{ConfigSpace, DvfsConfig};
use bofl_mobo::{MoboConfig, MoboEngine, Observation, SobolSequence, StoppingRule};
use std::collections::HashSet;
use std::time::Duration;

/// How phase-2 exploration candidates are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplorationStrategy {
    /// The paper's design: EHVI-guided multi-objective Bayesian
    /// optimization.
    #[default]
    Mbo,
    /// Ablation: keep drawing quasi-random (Sobol) candidates in phase 2
    /// as well, with the same stopping rule.
    RandomOnly,
}

/// How the MBO engine assembles a batch of suggestions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchStrategy {
    /// The paper's design: sequential-greedy selection with fantasized
    /// (Kriging-believer) observations between picks.
    #[default]
    GreedyFantasy,
    /// Ablation: rank all candidates by single-point EHVI once and take
    /// the top K (batches tend to cluster).
    NoFantasy,
}

/// Tuning knobs of the BoFL controller, with the paper's defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoflConfig {
    /// Reference measurement duration τ (paper §4.2: 5 s).
    pub tau_s: f64,
    /// Fraction of the configuration space sampled as phase-1 start
    /// points (paper §4.2: ~1%).
    pub random_fraction: f64,
    /// Minimum fraction of the space that must be explored before the
    /// stopping rule may fire (paper §4.3: ~3%).
    pub min_coverage: f64,
    /// Relative hypervolume-increase threshold of the stopping rule
    /// (paper §4.3: 1%).
    pub hvi_threshold: f64,
    /// Upper bound on the MBO batch size (paper §4.3: e.g. 10).
    pub max_batch: usize,
    /// Fraction of each deadline held back as a safety margin.
    pub safety_margin: f64,
    /// Number of GP hyperparameter-optimization restarts per MBO update.
    pub gp_restarts: usize,
    /// Evaluation budget per GP restart.
    pub gp_max_evaluations: usize,
    /// Phase-2 candidate generation (ablation knob).
    pub exploration: ExplorationStrategy,
    /// MBO batch assembly (ablation knob).
    pub batching: BatchStrategy,
    /// Exploitation planning (ablation knob).
    pub exploitation: ExploitStrategy,
    /// Whether the deadline guardian runs (ablation knob; disabling it is
    /// unsafe by design).
    pub guardian_enabled: bool,
    /// Whether the mid-round guardian escalation runs during
    /// exploitation: when observed latency overruns the plan the way a
    /// straggler slowdown does, the rest of the round switches to `x_max`.
    pub escalation_enabled: bool,
    /// Trip ratio of the mid-round escalation (observed latency over
    /// expected latency of the planned job).
    pub escalation_factor: f64,
    /// Quarantine for contaminated latency observations: inflated samples
    /// are excluded from the aggregates feeding the GP surrogate.
    pub quarantine: QuarantinePolicy,
}

impl Default for BoflConfig {
    fn default() -> Self {
        BoflConfig {
            tau_s: 5.0,
            random_fraction: 0.01,
            min_coverage: 0.03,
            hvi_threshold: 0.01,
            max_batch: 10,
            safety_margin: 0.01,
            gp_restarts: 2,
            gp_max_evaluations: 250,
            exploration: ExplorationStrategy::Mbo,
            batching: BatchStrategy::GreedyFantasy,
            exploitation: ExploitStrategy::IlpProfile,
            guardian_enabled: true,
            escalation_enabled: true,
            escalation_factor: 2.5,
            quarantine: QuarantinePolicy::with_factor(3.0),
        }
    }
}

impl BoflConfig {
    /// A configuration with reduced GP effort and τ, for fast unit tests
    /// and doc examples. Semantics are unchanged; only compute shrinks.
    pub fn fast_test() -> Self {
        BoflConfig {
            tau_s: 2.0,
            gp_restarts: 1,
            gp_max_evaluations: 60,
            ..BoflConfig::default()
        }
    }
}

/// The BoFL pace controller (paper §4).
///
/// Create one per FL task per device; it keeps its observations, phase and
/// surrogate models across rounds. Drive it through
/// [`PaceController::run_round`] — see the crate-level example.
#[derive(Debug)]
pub struct BoflController {
    config: BoflConfig,
    store: ObservationStore,
    phase: Phase,
    /// Phase-1 start points not yet explored (front of the queue first).
    pending_start_points: Vec<DvfsConfig>,
    /// Phase-2 suggestions for the upcoming round.
    pending_suggestions: Vec<DvfsConfig>,
    engine: MoboEngine,
    /// Indices (into the engine's observation list) already fed to MBO.
    observed_count: usize,
    /// Round durations seen so far (for the batch-size rule K = T_avg/τ).
    round_durations: Vec<f64>,
    initialized: bool,
    space_len: usize,
    /// Continued Sobol stream for the RandomOnly ablation.
    sobol: SobolSequence,
    last_mbo_duration: Option<Duration>,
    mbo_invocations: u32,
}

impl BoflController {
    /// Creates a controller with the given configuration.
    pub fn new(config: BoflConfig) -> Self {
        let mobo_cfg = MoboConfig {
            gp: bofl_gp::GpConfig {
                restarts: config.gp_restarts,
                max_evaluations: config.gp_max_evaluations,
                ..bofl_gp::GpConfig::default()
            },
            stopping: StoppingRule {
                min_evaluations: usize::MAX, // replaced on initialization
                hvi_threshold: config.hvi_threshold,
            },
            ..MoboConfig::default()
        };
        BoflController {
            store: ObservationStore::with_quarantine(config.quarantine),
            config,
            phase: Phase::RandomExploration,
            pending_start_points: Vec::new(),
            pending_suggestions: Vec::new(),
            engine: MoboEngine::new(mobo_cfg),
            observed_count: 0,
            round_durations: Vec::new(),
            initialized: false,
            space_len: 0,
            sobol: SobolSequence::new(3),
            last_mbo_duration: None,
            mbo_invocations: 0,
        }
    }

    /// The controller's current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The observation store (everything measured so far).
    pub fn observations(&self) -> &ObservationStore {
        &self.store
    }

    /// Grid indices of the observed configurations whose measured costs
    /// are Pareto-optimal.
    pub fn pareto_configs(&self) -> Vec<DvfsConfig> {
        self.store.pareto_set().iter().map(|a| a.config).collect()
    }

    /// Wall-clock duration of the most recent MBO update, if any.
    pub fn last_mbo_duration(&self) -> Option<Duration> {
        self.last_mbo_duration
    }

    /// How many times the MBO engine has run so far.
    pub fn mbo_invocations(&self) -> u32 {
        self.mbo_invocations
    }

    /// Lazily samples the Sobol start points on first use (needs the
    /// space, which arrives with the first executor).
    fn initialize(&mut self, space: &ConfigSpace) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        self.space_len = space.len();

        let n_start = ((space.len() as f64 * self.config.random_fraction).ceil() as usize).max(4);
        let mut seen: HashSet<(u32, u32, u32)> = HashSet::new();
        let mut points = Vec::with_capacity(n_start + 1);

        // x_max goes first: it is the guardian and the T_min anchor.
        let x_max = space.x_max();
        seen.insert((x_max.cpu.as_mhz(), x_max.gpu.as_mhz(), x_max.mem.as_mhz()));
        points.push(x_max);

        // Oversample the Sobol stream: snapping to the grid may collide.
        let mut attempts = 0;
        while points.len() < n_start + 1 && attempts < n_start * 50 {
            attempts += 1;
            let u = self.sobol.next_point();
            let x = space.from_unit_cube([u[0], u[1], u[2]]);
            if seen.insert((x.cpu.as_mhz(), x.gpu.as_mhz(), x.mem.as_mhz())) {
                points.push(x);
            }
        }
        self.pending_start_points = points;

        // Stopping rule: the paper's ~3% coverage requirement.
        let min_evals = ((space.len() as f64 * self.config.min_coverage).ceil() as usize).max(8);
        self.engine = MoboEngine::new(MoboConfig {
            gp: bofl_gp::GpConfig {
                restarts: self.config.gp_restarts,
                max_evaluations: self.config.gp_max_evaluations,
                ..bofl_gp::GpConfig::default()
            },
            stopping: StoppingRule {
                min_evaluations: min_evals,
                hvi_threshold: self.config.hvi_threshold,
            },
            ..MoboConfig::default()
        });
    }

    /// Feeds all not-yet-fed observations into the MBO engine.
    fn sync_engine(&mut self, space: &ConfigSpace) {
        let aggs: Vec<_> = self.store.iter().skip(self.observed_count).collect();
        let mut new_obs = Vec::with_capacity(aggs.len());
        for agg in aggs {
            let u = agg.config.to_unit_cube(space);
            new_obs.push(Observation::new(
                u.to_vec(),
                [agg.mean_energy_j(), agg.mean_latency_s()],
            ));
        }
        for obs in new_obs {
            self.engine
                .observe(obs)
                .expect("store observations are finite grid points");
            self.observed_count += 1;
        }
    }

    /// Runs the between-round MBO update (paper: in the configuration /
    /// reporting window) and stocks `pending_suggestions`.
    fn mbo_update(&mut self, space: &ConfigSpace) {
        self.sync_engine(space);
        if let Some(worst) = self.store.worst_objectives() {
            // Reference point: the combination of worst phase-1
            // performances (paper §4.3), padded slightly.
            self.engine
                .set_reference([worst[0] * 1.05, worst[1] * 1.05]);
        }
        self.engine.record_round();

        if self.engine.should_stop() {
            self.phase = Phase::Exploitation;
            self.pending_suggestions.clear();
            return;
        }

        // Batch size K = T_avg / τ, capped (paper §4.3).
        let t_avg = if self.round_durations.is_empty() {
            self.config.tau_s
        } else {
            self.round_durations.iter().sum::<f64>() / self.round_durations.len() as f64
        };
        let k = ((t_avg / self.config.tau_s).floor() as usize).clamp(1, self.config.max_batch);

        // Candidate pool: every unexplored grid point.
        let observed: HashSet<_> = self.store.indices().iter().copied().collect();
        let mut candidates = Vec::new();
        let mut candidate_configs = Vec::new();
        for (i, x) in space.iter().enumerate() {
            if !observed.contains(&bofl_device::ConfigIndex(i)) {
                candidates.push(x.to_unit_cube(space).to_vec());
                candidate_configs.push(x);
            }
        }

        let suggestion = match self.config.exploration {
            ExplorationStrategy::RandomOnly => Ok(self.random_candidates(space, k)),
            ExplorationStrategy::Mbo => {
                let picks = match self.config.batching {
                    BatchStrategy::GreedyFantasy => self.engine.suggest(k, &candidates),
                    BatchStrategy::NoFantasy => self.engine.suggest_no_fantasy(k, &candidates),
                };
                picks.map(|idx| idx.into_iter().map(|i| candidate_configs[i]).collect())
            }
        };
        match suggestion {
            Ok(picks) => {
                self.pending_suggestions = picks;
                self.last_mbo_duration = self.engine.last_suggest_duration();
                self.mbo_invocations += 1;
            }
            Err(_) => {
                // Not enough observations or degenerate models: skip this
                // round's suggestions and keep exploring randomly later.
                self.pending_suggestions.clear();
            }
        }

        if self.pending_suggestions.is_empty() {
            // Nothing left to suggest — the space is effectively covered.
            self.phase = Phase::Exploitation;
        }
    }

    /// Draws `k` fresh quasi-random grid configurations (RandomOnly
    /// ablation), skipping everything already observed.
    fn random_candidates(&mut self, space: &ConfigSpace, k: usize) -> Vec<DvfsConfig> {
        let observed: HashSet<(u32, u32, u32)> = self
            .store
            .iter()
            .map(|a| {
                (
                    a.config.cpu.as_mhz(),
                    a.config.gpu.as_mhz(),
                    a.config.mem.as_mhz(),
                )
            })
            .collect();
        let mut out = Vec::with_capacity(k);
        let mut seen = observed;
        let mut attempts = 0;
        while out.len() < k && attempts < k * 200 {
            attempts += 1;
            let u = self.sobol.next_point();
            let x = space.from_unit_cube([u[0], u[1], u[2]]);
            if seen.insert((x.cpu.as_mhz(), x.gpu.as_mhz(), x.mem.as_mhz())) {
                out.push(x);
            }
        }
        out
    }

    fn exploration_params(&self) -> SafeExplorationParams {
        SafeExplorationParams {
            tau_s: self.config.tau_s,
            safety_margin: self.config.safety_margin,
            guardian_enabled: self.config.guardian_enabled,
            exploit_strategy: self.config.exploitation,
            escalation_enabled: self.config.escalation_enabled,
            escalation_factor: self.config.escalation_factor,
            ..SafeExplorationParams::default()
        }
    }
}

impl PaceController for BoflController {
    fn name(&self) -> &str {
        "BoFL"
    }

    fn run_round(&mut self, spec: &RoundSpec, exec: &mut dyn JobExecutor) -> ControllerRoundStats {
        let space = exec.config_space().clone();
        self.initialize(&space);

        // Between-round work (phase transitions + MBO) happens before the
        // round clock starts, in the configuration/reporting window.
        let mut mbo_duration = None;
        if self.phase == Phase::RandomExploration && self.pending_start_points.is_empty() {
            self.phase = Phase::ParetoConstruction;
        }
        if self.phase == Phase::ParetoConstruction {
            self.mbo_update(&space);
            mbo_duration = self.last_mbo_duration;
        }

        let start = exec.elapsed_s();
        let quarantined_before = self.store.quarantined_jobs();
        let params = self.exploration_params();
        let mut stats = match self.phase {
            Phase::RandomExploration => {
                let candidates = self.pending_start_points.clone();
                let out = explore_safely(exec, spec, &mut self.store, &candidates, params);
                // Unconsumed start points roll over to the next round.
                self.pending_start_points.drain(..out.consumed);
                ControllerRoundStats {
                    phase: Some(Phase::RandomExploration),
                    explored: out.explored,
                    escalated_jobs: out.escalated_jobs,
                    ..ControllerRoundStats::default()
                }
            }
            Phase::ParetoConstruction => {
                let candidates = std::mem::take(&mut self.pending_suggestions);
                let out = explore_safely(exec, spec, &mut self.store, &candidates, params);
                // Unexplored suggestions are dropped (paper §4.3); the next
                // MBO update will re-suggest with fresh information.
                ControllerRoundStats {
                    phase: Some(Phase::ParetoConstruction),
                    explored: out.explored,
                    mbo_duration,
                    escalated_jobs: out.escalated_jobs,
                    ..ControllerRoundStats::default()
                }
            }
            Phase::Exploitation => {
                let effective = spec.deadline_s * (1.0 - self.config.safety_margin);
                let report = exploit_remaining_with(
                    exec,
                    spec,
                    &mut self.store,
                    spec.jobs as u64,
                    effective,
                    ExploitParams {
                        strategy: self.config.exploitation,
                        escalation_enabled: self.config.escalation_enabled,
                        escalation_factor: self.config.escalation_factor,
                    },
                );
                ControllerRoundStats {
                    phase: Some(Phase::Exploitation),
                    escalated_jobs: report.escalated_jobs,
                    ..ControllerRoundStats::default()
                }
            }
        };
        stats.quarantined = self.store.quarantined_jobs() - quarantined_before;
        self.round_durations.push(exec.elapsed_s() - start);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::testing::FakeExecutor;

    fn run_rounds(
        ctrl: &mut BoflController,
        n: usize,
        jobs: usize,
        deadline: f64,
    ) -> Vec<ControllerRoundStats> {
        (0..n)
            .map(|i| {
                let mut exec = FakeExecutor::new();
                let spec = RoundSpec::new(i, jobs, deadline);
                let stats = ctrl.run_round(&spec, &mut exec);
                assert_eq!(exec.jobs_run.len(), jobs, "round {i} must run all jobs");
                assert!(
                    exec.elapsed_s() <= deadline,
                    "round {i} missed deadline: {} > {}",
                    exec.elapsed_s(),
                    deadline
                );
                stats
            })
            .collect()
    }

    #[test]
    fn phases_progress_in_order() {
        let mut ctrl = BoflController::new(BoflConfig {
            tau_s: 1.0,
            random_fraction: 0.10, // 6 start points on the 60-config fake
            min_coverage: 0.15,
            max_batch: 4,
            gp_restarts: 1,
            gp_max_evaluations: 50,
            ..BoflConfig::default()
        });
        let t_max = FakeExecutor::true_cost(FakeExecutor::new().config_space().x_max()).latency_s;
        let jobs = 60;
        let deadline = jobs as f64 * t_max * 3.0;

        let mut seen_phases = Vec::new();
        for stats in run_rounds(&mut ctrl, 12, jobs, deadline) {
            seen_phases.push(stats.phase.unwrap());
        }
        // Monotone phase ordering: exploration → construction → exploitation.
        let order = |p: &Phase| match p {
            Phase::RandomExploration => 0,
            Phase::ParetoConstruction => 1,
            Phase::Exploitation => 2,
        };
        assert!(seen_phases.windows(2).all(|w| order(&w[0]) <= order(&w[1])));
        assert_eq!(seen_phases[0], Phase::RandomExploration);
        assert_eq!(*seen_phases.last().unwrap(), Phase::Exploitation);
    }

    #[test]
    fn explores_roughly_random_fraction_in_phase1() {
        let mut ctrl = BoflController::new(BoflConfig {
            tau_s: 0.5,
            random_fraction: 0.10,
            min_coverage: 0.12,
            gp_restarts: 1,
            gp_max_evaluations: 40,
            ..BoflConfig::default()
        });
        let t_max = FakeExecutor::true_cost(FakeExecutor::new().config_space().x_max()).latency_s;
        let _ = run_rounds(&mut ctrl, 3, 80, 80.0 * t_max * 4.0);
        // 60 configs × 10% = 6 start points + x_max = 7.
        assert!(ctrl.observations().len() >= 7);
    }

    #[test]
    fn exploitation_uses_pareto_configs() {
        let mut ctrl = BoflController::new(BoflConfig {
            tau_s: 0.5,
            random_fraction: 0.10,
            min_coverage: 0.10,
            gp_restarts: 1,
            gp_max_evaluations: 40,
            ..BoflConfig::default()
        });
        let t_max = FakeExecutor::true_cost(FakeExecutor::new().config_space().x_max()).latency_s;
        let jobs = 60;
        let deadline = jobs as f64 * t_max * 4.0;
        let _ = run_rounds(&mut ctrl, 10, jobs, deadline);
        assert_eq!(ctrl.phase(), Phase::Exploitation);
        assert!(!ctrl.pareto_configs().is_empty());

        // In exploitation, energy should beat all-x_max (Performant).
        let mut exec = FakeExecutor::new();
        let spec = RoundSpec::new(99, jobs, deadline);
        ctrl.run_round(&spec, &mut exec);
        let performant_energy =
            jobs as f64 * FakeExecutor::true_cost(exec.config_space().x_max()).energy_j;
        assert!(
            exec.energy_total < performant_energy,
            "BoFL {} should beat Performant {}",
            exec.energy_total,
            performant_energy
        );
    }

    #[test]
    fn tight_deadlines_never_violated() {
        let mut ctrl = BoflController::new(BoflConfig {
            tau_s: 1.0,
            random_fraction: 0.10,
            gp_restarts: 1,
            gp_max_evaluations: 40,
            ..BoflConfig::default()
        });
        let t_max = FakeExecutor::true_cost(FakeExecutor::new().config_space().x_max()).latency_s;
        let jobs = 40;
        // Barely feasible deadline: 8% slack only.
        let _ = run_rounds(&mut ctrl, 6, jobs, jobs as f64 * t_max * 1.08);
    }

    #[test]
    fn mbo_runs_between_rounds_and_is_timed() {
        let mut ctrl = BoflController::new(BoflConfig {
            tau_s: 0.5,
            random_fraction: 0.08,
            min_coverage: 0.5, // keep it in phase 2 for a while
            gp_restarts: 1,
            gp_max_evaluations: 40,
            ..BoflConfig::default()
        });
        let t_max = FakeExecutor::true_cost(FakeExecutor::new().config_space().x_max()).latency_s;
        let _ = run_rounds(&mut ctrl, 6, 80, 80.0 * t_max * 4.0);
        assert!(ctrl.mbo_invocations() > 0);
        assert!(ctrl.last_mbo_duration().is_some());
    }
}
