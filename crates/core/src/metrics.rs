//! Evaluation metrics from the paper's §6.4, plus the per-round
//! walkthrough statistics of Table 3.

use crate::runner::RunSummary;
use crate::Phase;
use bofl_device::ConfigIndex;
use std::collections::HashSet;

/// Energy *improvement* of `run` relative to a baseline (paper §6.4
/// metric 1): `1 − run / baseline`. Positive means `run` used less energy.
///
/// # Panics
///
/// Panics if the baseline consumed zero energy.
///
/// # Examples
///
/// ```
/// # use bofl::metrics::improvement_ratio;
/// assert!((improvement_ratio(78.0, 100.0) - 0.22).abs() < 1e-12);
/// ```
pub fn improvement_ratio(run_energy_j: f64, baseline_energy_j: f64) -> f64 {
    assert!(baseline_energy_j > 0.0, "baseline energy must be positive");
    1.0 - run_energy_j / baseline_energy_j
}

/// Energy *regret* of `run` relative to an oracle (paper §6.4 metric 2):
/// `run / oracle − 1`. Positive means `run` used more energy.
///
/// # Panics
///
/// Panics if the oracle consumed zero energy.
///
/// # Examples
///
/// ```
/// # use bofl::metrics::regret_ratio;
/// assert!((regret_ratio(103.0, 100.0) - 0.03).abs() < 1e-12);
/// ```
pub fn regret_ratio(run_energy_j: f64, oracle_energy_j: f64) -> f64 {
    assert!(oracle_energy_j > 0.0, "oracle energy must be positive");
    run_energy_j / oracle_energy_j - 1.0
}

/// Improvement of one run over another, computed on total energies.
pub fn improvement_vs(run: &RunSummary, baseline: &RunSummary) -> f64 {
    improvement_ratio(run.total_energy_j(), baseline.total_energy_j())
}

/// Regret of one run against another, computed on total energies.
pub fn regret_vs(run: &RunSummary, oracle: &RunSummary) -> f64 {
    regret_ratio(run.total_energy_j(), oracle.total_energy_j())
}

/// One row of the paper's Table 3: explorations and eventual-Pareto hits
/// for an exploration-phase round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkthroughRow {
    /// One-based round number (as printed in Table 3).
    pub round: usize,
    /// Phase of the round.
    pub phase: Phase,
    /// Configurations explored in the round.
    pub explorations: usize,
    /// How many of them belong to the *final* Pareto front.
    pub pareto_hits: usize,
}

/// Reconstructs the Table 3 walkthrough from a BoFL run: for every
/// exploration-phase round, the number of configurations explored and how
/// many ended up in the ultimate Pareto set (`final_pareto`).
pub fn walkthrough(run: &RunSummary, final_pareto: &[ConfigIndex]) -> Vec<WalkthroughRow> {
    let pareto: HashSet<ConfigIndex> = final_pareto.iter().copied().collect();
    run.reports
        .iter()
        .filter_map(|r| {
            let phase = r.phase?;
            if phase == Phase::Exploitation {
                return None;
            }
            Some(WalkthroughRow {
                round: r.round + 1,
                phase,
                explorations: r.explored.len(),
                pareto_hits: r.explored.iter().filter(|i| pareto.contains(i)).count(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RoundReport;

    fn report(round: usize, phase: Option<Phase>, explored: Vec<usize>) -> RoundReport {
        RoundReport {
            round,
            deadline_s: 10.0,
            duration_s: 9.0,
            energy_j: 100.0,
            jobs: 10,
            deadline_met: true,
            phase,
            explored: explored.into_iter().map(ConfigIndex).collect(),
            mbo_duration: None,
            escalated_jobs: 0,
            quarantined: 0,
        }
    }

    #[test]
    fn ratios() {
        assert!((improvement_ratio(74.1, 100.0) - 0.259).abs() < 1e-12);
        assert!((regret_ratio(101.2, 100.0) - 0.012).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "baseline energy must be positive")]
    fn improvement_rejects_zero_baseline() {
        let _ = improvement_ratio(1.0, 0.0);
    }

    #[test]
    fn walkthrough_counts_pareto_hits() {
        let run = RunSummary {
            controller: "BoFL".into(),
            reports: vec![
                report(0, Some(Phase::RandomExploration), vec![1, 2, 3]),
                report(1, Some(Phase::ParetoConstruction), vec![4, 5]),
                report(2, Some(Phase::Exploitation), vec![]),
                report(3, None, vec![]),
            ],
        };
        let final_pareto = vec![ConfigIndex(2), ConfigIndex(4), ConfigIndex(5)];
        let rows = walkthrough(&run, &final_pareto);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].round, 1);
        assert_eq!(rows[0].explorations, 3);
        assert_eq!(rows[0].pareto_hits, 1);
        assert_eq!(rows[1].explorations, 2);
        assert_eq!(rows[1].pareto_hits, 2);
        assert_eq!(rows[1].phase, Phase::ParetoConstruction);
    }

    #[test]
    fn summary_helpers() {
        let run = RunSummary {
            controller: "x".into(),
            reports: vec![
                report(0, Some(Phase::RandomExploration), vec![1]),
                report(1, Some(Phase::Exploitation), vec![]),
            ],
        };
        assert_eq!(run.total_energy_j(), 200.0);
        assert_eq!(run.deadlines_met(), 2);
        assert_eq!(run.total_explored(), 1);
        assert_eq!(run.phase_reports(Phase::Exploitation).count(), 1);
        assert_eq!(run.total_mbo_s(), 0.0);
    }
}
