//! Per-job execution tracing: a composable [`JobExecutor`] wrapper that
//! records every job's configuration and measured cost.
//!
//! Useful for debugging pace decisions, for exporting the raw
//! latency/energy scatter behind Fig. 2-style plots, and for verifying in
//! tests that a controller actually executed the schedule it planned.

use crate::JobExecutor;
use bofl_device::{ConfigSpace, DvfsConfig, JobCost};

/// One traced job execution.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JobEvent {
    /// Zero-based index of the job within the trace.
    pub job: usize,
    /// The DVFS configuration the job ran at.
    pub config: DvfsConfig,
    /// Measured cost of the job.
    pub cost: JobCost,
    /// Round-relative time at which the job *finished*, seconds.
    pub finished_at_s: f64,
}

/// A [`JobExecutor`] wrapper that records a [`JobEvent`] per job.
///
/// # Examples
///
/// ```
/// use bofl::prelude::*;
/// use bofl::trace::TracingExecutor;
/// use bofl::runner::SimExecutor;
/// use bofl::task::PaceController;
///
/// let device = Device::jetson_agx();
/// let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
/// let inner = SimExecutor::new(&device, &task, 1);
/// let mut exec = TracingExecutor::new(inner);
///
/// let mut ctrl = bofl::baselines::PerformantController::new();
/// let spec = RoundSpec::new(0, 10, 1e6);
/// ctrl.run_round(&spec, &mut exec);
///
/// assert_eq!(exec.events().len(), 10);
/// assert!(exec.events().iter().all(|e| e.config == device.config_space().x_max()));
/// ```
#[derive(Debug)]
pub struct TracingExecutor<E> {
    inner: E,
    events: Vec<JobEvent>,
}

impl<E: JobExecutor> TracingExecutor<E> {
    /// Wraps an executor.
    pub fn new(inner: E) -> Self {
        TracingExecutor {
            inner,
            events: Vec::new(),
        }
    }

    /// The recorded events, in execution order.
    pub fn events(&self) -> &[JobEvent] {
        &self.events
    }

    /// Clears the trace (e.g. between rounds).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Consumes the wrapper, returning the inner executor and the trace.
    pub fn into_parts(self) -> (E, Vec<JobEvent>) {
        (self.inner, self.events)
    }

    /// Borrows the wrapped executor.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Aggregates the trace per configuration:
    /// `(config, jobs, total latency, total energy)`, in first-seen order.
    pub fn per_config_totals(&self) -> Vec<(DvfsConfig, usize, f64, f64)> {
        let mut order: Vec<DvfsConfig> = Vec::new();
        let mut totals: std::collections::HashMap<DvfsConfig, (usize, f64, f64)> =
            std::collections::HashMap::new();
        for e in &self.events {
            let entry = totals.entry(e.config).or_insert_with(|| {
                order.push(e.config);
                (0, 0.0, 0.0)
            });
            entry.0 += 1;
            entry.1 += e.cost.latency_s;
            entry.2 += e.cost.energy_j;
        }
        order
            .into_iter()
            .map(|c| {
                let (n, lat, en) = totals[&c];
                (c, n, lat, en)
            })
            .collect()
    }

    /// Renders the trace as CSV rows
    /// (`job,cpu_mhz,gpu_mhz,mem_mhz,latency_s,energy_j,finished_at_s`).
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("job,cpu_mhz,gpu_mhz,mem_mhz,latency_s,energy_j,finished_at_s\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{},{:.6},{:.6},{:.6}\n",
                e.job,
                e.config.cpu.as_mhz(),
                e.config.gpu.as_mhz(),
                e.config.mem.as_mhz(),
                e.cost.latency_s,
                e.cost.energy_j,
                e.finished_at_s,
            ));
        }
        out
    }
}

impl<E: JobExecutor> JobExecutor for TracingExecutor<E> {
    fn config_space(&self) -> &ConfigSpace {
        self.inner.config_space()
    }

    fn run_job(&mut self, x: DvfsConfig) -> JobCost {
        let cost = self.inner.run_job(x);
        self.events.push(JobEvent {
            job: self.events.len(),
            config: x,
            cost,
            finished_at_s: self.inner.elapsed_s(),
        });
        cost
    }

    fn elapsed_s(&self) -> f64 {
        self.inner.elapsed_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::testing::FakeExecutor;

    #[test]
    fn records_every_job_in_order() {
        let mut exec = TracingExecutor::new(FakeExecutor::new());
        let space = exec.config_space().clone();
        let a = space.x_max();
        let b = space.x_min();
        exec.run_job(a);
        exec.run_job(b);
        exec.run_job(a);
        let events = exec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].config, a);
        assert_eq!(events[1].config, b);
        assert_eq!(
            events.iter().map(|e| e.job).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // finished_at is monotone increasing.
        assert!(events
            .windows(2)
            .all(|w| w[0].finished_at_s < w[1].finished_at_s));
    }

    #[test]
    fn per_config_totals_aggregate() {
        let mut exec = TracingExecutor::new(FakeExecutor::new());
        let space = exec.config_space().clone();
        let a = space.x_max();
        let b = space.x_min();
        for _ in 0..3 {
            exec.run_job(a);
        }
        exec.run_job(b);
        let totals = exec.per_config_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].0, a);
        assert_eq!(totals[0].1, 3);
        let cost_a = FakeExecutor::true_cost(a);
        assert!((totals[0].2 - 3.0 * cost_a.latency_s).abs() < 1e-12);
        assert!((totals[0].3 - 3.0 * cost_a.energy_j).abs() < 1e-12);
        assert_eq!(totals[1].1, 1);
    }

    #[test]
    fn csv_and_clear() {
        let mut exec = TracingExecutor::new(FakeExecutor::new());
        let x = exec.config_space().x_max();
        exec.run_job(x);
        let csv = exec.to_csv();
        assert!(csv.starts_with("job,cpu_mhz"));
        assert_eq!(csv.lines().count(), 2);
        exec.clear();
        assert!(exec.events().is_empty());
        let (inner, events) = exec.into_parts();
        assert!(events.is_empty());
        assert_eq!(inner.jobs_run.len(), 1);
    }

    #[test]
    fn elapsed_passthrough() {
        let mut exec = TracingExecutor::new(FakeExecutor::new());
        let x = exec.config_space().x_max();
        let cost = exec.run_job(x);
        assert!((exec.elapsed_s() - cost.latency_s).abs() < 1e-12);
        assert_eq!(exec.inner().jobs_run.len(), 1);
    }
}
