use bofl_device::{ConfigSpace, DvfsConfig, JobCost};

/// The controller's window onto the device during a round: run jobs,
/// observe measured costs, watch the clock.
///
/// The experiment runner implements this over the simulated
/// [`bofl_device::Device`]; on real hardware the same trait would wrap the
/// PyTorch training loop, the CUDA event timers and the INA3221 sysfs
/// reads (paper §5.2 modules 1–3).
pub trait JobExecutor {
    /// The device's DVFS configuration space.
    fn config_space(&self) -> &ConfigSpace;

    /// Runs one minibatch job at configuration `x` and returns the
    /// *measured* per-job cost (latency with jitter, sensor-read energy).
    /// Advances the round clock by the job latency plus any DVFS
    /// transition latency.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x` is not on the device grid — the
    /// controller is responsible for only requesting grid points.
    fn run_job(&mut self, x: DvfsConfig) -> JobCost;

    /// Seconds elapsed since the start of the current round.
    fn elapsed_s(&self) -> f64;
}

#[cfg(test)]
pub(crate) mod testing {
    use super::*;
    use bofl_device::FreqTable;

    /// A deterministic in-memory executor for controller unit tests: cost
    /// is a simple decreasing function of total frequency, no noise.
    pub struct FakeExecutor {
        space: ConfigSpace,
        elapsed: f64,
        pub jobs_run: Vec<DvfsConfig>,
        pub energy_total: f64,
    }

    impl FakeExecutor {
        pub fn new() -> Self {
            FakeExecutor {
                space: ConfigSpace::new(
                    FreqTable::linspace_mhz(400, 2000, 5),
                    FreqTable::linspace_mhz(200, 1400, 4),
                    FreqTable::linspace_mhz(400, 1600, 3),
                ),
                elapsed: 0.0,
                jobs_run: Vec::new(),
                energy_total: 0.0,
            }
        }

        /// The deterministic ground-truth cost used by the fake.
        pub fn true_cost(x: DvfsConfig) -> JobCost {
            // Latency falls with every clock; energy has a sweet spot in
            // the middle of the range (non-monotone like the real model).
            let c = x.cpu.as_ghz();
            let g = x.gpu.as_ghz();
            let m = x.mem.as_ghz();
            let latency_s = 0.05 + 0.2 / c + 0.3 / g + 0.05 / m;
            let power_w = 2.0 + 1.5 * c * c + 3.0 * g * g + 0.5 * m;
            JobCost {
                latency_s,
                energy_j: power_w * latency_s,
            }
        }
    }

    impl JobExecutor for FakeExecutor {
        fn config_space(&self) -> &ConfigSpace {
            &self.space
        }

        fn run_job(&mut self, x: DvfsConfig) -> JobCost {
            assert!(self.space.contains(x), "off-grid config {x}");
            let cost = Self::true_cost(x);
            self.elapsed += cost.latency_s;
            self.energy_total += cost.energy_j;
            self.jobs_run.push(x);
            cost
        }

        fn elapsed_s(&self) -> f64 {
            self.elapsed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::FakeExecutor;
    use super::*;

    #[test]
    fn fake_executor_accumulates() {
        let mut e = FakeExecutor::new();
        let x = e.config_space().x_max();
        let c1 = e.run_job(x);
        let c2 = e.run_job(x);
        assert_eq!(c1, c2); // deterministic
        assert!((e.elapsed_s() - 2.0 * c1.latency_s).abs() < 1e-12);
        assert_eq!(e.jobs_run.len(), 2);
    }

    #[test]
    fn fake_cost_orders_configs() {
        let e = FakeExecutor::new();
        let fast = FakeExecutor::true_cost(e.config_space().x_max());
        let slow = FakeExecutor::true_cost(e.config_space().x_min());
        assert!(fast.latency_s < slow.latency_s);
    }
}
