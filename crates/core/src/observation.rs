use bofl_device::{ConfigIndex, ConfigSpace, DvfsConfig, JobCost};
use std::collections::HashMap;

/// Aggregated measurements for one configuration: job-weighted averages of
/// latency and energy over every job executed at that configuration.
///
/// BoFL measures each configuration for at least `τ` seconds (several
/// jobs) precisely so these averages are trustworthy; the store performs
/// the aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AggregatedObservation {
    /// The observed configuration.
    pub config: DvfsConfig,
    /// Jobs executed at this configuration.
    pub jobs: u64,
    /// Total measured latency across those jobs, seconds.
    pub total_latency_s: f64,
    /// Total measured energy across those jobs, joules.
    pub total_energy_j: f64,
}

impl AggregatedObservation {
    /// Mean per-job latency `T̂(x)`.
    pub fn mean_latency_s(&self) -> f64 {
        self.total_latency_s / self.jobs as f64
    }

    /// Mean per-job energy `Ê(x)`.
    pub fn mean_energy_j(&self) -> f64 {
        self.total_energy_j / self.jobs as f64
    }

    /// The mean cost as a [`JobCost`].
    pub fn mean_cost(&self) -> JobCost {
        JobCost {
            latency_s: self.mean_latency_s(),
            energy_j: self.mean_energy_j(),
        }
    }
}

/// The controller's memory of everything it has measured, keyed by grid
/// index.
#[derive(Debug, Clone, Default)]
pub struct ObservationStore {
    by_index: HashMap<ConfigIndex, AggregatedObservation>,
    /// Indices in first-observation order (stable reporting).
    order: Vec<ConfigIndex>,
}

impl ObservationStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed job. Returns `true` if this was the first job
    /// ever run at `config`.
    pub fn record(&mut self, space: &ConfigSpace, config: DvfsConfig, cost: JobCost) -> bool {
        let index = space
            .index_of(config)
            .expect("observations must be grid points");
        match self.by_index.get_mut(&index) {
            Some(agg) => {
                agg.jobs += 1;
                agg.total_latency_s += cost.latency_s;
                agg.total_energy_j += cost.energy_j;
                false
            }
            None => {
                self.by_index.insert(
                    index,
                    AggregatedObservation {
                        config,
                        jobs: 1,
                        total_latency_s: cost.latency_s,
                        total_energy_j: cost.energy_j,
                    },
                );
                self.order.push(index);
                true
            }
        }
    }

    /// The aggregate for a configuration, if it has been observed.
    pub fn get(&self, index: ConfigIndex) -> Option<&AggregatedObservation> {
        self.by_index.get(&index)
    }

    /// The aggregate for a configuration value, if observed.
    pub fn get_config(
        &self,
        space: &ConfigSpace,
        config: DvfsConfig,
    ) -> Option<&AggregatedObservation> {
        space.index_of(config).and_then(|i| self.by_index.get(&i))
    }

    /// Number of distinct configurations observed.
    pub fn len(&self) -> usize {
        self.by_index.len()
    }

    /// `true` if nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.by_index.is_empty()
    }

    /// Iterates over aggregates in first-observation order.
    pub fn iter(&self) -> impl Iterator<Item = &AggregatedObservation> + '_ {
        self.order.iter().map(|i| &self.by_index[i])
    }

    /// Grid indices in first-observation order.
    pub fn indices(&self) -> &[ConfigIndex] {
        &self.order
    }

    /// The observed configurations whose mean costs are Pareto-optimal
    /// (energy, latency both minimized), in first-observation order.
    pub fn pareto_set(&self) -> Vec<&AggregatedObservation> {
        let all: Vec<&AggregatedObservation> = self.iter().collect();
        all.iter()
            .filter(|a| {
                !all.iter()
                    .any(|b| b.config != a.config && b.mean_cost().dominates(&a.mean_cost()))
            })
            .copied()
            .collect()
    }

    /// Worst observed mean energy and latency — the reference-point
    /// ingredients of the paper's §4.3.
    pub fn worst_objectives(&self) -> Option<[f64; 2]> {
        if self.is_empty() {
            return None;
        }
        let mut worst = [f64::NEG_INFINITY; 2];
        for a in self.iter() {
            worst[0] = worst[0].max(a.mean_energy_j());
            worst[1] = worst[1].max(a.mean_latency_s());
        }
        Some(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bofl_device::{ConfigSpace, FreqMHz, FreqTable};

    fn space() -> ConfigSpace {
        ConfigSpace::new(
            FreqTable::from_mhz(&[100, 200]),
            FreqTable::from_mhz(&[300, 400]),
            FreqTable::from_mhz(&[500, 600]),
        )
    }

    fn cfg(c: u32, g: u32, m: u32) -> DvfsConfig {
        DvfsConfig::new(FreqMHz::new(c), FreqMHz::new(g), FreqMHz::new(m))
    }

    #[test]
    fn record_aggregates() {
        let sp = space();
        let mut store = ObservationStore::new();
        let x = cfg(100, 300, 500);
        assert!(store.record(
            &sp,
            x,
            JobCost {
                latency_s: 0.2,
                energy_j: 4.0
            }
        ));
        assert!(!store.record(
            &sp,
            x,
            JobCost {
                latency_s: 0.4,
                energy_j: 6.0
            }
        ));
        let agg = store.get_config(&sp, x).unwrap();
        assert_eq!(agg.jobs, 2);
        assert!((agg.mean_latency_s() - 0.3).abs() < 1e-12);
        assert!((agg.mean_energy_j() - 5.0).abs() < 1e-12);
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn pareto_set_filters_dominated() {
        let sp = space();
        let mut store = ObservationStore::new();
        store.record(
            &sp,
            cfg(100, 300, 500),
            JobCost {
                latency_s: 0.2,
                energy_j: 5.0,
            },
        );
        store.record(
            &sp,
            cfg(200, 300, 500),
            JobCost {
                latency_s: 0.4,
                energy_j: 3.0,
            },
        );
        store.record(
            &sp,
            cfg(100, 400, 500),
            JobCost {
                latency_s: 0.5,
                energy_j: 6.0,
            },
        ); // dominated
        let pareto = store.pareto_set();
        assert_eq!(pareto.len(), 2);
        assert!(pareto.iter().all(|a| a.mean_latency_s() < 0.45));
    }

    #[test]
    fn worst_objectives() {
        let sp = space();
        let mut store = ObservationStore::new();
        assert_eq!(store.worst_objectives(), None);
        store.record(
            &sp,
            cfg(100, 300, 500),
            JobCost {
                latency_s: 0.2,
                energy_j: 5.0,
            },
        );
        store.record(
            &sp,
            cfg(200, 400, 600),
            JobCost {
                latency_s: 0.7,
                energy_j: 3.0,
            },
        );
        assert_eq!(store.worst_objectives(), Some([5.0, 0.7]));
    }

    #[test]
    fn iteration_order_is_first_observed() {
        let sp = space();
        let mut store = ObservationStore::new();
        let a = cfg(200, 400, 600);
        let b = cfg(100, 300, 500);
        store.record(
            &sp,
            a,
            JobCost {
                latency_s: 0.1,
                energy_j: 1.0,
            },
        );
        store.record(
            &sp,
            b,
            JobCost {
                latency_s: 0.2,
                energy_j: 2.0,
            },
        );
        store.record(
            &sp,
            a,
            JobCost {
                latency_s: 0.1,
                energy_j: 1.0,
            },
        );
        let order: Vec<DvfsConfig> = store.iter().map(|o| o.config).collect();
        assert_eq!(order, vec![a, b]);
        assert_eq!(store.indices().len(), 2);
    }

    #[test]
    #[should_panic(expected = "grid points")]
    fn rejects_off_grid() {
        let sp = space();
        let mut store = ObservationStore::new();
        store.record(
            &sp,
            cfg(150, 300, 500),
            JobCost {
                latency_s: 0.1,
                energy_j: 1.0,
            },
        );
    }
}
