use bofl_device::{ConfigIndex, ConfigSpace, DvfsConfig, JobCost};
use std::collections::HashMap;

/// When to quarantine a latency sample instead of folding it into the
/// aggregates that train the GP surrogate.
///
/// A transient straggler episode (thermal throttling, a co-located
/// process, a background daemon) can inflate a job's measured latency far
/// beyond anything the device model — or the guardian's slowdown bound —
/// predicts for that configuration. Folding such a sample into the running
/// mean poisons the Pareto front: the configuration looks permanently
/// slow, the ILP avoids it, and the energy savings it offered are lost
/// long after the episode has passed. The quarantine keeps those samples
/// out of the training set while still counting them, so the caller can
/// surface "observations rejected" in its metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QuarantinePolicy {
    /// Whether quarantine runs at all (off = every sample is folded in,
    /// the pre-quarantine behavior).
    pub enabled: bool,
    /// A sample whose latency exceeds `factor ×` the configuration's
    /// current mean latency is quarantined. Keep this comfortably below
    /// the guardian's pessimistic slowdown bound (default 10×) but above
    /// ordinary measurement jitter; transient straggler slowdowns in the
    /// fleet simulator run 2–4×.
    pub factor: f64,
    /// Minimum clean samples a configuration needs before the quarantine
    /// may judge new arrivals — with fewer, the mean itself is too noisy
    /// to be a reference.
    pub min_jobs: u64,
}

impl QuarantinePolicy {
    /// Quarantine with the given trip factor and the default warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 1`.
    pub fn with_factor(factor: f64) -> Self {
        assert!(factor > 1.0, "quarantine factor must exceed 1");
        QuarantinePolicy {
            enabled: true,
            factor,
            min_jobs: 3,
        }
    }

    /// No quarantine: every sample is folded into the aggregates.
    pub fn disabled() -> Self {
        QuarantinePolicy {
            enabled: false,
            ..QuarantinePolicy::with_factor(3.0)
        }
    }
}

impl Default for QuarantinePolicy {
    /// Disabled — the store's historical behavior. The BoFL controller
    /// opts in explicitly.
    fn default() -> Self {
        QuarantinePolicy::disabled()
    }
}

/// Aggregated measurements for one configuration: job-weighted averages of
/// latency and energy over every job executed at that configuration.
///
/// BoFL measures each configuration for at least `τ` seconds (several
/// jobs) precisely so these averages are trustworthy; the store performs
/// the aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AggregatedObservation {
    /// The observed configuration.
    pub config: DvfsConfig,
    /// Jobs executed at this configuration.
    pub jobs: u64,
    /// Total measured latency across those jobs, seconds.
    pub total_latency_s: f64,
    /// Total measured energy across those jobs, joules.
    pub total_energy_j: f64,
}

impl AggregatedObservation {
    /// Mean per-job latency `T̂(x)`.
    pub fn mean_latency_s(&self) -> f64 {
        self.total_latency_s / self.jobs as f64
    }

    /// Mean per-job energy `Ê(x)`.
    pub fn mean_energy_j(&self) -> f64 {
        self.total_energy_j / self.jobs as f64
    }

    /// The mean cost as a [`JobCost`].
    pub fn mean_cost(&self) -> JobCost {
        JobCost {
            latency_s: self.mean_latency_s(),
            energy_j: self.mean_energy_j(),
        }
    }
}

/// The controller's memory of everything it has measured, keyed by grid
/// index.
#[derive(Debug, Clone, Default)]
pub struct ObservationStore {
    by_index: HashMap<ConfigIndex, AggregatedObservation>,
    /// Indices in first-observation order (stable reporting).
    order: Vec<ConfigIndex>,
    quarantine: QuarantinePolicy,
    quarantined_jobs: u64,
}

impl ObservationStore {
    /// Creates an empty store with quarantine disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store with the given quarantine policy.
    pub fn with_quarantine(policy: QuarantinePolicy) -> Self {
        ObservationStore {
            quarantine: policy,
            ..ObservationStore::default()
        }
    }

    /// The store's quarantine policy.
    pub fn quarantine_policy(&self) -> QuarantinePolicy {
        self.quarantine
    }

    /// Total latency samples quarantined (counted but excluded from the
    /// aggregates) since the store was created.
    pub fn quarantined_jobs(&self) -> u64 {
        self.quarantined_jobs
    }

    /// Records one executed job. Returns `true` if this was the first job
    /// ever run at `config`.
    ///
    /// Under an enabled [`QuarantinePolicy`], a sample whose latency is
    /// inflated beyond `factor ×` the configuration's established mean is
    /// quarantined: the sample is counted in [`Self::quarantined_jobs`]
    /// but never reaches the aggregates (and therefore never reaches the
    /// GP training set or the exploitation planner).
    pub fn record(&mut self, space: &ConfigSpace, config: DvfsConfig, cost: JobCost) -> bool {
        let index = space
            .index_of(config)
            .expect("observations must be grid points");
        match self.by_index.get_mut(&index) {
            Some(agg) => {
                if self.quarantine.enabled
                    && agg.jobs >= self.quarantine.min_jobs
                    && cost.latency_s > self.quarantine.factor * agg.mean_latency_s()
                {
                    self.quarantined_jobs += 1;
                    return false;
                }
                agg.jobs += 1;
                agg.total_latency_s += cost.latency_s;
                agg.total_energy_j += cost.energy_j;
                false
            }
            None => {
                self.by_index.insert(
                    index,
                    AggregatedObservation {
                        config,
                        jobs: 1,
                        total_latency_s: cost.latency_s,
                        total_energy_j: cost.energy_j,
                    },
                );
                self.order.push(index);
                true
            }
        }
    }

    /// The aggregate for a configuration, if it has been observed.
    pub fn get(&self, index: ConfigIndex) -> Option<&AggregatedObservation> {
        self.by_index.get(&index)
    }

    /// The aggregate for a configuration value, if observed.
    pub fn get_config(
        &self,
        space: &ConfigSpace,
        config: DvfsConfig,
    ) -> Option<&AggregatedObservation> {
        space.index_of(config).and_then(|i| self.by_index.get(&i))
    }

    /// Number of distinct configurations observed.
    pub fn len(&self) -> usize {
        self.by_index.len()
    }

    /// `true` if nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.by_index.is_empty()
    }

    /// Iterates over aggregates in first-observation order.
    pub fn iter(&self) -> impl Iterator<Item = &AggregatedObservation> + '_ {
        self.order.iter().map(|i| &self.by_index[i])
    }

    /// Grid indices in first-observation order.
    pub fn indices(&self) -> &[ConfigIndex] {
        &self.order
    }

    /// The observed configurations whose mean costs are Pareto-optimal
    /// (energy, latency both minimized), in first-observation order.
    pub fn pareto_set(&self) -> Vec<&AggregatedObservation> {
        let all: Vec<&AggregatedObservation> = self.iter().collect();
        all.iter()
            .filter(|a| {
                !all.iter()
                    .any(|b| b.config != a.config && b.mean_cost().dominates(&a.mean_cost()))
            })
            .copied()
            .collect()
    }

    /// Worst observed mean energy and latency — the reference-point
    /// ingredients of the paper's §4.3.
    pub fn worst_objectives(&self) -> Option<[f64; 2]> {
        if self.is_empty() {
            return None;
        }
        let mut worst = [f64::NEG_INFINITY; 2];
        for a in self.iter() {
            worst[0] = worst[0].max(a.mean_energy_j());
            worst[1] = worst[1].max(a.mean_latency_s());
        }
        Some(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bofl_device::{ConfigSpace, FreqMHz, FreqTable};

    fn space() -> ConfigSpace {
        ConfigSpace::new(
            FreqTable::from_mhz(&[100, 200]),
            FreqTable::from_mhz(&[300, 400]),
            FreqTable::from_mhz(&[500, 600]),
        )
    }

    fn cfg(c: u32, g: u32, m: u32) -> DvfsConfig {
        DvfsConfig::new(FreqMHz::new(c), FreqMHz::new(g), FreqMHz::new(m))
    }

    #[test]
    fn record_aggregates() {
        let sp = space();
        let mut store = ObservationStore::new();
        let x = cfg(100, 300, 500);
        assert!(store.record(
            &sp,
            x,
            JobCost {
                latency_s: 0.2,
                energy_j: 4.0
            }
        ));
        assert!(!store.record(
            &sp,
            x,
            JobCost {
                latency_s: 0.4,
                energy_j: 6.0
            }
        ));
        let agg = store.get_config(&sp, x).unwrap();
        assert_eq!(agg.jobs, 2);
        assert!((agg.mean_latency_s() - 0.3).abs() < 1e-12);
        assert!((agg.mean_energy_j() - 5.0).abs() < 1e-12);
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn pareto_set_filters_dominated() {
        let sp = space();
        let mut store = ObservationStore::new();
        store.record(
            &sp,
            cfg(100, 300, 500),
            JobCost {
                latency_s: 0.2,
                energy_j: 5.0,
            },
        );
        store.record(
            &sp,
            cfg(200, 300, 500),
            JobCost {
                latency_s: 0.4,
                energy_j: 3.0,
            },
        );
        store.record(
            &sp,
            cfg(100, 400, 500),
            JobCost {
                latency_s: 0.5,
                energy_j: 6.0,
            },
        ); // dominated
        let pareto = store.pareto_set();
        assert_eq!(pareto.len(), 2);
        assert!(pareto.iter().all(|a| a.mean_latency_s() < 0.45));
    }

    #[test]
    fn worst_objectives() {
        let sp = space();
        let mut store = ObservationStore::new();
        assert_eq!(store.worst_objectives(), None);
        store.record(
            &sp,
            cfg(100, 300, 500),
            JobCost {
                latency_s: 0.2,
                energy_j: 5.0,
            },
        );
        store.record(
            &sp,
            cfg(200, 400, 600),
            JobCost {
                latency_s: 0.7,
                energy_j: 3.0,
            },
        );
        assert_eq!(store.worst_objectives(), Some([5.0, 0.7]));
    }

    #[test]
    fn iteration_order_is_first_observed() {
        let sp = space();
        let mut store = ObservationStore::new();
        let a = cfg(200, 400, 600);
        let b = cfg(100, 300, 500);
        store.record(
            &sp,
            a,
            JobCost {
                latency_s: 0.1,
                energy_j: 1.0,
            },
        );
        store.record(
            &sp,
            b,
            JobCost {
                latency_s: 0.2,
                energy_j: 2.0,
            },
        );
        store.record(
            &sp,
            a,
            JobCost {
                latency_s: 0.1,
                energy_j: 1.0,
            },
        );
        let order: Vec<DvfsConfig> = store.iter().map(|o| o.config).collect();
        assert_eq!(order, vec![a, b]);
        assert_eq!(store.indices().len(), 2);
    }

    #[test]
    fn quarantine_excludes_inflated_samples() {
        let sp = space();
        let mut store = ObservationStore::with_quarantine(QuarantinePolicy {
            enabled: true,
            factor: 3.0,
            min_jobs: 3,
        });
        let x = cfg(100, 300, 500);
        // Three clean samples establish the mean (0.2 s).
        for _ in 0..3 {
            store.record(
                &sp,
                x,
                JobCost {
                    latency_s: 0.2,
                    energy_j: 1.0,
                },
            );
        }
        // A 5× straggler sample is quarantined, not folded in.
        store.record(
            &sp,
            x,
            JobCost {
                latency_s: 1.0,
                energy_j: 1.0,
            },
        );
        let agg = store.get_config(&sp, x).unwrap();
        assert_eq!(agg.jobs, 3, "contaminated sample must not be aggregated");
        assert!((agg.mean_latency_s() - 0.2).abs() < 1e-12);
        assert_eq!(store.quarantined_jobs(), 1);
        // A borderline-but-sane sample still lands.
        store.record(
            &sp,
            x,
            JobCost {
                latency_s: 0.5,
                energy_j: 1.0,
            },
        );
        assert_eq!(store.get_config(&sp, x).unwrap().jobs, 4);
        assert_eq!(store.quarantined_jobs(), 1);
    }

    #[test]
    fn quarantine_waits_for_warmup_and_respects_disabled() {
        let sp = space();
        let x = cfg(100, 300, 500);
        // Before `min_jobs` clean samples, nothing is quarantined — the
        // mean is not yet trustworthy.
        let mut warming = ObservationStore::with_quarantine(QuarantinePolicy {
            enabled: true,
            factor: 2.0,
            min_jobs: 5,
        });
        for i in 0..4 {
            warming.record(
                &sp,
                x,
                JobCost {
                    latency_s: if i == 3 { 10.0 } else { 0.1 },
                    energy_j: 1.0,
                },
            );
        }
        assert_eq!(warming.quarantined_jobs(), 0);
        assert_eq!(warming.get_config(&sp, x).unwrap().jobs, 4);
        // Disabled policy folds everything in (the historical behavior).
        let mut off = ObservationStore::new();
        assert!(!off.quarantine_policy().enabled);
        off.record(
            &sp,
            x,
            JobCost {
                latency_s: 0.1,
                energy_j: 1.0,
            },
        );
        for _ in 0..5 {
            off.record(
                &sp,
                x,
                JobCost {
                    latency_s: 100.0,
                    energy_j: 1.0,
                },
            );
        }
        assert_eq!(off.quarantined_jobs(), 0);
        assert_eq!(off.get_config(&sp, x).unwrap().jobs, 6);
    }

    #[test]
    #[should_panic(expected = "quarantine factor must exceed 1")]
    fn quarantine_rejects_bad_factor() {
        let _ = QuarantinePolicy::with_factor(1.0);
    }

    #[test]
    #[should_panic(expected = "grid points")]
    fn rejects_off_grid() {
        let sp = space();
        let mut store = ObservationStore::new();
        store.record(
            &sp,
            cfg(150, 300, 500),
            JobCost {
                latency_s: 0.1,
                energy_j: 1.0,
            },
        );
    }
}
