//! **BoFL** — Bayesian-optimized local training pace control for
//! energy-efficient federated learning.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Guo et al., Middleware '22): a controller deployed on each federated-
//! learning client that chooses DVFS configurations
//! `(f_cpu, f_gpu, f_mem)` per minibatch job so that every round's
//! server-assigned deadline is met while total training energy is
//! minimized. It operates in three phases:
//!
//! 1. **Safe random exploration** ([`controller`], §4.2 of the paper) —
//!    Sobol-sampled start points (~1% of the configuration space) are
//!    measured under a *deadline guardian* that falls back to the
//!    known-fast `x_max` the moment a deadline is at risk;
//! 2. **Pareto front construction** (§4.3) — a multi-objective Bayesian
//!    optimization engine ([`bofl_mobo`]) proposes batches of candidates
//!    via expected-hypervolume-improvement, still executed safely;
//! 3. **Exploitation** (§4.4) — each remaining round solves an integer
//!    linear program ([`bofl_ilp`]) over the approximated Pareto set and
//!    runs the resulting job mix.
//!
//! Baselines from the paper's evaluation are included:
//! [`baselines::PerformantController`] (always `x_max`) and
//! [`baselines::OracleController`] (full offline profile).
//!
//! The [`runner`] module provides the round-by-round client simulator that
//! drives every experiment in `EXPERIMENTS.md`.
//!
//! # Quickstart
//!
//! ```
//! use bofl::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let device = Device::jetson_agx();
//! let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
//! // Ten rounds with deadlines twice the minimum round latency.
//! let deadlines = DeadlineSchedule::uniform(&device, &task, 10, 2.0, 7).deadlines().to_vec();
//! let mut controller = BoflController::new(BoflConfig::fast_test());
//! let runs = ClientRunner::new(device, task, 99).run(&mut controller, &deadlines);
//! assert_eq!(runs.reports.len(), 10);
//! assert!(runs.reports.iter().all(|r| r.deadline_met));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod controller;
/// The controller-facing executor abstraction over a device.
pub mod executor;
pub mod exploit;
pub mod guardian;
pub mod metrics;
/// Aggregated measurement storage.
pub mod observation;
pub mod runner;
/// Round specifications, phases and the `PaceController` trait.
pub mod task;
/// Per-job execution tracing (composable executor wrapper).
pub mod trace;

pub use controller::{BoflConfig, BoflController};
pub use executor::JobExecutor;
pub use exploit::{ExploitParams, ExploitReport};
pub use observation::{AggregatedObservation, ObservationStore, QuarantinePolicy};
pub use runner::{ClientRunner, DeadlineSchedule, RoundReport, RunSummary};
pub use task::{Phase, RoundSpec};

// Compile-time Send audit: fleet-scale simulation moves clients (and the
// controllers they own) across worker threads, so every controller and the
// boxed trait object must remain `Send`. A regression here should fail the
// build, not surface as a distant trait-bound error in `bofl-fleet`.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<controller::BoflController>();
    assert_send::<baselines::PerformantController>();
    assert_send::<baselines::OracleController>();
    assert_send::<Box<dyn task::PaceController>>();
};

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use crate::baselines::{OracleController, PerformantController};
    pub use crate::controller::{BoflConfig, BoflController};
    pub use crate::executor::JobExecutor;
    pub use crate::exploit::{ExploitParams, ExploitReport};
    pub use crate::metrics::{improvement_vs, regret_vs};
    pub use crate::observation::QuarantinePolicy;
    pub use crate::runner::{ClientRunner, DeadlineSchedule, RoundReport, RunSummary};
    pub use crate::task::{PaceController, Phase, RoundSpec};
    pub use bofl_device::{ConfigSpace, Device, DvfsConfig, FreqMHz, FreqTable, JobCost};
    pub use bofl_workload::{FlTask, TaskKind, Testbed};
}
