//! The safe-exploration algorithm with deadline guardian (paper §4.2,
//! Fig. 7).
//!
//! Exploration rounds try unknown configurations, any of which may be a
//! straggler. Safety rests on the *guardian configuration* `x_max` (every
//! clock at maximum): it is measured first, so before exploring a new
//! candidate the controller checks Eqn. (2) of the paper —
//!
//! ```text
//! T_remain − τ  ≥  W_remain × T(x_max)
//! ```
//!
//! i.e. even if `τ` seconds of exploration produce nothing, the remaining
//! jobs still fit at `x_max`. When the check fails, exploration stops and
//! the round finishes via exploitation of whatever has been observed
//! (falling back to `x_max` itself when observations are scarce).

use crate::exploit::{exploit_remaining_with, ExploitParams, ExploitStrategy};
use crate::{JobExecutor, ObservationStore, RoundSpec};
use bofl_device::{ConfigIndex, DvfsConfig};

/// Result of a safe exploration round.
#[derive(Debug, Clone, PartialEq)]
pub struct SafeExplorationOutcome {
    /// Grid indices newly observed this round, in exploration order.
    pub explored: Vec<ConfigIndex>,
    /// Number of candidates consumed from the front of the candidate list
    /// (explored candidates; the caller re-queues or drops the rest).
    pub consumed: usize,
    /// `true` if the guardian aborted exploration before the candidate
    /// list was exhausted.
    pub guardian_tripped: bool,
    /// Jobs executed during the exploitation tail of the round.
    pub exploited_jobs: u64,
    /// Jobs of the exploitation tail forced to `x_max` by the mid-round
    /// guardian escalation (see [`ExploitParams`]).
    pub escalated_jobs: u64,
}

/// Parameters of the safe exploration algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafeExplorationParams {
    /// Reference measurement duration τ in seconds (paper §4.2 uses 5 s).
    pub tau_s: f64,
    /// Fraction of the deadline held back as safety margin against
    /// measurement jitter.
    pub safety_margin: f64,
    /// Pessimistic single-job slowdown of an unknown configuration
    /// relative to `x_max`. Eqn. (2) reserves only τ for the candidate,
    /// which under-reserves when one job at a straggler exceeds τ; the
    /// guardian therefore additionally reserves
    /// `slowdown_factor × T(x_max)` for the first (unabortable) job.
    /// The paper's own measurements bound the slowdown by ≈8× (Fig. 2).
    pub slowdown_factor: f64,
    /// Whether the deadline-guardian check runs at all. Disabling it is
    /// *unsafe by design* and exists only for the ablation experiment
    /// demonstrating the deadline misses it prevents.
    pub guardian_enabled: bool,
    /// Planning strategy for the exploitation tail of the round.
    pub exploit_strategy: ExploitStrategy,
    /// Whether the mid-round guardian escalation runs during the
    /// exploitation tail (see [`ExploitParams`]).
    pub escalation_enabled: bool,
    /// Trip ratio of the mid-round escalation (see [`ExploitParams`]).
    pub escalation_factor: f64,
}

impl Default for SafeExplorationParams {
    fn default() -> Self {
        let exploit = ExploitParams::default();
        SafeExplorationParams {
            tau_s: 5.0,
            safety_margin: 0.01,
            slowdown_factor: 10.0,
            guardian_enabled: true,
            exploit_strategy: exploit.strategy,
            escalation_enabled: exploit.escalation_enabled,
            escalation_factor: exploit.escalation_factor,
        }
    }
}

/// Runs one full round (`spec.jobs` jobs) exploring `candidates` under the
/// deadline guardian, finishing leftover jobs by exploitation.
///
/// The first candidate of the very first round must be `x_max` so the
/// guardian latency `T(x_max)` is known before any unknown configuration
/// is tried; the controller guarantees this ordering.
///
/// # Panics
///
/// Panics if a candidate is not on the executor's grid.
pub fn explore_safely(
    exec: &mut dyn JobExecutor,
    spec: &RoundSpec,
    store: &mut ObservationStore,
    candidates: &[DvfsConfig],
    params: SafeExplorationParams,
) -> SafeExplorationOutcome {
    let space = exec.config_space().clone();
    let x_max = space.x_max();
    let effective_deadline = spec.deadline_s * (1.0 - params.safety_margin);

    let mut jobs_left = spec.jobs as u64;
    let mut explored = Vec::new();
    let mut consumed = 0usize;
    let mut guardian_tripped = false;

    for &x in candidates {
        if jobs_left == 0 {
            break;
        }
        assert!(space.contains(x), "exploration candidate {x} is off-grid");

        let t_guard = store.get_config(&space, x_max).map(|a| a.mean_latency_s());

        // Deadline guardian check (Eqn. 2). The guardian configuration
        // itself is exempt: it *is* the fallback.
        if x != x_max && params.guardian_enabled {
            let Some(t_guard) = t_guard else {
                // x_max has never been measured; exploring anything else
                // would be unsafe. Stop exploring.
                guardian_tripped = true;
                break;
            };
            let t_remain = effective_deadline - exec.elapsed_s();
            let reserve = params.tau_s + params.slowdown_factor * t_guard;
            if t_remain - reserve < jobs_left as f64 * t_guard {
                guardian_tripped = true;
                break;
            }
        }

        // Measure x for at least τ seconds (workload assignment, §4.2).
        consumed += 1;
        let mut spent_at_x = 0.0;
        let mut first_job_latency: Option<f64> = None;
        let mut newly_observed = false;
        while jobs_left > 0 && spent_at_x < params.tau_s {
            // Between jobs, make sure one more job at x cannot endanger
            // the tail (uses the measured latency of the previous job).
            if params.guardian_enabled {
                if let (Some(last), Some(tg)) = (first_job_latency, t_guard) {
                    let t_remain = effective_deadline - exec.elapsed_s();
                    if t_remain - last < (jobs_left - 1) as f64 * tg {
                        break;
                    }
                }
            }
            let cost = exec.run_job(x);
            newly_observed |= store.record(&space, x, cost);
            spent_at_x += cost.latency_s;
            first_job_latency = Some(cost.latency_s);
            jobs_left -= 1;
        }
        if newly_observed {
            if let Some(idx) = space.index_of(x) {
                explored.push(idx);
            }
        }
    }

    // Last-round exploitation (§4.2) / remaining-job exploitation (§4.3).
    let exploited_jobs = jobs_left;
    let mut escalated_jobs = 0;
    if jobs_left > 0 {
        let report = exploit_remaining_with(
            exec,
            spec,
            store,
            jobs_left,
            effective_deadline,
            ExploitParams {
                strategy: params.exploit_strategy,
                escalation_enabled: params.escalation_enabled,
                escalation_factor: params.escalation_factor,
            },
        );
        escalated_jobs = report.escalated_jobs;
    }

    SafeExplorationOutcome {
        explored,
        consumed,
        guardian_tripped,
        exploited_jobs,
        escalated_jobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::testing::FakeExecutor;

    fn params(tau: f64) -> SafeExplorationParams {
        SafeExplorationParams {
            tau_s: tau,
            safety_margin: 0.01,
            slowdown_factor: 10.0,
            ..SafeExplorationParams::default()
        }
    }

    #[test]
    fn explores_xmax_first_then_candidates() {
        let mut exec = FakeExecutor::new();
        let space = exec.config_space().clone();
        let mut store = ObservationStore::new();
        let candidates = vec![space.x_max(), space.x_min()];
        let t_max = FakeExecutor::true_cost(space.x_max()).latency_s;
        let spec = RoundSpec::new(0, 200, 200.0 * t_max * 3.0);
        let out = explore_safely(&mut exec, &spec, &mut store, &candidates, params(1.0));
        assert_eq!(out.explored.len(), 2);
        assert_eq!(out.consumed, 2);
        assert!(!out.guardian_tripped);
        assert_eq!(exec.jobs_run.len(), 200);
        // x_max ran first.
        assert_eq!(exec.jobs_run[0], space.x_max());
    }

    #[test]
    fn tau_controls_jobs_per_candidate() {
        let mut exec = FakeExecutor::new();
        let space = exec.config_space().clone();
        let mut store = ObservationStore::new();
        let x_max = space.x_max();
        let t_max = FakeExecutor::true_cost(x_max).latency_s;
        // Exactly 10 jobs in the round: τ = 10 × T(x_max) keeps the
        // measurement window open for all of them, and no exploitation
        // tail pollutes the aggregate.
        let spec = RoundSpec::new(0, 10, 1e6);
        let tau = 10.0 * t_max;
        let out = explore_safely(&mut exec, &spec, &mut store, &[x_max], params(tau));
        assert_eq!(out.explored.len(), 1);
        let agg = store.get_config(&space, x_max).unwrap();
        assert_eq!(agg.jobs, 10);
        assert_eq!(out.exploited_jobs, 0);
    }

    #[test]
    fn guardian_blocks_unknown_without_xmax_measurement() {
        let mut exec = FakeExecutor::new();
        let space = exec.config_space().clone();
        let mut store = ObservationStore::new();
        // Candidate list *not* starting with x_max and store empty:
        // nothing can be explored safely; everything runs via fallback.
        let spec = RoundSpec::new(0, 10, 1e6);
        let out = explore_safely(&mut exec, &spec, &mut store, &[space.x_min()], params(1.0));
        assert!(out.guardian_tripped);
        assert!(out.explored.is_empty());
        assert_eq!(exec.jobs_run.len(), 10);
        // Fallback was x_max (empty store → guardian plan).
        assert!(exec.jobs_run.iter().all(|&x| x == space.x_max()));
    }

    #[test]
    fn guardian_trips_on_tight_deadline() {
        let mut exec = FakeExecutor::new();
        let space = exec.config_space().clone();
        let mut store = ObservationStore::new();
        let t_max = FakeExecutor::true_cost(space.x_max()).latency_s;
        // Deadline: exactly W × T(x_max) × 1.1 — no room for τ = 5 s of
        // exploration beyond x_max itself.
        let w = 50usize;
        let spec = RoundSpec::new(0, w, w as f64 * t_max * 1.1);
        let candidates = vec![space.x_max(), space.x_min()];
        let out = explore_safely(&mut exec, &spec, &mut store, &candidates, params(5.0));
        assert!(out.guardian_tripped, "guardian must trip");
        assert_eq!(out.explored.len(), 1, "only x_max explored");
        assert_eq!(exec.jobs_run.len(), w);
        assert!(
            exec.elapsed_s() <= spec.deadline_s,
            "deadline missed: {} > {}",
            exec.elapsed_s(),
            spec.deadline_s
        );
    }

    #[test]
    fn all_jobs_always_run() {
        // Whatever happens, exactly spec.jobs jobs execute.
        for deadline_factor in [1.05, 1.5, 3.0, 10.0] {
            let mut exec = FakeExecutor::new();
            let space = exec.config_space().clone();
            let mut store = ObservationStore::new();
            let t_max = FakeExecutor::true_cost(space.x_max()).latency_s;
            let w = 30usize;
            let spec = RoundSpec::new(0, w, w as f64 * t_max * deadline_factor);
            let candidates: Vec<_> = space.iter().take(6).chain([space.x_max()]).collect();
            let ordered: Vec<_> = [space.x_max()]
                .into_iter()
                .chain(candidates.into_iter().filter(|&c| c != space.x_max()))
                .collect();
            let _ = explore_safely(&mut exec, &spec, &mut store, &ordered, params(2.0));
            assert_eq!(exec.jobs_run.len(), w, "factor {deadline_factor}");
            assert!(
                exec.elapsed_s() <= spec.deadline_s + 1e-9,
                "factor {deadline_factor}: {} > {}",
                exec.elapsed_s(),
                spec.deadline_s
            );
        }
    }
}
