use crate::executor::JobExecutor;
use bofl_device::ConfigIndex;
use std::time::Duration;

/// One federated-learning round as seen by the pace controller: which
/// round it is, how many minibatch jobs must run, and the server-assigned
/// training deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RoundSpec {
    /// Zero-based round index.
    pub index: usize,
    /// Number of jobs `W = E × N` that must complete this round.
    pub jobs: usize,
    /// Training deadline in seconds from round start.
    pub deadline_s: f64,
}

impl RoundSpec {
    /// Creates a round specification.
    ///
    /// # Panics
    ///
    /// Panics if `jobs == 0` or the deadline is non-positive/non-finite.
    pub fn new(index: usize, jobs: usize, deadline_s: f64) -> Self {
        assert!(jobs > 0, "a round must contain at least one job");
        assert!(
            deadline_s.is_finite() && deadline_s > 0.0,
            "deadline must be positive and finite"
        );
        RoundSpec {
            index,
            jobs,
            deadline_s,
        }
    }
}

/// BoFL's operational phase for a given round (paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Phase {
    /// Phase 1: safe random exploration of Sobol start points.
    RandomExploration,
    /// Phase 2: MBO-guided Pareto front construction.
    ParetoConstruction,
    /// Phase 3: ILP exploitation of the approximated Pareto set.
    Exploitation,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::RandomExploration => write!(f, "random exploration"),
            Phase::ParetoConstruction => write!(f, "pareto construction"),
            Phase::Exploitation => write!(f, "exploitation"),
        }
    }
}

/// What a controller reports back about the round it just ran.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ControllerRoundStats {
    /// Which phase the round ran in (`None` for phase-less baselines).
    pub phase: Option<Phase>,
    /// Configurations newly explored (measured) this round.
    pub explored: Vec<ConfigIndex>,
    /// Wall-clock time spent in the MBO engine before this round, if any
    /// (runs in the configuration/reporting window, not on the round
    /// clock — paper §4.3).
    pub mbo_duration: Option<Duration>,
    /// Jobs forced to `x_max` by the mid-round guardian escalation (the
    /// reactive fault-recovery path; zero when nothing went wrong).
    pub escalated_jobs: u64,
    /// Latency samples quarantined this round — counted but excluded from
    /// the observation aggregates feeding the GP surrogate.
    pub quarantined: u64,
}

/// A local training pace controller: the interface BoFL, Performant and
/// Oracle all implement, and the hook through which `bofl-fl` clients and
/// the experiment runner drive them.
///
/// The controller must run **exactly** `spec.jobs` jobs through the
/// executor before returning.
///
/// `Send` is a supertrait so that a client owning a boxed controller can
/// migrate across worker threads — the contract the `bofl-fleet` parallel
/// round engine relies on. Controllers hold only owned state (observation
/// stores, GP surrogates, Sobol streams), so this costs implementors
/// nothing.
pub trait PaceController: Send {
    /// Controller name for reports (e.g. `"BoFL"`).
    fn name(&self) -> &str;

    /// Executes one full round.
    fn run_round(&mut self, spec: &RoundSpec, exec: &mut dyn JobExecutor) -> ControllerRoundStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_spec_validation() {
        let r = RoundSpec::new(3, 100, 42.0);
        assert_eq!(r.index, 3);
        assert_eq!(r.jobs, 100);
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn rejects_zero_jobs() {
        let _ = RoundSpec::new(0, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn rejects_bad_deadline() {
        let _ = RoundSpec::new(0, 1, -1.0);
    }

    #[test]
    fn phase_display() {
        assert_eq!(Phase::RandomExploration.to_string(), "random exploration");
        assert_eq!(Phase::ParetoConstruction.to_string(), "pareto construction");
        assert_eq!(Phase::Exploitation.to_string(), "exploitation");
    }
}
