//! The round-by-round client simulator that drives every experiment: it
//! wraps a simulated [`Device`] behind the [`JobExecutor`] trait, feeds
//! server deadlines to a [`PaceController`], and collects per-round
//! reports.

use crate::task::{ControllerRoundStats, PaceController, Phase};
use crate::{JobExecutor, RoundSpec};
use bofl_device::{
    ConfigIndex, ConfigSpace, Device, DvfsActuator, DvfsConfig, JobCost, SimulatedActuator,
    VirtualClock,
};
use bofl_workload::FlTask;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A schedule of per-round training deadlines.
///
/// The paper samples 100 deadlines uniformly from `[T_min, T_max]` where
/// `T_min = T(x_max) × W` and `T_max = ratio × T_min` with
/// `ratio ∈ [2, 4]` (§6.1).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeadlineSchedule {
    t_min_s: f64,
    deadlines: Vec<f64>,
}

impl DeadlineSchedule {
    /// Samples `rounds` deadlines uniformly from `[T_min, ratio × T_min]`,
    /// with `T_min` derived from the device's true `x_max` round latency.
    ///
    /// The lower bound carries a 2% feasibility headroom: a deadline drawn
    /// *exactly* at `T_min` is a coin flip under per-job latency jitter
    /// even for the all-max-frequency schedule, and no sensible server
    /// assigns one (the paper requires deadlines "no less than T_min").
    ///
    /// # Panics
    ///
    /// Panics if `ratio < 1` or `rounds == 0`.
    pub fn uniform(device: &Device, task: &FlTask, rounds: usize, ratio: f64, seed: u64) -> Self {
        assert!(ratio >= 1.0, "deadline ratio must be at least 1");
        assert!(rounds > 0, "at least one round required");
        let t_min = device.round_latency_at_max(task);
        let lo = 1.02f64.min(ratio);
        let mut rng = StdRng::seed_from_u64(seed);
        let deadlines = (0..rounds)
            .map(|_| t_min * (lo + (ratio - lo) * rng.gen::<f64>()))
            .collect();
        DeadlineSchedule {
            t_min_s: t_min,
            deadlines,
        }
    }

    /// A fixed deadline for every round (the "static timeout" server of
    /// §2.1).
    pub fn fixed(device: &Device, task: &FlTask, rounds: usize, ratio: f64) -> Self {
        assert!(ratio >= 1.0, "deadline ratio must be at least 1");
        let t_min = device.round_latency_at_max(task);
        DeadlineSchedule {
            t_min_s: t_min,
            deadlines: vec![t_min * ratio; rounds],
        }
    }

    /// Builds a schedule from explicit deadline values.
    pub fn from_deadlines(t_min_s: f64, deadlines: Vec<f64>) -> Self {
        DeadlineSchedule { t_min_s, deadlines }
    }

    /// `T_min`: the round latency at `x_max` (the feasibility floor).
    pub fn t_min_s(&self) -> f64 {
        self.t_min_s
    }

    /// The per-round deadlines, seconds.
    pub fn deadlines(&self) -> &[f64] {
        &self.deadlines
    }
}

/// One round's outcome, the unit of every figure in the paper's §6.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Zero-based round index.
    pub round: usize,
    /// The server-assigned deadline, seconds.
    pub deadline_s: f64,
    /// Wall time the round actually took, seconds.
    pub duration_s: f64,
    /// Energy consumed by the round's training jobs, joules.
    pub energy_j: f64,
    /// Jobs executed (always `W`).
    pub jobs: usize,
    /// Whether the deadline was met.
    pub deadline_met: bool,
    /// BoFL phase of this round (`None` for phase-less baselines).
    pub phase: Option<Phase>,
    /// Configurations newly explored this round.
    pub explored: Vec<ConfigIndex>,
    /// MBO computation time charged to the reporting window, if any.
    pub mbo_duration: Option<Duration>,
    /// Jobs forced to `x_max` by the mid-round guardian escalation.
    pub escalated_jobs: u64,
    /// Latency samples quarantined (kept out of the GP training set).
    pub quarantined: u64,
}

/// Aggregate outcome of a full multi-round run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Controller name.
    pub controller: String,
    /// All per-round reports.
    pub reports: Vec<RoundReport>,
}

impl RunSummary {
    /// Total training energy across rounds, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.reports.iter().map(|r| r.energy_j).sum()
    }

    /// Number of rounds whose deadline was met.
    pub fn deadlines_met(&self) -> usize {
        self.reports.iter().filter(|r| r.deadline_met).count()
    }

    /// Total distinct configurations explored.
    pub fn total_explored(&self) -> usize {
        self.reports.iter().map(|r| r.explored.len()).sum()
    }

    /// Total MBO computation time, seconds.
    pub fn total_mbo_s(&self) -> f64 {
        self.reports
            .iter()
            .filter_map(|r| r.mbo_duration)
            .map(|d| d.as_secs_f64())
            .sum()
    }

    /// Reports belonging to a given phase.
    pub fn phase_reports(&self, phase: Phase) -> impl Iterator<Item = &RoundReport> + '_ {
        self.reports.iter().filter(move |r| r.phase == Some(phase))
    }
}

/// [`JobExecutor`] implementation over a simulated device: applies DVFS
/// through a [`SimulatedActuator`], runs jobs with measurement noise, and
/// accounts time on a [`VirtualClock`].
#[derive(Debug)]
pub struct SimExecutor<'a> {
    device: &'a Device,
    task: &'a FlTask,
    actuator: SimulatedActuator,
    clock: VirtualClock,
    rng: StdRng,
    round_start_s: f64,
    energy_j: f64,
}

impl<'a> SimExecutor<'a> {
    /// Creates an executor for one device/task pair.
    pub fn new(device: &'a Device, task: &'a FlTask, seed: u64) -> Self {
        SimExecutor {
            device,
            task,
            actuator: SimulatedActuator::new(
                device.config_space().clone(),
                device.transition_latency_s(),
            ),
            clock: VirtualClock::new(),
            rng: StdRng::seed_from_u64(seed),
            round_start_s: 0.0,
            energy_j: 0.0,
        }
    }

    /// Marks the beginning of a new round; resets the round-relative
    /// clock and the energy counter, returning the previous round energy.
    pub fn begin_round(&mut self) -> f64 {
        let e = self.energy_j;
        self.round_start_s = self.clock.now_s();
        self.energy_j = 0.0;
        e
    }

    /// Energy consumed so far in the current round, joules.
    pub fn round_energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Absolute virtual time, seconds.
    pub fn now_s(&self) -> f64 {
        self.clock.now_s()
    }
}

impl JobExecutor for SimExecutor<'_> {
    fn config_space(&self) -> &ConfigSpace {
        self.device.config_space()
    }

    fn run_job(&mut self, x: DvfsConfig) -> JobCost {
        let transition = self
            .actuator
            .apply(x)
            .expect("controllers must request grid configurations");
        self.clock.advance(transition);
        let cost = self.device.run_job(self.task, x, &mut self.rng);
        self.clock.advance(cost.latency_s);
        self.energy_j += cost.energy_j;
        cost
    }

    fn elapsed_s(&self) -> f64 {
        self.clock.now_s() - self.round_start_s
    }
}

/// Drives a [`PaceController`] through a sequence of rounds on a simulated
/// device.
#[derive(Debug)]
pub struct ClientRunner {
    device: Device,
    task: FlTask,
    seed: u64,
}

impl ClientRunner {
    /// Creates a runner for one device/task pair. The seed controls
    /// measurement noise (deadlines carry their own seed in
    /// [`DeadlineSchedule`]).
    pub fn new(device: Device, task: FlTask, seed: u64) -> Self {
        ClientRunner { device, task, seed }
    }

    /// The simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The FL task.
    pub fn task(&self) -> &FlTask {
        &self.task
    }

    /// Runs `controller` through all `deadlines`, returning the summary.
    pub fn run(&self, controller: &mut dyn PaceController, deadlines: &[f64]) -> RunSummary {
        let mut exec = SimExecutor::new(&self.device, &self.task, self.seed);
        let jobs = self.task.jobs_per_round();
        let mut reports = Vec::with_capacity(deadlines.len());

        for (round, &deadline_s) in deadlines.iter().enumerate() {
            exec.begin_round();
            let spec = RoundSpec::new(round, jobs, deadline_s);
            let stats: ControllerRoundStats = controller.run_round(&spec, &mut exec);
            let duration_s = exec.elapsed_s();
            reports.push(RoundReport {
                round,
                deadline_s,
                duration_s,
                energy_j: exec.round_energy_j(),
                jobs,
                deadline_met: duration_s <= deadline_s + 1e-9,
                phase: stats.phase,
                explored: stats.explored,
                mbo_duration: stats.mbo_duration,
                escalated_jobs: stats.escalated_jobs,
                quarantined: stats.quarantined,
            });
        }

        RunSummary {
            controller: controller.name().to_string(),
            reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::PerformantController;
    use bofl_workload::{TaskKind, Testbed};

    fn small_setup() -> (Device, FlTask) {
        // Full AGX device but the lightest task keeps tests quick.
        (
            Device::jetson_agx(),
            FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx),
        )
    }

    #[test]
    fn deadline_schedule_ranges() {
        let (device, task) = small_setup();
        let s = DeadlineSchedule::uniform(&device, &task, 50, 2.0, 42);
        let t_min = s.t_min_s();
        assert!((t_min - device.round_latency_at_max(&task)).abs() < 1e-9);
        for &d in s.deadlines() {
            assert!(d >= t_min);
            assert!(d <= 2.0 * t_min);
        }
        let f = DeadlineSchedule::fixed(&device, &task, 3, 3.0);
        assert!(f
            .deadlines()
            .iter()
            .all(|&d| (d - 3.0 * t_min).abs() < 1e-9));
    }

    #[test]
    fn deadline_schedule_is_seeded() {
        let (device, task) = small_setup();
        let a = DeadlineSchedule::uniform(&device, &task, 10, 2.5, 7);
        let b = DeadlineSchedule::uniform(&device, &task, 10, 2.5, 7);
        let c = DeadlineSchedule::uniform(&device, &task, 10, 2.5, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn performant_run_meets_all_deadlines() {
        let (device, task) = small_setup();
        let sched = DeadlineSchedule::uniform(&device, &task, 5, 2.0, 1);
        let runner = ClientRunner::new(device, task, 11);
        let summary = runner.run(&mut PerformantController::new(), sched.deadlines());
        assert_eq!(summary.reports.len(), 5);
        assert_eq!(summary.deadlines_met(), 5);
        assert_eq!(summary.controller, "Performant");
        assert!(summary.total_energy_j() > 0.0);
        // Every round ran W jobs.
        assert!(summary
            .reports
            .iter()
            .all(|r| r.jobs == runner.task().jobs_per_round()));
    }

    #[test]
    fn run_is_deterministic_under_seed() {
        let (device, task) = small_setup();
        let sched = DeadlineSchedule::uniform(&device, &task, 3, 2.0, 5);
        let r1 = ClientRunner::new(device.clone(), task.clone(), 9)
            .run(&mut PerformantController::new(), sched.deadlines());
        let r2 = ClientRunner::new(device, task, 9)
            .run(&mut PerformantController::new(), sched.deadlines());
        assert_eq!(r1.total_energy_j(), r2.total_energy_j());
    }

    #[test]
    fn executor_charges_transition_latency() {
        let (device, task) = small_setup();
        let mut exec = SimExecutor::new(&device, &task, 3);
        exec.begin_round();
        let space = device.config_space().clone();
        // First job: transition from boot (x_min) to x_max costs extra.
        let c1 = exec.run_job(space.x_max());
        let with_transition = exec.elapsed_s();
        assert!(with_transition >= c1.latency_s + device.transition_latency_s() - 1e-12);
        // Second job at the same config: no transition.
        let t_before = exec.elapsed_s();
        let c2 = exec.run_job(space.x_max());
        assert!((exec.elapsed_s() - t_before - c2.latency_s).abs() < 1e-12);
    }
}
