//! The paper's two comparison targets (§6.1): **Performant** (always
//! `x_max`) and **Oracle** (offline full profile, exploitation only).

use crate::exploit::{exploit_remaining_with, ExploitParams};
use crate::task::{ControllerRoundStats, PaceController, Phase};
use crate::{JobExecutor, ObservationStore, RoundSpec};
use bofl_device::ProfileEntry;

/// The Performant baseline: every hardware unit at maximum frequency for
/// every job — the default DVFS governor for real-time tasks. Never misses
/// a deadline, never saves a joule.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerformantController;

impl PerformantController {
    /// Creates the baseline controller.
    pub fn new() -> Self {
        PerformantController
    }
}

impl PaceController for PerformantController {
    fn name(&self) -> &str {
        "Performant"
    }

    fn run_round(&mut self, spec: &RoundSpec, exec: &mut dyn JobExecutor) -> ControllerRoundStats {
        let x_max = exec.config_space().x_max();
        for _ in 0..spec.jobs {
            exec.run_job(x_max);
        }
        ControllerRoundStats::default()
    }
}

/// The Oracle baseline: granted the full offline profile of the
/// configuration space (`Device::profile_all`), it solves the exploitation
/// ILP from round one with ground-truth costs. Unrealizable in practice —
/// profiling 2100 configurations for τ seconds each would take hours —
/// but the gold standard BoFL's regret is measured against.
#[derive(Debug, Clone)]
pub struct OracleController {
    store: ObservationStore,
    safety_margin: f64,
    initialized: bool,
    profile: Vec<ProfileEntry>,
    exploit_params: ExploitParams,
}

impl OracleController {
    /// Creates an Oracle from a full offline profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile is empty.
    pub fn new(profile: Vec<ProfileEntry>) -> Self {
        assert!(!profile.is_empty(), "oracle requires a non-empty profile");
        OracleController {
            store: ObservationStore::new(),
            safety_margin: 0.01,
            initialized: false,
            profile,
            exploit_params: ExploitParams::default(),
        }
    }

    /// Overrides the deadline safety margin (default 1%).
    pub fn with_safety_margin(mut self, margin: f64) -> Self {
        assert!((0.0..0.5).contains(&margin), "margin must be in [0, 0.5)");
        self.safety_margin = margin;
        self
    }

    /// Overrides the exploitation parameters (strategy and mid-round
    /// escalation). The default enables escalation; robustness
    /// experiments disable it to measure what the recovery layer buys.
    pub fn with_params(mut self, params: ExploitParams) -> Self {
        self.exploit_params = params;
        self
    }
}

impl PaceController for OracleController {
    fn name(&self) -> &str {
        "Oracle"
    }

    fn run_round(&mut self, spec: &RoundSpec, exec: &mut dyn JobExecutor) -> ControllerRoundStats {
        if !self.initialized {
            self.initialized = true;
            let space = exec.config_space().clone();
            for entry in &self.profile {
                self.store.record(&space, entry.config, entry.cost);
            }
        }
        let effective = spec.deadline_s * (1.0 - self.safety_margin);
        let report = exploit_remaining_with(
            exec,
            spec,
            &mut self.store,
            spec.jobs as u64,
            effective,
            self.exploit_params,
        );
        ControllerRoundStats {
            phase: Some(Phase::Exploitation),
            escalated_jobs: report.escalated_jobs,
            ..ControllerRoundStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::testing::FakeExecutor;
    use bofl_device::ProfileEntry;

    fn fake_profile(exec: &FakeExecutor) -> Vec<ProfileEntry> {
        exec.config_space()
            .iter()
            .map(|config| ProfileEntry {
                config,
                cost: FakeExecutor::true_cost(config),
            })
            .collect()
    }

    #[test]
    fn performant_runs_everything_at_xmax() {
        let mut exec = FakeExecutor::new();
        let mut ctrl = PerformantController::new();
        let spec = RoundSpec::new(0, 15, 1e6);
        let stats = ctrl.run_round(&spec, &mut exec);
        assert_eq!(exec.jobs_run.len(), 15);
        let x_max = exec.config_space().x_max();
        assert!(exec.jobs_run.iter().all(|&x| x == x_max));
        assert_eq!(stats.phase, None);
        assert_eq!(ctrl.name(), "Performant");
    }

    #[test]
    fn oracle_beats_performant_with_slack() {
        let mut exec_o = FakeExecutor::new();
        let profile = fake_profile(&exec_o);
        let mut oracle = OracleController::new(profile);
        let t_max = FakeExecutor::true_cost(exec_o.config_space().x_max()).latency_s;
        let jobs = 50;
        let deadline = jobs as f64 * t_max * 3.0;
        let spec = RoundSpec::new(0, jobs, deadline);
        oracle.run_round(&spec, &mut exec_o);
        assert_eq!(exec_o.jobs_run.len(), jobs);
        assert!(exec_o.elapsed_s() <= deadline);

        let mut exec_p = FakeExecutor::new();
        PerformantController::new().run_round(&spec, &mut exec_p);
        assert!(
            exec_o.energy_total < exec_p.energy_total,
            "oracle {} vs performant {}",
            exec_o.energy_total,
            exec_p.energy_total
        );
    }

    #[test]
    fn oracle_matches_performant_under_tight_deadline() {
        let mut exec = FakeExecutor::new();
        let profile = fake_profile(&exec);
        let mut oracle = OracleController::new(profile).with_safety_margin(0.0);
        let t_max = FakeExecutor::true_cost(exec.config_space().x_max()).latency_s;
        let jobs = 20;
        let spec = RoundSpec::new(0, jobs, jobs as f64 * t_max * 1.0001);
        oracle.run_round(&spec, &mut exec);
        assert!(exec.elapsed_s() <= spec.deadline_s + 1e-9);
        // Essentially everything must run at x_max.
        let x_max = exec.config_space().x_max();
        let at_max = exec.jobs_run.iter().filter(|&&x| x == x_max).count();
        assert!(at_max >= jobs - 1);
    }

    #[test]
    #[should_panic(expected = "non-empty profile")]
    fn oracle_rejects_empty_profile() {
        let _ = OracleController::new(Vec::new());
    }
}
