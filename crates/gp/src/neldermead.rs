/// Result of a [`NelderMead`] minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMeadResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of objective evaluations used.
    pub evaluations: usize,
    /// Whether the simplex converged before the evaluation budget ran out.
    pub converged: bool,
}

/// Derivative-free simplex minimizer (Nelder–Mead, standard coefficients).
///
/// Used to maximize the GP log marginal likelihood over a handful of
/// log-hyperparameters — a small, smooth, gradient-unfriendly problem that
/// Nelder–Mead handles well. Non-finite objective values are treated as
/// `+∞` so the search simply backs away from degenerate regions.
///
/// # Examples
///
/// ```
/// use bofl_gp::NelderMead;
///
/// let rosenbrock = |x: &[f64]| {
///     (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
/// };
/// let res = NelderMead::new().minimize(rosenbrock, &[-1.2, 1.0]);
/// assert!((res.x[0] - 1.0).abs() < 1e-3);
/// assert!((res.x[1] - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMead {
    max_evaluations: usize,
    tolerance: f64,
    initial_step: f64,
}

impl NelderMead {
    /// Creates an optimizer with defaults suited to GP hyperparameter
    /// fitting (2000 evaluations, 1e-12 tolerance, 0.5 initial step).
    ///
    /// The tolerance applies to the simplex *value* spread; because a
    /// quadratic basin maps value error to the square of position error,
    /// 1e-12 in value corresponds to roughly 1e-6 in position.
    pub fn new() -> Self {
        NelderMead {
            max_evaluations: 2000,
            tolerance: 1e-12,
            initial_step: 0.5,
        }
    }

    /// Sets the evaluation budget.
    pub fn with_max_evaluations(mut self, n: usize) -> Self {
        self.max_evaluations = n;
        self
    }

    /// Sets the convergence tolerance on the simplex value spread.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Sets the initial simplex edge length.
    pub fn with_initial_step(mut self, step: f64) -> Self {
        self.initial_step = step;
        self
    }

    /// Minimizes `f` starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize(&self, mut f: impl FnMut(&[f64]) -> f64, x0: &[f64]) -> NelderMeadResult {
        assert!(!x0.is_empty(), "starting point must be non-empty");
        let n = x0.len();
        let mut evals = 0usize;
        let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
            *evals += 1;
            let v = f(x);
            if v.is_finite() {
                v
            } else {
                f64::INFINITY
            }
        };

        // Initial simplex: x0 plus a step along each axis.
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
        let v0 = eval(x0, &mut evals);
        simplex.push((x0.to_vec(), v0));
        for i in 0..n {
            let mut x = x0.to_vec();
            x[i] += self.initial_step;
            let v = eval(&x, &mut evals);
            simplex.push((x, v));
        }

        let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
        let mut converged = false;

        while evals < self.max_evaluations {
            simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("values are finite or inf"));
            let best = simplex[0].1;
            let worst = simplex[n].1;
            // Converge only when both the value spread AND the simplex
            // diameter are small: equal values at distinct vertices (e.g.
            // symmetric around a 1-D minimum) must not stop the search.
            let diameter = simplex[1..]
                .iter()
                .flat_map(|(x, _)| x.iter().zip(&simplex[0].0).map(|(a, b)| (a - b).abs()))
                .fold(0.0f64, f64::max);
            let scale = 1.0 + simplex[0].0.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if (worst - best).abs() <= self.tolerance * (1.0 + best.abs())
                && diameter <= self.tolerance.sqrt() * scale
            {
                converged = true;
                break;
            }

            // Centroid of all but the worst.
            let mut centroid = vec![0.0; n];
            for (x, _) in &simplex[..n] {
                for (c, xi) in centroid.iter_mut().zip(x) {
                    *c += xi / n as f64;
                }
            }

            let worst_x = simplex[n].0.clone();
            let reflect: Vec<f64> = centroid
                .iter()
                .zip(&worst_x)
                .map(|(c, w)| c + alpha * (c - w))
                .collect();
            let fr = eval(&reflect, &mut evals);

            if fr < simplex[0].1 {
                // Try expansion.
                let expand: Vec<f64> = centroid
                    .iter()
                    .zip(&worst_x)
                    .map(|(c, w)| c + gamma * (c - w))
                    .collect();
                let fe = eval(&expand, &mut evals);
                simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
            } else if fr < simplex[n - 1].1 {
                simplex[n] = (reflect, fr);
            } else {
                // Contraction.
                let contract: Vec<f64> = centroid
                    .iter()
                    .zip(&worst_x)
                    .map(|(c, w)| c + rho * (w - c))
                    .collect();
                let fc = eval(&contract, &mut evals);
                if fc < simplex[n].1 {
                    simplex[n] = (contract, fc);
                } else {
                    // Shrink toward the best vertex.
                    let best_x = simplex[0].0.clone();
                    for item in simplex.iter_mut().skip(1) {
                        let x: Vec<f64> = best_x
                            .iter()
                            .zip(&item.0)
                            .map(|(b, xi)| b + sigma * (xi - b))
                            .collect();
                        let v = eval(&x, &mut evals);
                        *item = (x, v);
                    }
                }
            }
        }

        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("values are finite or inf"));
        let (x, value) = simplex.swap_remove(0);
        NelderMeadResult {
            x,
            value,
            evaluations: evals,
            converged,
        }
    }
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let res = NelderMead::new().minimize(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2) + 5.0,
            &[0.0, 0.0],
        );
        assert!((res.x[0] - 3.0).abs() < 1e-4);
        assert!((res.x[1] + 1.0).abs() < 1e-4);
        assert!((res.value - 5.0).abs() < 1e-6);
        assert!(res.converged);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let res = NelderMead::new().with_max_evaluations(5000).minimize(
            |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            &[-1.2, 1.0],
        );
        assert!((res.x[0] - 1.0).abs() < 1e-3, "x0 = {}", res.x[0]);
        assert!((res.x[1] - 1.0).abs() < 1e-3, "x1 = {}", res.x[1]);
    }

    #[test]
    fn handles_infinite_regions() {
        // Objective is infinite left of x = 0; the simplex must retreat.
        let res = NelderMead::new().minimize(
            |x| {
                if x[0] < 0.0 {
                    f64::INFINITY
                } else {
                    (x[0] - 1.0).powi(2)
                }
            },
            &[2.0],
        );
        assert!((res.x[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn respects_budget() {
        let res = NelderMead::new()
            .with_max_evaluations(10)
            .minimize(|x| x[0] * x[0], &[100.0]);
        assert!(res.evaluations <= 12); // initial simplex + a step or two
    }

    #[test]
    fn one_dimensional() {
        let res = NelderMead::new().minimize(|x| (x[0] - 0.25).powi(2), &[5.0]);
        assert!((res.x[0] - 0.25).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_start() {
        let _ = NelderMead::new().minimize(|_| 0.0, &[]);
    }
}
