use bofl_linalg::LinalgError;
use std::error::Error;
use std::fmt;

/// Error type for Gaussian-process operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GpError {
    /// Training inputs were empty.
    NoData,
    /// Input dimensions were inconsistent (ragged X, or |X| ≠ |y|, or a
    /// query point of the wrong dimension).
    DimensionMismatch {
        /// Human-readable description of what mismatched.
        detail: String,
    },
    /// Inputs or targets contained NaN or infinite values.
    NonFinite,
    /// The underlying linear algebra failed (typically a Gram matrix that
    /// is not positive definite even with jitter).
    Linalg(LinalgError),
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::NoData => write!(f, "at least one observation is required"),
            GpError::DimensionMismatch { detail } => write!(f, "dimension mismatch: {detail}"),
            GpError::NonFinite => write!(f, "inputs contain non-finite values"),
            GpError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for GpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GpError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for GpError {
    fn from(e: LinalgError) -> Self {
        GpError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = GpError::Linalg(LinalgError::Empty { what: "xs" });
        assert!(e.to_string().contains("linear algebra"));
        assert!(e.source().is_some());
        assert!(GpError::NoData.source().is_none());
        assert!(!GpError::NonFinite.to_string().is_empty());
    }
}
