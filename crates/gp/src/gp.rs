use crate::{GpError, Kernel, KernelKind, NelderMead};
use bofl_linalg::{Cholesky, Matrix, Standardizer};

/// Posterior predictive distribution of the latent function at one point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posterior {
    /// Posterior mean in original output units.
    pub mean: f64,
    /// Posterior variance of the *latent* function (measurement noise not
    /// included), in original output units squared.
    pub variance: f64,
}

impl Posterior {
    /// Posterior standard deviation.
    pub fn std(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }
}

/// Hyperparameters carried over from a previous fit, used to seed the
/// next one (see [`GpConfig::warm_start`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStart {
    /// Kernel variance (standardized units).
    pub variance: f64,
    /// ARD lengthscales, one per input dimension.
    pub lengthscales: Vec<f64>,
    /// Observation-noise variance (standardized units).
    pub noise: f64,
}

/// Configuration for fitting a [`GaussianProcess`].
#[derive(Debug, Clone, PartialEq)]
pub struct GpConfig {
    /// Kernel family (the paper uses Matérn-5/2).
    pub kernel: KernelKind,
    /// Fixed observation-noise variance in *standardized* units, or `None`
    /// to fit it by maximum likelihood alongside the other
    /// hyperparameters.
    pub noise_variance: Option<f64>,
    /// Number of Nelder–Mead restarts for the MLE fit (0 disables
    /// hyperparameter optimization and keeps heuristic defaults).
    pub restarts: usize,
    /// Evaluation budget per restart.
    pub max_evaluations: usize,
    /// Hyperparameters from a previous fit. When set, they seed the first
    /// Nelder–Mead start (displacing one deterministic start), so a
    /// refit after a few new observations converges in a fraction of the
    /// evaluations; with `restarts: 0` they are adopted verbatim. Invalid
    /// warm starts (wrong dimension, non-finite or non-positive values)
    /// are ignored.
    pub warm_start: Option<WarmStart>,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            kernel: KernelKind::Matern52,
            noise_variance: None,
            restarts: 3,
            max_evaluations: 400,
            warm_start: None,
        }
    }
}

/// Exact Gaussian-process regression with zero prior mean on standardized
/// outputs (equivalently, a constant-mean prior at the data mean — the
/// paper's `m(x) = 0` prior after its own standardization).
///
/// Complexity is the textbook `O(n³)` Cholesky; BoFL's observation sets
/// stay well under a couple hundred points (it explores ~3% of a 2100-point
/// space), so this is the right tool.
///
/// # Examples
///
/// ```
/// use bofl_gp::{GaussianProcess, GpConfig};
///
/// # fn main() -> Result<(), bofl_gp::GpError> {
/// let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
/// let ys = vec![1.0, 0.0, 1.0];
/// let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default())?;
/// // The posterior interpolates near the observations…
/// assert!((gp.predict(&[0.0])?.mean - 1.0).abs() < 0.2);
/// // …and is more certain at observed points than between them.
/// assert!(gp.predict(&[0.0])?.variance <= gp.predict(&[0.25])?.variance + 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GaussianProcess {
    xs: Vec<Vec<f64>>,
    ys_std: Vec<f64>,
    y_transform: Standardizer,
    kernel: Box<dyn Kernel>,
    noise_variance: f64,
    chol: Cholesky,
    alpha: Vec<f64>,
    dim: usize,
}

impl Clone for GaussianProcess {
    fn clone(&self) -> Self {
        GaussianProcess {
            xs: self.xs.clone(),
            ys_std: self.ys_std.clone(),
            y_transform: self.y_transform,
            kernel: self
                .kernel
                .with_hyperparameters(self.kernel.variance(), self.kernel.lengthscales()),
            noise_variance: self.noise_variance,
            chol: self.chol.clone(),
            alpha: self.alpha.clone(),
            dim: self.dim,
        }
    }
}

impl GaussianProcess {
    /// Fits a GP to observations `(xs[i], ys[i])`.
    ///
    /// Outputs are standardized internally; hyperparameters (kernel
    /// variance, ARD lengthscales and — unless fixed in the config —
    /// observation noise) are chosen by multi-start Nelder–Mead on the log
    /// marginal likelihood.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::NoData`] for empty input,
    /// [`GpError::DimensionMismatch`] for ragged/mismatched inputs,
    /// [`GpError::NonFinite`] if any coordinate or target is NaN/infinite,
    /// and [`GpError::Linalg`] if the final Gram matrix cannot be factored.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], config: GpConfig) -> Result<Self, GpError> {
        if xs.is_empty() {
            return Err(GpError::NoData);
        }
        if xs.len() != ys.len() {
            return Err(GpError::DimensionMismatch {
                detail: format!("{} inputs but {} targets", xs.len(), ys.len()),
            });
        }
        let dim = xs[0].len();
        if dim == 0 {
            return Err(GpError::DimensionMismatch {
                detail: "points must have at least one dimension".into(),
            });
        }
        if xs.iter().any(|x| x.len() != dim) {
            return Err(GpError::DimensionMismatch {
                detail: "ragged input points".into(),
            });
        }
        if xs.iter().flatten().any(|v| !v.is_finite()) || ys.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFinite);
        }

        let y_transform = Standardizer::fit(ys).map_err(GpError::from)?;
        let ys_std: Vec<f64> = ys.iter().map(|&y| y_transform.apply(y)).collect();

        // Heuristic initial hyperparameters on standardized data.
        let init_variance = 1.0;
        let init_lengthscale = 0.3; // inputs are unit-cube coordinates in BoFL
        let init_noise = config.noise_variance.unwrap_or(1e-3);

        // A warm start is only usable if it matches this problem's shape
        // and is numerically sane.
        let warm = config.warm_start.as_ref().filter(|w| {
            w.lengthscales.len() == dim
                && w.variance.is_finite()
                && w.variance > 0.0
                && w.noise.is_finite()
                && w.noise > 0.0
                && w.lengthscales.iter().all(|l| l.is_finite() && *l > 0.0)
        });

        let (variance, lengthscales, noise) = if config.restarts == 0 || xs.len() < 3 {
            match warm {
                Some(w) => (
                    w.variance,
                    w.lengthscales.clone(),
                    config.noise_variance.unwrap_or(w.noise).max(1e-9),
                ),
                None => (
                    init_variance,
                    vec![init_lengthscale; dim],
                    init_noise.max(1e-8),
                ),
            }
        } else {
            Self::optimize_hyperparameters(xs, &ys_std, &config, dim, init_noise, warm)
        };

        let kernel = config.kernel.build(variance, &lengthscales);
        let (chol, alpha) = Self::build_posterior(xs, &ys_std, kernel.as_ref(), noise)?;

        Ok(GaussianProcess {
            xs: xs.to_vec(),
            ys_std,
            y_transform,
            kernel,
            noise_variance: noise,
            chol,
            alpha,
            dim,
        })
    }

    /// Builds the Gram Cholesky and the weight vector `α = K⁻¹ y`.
    fn build_posterior(
        xs: &[Vec<f64>],
        ys_std: &[f64],
        kernel: &dyn Kernel,
        noise: f64,
    ) -> Result<(Cholesky, Vec<f64>), GpError> {
        let n = xs.len();
        let mut gram = Matrix::zeros(n, n);
        Self::fill_gram_lower(&mut gram, xs, kernel, noise);
        let chol = Cholesky::factor(&gram)?;
        let alpha = chol.solve(ys_std)?;
        Ok((chol, alpha))
    }

    /// Fills the lower triangle (all [`Cholesky::factor`] reads) of the
    /// Gram matrix `K + noise·I` into `gram`, overwriting previous
    /// contents — the buffer can be reused across likelihood evaluations.
    fn fill_gram_lower(gram: &mut Matrix, xs: &[Vec<f64>], kernel: &dyn Kernel, noise: f64) {
        for i in 0..xs.len() {
            for j in 0..i {
                gram[(i, j)] = kernel.eval(&xs[i], &xs[j]);
            }
            gram[(i, i)] = kernel.eval(&xs[i], &xs[i]) + noise;
        }
    }

    fn log_marginal_likelihood_for(
        xs: &[Vec<f64>],
        ys_std: &[f64],
        kernel: &dyn Kernel,
        noise: f64,
    ) -> f64 {
        match Self::build_posterior(xs, ys_std, kernel, noise) {
            Ok((chol, alpha)) => {
                let fit: f64 = ys_std.iter().zip(&alpha).map(|(y, a)| y * a).sum();
                let n = ys_std.len() as f64;
                -0.5 * fit - 0.5 * chol.log_det() - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
            }
            Err(_) => f64::NEG_INFINITY,
        }
    }

    fn optimize_hyperparameters(
        xs: &[Vec<f64>],
        ys_std: &[f64],
        config: &GpConfig,
        dim: usize,
        init_noise: f64,
        warm: Option<&WarmStart>,
    ) -> (f64, Vec<f64>, f64) {
        let fit_noise = config.noise_variance.is_none();
        let n_params = 1 + dim + usize::from(fit_noise);
        let n = xs.len();

        // One Gram buffer for the whole optimization; each likelihood
        // evaluation overwrites the lower triangle in place instead of
        // allocating a fresh n×n matrix.
        let mut gram = Matrix::zeros(n, n);
        let mut objective = |theta: &[f64]| -> f64 {
            // theta = [log σ², log ℓ₁…ℓ_d, (log σ_n²)]
            let variance = theta[0].exp();
            let ls: Vec<f64> = theta[1..=dim].iter().map(|v| v.exp()).collect();
            let noise = if fit_noise {
                theta[dim + 1].exp()
            } else {
                init_noise
            };
            if !(1e-8..=1e4).contains(&variance)
                || ls.iter().any(|l| !(1e-4..=1e3).contains(l))
                || !(1e-9..=1.0).contains(&noise)
            {
                return f64::INFINITY;
            }
            let kernel = config.kernel.build(variance, &ls);
            Self::fill_gram_lower(&mut gram, xs, kernel.as_ref(), noise);
            let Ok(chol) = Cholesky::factor(&gram) else {
                return f64::INFINITY;
            };
            let Ok(alpha) = chol.solve(ys_std) else {
                return f64::INFINITY;
            };
            let data_fit: f64 = ys_std.iter().zip(&alpha).map(|(y, a)| y * a).sum();
            let nf = ys_std.len() as f64;
            // Negated log marginal likelihood (we minimize).
            0.5 * data_fit + 0.5 * chol.log_det() + 0.5 * nf * (2.0 * std::f64::consts::PI).ln()
        };

        // The warm start (when valid) displaces the first deterministic
        // start, so a 1-restart refit is seeded at the previous optimum.
        let total_starts = config.restarts.max(1);
        let mut starts: Vec<Vec<f64>> = Vec::with_capacity(total_starts);
        if let Some(w) = warm {
            let mut s = vec![0.0; n_params];
            s[0] = w.variance.clamp(1e-8, 1e4).ln();
            for (slot, l) in s[1..=dim].iter_mut().zip(&w.lengthscales) {
                *slot = l.clamp(1e-4, 1e3).ln();
            }
            if fit_noise {
                s[dim + 1] = w.noise.clamp(1e-9, 1.0).ln();
            }
            starts.push(s);
        }
        let mut r = 0;
        while starts.len() < total_starts {
            // Deterministic spread of starting points: vary the
            // lengthscale scale per restart.
            let ls0 = 0.1 * 3f64.powi(r); // 0.1, 0.3, 0.9, …
            let mut s = vec![0.0; n_params];
            s[0] = 0.0; // log σ² = 0 (standardized outputs)
            for v in s.iter_mut().take(dim + 1).skip(1) {
                *v = ls0.ln();
            }
            if fit_noise {
                s[dim + 1] = (1e-3f64).ln();
            }
            starts.push(s);
            r += 1;
        }

        let mut best: Option<(f64, Vec<f64>)> = None;
        let nm = NelderMead::new().with_max_evaluations(config.max_evaluations);
        for s in starts {
            let res = nm.minimize(&mut objective, &s);
            if res.value.is_finite() && best.as_ref().is_none_or(|(v, _)| res.value < *v) {
                best = Some((res.value, res.x));
            }
        }

        match best {
            Some((_, theta)) => {
                let variance = theta[0].exp();
                let ls: Vec<f64> = theta[1..=dim].iter().map(|v| v.exp()).collect();
                let noise = if fit_noise {
                    theta[dim + 1].exp()
                } else {
                    init_noise
                };
                (variance, ls, noise.max(1e-9))
            }
            None => (1.0, vec![0.3; dim], init_noise.max(1e-8)),
        }
    }

    /// Number of observations the posterior is conditioned on.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` if there are no observations (cannot occur for a fitted GP;
    /// provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The fitted kernel.
    pub fn kernel(&self) -> &dyn Kernel {
        self.kernel.as_ref()
    }

    /// The fitted observation-noise variance (standardized units).
    pub fn noise_variance(&self) -> f64 {
        self.noise_variance
    }

    /// Log marginal likelihood of the training data under the fitted
    /// hyperparameters.
    pub fn log_marginal_likelihood(&self) -> f64 {
        Self::log_marginal_likelihood_for(
            &self.xs,
            &self.ys_std,
            self.kernel.as_ref(),
            self.noise_variance,
        )
    }

    /// Posterior predictive distribution at `x`.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::DimensionMismatch`] if `x` has the wrong
    /// dimension and [`GpError::NonFinite`] if it contains NaN/infinities.
    pub fn predict(&self, x: &[f64]) -> Result<Posterior, GpError> {
        if x.len() != self.dim {
            return Err(GpError::DimensionMismatch {
                detail: format!("query dim {} vs model dim {}", x.len(), self.dim),
            });
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFinite);
        }
        let k_star: Vec<f64> = self.xs.iter().map(|xi| self.kernel.eval(xi, x)).collect();
        let mean_std: f64 = k_star.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
        let v = self.chol.solve_half(&k_star)?;
        let var_std = (self.kernel.variance() - v.iter().map(|vi| vi * vi).sum::<f64>()).max(0.0);
        Ok(Posterior {
            mean: self.y_transform.invert(mean_std),
            variance: var_std * self.y_transform.scale() * self.y_transform.scale(),
        })
    }

    /// Posterior predictive distributions at a batch of query points.
    ///
    /// Equivalent to calling [`GaussianProcess::predict`] per query, but
    /// validates once and reuses the `k_star`/half-solve scratch buffers
    /// across queries, so scanning a large candidate set does not allocate
    /// per point.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GaussianProcess::predict`]; validation covers
    /// the whole batch before any prediction is computed.
    pub fn predict_batch(&self, queries: &[Vec<f64>]) -> Result<Vec<Posterior>, GpError> {
        for x in queries {
            if x.len() != self.dim {
                return Err(GpError::DimensionMismatch {
                    detail: format!("query dim {} vs model dim {}", x.len(), self.dim),
                });
            }
            if x.iter().any(|v| !v.is_finite()) {
                return Err(GpError::NonFinite);
            }
        }
        let n = self.xs.len();
        let prior = self.kernel.variance();
        let mut k_star = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut out = Vec::with_capacity(queries.len());
        for x in queries {
            for (k, xi) in k_star.iter_mut().zip(&self.xs) {
                *k = self.kernel.eval(xi, x);
            }
            let mean_std: f64 = k_star.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
            self.chol.solve_half_into(&k_star, &mut v)?;
            let var_std = (prior - v.iter().map(|vi| vi * vi).sum::<f64>()).max(0.0);
            // Same association order as `predict`, so batch and scalar
            // prediction agree bitwise.
            out.push(Posterior {
                mean: self.y_transform.invert(mean_std),
                variance: var_std * self.y_transform.scale() * self.y_transform.scale(),
            });
        }
        Ok(out)
    }

    /// Returns a new GP conditioned on one additional *fantasized*
    /// observation `(x, y)` without re-optimizing hyperparameters — the
    /// "Kriging believer" step of the paper's sequential-greedy batch
    /// selection (§4.3 step 2).
    ///
    /// Cost is `O(n²)`: the existing Cholesky factor is extended by one
    /// bordered row ([`Cholesky::extend`]) and the weight vector re-solved
    /// against it, so fantasizing `k` points in sequence costs `O(k·n²)`
    /// rather than the `O(k·n³)` of refactoring from scratch each step.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GaussianProcess::predict`], plus
    /// [`GpError::Linalg`] if the extended Gram matrix cannot be factored.
    pub fn condition_on(&self, x: &[f64], y: f64) -> Result<GaussianProcess, GpError> {
        if x.len() != self.dim {
            return Err(GpError::DimensionMismatch {
                detail: format!("query dim {} vs model dim {}", x.len(), self.dim),
            });
        }
        if x.iter().any(|v| !v.is_finite()) || !y.is_finite() {
            return Err(GpError::NonFinite);
        }
        let k_star: Vec<f64> = self.xs.iter().map(|xi| self.kernel.eval(xi, x)).collect();
        let border_diag = self.kernel.eval(x, x) + self.noise_variance;
        let chol = self.chol.extend(&k_star, border_diag)?;
        let mut xs = self.xs.clone();
        xs.push(x.to_vec());
        let mut ys_std = self.ys_std.clone();
        ys_std.push(self.y_transform.apply(y));
        let alpha = chol.solve(&ys_std)?;
        Ok(GaussianProcess {
            xs,
            ys_std,
            y_transform: self.y_transform,
            kernel: self
                .kernel
                .with_hyperparameters(self.kernel.variance(), self.kernel.lengthscales()),
            noise_variance: self.noise_variance,
            chol,
            alpha,
            dim: self.dim,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_smooth_function() {
        let xs = grid_1d(10);
        let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0]).sin() + 2.0).collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let p = gp.predict(x).unwrap();
            assert!((p.mean - y).abs() < 0.05, "at {x:?}: {} vs {}", p.mean, y);
        }
        // Interior prediction.
        let p = gp.predict(&[0.275]).unwrap();
        assert!((p.mean - ((4.0 * 0.275f64).sin() + 2.0)).abs() < 0.1);
    }

    #[test]
    fn variance_shrinks_at_observations() {
        let xs = grid_1d(6);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap();
        let at_obs = gp.predict(&xs[2]).unwrap().variance;
        let between = gp.predict(&[0.5 / 5.0 + 1.5 / 5.0]).unwrap().variance;
        let far = gp.predict(&[3.0]).unwrap().variance;
        assert!(at_obs <= between + 1e-12);
        assert!(between < far);
    }

    #[test]
    fn reverts_to_prior_far_away() {
        let xs = grid_1d(5);
        let ys = vec![10.0, 11.0, 10.5, 10.2, 10.8];
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap();
        let p = gp.predict(&[50.0]).unwrap();
        // Zero-mean prior on standardized outputs → reverts to data mean.
        let data_mean = ys.iter().sum::<f64>() / ys.len() as f64;
        assert!((p.mean - data_mean).abs() < 0.5);
    }

    #[test]
    fn condition_on_pins_the_fantasy() {
        let xs = grid_1d(5);
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap();
        let before = gp.predict(&[0.55]).unwrap();
        let gp2 = gp.condition_on(&[0.55], 3.0).unwrap();
        assert_eq!(gp2.len(), gp.len() + 1);
        let p = gp2.predict(&[0.55]).unwrap();
        // The fantasy value (3.0) conflicts with the nearby observation at
        // x = 0.5 (y = 0.5), so the posterior compromises — but it must
        // move substantially toward the fantasy and become more certain.
        assert!(
            p.mean > before.mean + 0.5,
            "fantasy should pull the mean up: {} -> {}",
            before.mean,
            p.mean
        );
        assert!(p.variance < before.variance + 1e-12);
    }

    #[test]
    fn clone_preserves_predictions() {
        let xs = grid_1d(5);
        let ys: Vec<f64> = xs.iter().map(|x| x[0].cos()).collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap();
        let gp2 = gp.clone();
        let a = gp.predict(&[0.3]).unwrap();
        let b = gp2.predict(&[0.3]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn input_validation() {
        assert!(matches!(
            GaussianProcess::fit(&[], &[], GpConfig::default()).unwrap_err(),
            GpError::NoData
        ));
        let xs = vec![vec![0.0], vec![1.0]];
        assert!(matches!(
            GaussianProcess::fit(&xs, &[1.0], GpConfig::default()).unwrap_err(),
            GpError::DimensionMismatch { .. }
        ));
        let ragged = vec![vec![0.0], vec![1.0, 2.0]];
        assert!(matches!(
            GaussianProcess::fit(&ragged, &[1.0, 2.0], GpConfig::default()).unwrap_err(),
            GpError::DimensionMismatch { .. }
        ));
        assert!(matches!(
            GaussianProcess::fit(&xs, &[1.0, f64::NAN], GpConfig::default()).unwrap_err(),
            GpError::NonFinite
        ));
        let gp = GaussianProcess::fit(&xs, &[1.0, 2.0], GpConfig::default()).unwrap();
        assert!(gp.predict(&[0.0, 1.0]).is_err());
        assert!(gp.predict(&[f64::INFINITY]).is_err());
        assert!(gp.condition_on(&[0.5], f64::NAN).is_err());
    }

    #[test]
    fn mle_beats_bad_defaults() {
        // A fast-varying function: MLE should pick a short lengthscale and
        // yield a higher marginal likelihood than a fixed long one.
        let xs = grid_1d(15);
        let ys: Vec<f64> = xs.iter().map(|x| (20.0 * x[0]).sin()).collect();
        let fitted = GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap();
        let fixed = GaussianProcess::fit(
            &xs,
            &ys,
            GpConfig {
                restarts: 0,
                ..GpConfig::default()
            },
        )
        .unwrap();
        assert!(fitted.log_marginal_likelihood() >= fixed.log_marginal_likelihood() - 1e-6);
        assert!(fitted.kernel().lengthscales()[0] < 0.3);
    }

    #[test]
    fn multi_dim_inputs() {
        // f(x) = x₀ + 2 x₁ on the unit square.
        let mut xs = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                xs.push(vec![i as f64 / 4.0, j as f64 / 4.0]);
            }
        }
        let ys: Vec<f64> = xs.iter().map(|x| x[0] + 2.0 * x[1]).collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap();
        let p = gp.predict(&[0.6, 0.4]).unwrap();
        assert!((p.mean - 1.4).abs() < 0.1, "{}", p.mean);
        assert_eq!(gp.dim(), 2);
        assert_eq!(gp.len(), 25);
        assert!(!gp.is_empty());
    }

    #[test]
    fn constant_targets_do_not_crash() {
        let xs = grid_1d(4);
        let ys = vec![5.0; 4];
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap();
        let p = gp.predict(&[0.5]).unwrap();
        assert!((p.mean - 5.0).abs() < 1e-6);
    }

    #[test]
    fn single_observation() {
        let gp = GaussianProcess::fit(&[vec![0.5]], &[2.0], GpConfig::default()).unwrap();
        let p = gp.predict(&[0.5]).unwrap();
        assert!((p.mean - 2.0).abs() < 1e-6);
    }

    #[test]
    fn predict_batch_matches_predict() {
        let xs = grid_1d(8);
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).cos()).collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap();
        let queries: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let batch = gp.predict_batch(&queries).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, b) in queries.iter().zip(&batch) {
            let p = gp.predict(q).unwrap();
            assert_eq!(p, *b, "batch and scalar prediction diverge at {q:?}");
        }
        // Batch validation covers every query before computing anything.
        assert!(gp.predict_batch(&[vec![0.1], vec![0.1, 0.2]]).is_err());
        assert!(gp.predict_batch(&[vec![f64::NAN]]).is_err());
        assert!(gp.predict_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn condition_on_matches_from_scratch_posterior() {
        // The incremental (bordered-Cholesky) conditioning must agree with
        // refitting the posterior from scratch at fixed hyperparameters.
        let xs = grid_1d(7);
        let ys: Vec<f64> = xs.iter().map(|x| (5.0 * x[0]).sin() + x[0]).collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap();
        let inc = gp.condition_on(&[0.42], 1.7).unwrap();

        let mut xs2 = xs.clone();
        xs2.push(vec![0.42]);
        let mut ys_std2 = gp.ys_std.clone();
        ys_std2.push(gp.y_transform.apply(1.7));
        let (chol, alpha) =
            GaussianProcess::build_posterior(&xs2, &ys_std2, gp.kernel.as_ref(), gp.noise_variance)
                .unwrap();
        for (a, b) in inc.alpha.iter().zip(&alpha) {
            assert!((a - b).abs() < 1e-8, "alpha diverged: {a} vs {b}");
        }
        assert!((inc.chol.log_det() - chol.log_det()).abs() < 1e-8);
        for q in [0.0, 0.25, 0.42, 0.77, 1.0] {
            let scratch = GaussianProcess {
                xs: xs2.clone(),
                ys_std: ys_std2.clone(),
                y_transform: gp.y_transform,
                kernel: gp
                    .kernel
                    .with_hyperparameters(gp.kernel.variance(), gp.kernel.lengthscales()),
                noise_variance: gp.noise_variance,
                chol: chol.clone(),
                alpha: alpha.clone(),
                dim: 1,
            };
            let pi = inc.predict(&[q]).unwrap();
            let ps = scratch.predict(&[q]).unwrap();
            assert!((pi.mean - ps.mean).abs() < 1e-8);
            assert!((pi.variance - ps.variance).abs() < 1e-8);
        }
    }

    #[test]
    fn warm_start_reproduces_full_fit_quality() {
        let xs = grid_1d(12);
        let ys: Vec<f64> = xs.iter().map(|x| (8.0 * x[0]).sin()).collect();
        let full = GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap();
        let warm = WarmStart {
            variance: full.kernel().variance(),
            lengthscales: full.kernel().lengthscales().to_vec(),
            noise: full.noise_variance(),
        };
        // A 1-restart warm refit on slightly grown data must match the
        // likelihood a full multi-start fit achieves (within slack).
        let mut xs2 = xs.clone();
        xs2.push(vec![0.43]);
        let mut ys2 = ys.clone();
        ys2.push((8.0f64 * 0.43).sin());
        let warm_fit = GaussianProcess::fit(
            &xs2,
            &ys2,
            GpConfig {
                restarts: 1,
                warm_start: Some(warm),
                ..GpConfig::default()
            },
        )
        .unwrap();
        let full2 = GaussianProcess::fit(&xs2, &ys2, GpConfig::default()).unwrap();
        assert!(
            warm_fit.log_marginal_likelihood() >= full2.log_marginal_likelihood() - 0.5,
            "warm {} vs full {}",
            warm_fit.log_marginal_likelihood(),
            full2.log_marginal_likelihood()
        );
    }

    #[test]
    fn invalid_warm_start_is_ignored() {
        let xs = grid_1d(6);
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        for bad in [
            WarmStart {
                variance: f64::NAN,
                lengthscales: vec![0.3],
                noise: 1e-3,
            },
            WarmStart {
                variance: 1.0,
                lengthscales: vec![0.3, 0.3], // wrong dimension
                noise: 1e-3,
            },
            WarmStart {
                variance: 1.0,
                lengthscales: vec![-0.3],
                noise: 1e-3,
            },
        ] {
            let gp = GaussianProcess::fit(
                &xs,
                &ys,
                GpConfig {
                    restarts: 1,
                    warm_start: Some(bad),
                    ..GpConfig::default()
                },
            )
            .unwrap();
            assert!(gp.predict(&[0.5]).unwrap().mean.is_finite());
        }
    }

    #[test]
    fn warm_start_with_zero_restarts_adopts_hypers() {
        let xs = grid_1d(6);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0).collect();
        let warm = WarmStart {
            variance: 2.5,
            lengthscales: vec![0.17],
            noise: 3e-3,
        };
        let gp = GaussianProcess::fit(
            &xs,
            &ys,
            GpConfig {
                restarts: 0,
                warm_start: Some(warm.clone()),
                ..GpConfig::default()
            },
        )
        .unwrap();
        assert_eq!(gp.kernel().variance(), warm.variance);
        assert_eq!(gp.kernel().lengthscales(), warm.lengthscales.as_slice());
        assert_eq!(gp.noise_variance(), warm.noise);
    }

    #[test]
    fn fixed_noise_is_respected() {
        let xs = grid_1d(6);
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let cfg = GpConfig {
            noise_variance: Some(0.25),
            restarts: 0,
            ..GpConfig::default()
        };
        let gp = GaussianProcess::fit(&xs, &ys, cfg).unwrap();
        assert_eq!(gp.noise_variance(), 0.25);
    }
}
