/// A stationary covariance function with ARD (per-dimension) lengthscales.
///
/// Implementors compute `k(x, x')` for points in `ℝᵈ`. The trait is
/// object-safe so a [`crate::GaussianProcess`] can hold any kernel behind a
/// box.
pub trait Kernel: std::fmt::Debug + Send + Sync {
    /// Covariance between two points.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `a` and `b` have different lengths or
    /// do not match the lengthscale dimension.
    fn eval(&self, a: &[f64], b: &[f64]) -> f64;

    /// Prior variance `k(x, x)` (constant for stationary kernels).
    fn variance(&self) -> f64;

    /// The ARD lengthscales.
    fn lengthscales(&self) -> &[f64];

    /// Clones the kernel with new hyperparameters (same family).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `variance <= 0` or any lengthscale is
    /// non-positive.
    fn with_hyperparameters(&self, variance: f64, lengthscales: &[f64]) -> Box<dyn Kernel>;
}

/// Scaled distance `r = √ Σ ((aᵢ − bᵢ)/ℓᵢ)²`.
fn scaled_distance(a: &[f64], b: &[f64], ls: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "kernel: point dimensions differ");
    assert_eq!(a.len(), ls.len(), "kernel: lengthscale dimension mismatch");
    a.iter()
        .zip(b)
        .zip(ls)
        .map(|((x, y), l)| {
            let d = (x - y) / l;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

fn validate(variance: f64, lengthscales: &[f64]) {
    assert!(
        variance.is_finite() && variance > 0.0,
        "kernel variance must be positive, got {variance}"
    );
    assert!(
        !lengthscales.is_empty(),
        "at least one lengthscale required"
    );
    assert!(
        lengthscales.iter().all(|l| l.is_finite() && *l > 0.0),
        "lengthscales must be positive"
    );
}

/// Kernel family tags, for configuration surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum KernelKind {
    /// Matérn ν = 5/2 (the paper's prior, §4.3).
    Matern52,
    /// Matérn ν = 3/2.
    Matern32,
    /// Squared exponential (RBF).
    SquaredExponential,
}

impl KernelKind {
    /// Instantiates a kernel of this family.
    pub fn build(self, variance: f64, lengthscales: &[f64]) -> Box<dyn Kernel> {
        match self {
            KernelKind::Matern52 => Box::new(Matern52::new(variance, lengthscales)),
            KernelKind::Matern32 => Box::new(Matern32::new(variance, lengthscales)),
            KernelKind::SquaredExponential => {
                Box::new(SquaredExponential::new(variance, lengthscales))
            }
        }
    }
}

/// The Matérn-5/2 kernel
/// `σ² (1 + √5 r + 5r²/3) exp(−√5 r)` — the paper's prior covariance,
/// twice-differentiable and a good default for physical response surfaces.
///
/// # Examples
///
/// ```
/// use bofl_gp::{Kernel, Matern52};
///
/// let k = Matern52::new(2.0, &[0.5]);
/// assert_eq!(k.eval(&[0.3], &[0.3]), 2.0);        // k(x,x) = σ²
/// assert!(k.eval(&[0.0], &[1.0]) < 2.0);          // decays with distance
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matern52 {
    variance: f64,
    lengthscales: Vec<f64>,
}

impl Matern52 {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `variance <= 0` or any lengthscale is non-positive.
    pub fn new(variance: f64, lengthscales: &[f64]) -> Self {
        validate(variance, lengthscales);
        Matern52 {
            variance,
            lengthscales: lengthscales.to_vec(),
        }
    }
}

impl Kernel for Matern52 {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let r = scaled_distance(a, b, &self.lengthscales);
        let s = 5f64.sqrt() * r;
        self.variance * (1.0 + s + s * s / 3.0) * (-s).exp()
    }

    fn variance(&self) -> f64 {
        self.variance
    }

    fn lengthscales(&self) -> &[f64] {
        &self.lengthscales
    }

    fn with_hyperparameters(&self, variance: f64, lengthscales: &[f64]) -> Box<dyn Kernel> {
        Box::new(Matern52::new(variance, lengthscales))
    }
}

/// The Matérn-3/2 kernel `σ² (1 + √3 r) exp(−√3 r)`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matern32 {
    variance: f64,
    lengthscales: Vec<f64>,
}

impl Matern32 {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `variance <= 0` or any lengthscale is non-positive.
    pub fn new(variance: f64, lengthscales: &[f64]) -> Self {
        validate(variance, lengthscales);
        Matern32 {
            variance,
            lengthscales: lengthscales.to_vec(),
        }
    }
}

impl Kernel for Matern32 {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let r = scaled_distance(a, b, &self.lengthscales);
        let s = 3f64.sqrt() * r;
        self.variance * (1.0 + s) * (-s).exp()
    }

    fn variance(&self) -> f64 {
        self.variance
    }

    fn lengthscales(&self) -> &[f64] {
        &self.lengthscales
    }

    fn with_hyperparameters(&self, variance: f64, lengthscales: &[f64]) -> Box<dyn Kernel> {
        Box::new(Matern32::new(variance, lengthscales))
    }
}

/// The squared-exponential (RBF) kernel `σ² exp(−r²/2)`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SquaredExponential {
    variance: f64,
    lengthscales: Vec<f64>,
}

impl SquaredExponential {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `variance <= 0` or any lengthscale is non-positive.
    pub fn new(variance: f64, lengthscales: &[f64]) -> Self {
        validate(variance, lengthscales);
        SquaredExponential {
            variance,
            lengthscales: lengthscales.to_vec(),
        }
    }
}

impl Kernel for SquaredExponential {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let r = scaled_distance(a, b, &self.lengthscales);
        self.variance * (-0.5 * r * r).exp()
    }

    fn variance(&self) -> f64 {
        self.variance
    }

    fn lengthscales(&self) -> &[f64] {
        &self.lengthscales
    }

    fn with_hyperparameters(&self, variance: f64, lengthscales: &[f64]) -> Box<dyn Kernel> {
        Box::new(SquaredExponential::new(variance, lengthscales))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernels() -> Vec<Box<dyn Kernel>> {
        vec![
            Box::new(Matern52::new(1.5, &[0.7, 1.3])),
            Box::new(Matern32::new(1.5, &[0.7, 1.3])),
            Box::new(SquaredExponential::new(1.5, &[0.7, 1.3])),
        ]
    }

    #[test]
    fn diagonal_equals_variance() {
        for k in kernels() {
            assert!((k.eval(&[0.1, -0.4], &[0.1, -0.4]) - 1.5).abs() < 1e-12);
            assert_eq!(k.variance(), 1.5);
        }
    }

    #[test]
    fn symmetry() {
        for k in kernels() {
            let a = [0.2, 0.8];
            let b = [-1.0, 0.3];
            assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-15);
        }
    }

    #[test]
    fn decay_with_distance() {
        for k in kernels() {
            let near = k.eval(&[0.0, 0.0], &[0.1, 0.0]);
            let far = k.eval(&[0.0, 0.0], &[2.0, 0.0]);
            assert!(near > far);
            assert!(far > 0.0);
        }
    }

    #[test]
    fn ard_lengthscales_matter() {
        // Lengthscale 0.7 on axis 0 vs 1.3 on axis 1: same offset decays
        // faster along the shorter-lengthscale axis.
        for k in kernels() {
            let along0 = k.eval(&[0.0, 0.0], &[0.5, 0.0]);
            let along1 = k.eval(&[0.0, 0.0], &[0.0, 0.5]);
            assert!(along0 < along1);
        }
    }

    #[test]
    fn with_hyperparameters_rebuilds() {
        for k in kernels() {
            let k2 = k.with_hyperparameters(3.0, &[1.0, 1.0]);
            assert_eq!(k2.variance(), 3.0);
            assert_eq!(k2.lengthscales(), &[1.0, 1.0]);
        }
    }

    #[test]
    fn kind_builds_each_family() {
        for kind in [
            KernelKind::Matern52,
            KernelKind::Matern32,
            KernelKind::SquaredExponential,
        ] {
            let k = kind.build(1.0, &[1.0]);
            assert_eq!(k.variance(), 1.0);
        }
    }

    #[test]
    fn matern52_known_value() {
        // At r = 1 (unit lengthscale): (1 + √5 + 5/3) e^{−√5}.
        let k = Matern52::new(1.0, &[1.0]);
        let s = 5f64.sqrt();
        let expect = (1.0 + s + 5.0 / 3.0) * (-s).exp();
        assert!((k.eval(&[0.0], &[1.0]) - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "variance must be positive")]
    fn rejects_bad_variance() {
        let _ = Matern52::new(0.0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "lengthscales must be positive")]
    fn rejects_bad_lengthscale() {
        let _ = Matern32::new(1.0, &[1.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "dimensions differ")]
    fn rejects_dim_mismatch() {
        let k = Matern52::new(1.0, &[1.0, 1.0]);
        let _ = k.eval(&[0.0, 0.0], &[0.0]);
    }
}
