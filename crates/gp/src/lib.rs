//! Gaussian-process regression for the BoFL reproduction.
//!
//! The paper's MBO engine (built on the Python library Trieste) models the
//! two blackbox objectives `T(x)` and `E(x)` as independent Gaussian
//! processes with zero prior mean and a Matérn-5/2 kernel (§4.3, "MBO prior
//! function"). This crate implements that surrogate from scratch:
//!
//! - [`Kernel`] — covariance functions: [`Matern52`] (the paper's choice),
//!   [`Matern32`] and [`SquaredExponential`], all with ARD lengthscales;
//! - [`GaussianProcess`] — exact GP regression with Cholesky solves,
//!   type-II maximum-likelihood hyperparameters (multi-start Nelder–Mead
//!   on the log marginal likelihood), and *fantasized conditioning* for
//!   the sequential-greedy batch strategy of §4.3;
//! - [`NelderMead`] — the derivative-free optimizer used for the MLE fit.
//!
//! # Examples
//!
//! Fitting a 1-D GP and checking the posterior interpolates:
//!
//! ```
//! use bofl_gp::{GaussianProcess, GpConfig};
//!
//! # fn main() -> Result<(), bofl_gp::GpError> {
//! let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).sin()).collect();
//! let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default())?;
//! let p = gp.predict(&[0.5])?;
//! assert!((p.mean - (3.0f64).sin()).abs() < 0.2);
//! assert!(p.variance >= 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod gp;
mod kernel;
mod neldermead;

pub use error::GpError;
pub use gp::{GaussianProcess, GpConfig, Posterior};
pub use kernel::{Kernel, KernelKind, Matern32, Matern52, SquaredExponential};
pub use neldermead::{NelderMead, NelderMeadResult};
