//! Gaussian-process regression for the BoFL reproduction.
//!
//! The paper's MBO engine (built on the Python library Trieste) models the
//! two blackbox objectives `T(x)` and `E(x)` as independent Gaussian
//! processes with zero prior mean and a Matérn-5/2 kernel (§4.3, "MBO prior
//! function"). This crate implements that surrogate from scratch:
//!
//! - [`Kernel`] — covariance functions: [`Matern52`] (the paper's choice),
//!   [`Matern32`] and [`SquaredExponential`], all with ARD lengthscales;
//! - [`GaussianProcess`] — exact GP regression with Cholesky solves,
//!   type-II maximum-likelihood hyperparameters (multi-start Nelder–Mead
//!   on the log marginal likelihood), and *fantasized conditioning* for
//!   the sequential-greedy batch strategy of §4.3;
//! - [`RandomFourierFeatures`] — a sparse-spectrum approximation of the
//!   same posterior (`O(D²)` fit per observation, `O(D²)` predict,
//!   observation-count independent) for the thousand-observation regimes
//!   pooled fleet data produces;
//! - [`SurrogateModel`] — the object-safe seam both regressors share, so
//!   the MBO engine can switch between them by observation count;
//! - [`NelderMead`] — the derivative-free optimizer used for the MLE fit.
//!
//! # Examples
//!
//! Fitting a 1-D GP and checking the posterior interpolates:
//!
//! ```
//! use bofl_gp::{GaussianProcess, GpConfig};
//!
//! # fn main() -> Result<(), bofl_gp::GpError> {
//! let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).sin()).collect();
//! let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default())?;
//! let p = gp.predict(&[0.5])?;
//! assert!((p.mean - (3.0f64).sin()).abs() < 0.2);
//! assert!(p.variance >= 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! Refitting cheaply after new observations arrive, by warm-starting the
//! hyperparameter search from the previous optimum ([`GpConfig::warm_start`]
//! plus a reduced [`GpConfig::restarts`] — the fast surrogate path the MBO
//! engine uses between full multi-start refits):
//!
//! ```
//! use bofl_gp::{GaussianProcess, GpConfig, WarmStart};
//!
//! # fn main() -> Result<(), bofl_gp::GpError> {
//! let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).sin()).collect();
//! let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default())?;
//!
//! // Two new points arrive; seed the refit from the fitted optimum and
//! // drop to a single Nelder–Mead start.
//! let mut xs2 = xs.clone();
//! xs2.extend([vec![0.9], vec![0.95]]);
//! let ys2: Vec<f64> = xs2.iter().map(|x| (6.0 * x[0]).sin()).collect();
//! let warm = GpConfig {
//!     restarts: 1,
//!     warm_start: Some(WarmStart {
//!         variance: gp.kernel().variance(),
//!         lengthscales: gp.kernel().lengthscales().to_vec(),
//!         noise: gp.noise_variance(),
//!     }),
//!     ..GpConfig::default()
//! };
//! let refit = GaussianProcess::fit(&xs2, &ys2, warm)?;
//! assert!(refit.predict(&[0.5])?.mean.is_finite());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod gp;
mod kernel;
mod neldermead;
mod rff;
mod surrogate;

pub use error::GpError;
pub use gp::{GaussianProcess, GpConfig, Posterior, WarmStart};
pub use kernel::{Kernel, KernelKind, Matern32, Matern52, SquaredExponential};
pub use neldermead::{NelderMead, NelderMeadResult};
pub use rff::{RandomFourierFeatures, RffConfig};
pub use surrogate::SurrogateModel;
