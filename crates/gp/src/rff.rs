//! Sparse-spectrum (random-Fourier-feature) Gaussian-process regression.
//!
//! Bochner's theorem writes every stationary kernel as the Fourier
//! transform of a spectral density; sampling `D` frequencies from that
//! density gives the Monte-Carlo feature map
//!
//! ```text
//! φ(x) = √(2σ²/D) · [cos(ω₁ᵀx + b₁), …, cos(ω_Dᵀx + b_D)]
//! ```
//!
//! with `E[φ(x)ᵀφ(x')] = k(x, x')` (Rahimi & Recht; Lázaro-Gredilla et
//! al.'s sparse-spectrum GP). Bayesian linear regression on those features
//! then approximates the full GP posterior at `O(n·D² + D³)` fit and
//! `O(D²)` predict cost — independent of the observation count `n`, which
//! is the whole point: pooled fleet observations push `n` into the
//! thousands where the exact `O(n³)/O(n²)` path collapses.
//!
//! The frequency draws are produced by the workspace's deterministic
//! `StdRng` from a caller-supplied seed, so a fitted surrogate — and every
//! suggestion an engine built on it makes — is a pure function of
//! `(data, hyperparameters, seed)`.

use crate::{GpError, KernelKind, Posterior, SurrogateModel, WarmStart};
use bofl_linalg::{dot, solve_lower, solve_upper, Cholesky, Matrix, Standardizer};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Configuration for fitting a [`RandomFourierFeatures`] surrogate.
#[derive(Debug, Clone, PartialEq)]
pub struct RffConfig {
    /// Kernel family whose spectral density the frequencies are drawn
    /// from (the paper's Matérn-5/2 by default).
    pub kernel: KernelKind,
    /// Number of random Fourier features `D`. Accuracy improves as
    /// `O(1/√D)`; 128–256 reproduces the exact posterior to a few percent
    /// on BoFL-scale smoothness.
    pub n_features: usize,
    /// Seed for the deterministic frequency/phase draws.
    pub seed: u64,
    /// Fixed observation-noise variance in standardized units; `None`
    /// adopts the noise carried in [`RffConfig::hyperparameters`] (or the
    /// heuristic default when those are absent too).
    pub noise_variance: Option<f64>,
    /// Kernel hyperparameters to adopt (standardized units) — typically
    /// the engine's warm-start cache or a subsample-fitted exact GP. RFF
    /// does no hyperparameter optimization of its own; invalid entries
    /// (wrong dimension, non-finite or non-positive) fall back to the
    /// same heuristic defaults the exact GP starts from.
    pub hyperparameters: Option<WarmStart>,
}

impl Default for RffConfig {
    fn default() -> Self {
        RffConfig {
            kernel: KernelKind::Matern52,
            n_features: 128,
            seed: 0xB0F1_0FF5,
            noise_variance: None,
            hyperparameters: None,
        }
    }
}

/// A sparse-spectrum GP surrogate: Bayesian linear regression on `D`
/// seeded random Fourier features of the configured kernel.
///
/// Implements the same [`SurrogateModel`] seam as the exact
/// [`crate::GaussianProcess`]; predictions carry the same semantics
/// (latent-function variance, original output units). Fantasy
/// conditioning is a rank-one Sherman–Morrison update of the explicit
/// feature-space precision inverse, so a Kriging-believer chain costs
/// `O(D²)` per fantasy regardless of how many observations the surrogate
/// was fitted on.
///
/// # Examples
///
/// ```
/// use bofl_gp::{RandomFourierFeatures, RffConfig};
///
/// # fn main() -> Result<(), bofl_gp::GpError> {
/// let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 63.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0]).sin()).collect();
/// let rff = RandomFourierFeatures::fit(&xs, &ys, RffConfig::default())?;
/// let p = rff.predict(&[0.5])?;
/// assert!((p.mean - (2.0f64).sin()).abs() < 0.2);
/// assert!(p.variance >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RandomFourierFeatures {
    /// `D × dim` spectral frequencies, lengthscale scaling baked in.
    omega: Matrix,
    /// `D` phases in `[0, 2π)`.
    bias: Vec<f64>,
    /// `√(2σ²/D)` feature amplitude.
    feature_scale: f64,
    /// `A⁻¹ Φᵀ y_std` posterior weight vector.
    weights: Vec<f64>,
    /// Explicit `(ΦᵀΦ + σₙ²I)⁻¹`, kept for `O(D²)` predictive variance
    /// and Sherman–Morrison fantasy conditioning.
    ainv: Matrix,
    /// Running `Φᵀ y_std`, extended by fantasy conditioning.
    phi_t_y: Vec<f64>,
    y_transform: Standardizer,
    hypers: WarmStart,
    noise: f64,
    n_obs: usize,
    dim: usize,
}

impl RandomFourierFeatures {
    /// Fits the surrogate to observations `(xs[i], ys[i])`.
    ///
    /// Outputs are standardized internally exactly like the exact GP's;
    /// hyperparameters are *adopted* from the config (see
    /// [`RffConfig::hyperparameters`]), never optimized here.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::NoData`] for empty input,
    /// [`GpError::DimensionMismatch`] for ragged/mismatched inputs or a
    /// zero feature count, [`GpError::NonFinite`] for NaN/infinite data,
    /// and [`GpError::Linalg`] if the feature Gram cannot be factored.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], config: RffConfig) -> Result<Self, GpError> {
        if xs.is_empty() {
            return Err(GpError::NoData);
        }
        if xs.len() != ys.len() {
            return Err(GpError::DimensionMismatch {
                detail: format!("{} inputs but {} targets", xs.len(), ys.len()),
            });
        }
        let dim = xs[0].len();
        if dim == 0 {
            return Err(GpError::DimensionMismatch {
                detail: "points must have at least one dimension".into(),
            });
        }
        if config.n_features == 0 {
            return Err(GpError::DimensionMismatch {
                detail: "at least one Fourier feature is required".into(),
            });
        }
        if xs.iter().any(|x| x.len() != dim) {
            return Err(GpError::DimensionMismatch {
                detail: "ragged input points".into(),
            });
        }
        if xs.iter().flatten().any(|v| !v.is_finite()) || ys.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFinite);
        }

        let y_transform = Standardizer::fit(ys).map_err(GpError::from)?;
        let ys_std: Vec<f64> = ys.iter().map(|&y| y_transform.apply(y)).collect();

        // Adopt hyperparameters with the same sanity filter the exact GP
        // applies to warm starts.
        let hypers = config
            .hyperparameters
            .as_ref()
            .filter(|w| {
                w.lengthscales.len() == dim
                    && w.variance.is_finite()
                    && w.variance > 0.0
                    && w.noise.is_finite()
                    && w.noise > 0.0
                    && w.lengthscales.iter().all(|l| l.is_finite() && *l > 0.0)
            })
            .cloned()
            .unwrap_or(WarmStart {
                variance: 1.0,
                lengthscales: vec![0.3; dim],
                noise: 1e-3,
            });
        let noise = config.noise_variance.unwrap_or(hypers.noise).max(1e-9);

        let d_feat = config.n_features;
        let (omega, bias) =
            Self::draw_spectrum(config.kernel, &hypers.lengthscales, d_feat, config.seed);
        let feature_scale = (2.0 * hypers.variance / d_feat as f64).sqrt();

        // Φ (n × D) in one GEMM: Z = X Ωᵀ, then the cosine feature map.
        let x_mat = Matrix::from_vec(xs.len(), dim, xs.iter().flatten().copied().collect())?;
        let mut phi = x_mat.matmul(&omega.transpose())?;
        for i in 0..phi.rows() {
            let row = phi.row_mut(i);
            for (z, b) in row.iter_mut().zip(&bias) {
                *z = feature_scale * (*z + b).cos();
            }
        }

        // A = ΦᵀΦ + σₙ²I, factored once; the explicit inverse is then D
        // pairs of triangular solves against unit vectors.
        let phi_t = phi.transpose();
        let mut a = phi_t.matmul(&phi)?;
        a.add_diagonal(noise);
        let chol = Cholesky::factor(&a)?;
        let lt = chol.l().transpose();
        let mut ainv = Matrix::zeros(d_feat, d_feat);
        let mut e = vec![0.0; d_feat];
        for j in 0..d_feat {
            e[j] = 1.0;
            let y = solve_lower(chol.l(), &e)?;
            let col = solve_upper(&lt, &y)?;
            for (i, v) in col.into_iter().enumerate() {
                ainv[(i, j)] = v;
            }
            e[j] = 0.0;
        }

        let phi_t_y = phi_t.matvec(&ys_std)?;
        let weights = ainv.matvec(&phi_t_y)?;

        Ok(RandomFourierFeatures {
            omega,
            bias,
            feature_scale,
            weights,
            ainv,
            phi_t_y,
            y_transform,
            hypers,
            noise,
            n_obs: xs.len(),
            dim,
        })
    }

    /// Draws `d_feat` frequencies from the kernel's spectral density plus
    /// uniform phases, fully determined by `seed`.
    ///
    /// Matérn-ν kernels have a multivariate Student-t spectral density
    /// with `2ν` degrees of freedom (`ω = z·√(2ν/g)/ℓ`, `z ~ N(0, I)`,
    /// `g ~ χ²_{2ν}`, one `g` per frequency); the squared exponential's is
    /// Gaussian. ARD lengthscales divide per dimension.
    fn draw_spectrum(
        kernel: KernelKind,
        lengthscales: &[f64],
        d_feat: usize,
        seed: u64,
    ) -> (Matrix, Vec<f64>) {
        let dim = lengthscales.len();
        let dof = match kernel {
            KernelKind::Matern52 => Some(5u32),
            KernelKind::Matern32 => Some(3u32),
            _ => None,
        };
        // Box–Muller with u1 in (0, 1] so ln never sees zero.
        fn gauss(rng: &mut StdRng) -> f64 {
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut omega = Matrix::zeros(d_feat, dim);
        let mut bias = Vec::with_capacity(d_feat);
        for d in 0..d_feat {
            let t_scale = match dof {
                Some(k) => {
                    let g: f64 = (0..k)
                        .map(|_| gauss(&mut rng).powi(2))
                        .sum::<f64>()
                        .max(1e-12);
                    (f64::from(k) / g).sqrt()
                }
                None => 1.0,
            };
            for (j, l) in lengthscales.iter().enumerate() {
                omega[(d, j)] = gauss(&mut rng) * t_scale / l;
            }
            bias.push(2.0 * std::f64::consts::PI * rng.gen::<f64>());
        }
        (omega, bias)
    }

    /// Feature map `φ(x)` written into `out` (`len == n_features`).
    fn features_into(&self, x: &[f64], out: &mut [f64]) {
        for (o, d) in out.iter_mut().zip(0..self.omega.rows()) {
            *o = self.feature_scale * (dot(self.omega.row(d), x) + self.bias[d]).cos();
        }
    }

    fn validate_query(&self, x: &[f64]) -> Result<(), GpError> {
        if x.len() != self.dim {
            return Err(GpError::DimensionMismatch {
                detail: format!("query dim {} vs model dim {}", x.len(), self.dim),
            });
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFinite);
        }
        Ok(())
    }

    /// Shared prediction core; `phi` is caller-provided scratch so the
    /// batch path allocates nothing per query and stays bitwise identical
    /// to the scalar path.
    fn predict_with_scratch(&self, x: &[f64], phi: &mut [f64]) -> Posterior {
        self.features_into(x, phi);
        let mean_std = dot(phi, &self.weights);
        // Latent predictive variance σₙ²·φᵀA⁻¹φ — at zero data this is the
        // prior σ² (A = σₙ²I), mirroring the exact GP's latent semantics.
        let mut quad = 0.0;
        for (d, &p) in phi.iter().enumerate() {
            quad += p * dot(self.ainv.row(d), phi);
        }
        let var_std = (self.noise * quad).max(0.0);
        Posterior {
            mean: self.y_transform.invert(mean_std),
            variance: var_std * self.y_transform.scale() * self.y_transform.scale(),
        }
    }

    /// Posterior predictive distribution at `x` — `O(D²)`, independent of
    /// the observation count.
    ///
    /// # Errors
    ///
    /// [`GpError::DimensionMismatch`] / [`GpError::NonFinite`] on invalid
    /// queries.
    pub fn predict(&self, x: &[f64]) -> Result<Posterior, GpError> {
        self.validate_query(x)?;
        let mut phi = vec![0.0; self.omega.rows()];
        Ok(self.predict_with_scratch(x, &mut phi))
    }

    /// Batch prediction with one shared feature buffer; bitwise identical
    /// to per-point [`RandomFourierFeatures::predict`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`RandomFourierFeatures::predict`]; the whole
    /// batch is validated first.
    pub fn predict_batch(&self, queries: &[Vec<f64>]) -> Result<Vec<Posterior>, GpError> {
        for x in queries {
            self.validate_query(x)?;
        }
        let mut phi = vec![0.0; self.omega.rows()];
        Ok(queries
            .iter()
            .map(|x| self.predict_with_scratch(x, &mut phi))
            .collect())
    }

    /// Returns a new surrogate conditioned on one fantasized observation
    /// `(x, y)` — the Kriging-believer step — via a rank-one
    /// Sherman–Morrison update of the feature-space precision inverse:
    /// `(A + φφᵀ)⁻¹ = A⁻¹ − (A⁻¹φ)(A⁻¹φ)ᵀ / (1 + φᵀA⁻¹φ)`. Cost `O(D²)`.
    ///
    /// # Errors
    ///
    /// Same validation as [`RandomFourierFeatures::predict`];
    /// [`GpError::NonFinite`] if the update denominator degenerates.
    pub fn condition_on(&self, x: &[f64], y: f64) -> Result<RandomFourierFeatures, GpError> {
        self.validate_query(x)?;
        if !y.is_finite() {
            return Err(GpError::NonFinite);
        }
        let d_feat = self.omega.rows();
        let mut phi = vec![0.0; d_feat];
        self.features_into(x, &mut phi);
        let v = self.ainv.matvec(&phi)?;
        let denom = 1.0 + dot(&phi, &v);
        if !denom.is_finite() || denom <= 0.0 {
            return Err(GpError::NonFinite);
        }
        let mut ainv = self.ainv.clone();
        for i in 0..d_feat {
            let vi_over = v[i] / denom;
            let row = ainv.row_mut(i);
            for (a, vj) in row.iter_mut().zip(&v) {
                *a -= vi_over * vj;
            }
        }
        let y_std = self.y_transform.apply(y);
        let mut phi_t_y = self.phi_t_y.clone();
        for (acc, p) in phi_t_y.iter_mut().zip(&phi) {
            *acc += p * y_std;
        }
        let weights = ainv.matvec(&phi_t_y)?;
        Ok(RandomFourierFeatures {
            omega: self.omega.clone(),
            bias: self.bias.clone(),
            feature_scale: self.feature_scale,
            weights,
            ainv,
            phi_t_y,
            y_transform: self.y_transform,
            hypers: self.hypers.clone(),
            noise: self.noise,
            n_obs: self.n_obs + 1,
            dim: self.dim,
        })
    }

    /// Number of observations (including fantasies) conditioned on.
    pub fn len(&self) -> usize {
        self.n_obs
    }

    /// `true` if there are no observations (cannot occur for a fitted
    /// surrogate; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.n_obs == 0
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of random Fourier features `D`.
    pub fn n_features(&self) -> usize {
        self.omega.rows()
    }

    /// The adopted observation-noise variance (standardized units).
    pub fn noise_variance(&self) -> f64 {
        self.noise
    }

    /// The adopted hyperparameters (standardized units).
    pub fn hyperparameters(&self) -> &WarmStart {
        &self.hypers
    }
}

impl SurrogateModel for RandomFourierFeatures {
    fn predict(&self, x: &[f64]) -> Result<Posterior, GpError> {
        RandomFourierFeatures::predict(self, x)
    }

    fn predict_batch(&self, queries: &[Vec<f64>]) -> Result<Vec<Posterior>, GpError> {
        RandomFourierFeatures::predict_batch(self, queries)
    }

    fn condition_on_boxed(&self, x: &[f64], y: f64) -> Result<Box<dyn SurrogateModel>, GpError> {
        Ok(Box::new(self.condition_on(x, y)?))
    }

    fn len(&self) -> usize {
        RandomFourierFeatures::len(self)
    }

    fn dim(&self) -> usize {
        RandomFourierFeatures::dim(self)
    }

    fn hyperparameters(&self) -> WarmStart {
        self.hypers.clone()
    }
}
