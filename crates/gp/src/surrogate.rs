use crate::{GpError, Posterior, WarmStart};

/// Object-safe seam over the surrogate models the MBO engine can drive:
/// the exact [`crate::GaussianProcess`] and the approximate
/// [`crate::RandomFourierFeatures`] regressor.
///
/// The engine only ever needs four capabilities — point prediction, batch
/// prediction with shared scratch, Kriging-believer conditioning on a
/// fantasized observation, and reading back the fitted hyperparameters to
/// warm-start the next fit — so that is the whole trait. Conditioning
/// returns a boxed trait object because the fantasy chain must stay
/// polymorphic inside the sequential-greedy batch loop.
pub trait SurrogateModel: std::fmt::Debug + Send + Sync {
    /// Posterior predictive distribution at `x`.
    ///
    /// # Errors
    ///
    /// [`GpError::DimensionMismatch`] for a wrong-dimension query and
    /// [`GpError::NonFinite`] for NaN/infinite coordinates.
    fn predict(&self, x: &[f64]) -> Result<Posterior, GpError>;

    /// Posterior predictive distributions at a batch of query points,
    /// bitwise identical to per-point [`SurrogateModel::predict`] calls.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SurrogateModel::predict`]; the whole batch is
    /// validated before anything is computed.
    fn predict_batch(&self, queries: &[Vec<f64>]) -> Result<Vec<Posterior>, GpError>;

    /// Returns a new surrogate conditioned on one additional fantasized
    /// observation `(x, y)` at fixed hyperparameters (the Kriging-believer
    /// step of the paper's sequential-greedy batch selection).
    ///
    /// # Errors
    ///
    /// Same validation as [`SurrogateModel::predict`], plus
    /// [`GpError::Linalg`] if the updated posterior cannot be formed.
    fn condition_on_boxed(&self, x: &[f64], y: f64) -> Result<Box<dyn SurrogateModel>, GpError>;

    /// Number of observations the posterior is conditioned on.
    fn len(&self) -> usize;

    /// `true` if there are no observations (cannot occur for a fitted
    /// surrogate; provided for API completeness).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Input dimensionality.
    fn dim(&self) -> usize;

    /// The fitted hyperparameters (standardized units), in the shape the
    /// engine's warm-start cache consumes.
    fn hyperparameters(&self) -> WarmStart;
}

impl SurrogateModel for crate::GaussianProcess {
    fn predict(&self, x: &[f64]) -> Result<Posterior, GpError> {
        crate::GaussianProcess::predict(self, x)
    }

    fn predict_batch(&self, queries: &[Vec<f64>]) -> Result<Vec<Posterior>, GpError> {
        crate::GaussianProcess::predict_batch(self, queries)
    }

    fn condition_on_boxed(&self, x: &[f64], y: f64) -> Result<Box<dyn SurrogateModel>, GpError> {
        Ok(Box::new(self.condition_on(x, y)?))
    }

    fn len(&self) -> usize {
        crate::GaussianProcess::len(self)
    }

    fn dim(&self) -> usize {
        crate::GaussianProcess::dim(self)
    }

    fn hyperparameters(&self) -> WarmStart {
        WarmStart {
            variance: self.kernel().variance(),
            lengthscales: self.kernel().lengthscales().to_vec(),
            noise: self.noise_variance(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GaussianProcess, GpConfig};

    #[test]
    fn gp_behind_the_trait_matches_inherent_calls() {
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0]).sin()).collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap();
        let dynamic: &dyn SurrogateModel = &gp;
        assert_eq!(dynamic.len(), 8);
        assert_eq!(dynamic.dim(), 1);
        assert!(!dynamic.is_empty());
        let q = [0.37];
        assert_eq!(dynamic.predict(&q).unwrap(), gp.predict(&q).unwrap());
        let batch = dynamic.predict_batch(&[q.to_vec()]).unwrap();
        assert_eq!(batch[0], gp.predict(&q).unwrap());
        let hypers = dynamic.hyperparameters();
        assert_eq!(hypers.variance, gp.kernel().variance());
        assert_eq!(hypers.noise, gp.noise_variance());

        let fantasy = dynamic.condition_on_boxed(&q, 0.5).unwrap();
        let direct = gp.condition_on(&q, 0.5).unwrap();
        assert_eq!(fantasy.len(), 9);
        assert_eq!(
            fantasy.predict(&[0.8]).unwrap(),
            direct.predict(&[0.8]).unwrap()
        );
    }
}
