//! Property-based tests for the GP surrogate.

use bofl_gp::{GaussianProcess, GpConfig, Kernel, KernelKind, Matern32, Matern52};
use bofl_linalg::{Cholesky, Matrix};
use proptest::prelude::*;

/// Any kernel covariance matrix over distinct points must be positive
/// semi-definite (we verify PD after a tiny diagonal bump).
fn assert_kernel_psd(kernel: &dyn Kernel, points: &[Vec<f64>]) {
    let n = points.len();
    let mut gram = Matrix::from_fn(n, n, |i, j| kernel.eval(&points[i], &points[j]));
    gram.add_diagonal(1e-9);
    assert!(
        Cholesky::factor(&gram).is_ok(),
        "kernel gram matrix must be PSD"
    );
}

proptest! {
    #[test]
    fn matern_kernels_are_psd(
        raw in proptest::collection::vec(-5.0f64..5.0, 2..24),
        ls in 0.05f64..3.0,
        var in 0.1f64..10.0,
    ) {
        // Build 2-D points from the raw pool (dedup to avoid exact repeats).
        let mut pts: Vec<Vec<f64>> = raw.chunks(2)
            .filter(|c| c.len() == 2)
            .map(|c| vec![c[0], c[1]])
            .collect();
        pts.dedup_by(|a, b| a == b);
        prop_assume!(pts.len() >= 2);
        assert_kernel_psd(&Matern52::new(var, &[ls, ls]), &pts);
        assert_kernel_psd(&Matern32::new(var, &[ls, ls]), &pts);
    }

    #[test]
    fn posterior_variance_nonnegative_and_bounded(
        ys in proptest::collection::vec(-100.0f64..100.0, 3..12),
        q in 0.0f64..1.0,
    ) {
        let n = ys.len();
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig {
            restarts: 1,
            max_evaluations: 100,
            ..GpConfig::default()
        }).unwrap();
        let p = gp.predict(&[q]).unwrap();
        prop_assert!(p.variance >= 0.0);
        prop_assert!(p.mean.is_finite());
        // The latent variance never exceeds the prior variance (in
        // original units) by more than numerical slack.
        let prior_var = gp.kernel().variance();
        let y_spread: f64 = {
            let mean = ys.iter().sum::<f64>() / n as f64;
            (ys.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)).max(1.0)
        };
        prop_assert!(p.variance <= prior_var * y_spread * 10.0 + 1e-6);
    }

    /// The incremental `condition_on` (bordered-Cholesky append, O(n²))
    /// must match the pre-change from-scratch posterior — here rebuilt
    /// through the public API: same standardizer (fitted on the original
    /// targets), same fitted kernel and noise, full Gram refactor over
    /// the extended dataset.
    #[test]
    fn incremental_conditioning_matches_from_scratch(
        ys in proptest::collection::vec(-10.0f64..10.0, 5..10),
        fx in 0.05f64..0.95,
        fy in -5.0f64..5.0,
        q in 0.0f64..1.0,
    ) {
        use bofl_linalg::Standardizer;

        let n = ys.len();
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig {
            restarts: 1,
            max_evaluations: 120,
            ..GpConfig::default()
        }).unwrap();

        // Incremental: extend the fitted posterior by one fantasy point.
        let inc = gp.condition_on(&[fx], fy).unwrap();

        // From scratch: rebuild the extended posterior exactly as the
        // pre-change implementation did — full Gram, full Cholesky.
        let mut xs2 = xs.clone();
        xs2.push(vec![fx]);
        let std = Standardizer::fit(&ys).unwrap();
        let mut ys_std2: Vec<f64> = ys.iter().map(|&y| std.apply(y)).collect();
        ys_std2.push(std.apply(fy));
        let kernel = Matern52::new(gp.kernel().variance(), gp.kernel().lengthscales());
        let mut gram = Matrix::from_fn(n + 1, n + 1, |i, j| kernel.eval(&xs2[i], &xs2[j]));
        gram.add_diagonal(gp.noise_variance());
        let chol = Cholesky::factor(&gram).unwrap();
        let alpha = chol.solve(&ys_std2).unwrap();
        prop_assume!(chol.jitter() == 0.0);

        for probe in [q, fx, 0.0, 1.0] {
            let k_star: Vec<f64> = xs2.iter().map(|xi| kernel.eval(xi, &[probe])).collect();
            let mean_std: f64 = k_star.iter().zip(&alpha).map(|(k, a)| k * a).sum();
            let v = chol.solve_half(&k_star).unwrap();
            let var_std = (kernel.variance() - v.iter().map(|vi| vi * vi).sum::<f64>()).max(0.0);
            let mean = std.invert(mean_std);
            let variance = var_std * std.scale() * std.scale();

            let pi = inc.predict(&[probe]).unwrap();
            let scale = 1.0 + mean.abs() + variance.abs();
            prop_assert!(
                (pi.mean - mean).abs() <= 1e-8 * scale,
                "mean diverged at {}: {} vs {}", probe, pi.mean, mean
            );
            prop_assert!(
                (pi.variance - variance).abs() <= 1e-8 * scale,
                "variance diverged at {}: {} vs {}", probe, pi.variance, variance
            );
        }
    }

    #[test]
    fn conditioning_never_raises_variance(
        seed_y in -5.0f64..5.0,
        at in 0.0f64..1.0,
    ) {
        let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 / 5.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 - 1.0).collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig {
            restarts: 1,
            max_evaluations: 100,
            ..GpConfig::default()
        }).unwrap();
        let before = gp.predict(&[at]).unwrap().variance;
        let gp2 = gp.condition_on(&[at], seed_y).unwrap();
        let after = gp2.predict(&[at]).unwrap().variance;
        prop_assert!(after <= before + 1e-9, "variance rose: {before} -> {after}");
    }
}

#[test]
fn independent_objectives_two_gps() {
    // The paper models T and E with *independent* GPs; verify two GPs on
    // the same inputs do not interfere (sanity for the MBO engine design).
    let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
    let t: Vec<f64> = xs.iter().map(|x| 1.0 / (0.2 + x[0])).collect();
    let e: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x[0] * x[0]).collect();
    let gp_t = GaussianProcess::fit(&xs, &t, GpConfig::default()).unwrap();
    let gp_e = GaussianProcess::fit(&xs, &e, GpConfig::default()).unwrap();
    let pt = gp_t.predict(&[0.5]).unwrap();
    let pe = gp_e.predict(&[0.5]).unwrap();
    assert!((pt.mean - 1.0 / 0.7).abs() < 0.15);
    assert!((pe.mean - 2.75).abs() < 0.15);
}

#[test]
fn squared_exponential_also_fits() {
    let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
    let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).cos()).collect();
    let gp = GaussianProcess::fit(
        &xs,
        &ys,
        GpConfig {
            kernel: KernelKind::SquaredExponential,
            ..GpConfig::default()
        },
    )
    .unwrap();
    assert!((gp.predict(&[0.4]).unwrap().mean - (1.2f64).cos()).abs() < 0.1);
}
