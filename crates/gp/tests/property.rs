//! Property-based tests for the GP surrogate.

use bofl_gp::{
    GaussianProcess, GpConfig, Kernel, KernelKind, Matern32, Matern52, RandomFourierFeatures,
    RffConfig, WarmStart,
};
use bofl_linalg::{Cholesky, Matrix};
use proptest::prelude::*;

/// Any kernel covariance matrix over distinct points must be positive
/// semi-definite (we verify PD after a tiny diagonal bump).
fn assert_kernel_psd(kernel: &dyn Kernel, points: &[Vec<f64>]) {
    let n = points.len();
    let mut gram = Matrix::from_fn(n, n, |i, j| kernel.eval(&points[i], &points[j]));
    gram.add_diagonal(1e-9);
    assert!(
        Cholesky::factor(&gram).is_ok(),
        "kernel gram matrix must be PSD"
    );
}

proptest! {
    #[test]
    fn matern_kernels_are_psd(
        raw in proptest::collection::vec(-5.0f64..5.0, 2..24),
        ls in 0.05f64..3.0,
        var in 0.1f64..10.0,
    ) {
        // Build 2-D points from the raw pool (dedup to avoid exact repeats).
        let mut pts: Vec<Vec<f64>> = raw.chunks(2)
            .filter(|c| c.len() == 2)
            .map(|c| vec![c[0], c[1]])
            .collect();
        pts.dedup_by(|a, b| a == b);
        prop_assume!(pts.len() >= 2);
        assert_kernel_psd(&Matern52::new(var, &[ls, ls]), &pts);
        assert_kernel_psd(&Matern32::new(var, &[ls, ls]), &pts);
    }

    #[test]
    fn posterior_variance_nonnegative_and_bounded(
        ys in proptest::collection::vec(-100.0f64..100.0, 3..12),
        q in 0.0f64..1.0,
    ) {
        let n = ys.len();
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig {
            restarts: 1,
            max_evaluations: 100,
            ..GpConfig::default()
        }).unwrap();
        let p = gp.predict(&[q]).unwrap();
        prop_assert!(p.variance >= 0.0);
        prop_assert!(p.mean.is_finite());
        // The latent variance never exceeds the prior variance (in
        // original units) by more than numerical slack.
        let prior_var = gp.kernel().variance();
        let y_spread: f64 = {
            let mean = ys.iter().sum::<f64>() / n as f64;
            (ys.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)).max(1.0)
        };
        prop_assert!(p.variance <= prior_var * y_spread * 10.0 + 1e-6);
    }

    /// The incremental `condition_on` (bordered-Cholesky append, O(n²))
    /// must match the pre-change from-scratch posterior — here rebuilt
    /// through the public API: same standardizer (fitted on the original
    /// targets), same fitted kernel and noise, full Gram refactor over
    /// the extended dataset.
    #[test]
    fn incremental_conditioning_matches_from_scratch(
        ys in proptest::collection::vec(-10.0f64..10.0, 5..10),
        fx in 0.05f64..0.95,
        fy in -5.0f64..5.0,
        q in 0.0f64..1.0,
    ) {
        use bofl_linalg::Standardizer;

        let n = ys.len();
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig {
            restarts: 1,
            max_evaluations: 120,
            ..GpConfig::default()
        }).unwrap();

        // Incremental: extend the fitted posterior by one fantasy point.
        let inc = gp.condition_on(&[fx], fy).unwrap();

        // From scratch: rebuild the extended posterior exactly as the
        // pre-change implementation did — full Gram, full Cholesky.
        let mut xs2 = xs.clone();
        xs2.push(vec![fx]);
        let std = Standardizer::fit(&ys).unwrap();
        let mut ys_std2: Vec<f64> = ys.iter().map(|&y| std.apply(y)).collect();
        ys_std2.push(std.apply(fy));
        let kernel = Matern52::new(gp.kernel().variance(), gp.kernel().lengthscales());
        let mut gram = Matrix::from_fn(n + 1, n + 1, |i, j| kernel.eval(&xs2[i], &xs2[j]));
        gram.add_diagonal(gp.noise_variance());
        let chol = Cholesky::factor(&gram).unwrap();
        let alpha = chol.solve(&ys_std2).unwrap();
        prop_assume!(chol.jitter() == 0.0);

        for probe in [q, fx, 0.0, 1.0] {
            let k_star: Vec<f64> = xs2.iter().map(|xi| kernel.eval(xi, &[probe])).collect();
            let mean_std: f64 = k_star.iter().zip(&alpha).map(|(k, a)| k * a).sum();
            let v = chol.solve_half(&k_star).unwrap();
            let var_std = (kernel.variance() - v.iter().map(|vi| vi * vi).sum::<f64>()).max(0.0);
            let mean = std.invert(mean_std);
            let variance = var_std * std.scale() * std.scale();

            let pi = inc.predict(&[probe]).unwrap();
            let scale = 1.0 + mean.abs() + variance.abs();
            prop_assert!(
                (pi.mean - mean).abs() <= 1e-8 * scale,
                "mean diverged at {}: {} vs {}", probe, pi.mean, mean
            );
            prop_assert!(
                (pi.variance - variance).abs() <= 1e-8 * scale,
                "variance diverged at {}: {} vs {}", probe, pi.variance, variance
            );
        }
    }

    #[test]
    fn conditioning_never_raises_variance(
        seed_y in -5.0f64..5.0,
        at in 0.0f64..1.0,
    ) {
        let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 / 5.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 - 1.0).collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig {
            restarts: 1,
            max_evaluations: 100,
            ..GpConfig::default()
        }).unwrap();
        let before = gp.predict(&[at]).unwrap().variance;
        let gp2 = gp.condition_on(&[at], seed_y).unwrap();
        let after = gp2.predict(&[at]).unwrap().variance;
        prop_assert!(after <= before + 1e-9, "variance rose: {before} -> {after}");
    }
}

/// The sparse-spectrum surrogate must agree with the exact posterior it
/// approximates: posterior means within a small fraction of the target
/// spread on a smooth function, and posterior variances calibrated (no
/// systematic collapse or blow-up) — the contract that lets the MBO
/// engine swap it in above the observation threshold.
#[test]
fn rff_posterior_agrees_with_exact_gp() {
    let n = 48;
    let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 2.0 + (4.0 * x[0]).sin() + 0.5 * x[0])
        .collect();
    let spread = 2.0; // sin amplitude 1 + linear term ≈ range 2.5; be strict-ish

    let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap();
    let hypers = WarmStart {
        variance: gp.kernel().variance(),
        lengthscales: gp.kernel().lengthscales().to_vec(),
        noise: gp.noise_variance(),
    };
    let rff = RandomFourierFeatures::fit(
        &xs,
        &ys,
        RffConfig {
            n_features: 256,
            hyperparameters: Some(hypers),
            ..RffConfig::default()
        },
    )
    .unwrap();

    let mut max_mean_err: f64 = 0.0;
    let mut sum_exact_var = 0.0;
    let mut sum_rff_var = 0.0;
    for i in 0..=40 {
        let q = [i as f64 / 40.0];
        let pe = gp.predict(&q).unwrap();
        let pa = rff.predict(&q).unwrap();
        max_mean_err = max_mean_err.max((pe.mean - pa.mean).abs());
        assert!(pa.variance >= 0.0);
        sum_exact_var += pe.variance;
        sum_rff_var += pa.variance;
    }
    assert!(
        max_mean_err < 0.05 * spread,
        "posterior means diverged: max err {max_mean_err}"
    );
    // Calibration: with 48 dense observations both posteriors are nearly
    // certain on the grid, so either the total RFF variance is likewise
    // tiny relative to the target spread, or (if the exact one is
    // measurable) the totals agree within a modest multiplicative band.
    let tiny = 1e-4 * spread * spread;
    assert!(
        (sum_exact_var < tiny && sum_rff_var < tiny)
            || (0.1..10.0).contains(&(sum_rff_var / sum_exact_var)),
        "variance calibration off: exact total {sum_exact_var}, rff total {sum_rff_var}"
    );
}

/// RFF Sherman–Morrison conditioning must match refitting from scratch
/// on the extended data set (at the same hyperparameters, same seed) —
/// the fantasy-chain correctness anchor for the approximate path.
#[test]
fn rff_conditioning_matches_refit() {
    let n = 32;
    let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
    let ys: Vec<f64> = xs.iter().map(|x| (5.0 * x[0]).cos()).collect();
    let cfg = RffConfig {
        n_features: 64,
        hyperparameters: Some(WarmStart {
            variance: 1.0,
            lengthscales: vec![0.3],
            noise: 1e-3,
        }),
        ..RffConfig::default()
    };
    let rff = RandomFourierFeatures::fit(&xs, &ys, cfg.clone()).unwrap();
    let inc = rff.condition_on(&[0.415], 0.7).unwrap();

    // NOTE: a from-scratch refit standardizes over the extended targets,
    // so exact numeric identity is not expected; instead verify the
    // conditioned posterior behaves like an observation was added there.
    let before = rff.predict(&[0.415]).unwrap();
    let after = inc.predict(&[0.415]).unwrap();
    assert!(inc.len() == rff.len() + 1);
    assert!(
        after.variance <= before.variance + 1e-12,
        "conditioning must not raise variance at the site: {} -> {}",
        before.variance,
        after.variance
    );
    assert!(
        (after.mean - 0.7).abs() <= (before.mean - 0.7).abs() + 1e-12,
        "mean must move toward the fantasized value"
    );
}

#[test]
fn independent_objectives_two_gps() {
    // The paper models T and E with *independent* GPs; verify two GPs on
    // the same inputs do not interfere (sanity for the MBO engine design).
    let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
    let t: Vec<f64> = xs.iter().map(|x| 1.0 / (0.2 + x[0])).collect();
    let e: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x[0] * x[0]).collect();
    let gp_t = GaussianProcess::fit(&xs, &t, GpConfig::default()).unwrap();
    let gp_e = GaussianProcess::fit(&xs, &e, GpConfig::default()).unwrap();
    let pt = gp_t.predict(&[0.5]).unwrap();
    let pe = gp_e.predict(&[0.5]).unwrap();
    assert!((pt.mean - 1.0 / 0.7).abs() < 0.15);
    assert!((pe.mean - 2.75).abs() < 0.15);
}

#[test]
fn squared_exponential_also_fits() {
    let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
    let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).cos()).collect();
    let gp = GaussianProcess::fit(
        &xs,
        &ys,
        GpConfig {
            kernel: KernelKind::SquaredExponential,
            ..GpConfig::default()
        },
    )
    .unwrap();
    assert!((gp.predict(&[0.4]).unwrap().mean - (1.2f64).cos()).abs() < 0.1);
}
