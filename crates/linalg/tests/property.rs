//! Property-based tests for the linear-algebra kernels.

use bofl_linalg::{dot, norm2, solve_lower, Cholesky, Matrix, OnlineStats, Standardizer};
use proptest::prelude::*;

/// Generates a random SPD matrix as `B Bᵀ + n·I` for a random `B`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f64..3.0, n * n).prop_map(move |vals| {
        let b = Matrix::from_vec(n, n, vals).expect("length checked by strategy");
        let mut a = b
            .matmul(&b.transpose())
            .expect("square matrices always multiply");
        a.add_diagonal(n as f64 * 0.5);
        a
    })
}

proptest! {
    #[test]
    fn cholesky_reconstructs(a in (1usize..8).prop_flat_map(spd_matrix)) {
        let chol = Cholesky::factor(&a).expect("SPD by construction");
        let r = chol.reconstruct();
        let tol = 1e-8 * (1.0 + a.max_abs());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                prop_assert!((a[(i, j)] - r[(i, j)]).abs() <= tol + chol.jitter() * 2.0);
            }
        }
    }

    #[test]
    fn cholesky_solve_is_inverse(
        a in (2usize..7).prop_flat_map(spd_matrix),
        seed in 0u64..1000,
    ) {
        let n = a.rows();
        let x_true: Vec<f64> = (0..n).map(|i| ((seed as f64) * 0.37 + i as f64) % 5.0 - 2.0).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let resid = a.matvec(&x).unwrap();
        for (r, bi) in resid.iter().zip(&b) {
            prop_assert!((r - bi).abs() < 1e-6 * (1.0 + bi.abs()));
        }
    }

    /// The bordered-update `extend` agrees with a from-scratch `factor` of
    /// the bordered matrix (the incremental surrogate path's correctness
    /// anchor).
    #[test]
    fn cholesky_extend_matches_bordered_factor(
        a in (1usize..7).prop_flat_map(spd_matrix),
        border in proptest::collection::vec(-2.0f64..2.0, 7),
    ) {
        let n = a.rows();
        // Border the SPD matrix with a row scaled small enough (relative
        // to the 0.5·n diagonal boost) to keep the result comfortably SPD.
        let row: Vec<f64> = border[..n].iter().map(|v| v * 0.3).collect();
        let diag = n as f64 * 0.5 + 4.0 + border[n].abs();
        let mut full = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..n {
                full[(i, j)] = a[(i, j)];
            }
            full[(n, i)] = row[i];
            full[(i, n)] = row[i];
        }
        full[(n, n)] = diag;

        let ext = Cholesky::factor(&a).unwrap().extend(&row, diag).unwrap();
        let direct = Cholesky::factor(&full).unwrap();
        prop_assume!(direct.jitter() == 0.0 && ext.jitter() == 0.0);
        let tol = 1e-9 * (1.0 + full.max_abs());
        for i in 0..=n {
            for j in 0..=n {
                prop_assert!(
                    (ext.l()[(i, j)] - direct.l()[(i, j)]).abs() <= tol,
                    "L[{},{}]: {} vs {}", i, j, ext.l()[(i, j)], direct.l()[(i, j)]
                );
            }
        }
        prop_assert!((ext.log_det() - direct.log_det()).abs() <= 1e-9 * (1.0 + direct.log_det().abs()));
    }

    #[test]
    fn triangular_solve_residual(
        diag in proptest::collection::vec(0.5f64..4.0, 2..6),
        seed in 0u64..100,
    ) {
        let n = diag.len();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            l[(i, i)] = diag[i];
            for j in 0..i {
                l[(i, j)] = ((seed + (i * 7 + j) as u64) % 5) as f64 - 2.0;
            }
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 1.0).collect();
        let x = solve_lower(&l, &b).unwrap();
        let r = l.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn dot_cauchy_schwarz(
        a in proptest::collection::vec(-10.0f64..10.0, 1..20),
        b_seed in 0u64..50,
    ) {
        let b: Vec<f64> = a.iter().enumerate()
            .map(|(i, _)| ((b_seed + i as u64) % 7) as f64 - 3.0)
            .collect();
        let lhs = dot(&a, &b).abs();
        let rhs = norm2(&a) * norm2(&b);
        prop_assert!(lhs <= rhs * (1.0 + 1e-9) + 1e-12);
    }

    #[test]
    fn welford_mean_within_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.sample_variance() >= 0.0);
    }

    #[test]
    fn standardizer_roundtrips(xs in proptest::collection::vec(-1e3f64..1e3, 2..50), probe in -1e3f64..1e3) {
        let s = Standardizer::fit(&xs).unwrap();
        prop_assert!((s.invert(s.apply(probe)) - probe).abs() < 1e-6);
        prop_assert!(s.scale() > 0.0);
    }
}
