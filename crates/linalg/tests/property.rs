//! Property-based tests for the linear-algebra kernels.

use bofl_linalg::{dot, norm2, solve_lower, Cholesky, Matrix, OnlineStats, Standardizer};
use proptest::prelude::*;

/// Generates a random SPD matrix as `B Bᵀ + n·I` for a random `B`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f64..3.0, n * n).prop_map(move |vals| {
        let b = Matrix::from_vec(n, n, vals).expect("length checked by strategy");
        let mut a = b
            .matmul(&b.transpose())
            .expect("square matrices always multiply");
        a.add_diagonal(n as f64 * 0.5);
        a
    })
}

/// Textbook reference implementations the blocked kernels are checked
/// against. These deliberately use the naive orders (sequential dot,
/// `i,j,k` triple loop, row-major scalar Cholesky) so any blocking or
/// unrolling bug in the library shows up as a numeric divergence.
mod naive {
    use bofl_linalg::Matrix;

    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    pub fn matvec(a: &Matrix, v: &[f64]) -> Vec<f64> {
        (0..a.rows())
            .map(|i| (0..a.cols()).map(|k| a[(i, k)] * v[k]).sum())
            .collect()
    }

    pub fn cholesky(a: &Matrix) -> Matrix {
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    l[(i, i)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        l
    }
}

/// Deterministic pseudo-random fill (SplitMix64 → [-1, 1]) so the
/// block-boundary tests below can use sizes proptest would be too slow
/// for.
fn fill(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        })
        .collect()
}

/// The blocked GEMM agrees with the `i,j,k` triple loop to 1e-12 at
/// sizes that cross the NC=16 column-block boundary.
#[test]
fn blocked_matmul_matches_naive_across_block_boundaries() {
    for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 16, 15), (33, 40, 70)] {
        let a = Matrix::from_vec(m, k, fill(1, m * k)).unwrap();
        let b = Matrix::from_vec(k, n, fill(2, k * n)).unwrap();
        let fast = a.matmul(&b).unwrap();
        let slow = naive::matmul(&a, &b);
        for i in 0..m {
            for j in 0..n {
                let d = (fast[(i, j)] - slow[(i, j)]).abs();
                assert!(
                    d <= 1e-12 * (1.0 + slow[(i, j)].abs()),
                    "({m}x{k}x{n}) [{i},{j}]: {} vs {}",
                    fast[(i, j)],
                    slow[(i, j)]
                );
            }
        }
    }
}

/// The panel Cholesky agrees with the scalar textbook factorization to
/// 1e-12 at sizes that cross the 48-row panel boundary.
#[test]
fn blocked_cholesky_matches_naive_across_panel_boundaries() {
    for &n in &[1usize, 7, 48, 49, 100] {
        let b = Matrix::from_vec(n, n, fill(3, n * n)).unwrap();
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diagonal(n as f64); // comfortably SPD → zero jitter
        let chol = Cholesky::factor(&a).unwrap();
        assert_eq!(chol.jitter(), 0.0);
        let slow = naive::cholesky(&a);
        for i in 0..n {
            for j in 0..=i {
                let d = (chol.l()[(i, j)] - slow[(i, j)]).abs();
                assert!(
                    d <= 1e-12 * (1.0 + slow[(i, j)].abs()),
                    "n={n} L[{i},{j}]: {} vs {}",
                    chol.l()[(i, j)],
                    slow[(i, j)]
                );
            }
        }
    }
}

/// Tiled transpose is an exact permutation (bitwise) and an involution,
/// across the 32-tile boundary.
#[test]
fn tiled_transpose_is_exact_across_tile_boundaries() {
    for &(m, n) in &[(1, 1), (5, 3), (32, 33), (70, 31)] {
        let a = Matrix::from_vec(m, n, fill(4, m * n)).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), n);
        assert_eq!(t.cols(), m);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(a[(i, j)].to_bits(), t[(j, i)].to_bits());
            }
        }
        let back = t.transpose();
        for i in 0..m {
            for j in 0..n {
                assert_eq!(a[(i, j)].to_bits(), back[(i, j)].to_bits());
            }
        }
    }
}

/// The unrolled matvec kernel agrees with the sequential sum to 1e-12.
#[test]
fn matvec_matches_naive() {
    for &(m, n) in &[(1usize, 1usize), (9, 5), (33, 70)] {
        let a = Matrix::from_vec(m, n, fill(5, m * n)).unwrap();
        let v = fill(6, n);
        let fast = a.matvec(&v).unwrap();
        let slow = naive::matvec(&a, &v);
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() <= 1e-12 * (1.0 + s.abs()), "{f} vs {s}");
        }
    }
}

proptest! {
    /// Random-content GEMM agreement (small sizes; the large block-crossing
    /// sizes are covered deterministically above).
    #[test]
    fn matmul_matches_naive_random(
        dims in (1usize..8, 1usize..8, 1usize..8),
        seed in 0u64..1000,
    ) {
        let (m, k, n) = dims;
        let a = Matrix::from_vec(m, k, fill(seed, m * k)).unwrap();
        let b = Matrix::from_vec(k, n, fill(seed ^ 0xABCD, k * n)).unwrap();
        let fast = a.matmul(&b).unwrap();
        let slow = naive::matmul(&a, &b);
        for i in 0..m {
            for j in 0..n {
                prop_assert!((fast[(i, j)] - slow[(i, j)]).abs() <= 1e-12 * (1.0 + slow[(i, j)].abs()));
            }
        }
    }

    #[test]
    fn cholesky_reconstructs(a in (1usize..8).prop_flat_map(spd_matrix)) {
        let chol = Cholesky::factor(&a).expect("SPD by construction");
        let r = chol.reconstruct();
        let tol = 1e-8 * (1.0 + a.max_abs());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                prop_assert!((a[(i, j)] - r[(i, j)]).abs() <= tol + chol.jitter() * 2.0);
            }
        }
    }

    #[test]
    fn cholesky_solve_is_inverse(
        a in (2usize..7).prop_flat_map(spd_matrix),
        seed in 0u64..1000,
    ) {
        let n = a.rows();
        let x_true: Vec<f64> = (0..n).map(|i| ((seed as f64) * 0.37 + i as f64) % 5.0 - 2.0).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let resid = a.matvec(&x).unwrap();
        for (r, bi) in resid.iter().zip(&b) {
            prop_assert!((r - bi).abs() < 1e-6 * (1.0 + bi.abs()));
        }
    }

    /// The bordered-update `extend` agrees with a from-scratch `factor` of
    /// the bordered matrix (the incremental surrogate path's correctness
    /// anchor).
    #[test]
    fn cholesky_extend_matches_bordered_factor(
        a in (1usize..7).prop_flat_map(spd_matrix),
        border in proptest::collection::vec(-2.0f64..2.0, 7),
    ) {
        let n = a.rows();
        // Border the SPD matrix with a row scaled small enough (relative
        // to the 0.5·n diagonal boost) to keep the result comfortably SPD.
        let row: Vec<f64> = border[..n].iter().map(|v| v * 0.3).collect();
        let diag = n as f64 * 0.5 + 4.0 + border[n].abs();
        let mut full = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..n {
                full[(i, j)] = a[(i, j)];
            }
            full[(n, i)] = row[i];
            full[(i, n)] = row[i];
        }
        full[(n, n)] = diag;

        let ext = Cholesky::factor(&a).unwrap().extend(&row, diag).unwrap();
        let direct = Cholesky::factor(&full).unwrap();
        prop_assume!(direct.jitter() == 0.0 && ext.jitter() == 0.0);
        let tol = 1e-9 * (1.0 + full.max_abs());
        for i in 0..=n {
            for j in 0..=n {
                prop_assert!(
                    (ext.l()[(i, j)] - direct.l()[(i, j)]).abs() <= tol,
                    "L[{},{}]: {} vs {}", i, j, ext.l()[(i, j)], direct.l()[(i, j)]
                );
            }
        }
        prop_assert!((ext.log_det() - direct.log_det()).abs() <= 1e-9 * (1.0 + direct.log_det().abs()));
    }

    #[test]
    fn triangular_solve_residual(
        diag in proptest::collection::vec(0.5f64..4.0, 2..6),
        seed in 0u64..100,
    ) {
        let n = diag.len();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            l[(i, i)] = diag[i];
            for j in 0..i {
                l[(i, j)] = ((seed + (i * 7 + j) as u64) % 5) as f64 - 2.0;
            }
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 1.0).collect();
        let x = solve_lower(&l, &b).unwrap();
        let r = l.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn dot_cauchy_schwarz(
        a in proptest::collection::vec(-10.0f64..10.0, 1..20),
        b_seed in 0u64..50,
    ) {
        let b: Vec<f64> = a.iter().enumerate()
            .map(|(i, _)| ((b_seed + i as u64) % 7) as f64 - 3.0)
            .collect();
        let lhs = dot(&a, &b).abs();
        let rhs = norm2(&a) * norm2(&b);
        prop_assert!(lhs <= rhs * (1.0 + 1e-9) + 1e-12);
    }

    #[test]
    fn welford_mean_within_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.sample_variance() >= 0.0);
    }

    #[test]
    fn standardizer_roundtrips(xs in proptest::collection::vec(-1e3f64..1e3, 2..50), probe in -1e3f64..1e3) {
        let s = Standardizer::fit(&xs).unwrap();
        prop_assert!((s.invert(s.apply(probe)) - probe).abs() < 1e-6);
        prop_assert!(s.scale() > 0.0);
    }
}
