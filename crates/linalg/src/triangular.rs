use crate::{LinalgError, Matrix};

/// Solves `L x = b` by forward substitution, where `L` is lower triangular.
///
/// Only the lower triangle of `l` is read; entries above the diagonal are
/// ignored, so a full square matrix whose lower triangle holds the factor is
/// acceptable.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] if `l` is rectangular,
/// [`LinalgError::DimensionMismatch`] if `b.len() != l.rows()`, and
/// [`LinalgError::SingularTriangular`] on a (near-)zero diagonal entry.
///
/// # Examples
///
/// ```
/// use bofl_linalg::{Matrix, solve_lower};
///
/// # fn main() -> Result<(), bofl_linalg::LinalgError> {
/// let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]])?;
/// let x = solve_lower(&l, &[2.0, 7.0])?;
/// assert_eq!(x, vec![1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    check(l, b)?;
    let n = l.rows();
    let mut x = vec![0.0; n];
    for i in 0..n {
        // One fixed-order dot over the already-solved prefix; same
        // association as `Cholesky::solve_half_into` so the two paths stay
        // bitwise interchangeable.
        let prefix = crate::kernels::dot_kernel(&l.row(i)[..i], &x[..i]);
        let d = l[(i, i)];
        if !d.is_normal() {
            return Err(LinalgError::SingularTriangular { index: i });
        }
        x[i] = (b[i] - prefix) / d;
    }
    Ok(x)
}

/// Solves `U x = b` by backward substitution, where `U` is upper triangular.
///
/// Only the upper triangle of `u` is read.
///
/// # Errors
///
/// Same conditions as [`solve_lower`].
///
/// # Examples
///
/// ```
/// use bofl_linalg::{Matrix, solve_upper};
///
/// # fn main() -> Result<(), bofl_linalg::LinalgError> {
/// let u = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]])?;
/// let x = solve_upper(&u, &[4.0, 6.0])?;
/// assert_eq!(x, vec![1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub fn solve_upper(u: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    check(u, b)?;
    let n = u.rows();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let suffix = crate::kernels::dot_kernel(&u.row(i)[i + 1..], &x[i + 1..]);
        let d = u[(i, i)];
        if !d.is_normal() {
            return Err(LinalgError::SingularTriangular { index: i });
        }
        x[i] = (b[i] - suffix) / d;
    }
    Ok(x)
}

fn check(m: &Matrix, b: &[f64]) -> Result<(), LinalgError> {
    if !m.is_square() {
        return Err(LinalgError::NotSquare {
            dims: (m.rows(), m.cols()),
        });
    }
    if b.len() != m.rows() {
        return Err(LinalgError::DimensionMismatch {
            left: (m.rows(), m.cols()),
            right: (b.len(), 1),
            op: "triangular solve",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_roundtrip() {
        let l = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[2.0, 3.0, 0.0], &[4.0, 5.0, 6.0]]).unwrap();
        let x_true = [1.0, -2.0, 0.5];
        let b = l.matvec(&x_true).unwrap();
        let x = solve_lower(&l, &b).unwrap();
        for (a, b) in x.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn upper_roundtrip() {
        let u = Matrix::from_rows(&[&[1.0, 2.0, 4.0], &[0.0, 3.0, 5.0], &[0.0, 0.0, 6.0]]).unwrap();
        let x_true = [0.25, -1.0, 2.0];
        let b = u.matvec(&x_true).unwrap();
        let x = solve_upper(&u, &b).unwrap();
        for (a, b) in x.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_detected() {
        let l = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]).unwrap();
        assert!(matches!(
            solve_lower(&l, &[1.0, 1.0]).unwrap_err(),
            LinalgError::SingularTriangular { index: 0 }
        ));
    }

    #[test]
    fn dimension_checks() {
        let l = Matrix::zeros(2, 3);
        assert!(matches!(
            solve_lower(&l, &[1.0, 1.0]).unwrap_err(),
            LinalgError::NotSquare { .. }
        ));
        let l = Matrix::identity(2);
        assert!(matches!(
            solve_upper(&l, &[1.0]).unwrap_err(),
            LinalgError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn ignores_other_triangle() {
        // Upper-triangle garbage must not affect a lower solve.
        let l = Matrix::from_rows(&[&[2.0, 999.0], &[1.0, 3.0]]).unwrap();
        let x = solve_lower(&l, &[2.0, 7.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
    }
}
