use crate::LinalgError;

/// A dense, row-major, heap-allocated matrix of `f64`.
///
/// Sized for the BoFL workloads: Gram matrices from tens of rows up to the
/// few-thousand range that pooled fleet observations produce. The product
/// and transpose kernels are cache-blocked on top of the crate's
/// fixed-order dot micro-kernel (see `kernels`), so they are fast at the
/// large end while staying bitwise deterministic at any block size.
///
/// # Examples
///
/// ```
/// use bofl_linalg::Matrix;
///
/// # fn main() -> Result<(), bofl_linalg::LinalgError> {
/// let a = Matrix::identity(3);
/// let b = Matrix::from_rows(&[&[1.0, 2.0, 3.0]])?;
/// let c = b.matmul(&a)?;
/// assert_eq!(c.row(0), &[1.0, 2.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if `rows` is empty, and
    /// [`LinalgError::DimensionMismatch`] if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let first = rows.first().ok_or(LinalgError::Empty { what: "rows" })?;
        let cols = first.len();
        if cols == 0 {
            return Err(LinalgError::Empty { what: "rows[0]" });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    left: (1, cols),
                    right: (1, r.len()),
                    op: "from_rows",
                });
            }
            let _ = i;
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                left: (rows, cols),
                right: (data.len(), 1),
                op: "from_vec",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Borrows the backing row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose, walking 32×32 tiles so both the source reads
    /// and the destination writes stay within a cache-resident window even
    /// for thousand-row matrices.
    pub fn transpose(&self) -> Matrix {
        const TILE: usize = 32;
        let mut out = Matrix::zeros(self.cols, self.rows);
        // Walk output rows inside each tile: writes are contiguous (the
        // expensive side under write-allocate) and the strided reads stay
        // within a TILE×TILE block that fits in L1.
        for ib in (0..self.rows).step_by(TILE) {
            let imax = (ib + TILE).min(self.rows);
            for jb in (0..self.cols).step_by(TILE) {
                let jmax = (jb + TILE).min(self.cols);
                for j in jb..jmax {
                    let orow = &mut out.data[j * self.rows..(j + 1) * self.rows];
                    for (i, o) in orow[ib..imax].iter_mut().enumerate() {
                        *o = self.data[(ib + i) * self.cols + j];
                    }
                }
            }
        }
        out
    }

    /// Matrix–matrix product `self * rhs`.
    ///
    /// Packs `rhs` as its (tiled) transpose so every output element is one
    /// contiguous fixed-order dot over the full `k` range, then sweeps the
    /// output in cache blocks. Blocking reorders which elements are
    /// computed, never how each sum is formed, so the result is bitwise
    /// identical at any block size — and in the `simd` build, which runs
    /// the same combine tree in SSE2 lanes.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
                op: "matmul",
            });
        }
        // Block sizes: NC rows of packed Bᵀ (NC·k doubles) stay hot across
        // an MC-row sweep of A; each A row is then read once per jb tile.
        const MC: usize = 256;
        const NC: usize = 16;
        let bt = rhs.transpose();
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for jb in (0..rhs.cols).step_by(NC) {
            let jmax = (jb + NC).min(rhs.cols);
            for ib in (0..self.rows).step_by(MC) {
                let imax = (ib + MC).min(self.rows);
                for i in ib..imax {
                    let arow = &self.data[i * self.cols..(i + 1) * self.cols];
                    let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                    for (j, o) in orow[jb..jmax].iter_mut().enumerate() {
                        *o = crate::kernels::dot_kernel(arow, bt.row(jb + j));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`, one fixed-order dot per row.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols() != v.len()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (v.len(), 1),
                op: "matvec",
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::kernels::dot_kernel(self.row(i), v))
            .collect())
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if (self.rows, self.cols) != (rhs.rows, rhs.cols) {
            return Err(LinalgError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
                op: "add",
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self` scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * s).collect(),
        }
    }

    /// Adds `v` to every diagonal entry in place.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, v: f64) {
        assert!(self.is_square(), "add_diagonal requires a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += v;
        }
    }

    /// Maximum absolute entry (zero for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(matches!(
            Matrix::from_rows(&[]).unwrap_err(),
            LinalgError::Empty { .. }
        ));
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let p = a.matmul(&Matrix::identity(2)).unwrap();
        assert_eq!(p, a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_dim_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().row(0), &[1.0, 4.0]);
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::identity(2);
        let s = a.add(&a).unwrap();
        assert_eq!(s[(0, 0)], 2.0);
        assert_eq!(a.scaled(3.0)[(1, 1)], 3.0);
    }

    #[test]
    fn add_diagonal_and_max_abs() {
        let mut a = Matrix::zeros(2, 2);
        a.add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 0.5);
        assert_eq!(a.max_abs(), 0.5);
    }

    #[test]
    fn col_extraction() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn display_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let a = Matrix::zeros(1, 1);
        let _ = a.row(1);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut a = Matrix::zeros(1, 1);
        assert!(a.is_finite());
        a[(0, 0)] = f64::NAN;
        assert!(!a.is_finite());
    }
}
