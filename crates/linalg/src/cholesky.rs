use crate::{solve_lower, solve_upper, LinalgError, Matrix};

/// Base jitter added to the diagonal when a factorization first fails.
const BASE_JITTER: f64 = 1e-10;
/// Number of ×10 jitter escalations attempted before giving up.
const MAX_JITTER_STEPS: u32 = 8;

/// A Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix, with automatic jitter escalation.
///
/// Gaussian-process Gram matrices are positive definite in exact arithmetic
/// but frequently lose that property to rounding when points are close
/// together (which happens constantly in DVFS grids where neighbouring
/// frequency steps are a few percent apart). Following standard GP practice,
/// [`Cholesky::factor`] retries with a growing diagonal jitter
/// (`1e-10 … 1e-2 × mean diagonal`) before reporting failure; the applied
/// jitter is recorded in [`Cholesky::jitter`].
///
/// # Examples
///
/// ```
/// use bofl_linalg::{Matrix, Cholesky};
///
/// # fn main() -> Result<(), bofl_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0],
///                             &[15.0, 18.0,  0.0],
///                             &[-5.0,  0.0, 11.0]])?;
/// let chol = Cholesky::factor(&a)?;
/// assert!((chol.log_det() - a_log_det()).abs() < 1e-9);
/// # fn a_log_det() -> f64 { (2025.0f64).ln() } // det(A) = det(L)² = 45²
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    jitter: f64,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the strict upper triangle is
    /// assumed to mirror it.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular input,
    /// [`LinalgError::NonFinite`] if `a` contains NaN or infinities, and
    /// [`LinalgError::NotPositiveDefinite`] if factorization fails even at
    /// the maximum jitter.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                dims: (a.rows(), a.cols()),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite { what: "matrix" });
        }
        let n = a.rows();
        let mean_diag = if n == 0 {
            1.0
        } else {
            (0..n).map(|i| a[(i, i)].abs()).sum::<f64>() / n as f64
        };
        let scale = if mean_diag > 0.0 { mean_diag } else { 1.0 };

        let mut jitter = 0.0;
        let mut last_err = LinalgError::NotPositiveDefinite { pivot: 0, jitter };
        for step in 0..=MAX_JITTER_STEPS {
            match Self::try_factor(a, jitter) {
                Ok(l) => return Ok(Cholesky { l, jitter }),
                Err(e) => last_err = e,
            }
            jitter = BASE_JITTER * scale * 10f64.powi(step as i32);
        }
        Err(last_err)
    }

    /// Width of the column panel swept by the blocked factorization. Panel
    /// rows (`PANEL` prefixes of `L`) stay cache-resident while the whole
    /// trailing row range streams past them once per panel, instead of the
    /// row-by-row order re-streaming every previous row for every new one.
    const FACTOR_PANEL: usize = 48;

    fn try_factor(a: &Matrix, jitter: f64) -> Result<Matrix, LinalgError> {
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        // Left-looking panel sweep. Every entry is still
        //   l[i][j] = (a[i][j] (+ jitter on the diagonal) − ⟨L[i][..j], L[j][..j]⟩) / l[j][j]
        // with the prefix product computed as ONE fixed-order dot, so the
        // factor is bitwise identical at any panel width (the panel loop
        // only reorders which entries are visited).
        for k0 in (0..n).step_by(Self::FACTOR_PANEL) {
            let k1 = (k0 + Self::FACTOR_PANEL).min(n);
            for i in k0..n {
                for j in k0..k1.min(i + 1) {
                    let prefix = crate::kernels::dot_kernel(&l.row(i)[..j], &l.row(j)[..j]);
                    if i == j {
                        let sum = a[(i, i)] + jitter - prefix;
                        if sum <= 0.0 || !sum.is_finite() {
                            return Err(LinalgError::NotPositiveDefinite { pivot: i, jitter });
                        }
                        l[(i, i)] = sum.sqrt();
                    } else {
                        l[(i, j)] = (a[(i, j)] - prefix) / l[(j, j)];
                    }
                }
            }
        }
        Ok(l)
    }

    /// Extends the factorization by one bordered row: given the factor of
    /// an `n×n` matrix `A`, returns the factor of
    ///
    /// ```text
    /// [ A    row ]
    /// [ rowᵀ diag]
    /// ```
    ///
    /// in `O(n²)` (one forward substitution plus a scalar) instead of the
    /// `O(n³)` of refactoring from scratch. The new bottom row of `L` is
    /// `[yᵀ, √(diag − ‖y‖²)]` with `L y = row`.
    ///
    /// The stored factor is of `A + jitter·I`, so the appended diagonal
    /// entry receives the same jitter to stay consistent with a
    /// from-scratch [`Cholesky::factor`] of the jittered bordered matrix.
    /// If the Schur complement `diag − ‖y‖²` still comes out non-positive,
    /// an escalating *local* jitter is added to the appended entry only
    /// (the existing factor is immutable here); [`Cholesky::jitter`]
    /// continues to report the matrix-wide jitter.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `row.len() != self.dim()`,
    /// [`LinalgError::NonFinite`] for NaN/infinite input, and
    /// [`LinalgError::NotPositiveDefinite`] if the bordered matrix is not
    /// positive definite even at the maximum local jitter.
    ///
    /// # Examples
    ///
    /// ```
    /// use bofl_linalg::{Matrix, Cholesky};
    ///
    /// # fn main() -> Result<(), bofl_linalg::LinalgError> {
    /// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
    /// let chol = Cholesky::factor(&a)?.extend(&[0.5, 0.25], 2.0)?;
    /// let full = Matrix::from_rows(&[&[4.0, 1.0, 0.5],
    ///                                &[1.0, 3.0, 0.25],
    ///                                &[0.5, 0.25, 2.0]])?;
    /// let direct = Cholesky::factor(&full)?;
    /// assert!((chol.log_det() - direct.log_det()).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    pub fn extend(&self, row: &[f64], diag: f64) -> Result<Cholesky, LinalgError> {
        let n = self.dim();
        if row.len() != n {
            return Err(LinalgError::DimensionMismatch {
                left: (n, n),
                right: (row.len(), 1),
                op: "cholesky extend",
            });
        }
        if row.iter().any(|v| !v.is_finite()) || !diag.is_finite() {
            return Err(LinalgError::NonFinite { what: "border" });
        }
        let y = solve_lower(&self.l, row)?;
        let norm2: f64 = y.iter().map(|v| v * v).sum();
        let base = diag + self.jitter - norm2;
        let scale = if diag.abs() > 0.0 { diag.abs() } else { 1.0 };
        let mut d2 = base;
        let mut local_jitter = 0.0;
        let mut step = 0u32;
        while !(d2 > 0.0 && d2.is_finite()) {
            if step > MAX_JITTER_STEPS {
                return Err(LinalgError::NotPositiveDefinite {
                    pivot: n,
                    jitter: local_jitter,
                });
            }
            local_jitter = BASE_JITTER * scale * 10f64.powi(step as i32);
            d2 = base + local_jitter;
            step += 1;
        }

        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..=i {
                l[(i, j)] = self.l[(i, j)];
            }
        }
        for (j, yj) in y.iter().enumerate() {
            l[(n, j)] = *yj;
        }
        l[(n, n)] = d2.sqrt();
        Ok(Cholesky {
            l,
            jitter: self.jitter,
        })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// The diagonal jitter that was added to make the factorization succeed
    /// (zero when none was needed).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` using the factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let y = solve_lower(&self.l, b)?;
        solve_upper(&self.l.transpose(), &y)
    }

    /// Solves `L y = b` (half-solve), useful for computing quadratic forms
    /// `bᵀ A⁻¹ b = ‖y‖²` without the second substitution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve_half(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        solve_lower(&self.l, b)
    }

    /// Like [`Cholesky::solve_half`] but writes into a caller-provided
    /// buffer, so hot loops (batched GP prediction) can reuse one
    /// allocation across many solves.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len()` or
    /// `out.len()` differs from `self.dim()`, and
    /// [`LinalgError::SingularTriangular`] on a (near-)zero diagonal.
    pub fn solve_half_into(&self, b: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        let n = self.dim();
        if b.len() != n || out.len() != n {
            return Err(LinalgError::DimensionMismatch {
                left: (n, n),
                right: (b.len().max(out.len()), 1),
                op: "solve_half_into",
            });
        }
        for i in 0..n {
            let prefix = crate::kernels::dot_kernel(&self.l.row(i)[..i], &out[..i]);
            let d = self.l[(i, i)];
            if !d.is_normal() {
                return Err(LinalgError::SingularTriangular { index: i });
            }
            out[i] = (b[i] - prefix) / d;
        }
        Ok(())
    }

    /// `log det A = 2 Σ log L[i,i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Reconstructs `A = L Lᵀ` (for testing and diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        self.l
            .matmul(&self.l.transpose())
            .expect("factor dimensions are consistent by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]).unwrap()
    }

    #[test]
    fn factor_known_matrix() {
        let chol = Cholesky::factor(&spd3()).unwrap();
        let l = chol.l();
        assert!((l[(0, 0)] - 5.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 3.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 3.0).abs() < 1e-12);
        assert!((l[(2, 0)] + 1.0).abs() < 1e-12);
        assert!((l[(2, 1)] - 1.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
        assert_eq!(chol.jitter(), 0.0);
    }

    #[test]
    fn solve_roundtrip() {
        let a = spd3();
        let chol = Cholesky::factor(&a).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = chol.solve(&b).unwrap();
        for (xa, xb) in x.iter().zip(&x_true) {
            assert!((xa - xb).abs() < 1e-10);
        }
    }

    #[test]
    fn log_det_matches() {
        // det(spd3) = det(L)² = (5·3·3)² = 2025
        let chol = Cholesky::factor(&spd3()).unwrap();
        assert!((chol.log_det() - 2025f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn reconstruct_roundtrip() {
        let a = spd3();
        let r = Cholesky::factor(&a).unwrap().reconstruct();
        for i in 0..3 {
            for j in 0..3 {
                assert!((a[(i, j)] - r[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn jitter_rescues_near_singular() {
        // Rank-1 Gram matrix: xxᵀ with x = (1,1); singular but jitter fixes it.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let chol = Cholesky::factor(&a).unwrap();
        assert!(chol.jitter() > 0.0);
        assert!(chol.l().is_finite());
    }

    #[test]
    fn rejects_negative_definite() {
        let a = Matrix::from_rows(&[&[-4.0, 0.0], &[0.0, -4.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite { .. }
        ));
    }

    #[test]
    fn rejects_non_square_and_nan() {
        assert!(Cholesky::factor(&Matrix::zeros(2, 3)).is_err());
        let mut a = Matrix::identity(2);
        a[(0, 0)] = f64::NAN;
        assert!(matches!(
            Cholesky::factor(&a).unwrap_err(),
            LinalgError::NonFinite { .. }
        ));
    }

    #[test]
    fn extend_matches_full_factor() {
        // Border spd3 with a new row/diag and compare against refactoring.
        let a = spd3();
        let row = [1.0, 2.0, -0.5];
        let diag = 30.0;
        let ext = Cholesky::factor(&a).unwrap().extend(&row, diag).unwrap();
        let mut full = Matrix::zeros(4, 4);
        for i in 0..3 {
            for j in 0..3 {
                full[(i, j)] = a[(i, j)];
            }
            full[(3, i)] = row[i];
            full[(i, 3)] = row[i];
        }
        full[(3, 3)] = diag;
        let direct = Cholesky::factor(&full).unwrap();
        assert_eq!(ext.dim(), 4);
        for i in 0..4 {
            for j in 0..4 {
                assert!((ext.l()[(i, j)] - direct.l()[(i, j)]).abs() < 1e-12);
            }
        }
        assert!((ext.log_det() - direct.log_det()).abs() < 1e-12);
    }

    #[test]
    fn extend_chain_solves_like_scratch() {
        let a = spd3();
        let chol = Cholesky::factor(&a).unwrap();
        let c1 = chol.extend(&[1.0, 0.0, 1.0], 20.0).unwrap();
        let c2 = c1.extend(&[0.5, 0.5, 0.5, 0.5], 15.0).unwrap();
        let rec = c2.reconstruct();
        let b: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let x = c2.solve(&b).unwrap();
        let resid = rec.matvec(&x).unwrap();
        for (r, bi) in resid.iter().zip(&b) {
            assert!((r - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn extend_rescues_dependent_row_with_local_jitter() {
        // The new row equals an existing one → Schur complement ~0; the
        // local jitter must rescue the factorization.
        let a = spd3();
        let chol = Cholesky::factor(&a).unwrap();
        let ext = chol.extend(&[25.0, 15.0, -5.0], 25.0).unwrap();
        assert!(ext.l().is_finite());
        assert!(ext.l()[(3, 3)] > 0.0);
    }

    #[test]
    fn extend_validates_input() {
        let chol = Cholesky::factor(&spd3()).unwrap();
        assert!(matches!(
            chol.extend(&[1.0, 2.0], 1.0).unwrap_err(),
            LinalgError::DimensionMismatch { .. }
        ));
        assert!(matches!(
            chol.extend(&[1.0, f64::NAN, 0.0], 1.0).unwrap_err(),
            LinalgError::NonFinite { .. }
        ));
        assert!(matches!(
            chol.extend(&[1.0, 0.0, 0.0], f64::INFINITY).unwrap_err(),
            LinalgError::NonFinite { .. }
        ));
        // A wildly negative diagonal cannot be rescued.
        assert!(matches!(
            chol.extend(&[0.0, 0.0, 0.0], -100.0).unwrap_err(),
            LinalgError::NotPositiveDefinite { .. }
        ));
    }

    #[test]
    fn solve_half_into_matches_solve_half() {
        let chol = Cholesky::factor(&spd3()).unwrap();
        let b = [1.0, 2.0, 3.0];
        let expect = chol.solve_half(&b).unwrap();
        let mut out = vec![0.0; 3];
        chol.solve_half_into(&b, &mut out).unwrap();
        assert_eq!(out, expect);
        let mut short = vec![0.0; 2];
        assert!(matches!(
            chol.solve_half_into(&b, &mut short).unwrap_err(),
            LinalgError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn solve_half_quadratic_form() {
        let a = spd3();
        let chol = Cholesky::factor(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let y = chol.solve_half(&b).unwrap();
        let q1: f64 = y.iter().map(|v| v * v).sum();
        let x = chol.solve(&b).unwrap();
        let q2: f64 = b.iter().zip(&x).map(|(a, b)| a * b).sum();
        assert!((q1 - q2).abs() < 1e-10);
    }
}
