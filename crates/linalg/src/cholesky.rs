use crate::{solve_lower, solve_upper, LinalgError, Matrix};

/// Base jitter added to the diagonal when a factorization first fails.
const BASE_JITTER: f64 = 1e-10;
/// Number of ×10 jitter escalations attempted before giving up.
const MAX_JITTER_STEPS: u32 = 8;

/// A Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix, with automatic jitter escalation.
///
/// Gaussian-process Gram matrices are positive definite in exact arithmetic
/// but frequently lose that property to rounding when points are close
/// together (which happens constantly in DVFS grids where neighbouring
/// frequency steps are a few percent apart). Following standard GP practice,
/// [`Cholesky::factor`] retries with a growing diagonal jitter
/// (`1e-10 … 1e-2 × mean diagonal`) before reporting failure; the applied
/// jitter is recorded in [`Cholesky::jitter`].
///
/// # Examples
///
/// ```
/// use bofl_linalg::{Matrix, Cholesky};
///
/// # fn main() -> Result<(), bofl_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0],
///                             &[15.0, 18.0,  0.0],
///                             &[-5.0,  0.0, 11.0]])?;
/// let chol = Cholesky::factor(&a)?;
/// assert!((chol.log_det() - a_log_det()).abs() < 1e-9);
/// # fn a_log_det() -> f64 { (2025.0f64).ln() } // det(A) = det(L)² = 45²
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    jitter: f64,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the strict upper triangle is
    /// assumed to mirror it.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular input,
    /// [`LinalgError::NonFinite`] if `a` contains NaN or infinities, and
    /// [`LinalgError::NotPositiveDefinite`] if factorization fails even at
    /// the maximum jitter.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                dims: (a.rows(), a.cols()),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite { what: "matrix" });
        }
        let n = a.rows();
        let mean_diag = if n == 0 {
            1.0
        } else {
            (0..n).map(|i| a[(i, i)].abs()).sum::<f64>() / n as f64
        };
        let scale = if mean_diag > 0.0 { mean_diag } else { 1.0 };

        let mut jitter = 0.0;
        let mut last_err = LinalgError::NotPositiveDefinite { pivot: 0, jitter };
        for step in 0..=MAX_JITTER_STEPS {
            match Self::try_factor(a, jitter) {
                Ok(l) => return Ok(Cholesky { l, jitter }),
                Err(e) => last_err = e,
            }
            jitter = BASE_JITTER * scale * 10f64.powi(step as i32);
        }
        Err(last_err)
    }

    fn try_factor(a: &Matrix, jitter: f64) -> Result<Matrix, LinalgError> {
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i, jitter });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// The diagonal jitter that was added to make the factorization succeed
    /// (zero when none was needed).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` using the factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let y = solve_lower(&self.l, b)?;
        solve_upper(&self.l.transpose(), &y)
    }

    /// Solves `L y = b` (half-solve), useful for computing quadratic forms
    /// `bᵀ A⁻¹ b = ‖y‖²` without the second substitution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve_half(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        solve_lower(&self.l, b)
    }

    /// `log det A = 2 Σ log L[i,i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Reconstructs `A = L Lᵀ` (for testing and diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        self.l
            .matmul(&self.l.transpose())
            .expect("factor dimensions are consistent by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]).unwrap()
    }

    #[test]
    fn factor_known_matrix() {
        let chol = Cholesky::factor(&spd3()).unwrap();
        let l = chol.l();
        assert!((l[(0, 0)] - 5.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 3.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 3.0).abs() < 1e-12);
        assert!((l[(2, 0)] + 1.0).abs() < 1e-12);
        assert!((l[(2, 1)] - 1.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
        assert_eq!(chol.jitter(), 0.0);
    }

    #[test]
    fn solve_roundtrip() {
        let a = spd3();
        let chol = Cholesky::factor(&a).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = chol.solve(&b).unwrap();
        for (xa, xb) in x.iter().zip(&x_true) {
            assert!((xa - xb).abs() < 1e-10);
        }
    }

    #[test]
    fn log_det_matches() {
        // det(spd3) = det(L)² = (5·3·3)² = 2025
        let chol = Cholesky::factor(&spd3()).unwrap();
        assert!((chol.log_det() - 2025f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn reconstruct_roundtrip() {
        let a = spd3();
        let r = Cholesky::factor(&a).unwrap().reconstruct();
        for i in 0..3 {
            for j in 0..3 {
                assert!((a[(i, j)] - r[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn jitter_rescues_near_singular() {
        // Rank-1 Gram matrix: xxᵀ with x = (1,1); singular but jitter fixes it.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let chol = Cholesky::factor(&a).unwrap();
        assert!(chol.jitter() > 0.0);
        assert!(chol.l().is_finite());
    }

    #[test]
    fn rejects_negative_definite() {
        let a = Matrix::from_rows(&[&[-4.0, 0.0], &[0.0, -4.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite { .. }
        ));
    }

    #[test]
    fn rejects_non_square_and_nan() {
        assert!(Cholesky::factor(&Matrix::zeros(2, 3)).is_err());
        let mut a = Matrix::identity(2);
        a[(0, 0)] = f64::NAN;
        assert!(matches!(
            Cholesky::factor(&a).unwrap_err(),
            LinalgError::NonFinite { .. }
        ));
    }

    #[test]
    fn solve_half_quadratic_form() {
        let a = spd3();
        let chol = Cholesky::factor(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let y = chol.solve_half(&b).unwrap();
        let q1: f64 = y.iter().map(|v| v * v).sum();
        let x = chol.solve(&b).unwrap();
        let q2: f64 = b.iter().zip(&x).map(|(a, b)| a * b).sum();
        assert!((q1 - q2).abs() < 1e-10);
    }
}
