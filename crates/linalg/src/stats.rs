use crate::LinalgError;

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used by the device sensor simulation (averaging noisy power samples) and
/// by output standardization in the GP, both of which need numerically
/// stable single-pass statistics.
///
/// # Examples
///
/// ```
/// use bofl_linalg::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance `Σ(x−μ)²/n` (zero when fewer than one sample).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance `Σ(x−μ)²/(n−1)` (zero when fewer than two
    /// samples).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// An affine `z = (x − shift) / scale` transform fit from data, used to
/// standardize GP inputs and outputs.
///
/// # Examples
///
/// ```
/// use bofl_linalg::Standardizer;
///
/// # fn main() -> Result<(), bofl_linalg::LinalgError> {
/// let s = Standardizer::fit(&[1.0, 2.0, 3.0])?;
/// let z = s.apply(2.0);
/// assert!((s.invert(z) - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Standardizer {
    shift: f64,
    scale: f64,
}

impl Standardizer {
    /// Fits mean/std from data. A degenerate (constant) sample gets unit
    /// scale so the transform stays invertible.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty slice and
    /// [`LinalgError::NonFinite`] if the data contain NaN or infinities.
    pub fn fit(xs: &[f64]) -> Result<Self, LinalgError> {
        if xs.is_empty() {
            return Err(LinalgError::Empty { what: "xs" });
        }
        if xs.iter().any(|v| !v.is_finite()) {
            return Err(LinalgError::NonFinite { what: "xs" });
        }
        let mut stats = OnlineStats::new();
        for &x in xs {
            stats.push(x);
        }
        let std = stats.sample_std();
        Ok(Standardizer {
            shift: stats.mean(),
            scale: if std > 1e-12 { std } else { 1.0 },
        })
    }

    /// An identity transform (`shift = 0`, `scale = 1`).
    pub fn identity() -> Self {
        Standardizer {
            shift: 0.0,
            scale: 1.0,
        }
    }

    /// Builds a transform mapping `[lo, hi]` onto `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NonFinite`] if the bounds are non-finite or
    /// `hi <= lo`.
    pub fn from_bounds(lo: f64, hi: f64) -> Result<Self, LinalgError> {
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return Err(LinalgError::NonFinite { what: "bounds" });
        }
        Ok(Standardizer {
            shift: lo,
            scale: hi - lo,
        })
    }

    /// Applies the forward transform.
    pub fn apply(&self, x: f64) -> f64 {
        (x - self.shift) / self.scale
    }

    /// Applies the inverse transform.
    pub fn invert(&self, z: f64) -> f64 {
        z * self.scale + self.shift
    }

    /// Rescales a standardized *standard deviation* back to original units
    /// (shift does not apply to dispersions).
    pub fn invert_std(&self, z_std: f64) -> f64 {
        z_std * self.scale
    }

    /// The shift (mean or lower bound).
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// The scale (std or range width); always positive.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Default for Standardizer {
    fn default() -> Self {
        Self::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [1.5, 2.5, 3.5, 10.0, -4.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 =
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -4.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..2] {
            a.push(x);
        }
        for &x in &xs[2..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-12);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn standardizer_roundtrip() {
        let s = Standardizer::fit(&[10.0, 20.0, 30.0]).unwrap();
        for x in [-5.0, 10.0, 17.3, 100.0] {
            assert!((s.invert(s.apply(x)) - x).abs() < 1e-9);
        }
        assert!((s.apply(20.0)).abs() < 1e-12); // mean maps to 0
    }

    #[test]
    fn standardizer_constant_data() {
        let s = Standardizer::fit(&[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(s.scale(), 1.0);
        assert_eq!(s.apply(5.0), 0.0);
    }

    #[test]
    fn standardizer_bounds() {
        let s = Standardizer::from_bounds(100.0, 300.0).unwrap();
        assert_eq!(s.apply(100.0), 0.0);
        assert_eq!(s.apply(300.0), 1.0);
        assert!(Standardizer::from_bounds(1.0, 1.0).is_err());
        assert!(Standardizer::from_bounds(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn standardizer_rejects_bad_input() {
        assert!(Standardizer::fit(&[]).is_err());
        assert!(Standardizer::fit(&[1.0, f64::NAN]).is_err());
    }
}
