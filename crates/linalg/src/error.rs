use std::error::Error;
use std::fmt;

/// Error type for every fallible operation in this crate.
///
/// All variants carry enough context to diagnose the failing call without a
/// debugger; `Display` messages are lowercase and concise per Rust API
/// guidelines (C-GOOD-ERR).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Matrix dimensions were incompatible for the requested operation.
    DimensionMismatch {
        /// Dimensions of the left/first operand `(rows, cols)`.
        left: (usize, usize),
        /// Dimensions of the right/second operand `(rows, cols)`.
        right: (usize, usize),
        /// The operation that was attempted, e.g. `"matmul"`.
        op: &'static str,
    },
    /// A square matrix was required but a rectangular one was supplied.
    NotSquare {
        /// Actual dimensions `(rows, cols)`.
        dims: (usize, usize),
    },
    /// Cholesky factorization failed: the matrix is not positive definite
    /// even after the maximum jitter was added to the diagonal.
    NotPositiveDefinite {
        /// Index of the pivot that went non-positive.
        pivot: usize,
        /// The final jitter value that was attempted.
        jitter: f64,
    },
    /// A triangular solve hit a zero (or subnormal) diagonal entry.
    SingularTriangular {
        /// Index of the offending diagonal entry.
        index: usize,
    },
    /// An input slice was empty where at least one element is required.
    Empty {
        /// Name of the offending argument.
        what: &'static str,
    },
    /// A non-finite (NaN or infinite) value was found in an input.
    NonFinite {
        /// Name of the offending argument.
        what: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { left, right, op } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { dims } => {
                write!(f, "square matrix required, got {}x{}", dims.0, dims.1)
            }
            LinalgError::NotPositiveDefinite { pivot, jitter } => write!(
                f,
                "matrix is not positive definite (pivot {pivot} non-positive with jitter {jitter:e})"
            ),
            LinalgError::SingularTriangular { index } => {
                write!(f, "singular triangular matrix (zero diagonal at {index})")
            }
            LinalgError::Empty { what } => write!(f, "{what} must not be empty"),
            LinalgError::NonFinite { what } => write!(f, "{what} contains a non-finite value"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            LinalgError::DimensionMismatch {
                left: (2, 3),
                right: (4, 5),
                op: "matmul",
            },
            LinalgError::NotSquare { dims: (2, 3) },
            LinalgError::NotPositiveDefinite {
                pivot: 1,
                jitter: 1e-6,
            },
            LinalgError::SingularTriangular { index: 0 },
            LinalgError::Empty { what: "xs" },
            LinalgError::NonFinite { what: "ys" },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
