//! Small, dependency-free dense linear-algebra kernels for the BoFL
//! reproduction.
//!
//! The Gaussian-process surrogate ([`bofl-gp`]), the EHVI acquisition
//! ([`bofl-mobo`]) and the simplex/ILP solver ([`bofl-ilp`]) all need a
//! handful of dense operations on matrices ranging from tens of rows up to
//! the few-thousand range produced by pooled fleet observations. This
//! crate provides exactly those kernels — row-major [`Matrix`],
//! [`Cholesky`] factorization with jitter escalation, triangular solves,
//! and streaming statistics — with numerics tuned for that size regime and
//! nothing else.
//!
//! Every dense operation reduces each output element to one call of a
//! shared fixed-order dot micro-kernel (see `kernels`), so cache blocking
//! and the opt-in `simd` feature (SSE2 on `x86_64`; elsewhere it falls
//! back to the scalar kernel) change throughput but never bits: results
//! are bitwise identical at any block size and across the scalar/SIMD
//! builds. The `simd` feature is the only part of the crate allowed to
//! use `unsafe` (a single audited intrinsics routine); the default build
//! keeps `forbid(unsafe_code)`.
//!
//! # Examples
//!
//! Solving a symmetric positive-definite system via Cholesky:
//!
//! ```
//! use bofl_linalg::{Matrix, Cholesky};
//!
//! # fn main() -> Result<(), bofl_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
//! let chol = Cholesky::factor(&a)?;
//! let x = chol.solve(&[2.0, 3.0])?;
//! assert!((4.0 * x[0] + 2.0 * x[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```
//!
//! [`bofl-gp`]: https://docs.rs/bofl-gp
//! [`bofl-mobo`]: https://docs.rs/bofl-mobo
//! [`bofl-ilp`]: https://docs.rs/bofl-ilp

#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

mod cholesky;
mod error;
mod kernels;
mod matrix;
mod stats;
mod triangular;
mod vecops;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use stats::{OnlineStats, Standardizer};
pub use triangular::{solve_lower, solve_upper};
pub use vecops::{axpy, dot, infinity_norm, norm2, scale};
