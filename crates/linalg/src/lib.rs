//! Small, dependency-free dense linear-algebra kernels for the BoFL
//! reproduction.
//!
//! The Gaussian-process surrogate ([`bofl-gp`]), the EHVI acquisition
//! ([`bofl-mobo`]) and the simplex/ILP solver ([`bofl-ilp`]) all need a
//! handful of dense operations on matrices that are tiny by HPC standards
//! (tens to a few hundreds of rows). This crate provides exactly those
//! kernels — row-major [`Matrix`], [`Cholesky`] factorization with jitter
//! escalation, triangular solves, and streaming statistics — with numerics
//! tuned for that size regime and nothing else.
//!
//! # Examples
//!
//! Solving a symmetric positive-definite system via Cholesky:
//!
//! ```
//! use bofl_linalg::{Matrix, Cholesky};
//!
//! # fn main() -> Result<(), bofl_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
//! let chol = Cholesky::factor(&a)?;
//! let x = chol.solve(&[2.0, 3.0])?;
//! assert!((4.0 * x[0] + 2.0 * x[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```
//!
//! [`bofl-gp`]: https://docs.rs/bofl-gp
//! [`bofl-mobo`]: https://docs.rs/bofl-mobo
//! [`bofl-ilp`]: https://docs.rs/bofl-ilp

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod error;
mod matrix;
mod stats;
mod triangular;
mod vecops;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use stats::{OnlineStats, Standardizer};
pub use triangular::{solve_lower, solve_upper};
pub use vecops::{axpy, dot, infinity_norm, norm2, scale};
