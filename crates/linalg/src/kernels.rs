//! The fixed-order dot-product micro-kernel underneath every dense
//! operation in this crate.
//!
//! `matmul`, `matvec`, the blocked Cholesky factorization and the
//! triangular solves all reduce each output element to **one** call of
//! [`dot_kernel`] over a contiguous range. That gives the whole crate a
//! single determinism contract:
//!
//! * The kernel accumulates into four independent lanes over
//!   `chunks_exact(4)` and combines them as `(acc0 + acc2) + (acc1 + acc3)`
//!   before folding the `len % 4` tail sequentially. The order never
//!   depends on the caller, so any algorithm that maps each output element
//!   to one kernel call over a fixed range is bitwise reproducible no
//!   matter how its loops are blocked or tiled — blocking reorders *which*
//!   elements are computed, never *how* a sum is formed.
//! * The opt-in `simd` feature swaps in an SSE2 implementation whose lane
//!   layout reproduces the exact same combine tree (two `__m128d`
//!   accumulators, multiply-then-add with no FMA contraction, horizontal
//!   add of `acc01 + acc23`), so the SIMD build is bitwise identical to
//!   the scalar one — not merely within tolerance.
//!
//! Slices shorter than four elements never enter the lane loop and are
//! summed left-to-right, which keeps tiny systems (2×2 test fixtures)
//! identical to the historical sequential kernel.

/// Fixed-order dot product of two equal-length slices.
///
/// This is the only summation primitive the dense kernels use; see the
/// module docs for the determinism contract.
#[inline]
pub(crate) fn dot_kernel(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot_kernel: length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        sse2::dot(a, b)
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        dot_scalar(a, b)
    }
}

/// Scalar reference kernel: four independent accumulators, combined as
/// `(acc0 + acc2) + (acc1 + acc3)`, then the sequential tail.
#[cfg_attr(all(feature = "simd", target_arch = "x86_64"), allow(dead_code))]
#[inline]
fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    let split = a.len() - a.len() % 4;
    let (a4, a_tail) = a.split_at(split);
    let (b4, b_tail) = b.split_at(split);
    let mut acc = [0.0f64; 4];
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut sum = (acc[0] + acc[2]) + (acc[1] + acc[3]);
    for (x, y) in a_tail.iter().zip(b_tail) {
        sum += x * y;
    }
    sum
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod sse2 {
    use core::arch::x86_64::{
        _mm_add_pd, _mm_add_sd, _mm_cvtsd_f64, _mm_loadu_pd, _mm_mul_pd, _mm_setzero_pd,
        _mm_unpackhi_pd,
    };

    /// SSE2 kernel, bitwise identical to `dot_scalar`.
    ///
    /// `acc01` holds lanes (0, 1) and `acc23` lanes (2, 3) of the scalar
    /// accumulator array; `_mm_add_pd(acc01, acc23)` yields
    /// `[acc0 + acc2, acc1 + acc3]` and the final scalar add reproduces the
    /// `(acc0 + acc2) + (acc1 + acc3)` combine. Multiplies and adds stay
    /// separate IEEE operations (no FMA), matching the scalar rounding.
    #[inline]
    pub(super) fn dot(a: &[f64], b: &[f64]) -> f64 {
        let split = a.len() - a.len() % 4;
        let (a4, a_tail) = a.split_at(split);
        let (b4, b_tail) = b.split_at(split);
        // SAFETY: SSE2 is part of the x86_64 baseline target features, and
        // every load reads two lanes at offsets `i`/`i + 2` with
        // `i + 4 <= split == a4.len() == b4.len()`.
        let mut sum = unsafe {
            let mut acc01 = _mm_setzero_pd();
            let mut acc23 = _mm_setzero_pd();
            let mut i = 0;
            while i < split {
                let prod01 = _mm_mul_pd(
                    _mm_loadu_pd(a4.as_ptr().add(i)),
                    _mm_loadu_pd(b4.as_ptr().add(i)),
                );
                let prod23 = _mm_mul_pd(
                    _mm_loadu_pd(a4.as_ptr().add(i + 2)),
                    _mm_loadu_pd(b4.as_ptr().add(i + 2)),
                );
                acc01 = _mm_add_pd(acc01, prod01);
                acc23 = _mm_add_pd(acc23, prod23);
                i += 4;
            }
            let pair = _mm_add_pd(acc01, acc23);
            _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)))
        };
        for (x, y) in a_tail.iter().zip(b_tail) {
            sum += x * y;
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sequential(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn empty_dot_is_positive_zero() {
        // `iter().sum()` yields -0.0 on an empty iterator; the kernel
        // deliberately returns +0.0, the additive identity that leaves
        // `b[i] - prefix` bitwise untouched in the triangular solves.
        assert_eq!(dot_kernel(&[], &[]).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn kernel_matches_sequential_on_short_slices() {
        // Below the lane width the kernel must be *bitwise* sequential.
        for n in 1..4usize {
            let a: Vec<f64> = (0..n).map(|i| 0.1 + i as f64).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.7 - i as f64).collect();
            assert_eq!(dot_kernel(&a, &b).to_bits(), sequential(&a, &b).to_bits());
        }
    }

    #[test]
    fn kernel_near_sequential_on_long_slices() {
        let a: Vec<f64> = (0..257).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..257).map(|i| (i as f64 * 0.11).cos()).collect();
        let got = dot_kernel(&a, &b);
        let want = sequential(&a, &b);
        assert!((got - want).abs() <= 1e-12 * a.len() as f64);
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn simd_is_bitwise_identical_to_scalar() {
        for n in [0usize, 1, 3, 4, 5, 8, 17, 64, 127, 1024] {
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7311).sin() * 3.0).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2931).cos() - 0.4).collect();
            assert_eq!(sse2::dot(&a, &b).to_bits(), dot_scalar(&a, &b).to_bits());
        }
    }
}
