//! Slice-level vector helpers shared by the numeric crates.

/// Dot product of two equal-length slices.
///
/// Runs the crate-wide fixed-order micro-kernel: four independent
/// accumulators over `chunks_exact(4)` combined as
/// `(acc0 + acc2) + (acc1 + acc3)`, then a sequential tail. The order is
/// identical in the scalar and `simd` builds, so results are bitwise
/// reproducible across both.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(bofl_linalg::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    crate::kernels::dot_kernel(a, b)
}

/// Euclidean norm `‖a‖₂`, computed with scaling to avoid overflow.
///
/// # Examples
///
/// ```
/// assert_eq!(bofl_linalg::norm2(&[3.0, 4.0]), 5.0);
/// ```
pub fn norm2(a: &[f64]) -> f64 {
    let max = infinity_norm(a);
    if max == 0.0 || !max.is_finite() {
        return max;
    }
    let sum: f64 = a.iter().map(|v| (v / max) * (v / max)).sum();
    max * sum.sqrt()
}

/// Infinity norm `max |aᵢ|` (zero for an empty slice).
pub fn infinity_norm(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// In-place `y ← α x + y`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `x ← α x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basics() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[1.0, -1.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norm2_overflow_safe() {
        let big = f64::MAX / 2.0;
        let n = norm2(&[big, big]);
        assert!(n.is_finite());
        assert!((n / big - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn norm2_zero_and_empty() {
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 10.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![3.5, 5.0]);
    }

    #[test]
    fn infinity_norm_basics() {
        assert_eq!(infinity_norm(&[-3.0, 2.0]), 3.0);
        assert_eq!(infinity_norm(&[]), 0.0);
    }
}
