//! Microbenchmarks of the computational kernels BoFL exercises on every
//! round: device cost evaluation, GP fitting/prediction, EHVI, the
//! hypervolume indicator and the exploitation ILP.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use bofl_device::Device;
use bofl_gp::{GaussianProcess, GpConfig};
use bofl_ilp::{solve_profile, solve_profile_pairs, ConfigCost};
use bofl_linalg::{Cholesky, Matrix};
use bofl_mobo::ehvi::{expected_hypervolume_improvement, BiGaussian};
use bofl_mobo::hypervolume::hypervolume;
use bofl_mobo::{MoboConfig, MoboEngine, Observation, ParetoFront, SobolSequence};
use bofl_workload::{FlTask, TaskKind, Testbed};

fn device_eval(c: &mut Criterion) {
    let device = Device::jetson_agx();
    let task = FlTask::preset(TaskKind::ImagenetResnet50, Testbed::JetsonAgx);
    let space = device.config_space().clone();
    let configs: Vec<_> = space.iter().collect();
    c.bench_function("device/true_cost_2100_configs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in &configs {
                acc += device.true_cost(&task, x).energy_j;
            }
            black_box(acc)
        })
    });
}

fn gp_fit_predict(c: &mut Criterion) {
    // A BoFL-sized training set: 70 observations in 3-D.
    let mut sobol = SobolSequence::new(3);
    let xs: Vec<Vec<f64>> = (0..70).map(|_| sobol.next_point()).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 4.0 + x[0] - 2.0 * x[1] + (5.0 * x[2]).sin())
        .collect();
    let cfg = GpConfig {
        restarts: 2,
        max_evaluations: 250,
        ..GpConfig::default()
    };
    c.bench_function("gp/fit_70pts_3d_mle", |b| {
        b.iter(|| GaussianProcess::fit(black_box(&xs), black_box(&ys), cfg.clone()).unwrap())
    });

    let gp = GaussianProcess::fit(&xs, &ys, cfg).unwrap();
    let queries: Vec<Vec<f64>> = (0..2100)
        .map(|i| {
            let t = i as f64 / 2100.0;
            vec![t, (t * 7.0).fract(), (t * 13.0).fract()]
        })
        .collect();
    c.bench_function("gp/predict_2100_queries", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for q in &queries {
                acc += gp.predict(q).unwrap().mean;
            }
            black_box(acc)
        })
    });
}

fn ehvi_and_hypervolume(c: &mut Criterion) {
    let front: ParetoFront = (0..20)
        .map(|i| {
            let t = i as f64 / 19.0;
            [1.0 + 4.0 * t, 5.0 - 4.0 * t]
        })
        .collect();
    let r = [6.0, 6.0];
    c.bench_function("mobo/hypervolume_20pt_front", |b| {
        b.iter(|| black_box(hypervolume(black_box(&front), r)))
    });

    let post = BiGaussian {
        mean0: 2.5,
        std0: 0.4,
        mean1: 2.5,
        std1: 0.4,
    };
    c.bench_function("mobo/ehvi_single_eval", |b| {
        b.iter(|| black_box(expected_hypervolume_improvement(black_box(&front), post, r)))
    });
    c.bench_function("mobo/ehvi_2100_candidates", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..2100 {
                let t = i as f64 / 2100.0;
                let p = BiGaussian {
                    mean0: 1.0 + 4.0 * t,
                    std0: 0.3,
                    mean1: 5.0 - 4.0 * t,
                    std1: 0.3,
                };
                acc += expected_hypervolume_improvement(&front, p, r);
            }
            black_box(acc)
        })
    });
}

fn exploitation_ilp(c: &mut Criterion) {
    // A realistic Pareto set: ~25 trade-off candidates, 200 jobs.
    let candidates: Vec<ConfigCost> = (0..25)
        .map(|i| {
            let t = i as f64 / 24.0;
            ConfigCost {
                latency_s: 0.18 + 0.20 * t,
                energy_j: 5.0 - 1.6 * t,
            }
        })
        .collect();
    c.bench_function("ilp/solve_profile_25x200", |b| {
        b.iter_batched(
            || candidates.clone(),
            |cands| solve_profile(black_box(&cands), 200, 55.0).unwrap(),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("ilp/solve_profile_pairs_25x200", |b| {
        b.iter(|| solve_profile_pairs(black_box(&candidates), 200, 55.0).unwrap())
    });
}

fn mobo_suggest(c: &mut Criterion) {
    // The surrogate hot path end to end: fit both GPs, run the
    // sequential-greedy EHVI scan over 512 candidates, pick a batch of 8.
    // `cold` fits from scratch (full multi-start); `warm` re-suggests on
    // an engine whose hyperparameter cache is already populated — the
    // steady-state cost of one Pareto-construction round.
    for &n in &[16usize, 64, 128] {
        let mut engine = MoboEngine::new(MoboConfig::default());
        let mut sobol = SobolSequence::new(3);
        for _ in 0..n {
            let x = sobol.next_point();
            let f0 = 2.0 + x[0] + 0.5 * (7.0 * x[1]).sin() + 0.2 * x[2];
            let f1 = 3.0 - x[0] + 0.4 * (5.0 * x[2]).cos() + 0.2 * x[1];
            engine.observe(Observation::new(x, [f0, f1])).unwrap();
        }
        let candidates: Vec<Vec<f64>> = (0..512).map(|_| sobol.next_point()).collect();
        c.bench_function(&format!("mobo/suggest_cold_{n}obs_512cand_k8"), |b| {
            b.iter_batched(
                || engine.clone(),
                |mut e| e.suggest(8, &candidates).unwrap(),
                BatchSize::SmallInput,
            )
        });
        let mut warmed = engine.clone();
        warmed.suggest(8, &candidates).unwrap();
        c.bench_function(&format!("mobo/suggest_warm_{n}obs_512cand_k8"), |b| {
            b.iter_batched(
                || warmed.clone(),
                |mut e| e.suggest(8, &candidates).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
}

fn cholesky_extend_vs_factor(c: &mut Criterion) {
    // Appending one point to a 128-point GP: bordered update (O(n²))
    // against the from-scratch refactorization (O(n³)) it replaces.
    let n = 128;
    let a = Matrix::from_fn(n, n, |i, j| {
        let d = (i as f64 - j as f64) / 16.0;
        3.0 * (-d * d).exp() + if i == j { 0.5 } else { 0.0 }
    });
    let chol = Cholesky::factor(&a).unwrap();
    let row: Vec<f64> = (0..n)
        .map(|i| {
            let d = (i as f64 - n as f64) / 16.0;
            3.0 * (-d * d).exp()
        })
        .collect();
    let diag = 3.5;
    c.bench_function("linalg/cholesky_extend_128", |b| {
        b.iter(|| chol.extend(black_box(&row), black_box(diag)).unwrap())
    });
    let full = Matrix::from_fn(n + 1, n + 1, |i, j| {
        if i < n && j < n {
            a[(i, j)]
        } else if i == n && j == n {
            diag
        } else {
            row[i.min(j)]
        }
    });
    c.bench_function("linalg/cholesky_factor_129", |b| {
        b.iter(|| Cholesky::factor(black_box(&full)).unwrap())
    });
}

fn sobol(c: &mut Criterion) {
    c.bench_function("mobo/sobol_1000_points_3d", |b| {
        b.iter(|| {
            let mut s = SobolSequence::new(3);
            black_box(s.take_points(1000))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = device_eval, gp_fit_predict, ehvi_and_hypervolume, exploitation_ilp,
        mobo_suggest, cholesky_extend_vs_factor, sobol
}
criterion_main!(benches);
