//! Host introspection for benchmark artifacts.

use std::num::NonZeroUsize;

/// Number of CPU cores the host exposes, for `BENCH_*.json` provenance.
///
/// [`std::thread::available_parallelism`] alone under-reports on hosts
/// where the process is pinned to a subset of cores or confined by a
/// cgroup quota — exactly the environments CI benches run in. Cross-check
/// it against the physical `processor` count in `/proc/cpuinfo` (Linux;
/// absent elsewhere) and report the larger of the two, never less than 1.
pub fn host_cores() -> usize {
    let available = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    available.max(cpuinfo_processors().unwrap_or(0)).max(1)
}

/// `processor` entries in `/proc/cpuinfo`, if the file exists and lists
/// any.
fn cpuinfo_processors() -> Option<usize> {
    let cpuinfo = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    let count = cpuinfo
        .lines()
        .filter(|l| {
            l.split(':')
                .next()
                .is_some_and(|key| key.trim() == "processor")
        })
        .count();
    (count > 0).then_some(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_cores_is_at_least_one_and_consistent() {
        let cores = host_cores();
        assert!(cores >= 1);
        // Never less than what the runtime itself reports.
        let available = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert!(cores >= available);
        // Deterministic within a process.
        assert_eq!(cores, host_cores());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn cpuinfo_parse_agrees_with_proc() {
        // On Linux /proc/cpuinfo exists; the parser must find every core
        // the kernel lists (cores, not model lines).
        let n = cpuinfo_processors().expect("/proc/cpuinfo readable on linux");
        assert!(n >= 1);
        assert!(host_cores() >= n);
    }
}
