//! Experiment harness for the BoFL reproduction: one module per table or
//! figure of the paper's evaluation (§6), shared between the `reproduce`
//! binary and the Criterion benches.
//!
//! Every experiment function returns a [`report::Report`] — a set of named
//! CSV-able tables plus a human-readable rendering — so the binary can
//! both print and persist results, and tests can assert on the numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod host;
pub mod report;

pub use host::host_cores;
pub use report::{Report, Table};
