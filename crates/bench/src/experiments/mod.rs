//! One module per table/figure of the paper's evaluation (§6).

pub mod ablations;
pub mod common;
pub mod fig11_pareto;
pub mod fig12_sensitivity;
pub mod fig13_overhead;
pub mod fig2_spread;
pub mod fig3_fig4_fig5_motivation;
pub mod fig9_fig10_energy;
pub mod fleet_scale;
pub mod table1_table2_specs;
pub mod table3_walkthrough;

pub use common::{run_triple, ExperimentScale, TripleRun};
