//! Shared experiment machinery: the BoFL / Performant / Oracle triple run
//! that most figures are built from.

use bofl::baselines::{OracleController, PerformantController};
use bofl::prelude::*;
use bofl::BoflController;
use bofl_device::ConfigIndex;
use bofl_workload::{TaskKind, Testbed};

/// Scale of an experiment: full paper scale, or reduced for benches/tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// FL rounds per run (paper: 100).
    pub rounds: usize,
    /// Seed for the deadline schedule.
    pub deadline_seed: u64,
    /// Seed for measurement noise.
    pub noise_seed: u64,
}

impl ExperimentScale {
    /// The paper's scale: 100 rounds.
    pub fn full() -> Self {
        ExperimentScale {
            rounds: 100,
            deadline_seed: 2022,
            noise_seed: 7,
        }
    }

    /// Reduced scale for Criterion benches and smoke tests.
    pub fn quick() -> Self {
        ExperimentScale {
            rounds: 20,
            deadline_seed: 2022,
            noise_seed: 7,
        }
    }
}

/// The device preset for a testbed.
pub fn device_for(testbed: Testbed) -> Device {
    match testbed {
        Testbed::JetsonAgx => Device::jetson_agx(),
        Testbed::JetsonTx2 => Device::jetson_tx2(),
        _ => unreachable!("only two testbeds exist"),
    }
}

/// A matched triple of runs over the same deadlines and noise seeds.
#[derive(Debug, Clone)]
pub struct TripleRun {
    /// Which task was run.
    pub kind: TaskKind,
    /// Which testbed it ran on.
    pub testbed: Testbed,
    /// The deadline schedule used by all three controllers.
    pub schedule: DeadlineSchedule,
    /// The BoFL run.
    pub bofl: RunSummary,
    /// The Performant baseline run.
    pub performant: RunSummary,
    /// The Oracle baseline run.
    pub oracle: RunSummary,
    /// Mean measured costs of BoFL's final Pareto set: `(index, T̂, Ê)`.
    pub bofl_pareto: Vec<(ConfigIndex, f64, f64)>,
    /// Every configuration BoFL measured: `(index, T̂, Ê)`.
    pub bofl_observed: Vec<(ConfigIndex, f64, f64)>,
    /// Host wall-clock seconds per MBO invocation.
    pub mbo_host_durations: Vec<f64>,
}

impl TripleRun {
    /// Energy improvement of BoFL vs Performant (paper §6.4 metric 1).
    pub fn improvement(&self) -> f64 {
        bofl::metrics::improvement_vs(&self.bofl, &self.performant)
    }

    /// Energy regret of BoFL vs Oracle (paper §6.4 metric 2).
    pub fn regret(&self) -> f64 {
        bofl::metrics::regret_vs(&self.bofl, &self.oracle)
    }
}

/// Runs BoFL, Performant and Oracle on one task/testbed with deadlines
/// drawn uniformly from `[T_min, ratio × T_min]`.
pub fn run_triple(
    kind: TaskKind,
    testbed: Testbed,
    ratio: f64,
    scale: ExperimentScale,
) -> TripleRun {
    let device = device_for(testbed);
    let task = FlTask::preset(kind, testbed);
    let schedule =
        DeadlineSchedule::uniform(&device, &task, scale.rounds, ratio, scale.deadline_seed);
    let runner = ClientRunner::new(device.clone(), task.clone(), scale.noise_seed);

    let mut bofl_ctrl = BoflController::new(BoflConfig::default());
    let bofl = runner.run(&mut bofl_ctrl, schedule.deadlines());

    let mut perf_ctrl = PerformantController::new();
    let performant = runner.run(&mut perf_ctrl, schedule.deadlines());

    let mut oracle_ctrl = OracleController::new(device.profile_all(&task));
    let oracle = runner.run(&mut oracle_ctrl, schedule.deadlines());

    let space = device.config_space();
    let bofl_pareto = bofl_ctrl
        .observations()
        .pareto_set()
        .into_iter()
        .filter_map(|a| {
            space
                .index_of(a.config)
                .map(|i| (i, a.mean_latency_s(), a.mean_energy_j()))
        })
        .collect();
    let bofl_observed = bofl_ctrl
        .observations()
        .iter()
        .filter_map(|a| {
            space
                .index_of(a.config)
                .map(|i| (i, a.mean_latency_s(), a.mean_energy_j()))
        })
        .collect();
    let mbo_host_durations = bofl
        .reports
        .iter()
        .filter_map(|r| r.mbo_duration)
        .map(|d| d.as_secs_f64())
        .collect();

    TripleRun {
        kind,
        testbed,
        schedule,
        bofl,
        performant,
        oracle,
        bofl_pareto,
        bofl_observed,
        mbo_host_durations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_run_is_internally_consistent() {
        let t = run_triple(
            TaskKind::Cifar10Vit,
            Testbed::JetsonAgx,
            2.0,
            ExperimentScale {
                rounds: 12,
                deadline_seed: 3,
                noise_seed: 5,
            },
        );
        assert_eq!(t.bofl.reports.len(), 12);
        assert_eq!(t.performant.reports.len(), 12);
        assert_eq!(t.oracle.reports.len(), 12);
        assert_eq!(t.bofl.deadlines_met(), 12);
        assert!(!t.bofl_pareto.is_empty());
        assert!(t.bofl_observed.len() >= t.bofl_pareto.len());
        // Oracle never does worse than Performant.
        assert!(t.oracle.total_energy_j() <= t.performant.total_energy_j() * 1.001);
    }
}
