//! Table 1 (testbed hardware specifications) and Table 2 (FL task
//! specifications including the measured `T_min` values).

use crate::experiments::common::device_for;
use crate::report::{f, Report, Table};
use bofl_device::Device;
use bofl_workload::{FlTask, TaskKind, Testbed};

/// Regenerates Table 1: the per-unit frequency ranges and grid sizes.
pub fn table1() -> Report {
    let mut report = Report::new("Table 1: BoFL Testbed Hardware Specifications");
    let mut t = Table::new(
        "table1_specs",
        &[
            "device",
            "cpu_range_ghz",
            "cpu_steps",
            "gpu_range_ghz",
            "gpu_steps",
            "mem_range_ghz",
            "mem_steps",
            "configs",
        ],
    );
    for bed in Testbed::all() {
        let d = device_for(bed);
        let s = d.config_space();
        let range =
            |t: &bofl_device::FreqTable| format!("{:.2}-{:.2}", t.min().as_ghz(), t.max().as_ghz());
        t.push_row(vec![
            d.name().to_string(),
            range(s.cpu_table()),
            s.cpu_table().len().to_string(),
            range(s.gpu_table()),
            s.gpu_table().len().to_string(),
            range(s.mem_table()),
            s.mem_table().len().to_string(),
            s.len().to_string(),
        ]);
    }
    report.note("Paper: AGX 25×14×6 = 2100 configurations, TX2 12×13×6 = 936.");
    report.push_table(t);
    report
}

/// Regenerates Table 2: task parameters plus the *measured* `T_min`
/// (round latency with every clock at maximum) on the simulated devices,
/// next to the paper's values.
pub fn table2() -> Report {
    let mut report = Report::new("Table 2: Federated Learning Task Specifications");
    let mut t = Table::new(
        "table2_tasks",
        &[
            "task",
            "B",
            "E",
            "N_agx",
            "N_tx2",
            "tmin_agx_s",
            "paper_agx_s",
            "tmin_tx2_s",
            "paper_tx2_s",
        ],
    );
    let paper_tmin = |kind: TaskKind, bed: Testbed| -> f64 {
        match (kind, bed) {
            (TaskKind::Cifar10Vit, Testbed::JetsonAgx) => 37.2,
            (TaskKind::Cifar10Vit, Testbed::JetsonTx2) => 36.0,
            (TaskKind::ImagenetResnet50, Testbed::JetsonAgx) => 46.9,
            (TaskKind::ImagenetResnet50, Testbed::JetsonTx2) => 49.2,
            (TaskKind::ImdbLstm, Testbed::JetsonAgx) => 46.1,
            (TaskKind::ImdbLstm, Testbed::JetsonTx2) => 55.6,
            _ => unreachable!("exhaustive presets"),
        }
    };
    for kind in TaskKind::all() {
        let agx_task = FlTask::preset(kind, Testbed::JetsonAgx);
        let tx2_task = FlTask::preset(kind, Testbed::JetsonTx2);
        let tmin = |d: &Device, task: &FlTask| d.round_latency_at_max(task);
        t.push_row(vec![
            kind.to_string(),
            agx_task.minibatch_size().to_string(),
            agx_task.epochs().to_string(),
            agx_task.minibatches().to_string(),
            tx2_task.minibatches().to_string(),
            f(tmin(&device_for(Testbed::JetsonAgx), &agx_task), 1),
            f(paper_tmin(kind, Testbed::JetsonAgx), 1),
            f(tmin(&device_for(Testbed::JetsonTx2), &tx2_task), 1),
            f(paper_tmin(kind, Testbed::JetsonTx2), 1),
        ]);
    }
    report.note("|T| = 100 rounds; T_max/T_min ∈ {2.0, 2.5, 3.0, 3.5, 4.0}.");
    report.note("tmin_* are measured on the simulator; paper_* from Table 2.");
    report.push_table(t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_grid_sizes() {
        let r = table1();
        let t = &r.tables[0];
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0].last().unwrap(), "2100");
        assert_eq!(t.rows[1].last().unwrap(), "936");
    }

    #[test]
    fn table2_tmin_within_ten_percent() {
        let r = table2();
        let t = &r.tables[0];
        for row in &t.rows {
            let sim_agx: f64 = row[5].parse().unwrap();
            let paper_agx: f64 = row[6].parse().unwrap();
            assert!(
                ((sim_agx - paper_agx) / paper_agx).abs() < 0.10,
                "{}: AGX {sim_agx} vs {paper_agx}",
                row[0]
            );
            let sim_tx2: f64 = row[7].parse().unwrap();
            let paper_tx2: f64 = row[8].parse().unwrap();
            assert!(
                ((sim_tx2 - paper_tx2) / paper_tx2).abs() < 0.10,
                "{}: TX2 {sim_tx2} vs {paper_tx2}",
                row[0]
            );
        }
    }
}
