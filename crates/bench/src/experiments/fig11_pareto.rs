//! Fig. 11: BoFL's searched Pareto front vs the actual Pareto front from
//! exhaustive offline profiling, on the AGX for all three tasks.

use crate::experiments::common::{device_for, run_triple, ExperimentScale};
use crate::report::{f, Report, Table};
use bofl_mobo::hypervolume::hypervolume;
use bofl_mobo::ParetoFront;
use bofl_workload::{FlTask, TaskKind, Testbed};

/// One task's Fig. 11 data: every point labeled by its role.
fn pareto_table(kind: TaskKind, scale: ExperimentScale) -> (Table, f64, f64, usize, usize) {
    let triple = run_triple(kind, Testbed::JetsonAgx, 2.0, scale);
    let device = device_for(Testbed::JetsonAgx);
    let task = FlTask::preset(kind, Testbed::JetsonAgx);
    let space = device.config_space();

    let mut t = Table::new(
        format!(
            "fig11_{}",
            kind.to_string().to_lowercase().replace('-', "_")
        ),
        &[
            "role",
            "latency_s",
            "energy_j",
            "cpu_mhz",
            "gpu_mhz",
            "mem_mhz",
        ],
    );

    // Ground truth: exhaustive profile and its true Pareto front.
    let profile = device.profile_all(&task);
    let objectives: Vec<[f64; 2]> = profile
        .iter()
        .map(|p| [p.cost.energy_j, p.cost.latency_s])
        .collect();
    let true_front_idx = bofl_mobo::pareto_front_indices(&objectives);
    for &i in &true_front_idx {
        let p = &profile[i];
        t.push_row(vec![
            "actual_pareto".into(),
            f(p.cost.latency_s, 4),
            f(p.cost.energy_j, 3),
            p.config.cpu.as_mhz().to_string(),
            p.config.gpu.as_mhz().to_string(),
            p.config.mem.as_mhz().to_string(),
        ]);
    }

    // BoFL's observations and its searched front.
    let pareto_set: std::collections::HashSet<_> =
        triple.bofl_pareto.iter().map(|(i, _, _)| *i).collect();
    for &(idx, lat, en) in &triple.bofl_observed {
        let cfg = space.get(idx).expect("observed indices are valid");
        let role = if pareto_set.contains(&idx) {
            "bofl_pareto"
        } else {
            "bofl_explored"
        };
        t.push_row(vec![
            role.into(),
            f(lat, 4),
            f(en, 3),
            cfg.cpu.as_mhz().to_string(),
            cfg.gpu.as_mhz().to_string(),
            cfg.mem.as_mhz().to_string(),
        ]);
    }

    // Quality metric: hypervolume of BoFL's front relative to the truth.
    let reference = {
        let mut worst = [f64::NEG_INFINITY; 2];
        for o in &objectives {
            worst[0] = worst[0].max(o[0]);
            worst[1] = worst[1].max(o[1]);
        }
        [worst[0] * 1.01, worst[1] * 1.01]
    };
    let true_front: ParetoFront = true_front_idx.iter().map(|&i| objectives[i]).collect();
    let bofl_front: ParetoFront = triple
        .bofl_pareto
        .iter()
        .map(|&(_, lat, en)| [en, lat])
        .collect();
    let hv_true = hypervolume(&true_front, reference);
    let hv_bofl = hypervolume(&bofl_front, reference);
    let explored_frac = triple.bofl_observed.len() as f64 / space.len() as f64;
    (
        t,
        hv_bofl / hv_true,
        explored_frac,
        triple.bofl_pareto.len(),
        true_front_idx.len(),
    )
}

/// Runs the Fig. 11 experiment for all three tasks.
pub fn figure(scale: ExperimentScale) -> Report {
    let mut report = Report::new("Figure 11: BoFL Pareto fronts vs actual Pareto fronts (AGX)");
    let mut summary = Table::new(
        "fig11_summary",
        &[
            "task",
            "hv_fraction",
            "explored_pct",
            "bofl_pareto_points",
            "true_pareto_points",
        ],
    );
    for kind in TaskKind::all() {
        let (t, hv_frac, explored, bofl_n, true_n) = pareto_table(kind, scale);
        summary.push_row(vec![
            kind.to_string(),
            f(hv_frac, 3),
            f(explored * 100.0, 1),
            bofl_n.to_string(),
            true_n.to_string(),
        ]);
        report.push_table(t);
    }
    report.note("hv_fraction: hypervolume of BoFL's front / true front (1.0 = perfect).");
    report.note("Paper: Pareto constructed after exploring ≈3% of the space.");
    report.push_table(summary);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bofl_front_close_to_truth_at_reduced_scale() {
        let scale = ExperimentScale {
            rounds: 25,
            deadline_seed: 4,
            noise_seed: 6,
        };
        let (_, hv_frac, explored, bofl_n, true_n) = pareto_table(TaskKind::Cifar10Vit, scale);
        assert!(
            hv_frac > 0.85,
            "BoFL front captures ≥85% of the true hypervolume, got {hv_frac:.3}"
        );
        assert!(hv_frac <= 1.0 + 0.05, "cannot beat the truth beyond noise");
        assert!(
            explored < 0.10,
            "exploration should stay below 10% of the space, got {:.1}%",
            explored * 100.0
        );
        assert!(bofl_n >= 3, "need a non-trivial searched front");
        assert!(true_n >= 5, "true front should have several points");
    }
}
