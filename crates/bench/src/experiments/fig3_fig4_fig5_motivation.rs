//! The §2.2 motivation measurements: Fig. 3 (ViT vs GPU frequency at two
//! CPU clocks), Fig. 4 (three models vs CPU frequency) and Fig. 5
//! (AGX performance normalized to TX2 at `x_max`).

use crate::experiments::common::device_for;
use crate::report::{f, Report, Table};
use bofl_device::DvfsConfig;
use bofl_workload::{FlTask, TaskKind, Testbed};

/// Fig. 3: per-minibatch latency and energy of CIFAR10-ViT on the AGX as
/// the GPU clock sweeps 0.9–1.4 GHz, for CPU at 0.42 GHz and 2.27 GHz
/// (memory at maximum).
pub fn fig3() -> Report {
    let device = device_for(Testbed::JetsonAgx);
    let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
    let space = device.config_space();
    let mut report = Report::new("Figure 3: ViT training vs GPU frequency");
    let mut t = Table::new(
        "fig3_vit_gpu_sweep",
        &["gpu_ghz", "cpu_ghz", "latency_s", "energy_j"],
    );
    for cpu in [space.cpu_table().min(), space.cpu_table().max()] {
        for gpu in space.gpu_table().iter() {
            if gpu.as_ghz() < 0.85 {
                continue; // the paper's sweep starts at 0.9 GHz
            }
            let x = DvfsConfig::new(cpu, gpu, space.mem_table().max());
            let c = device.true_cost(&task, x);
            t.push_row(vec![
                f(gpu.as_ghz(), 3),
                f(cpu.as_ghz(), 3),
                f(c.latency_s, 4),
                f(c.energy_j, 3),
            ]);
        }
    }
    report.note("Expect: slow-CPU curve saturates with GPU frequency (paper Fig. 3a);");
    report.note("energy is non-monotonic in the GPU clock (paper Fig. 3b).");
    report.push_table(t);
    report
}

/// Fig. 4: per-minibatch latency and energy of all three models on the
/// AGX as the CPU clock sweeps ≈0.6–1.75 GHz (GPU and memory at maximum).
pub fn fig4() -> Report {
    let device = device_for(Testbed::JetsonAgx);
    let space = device.config_space();
    let mut report = Report::new("Figure 4: three models vs CPU frequency");
    let mut t = Table::new(
        "fig4_cpu_sweep",
        &["cpu_ghz", "model", "latency_s", "energy_j"],
    );
    for kind in TaskKind::all() {
        let task = FlTask::preset(kind, Testbed::JetsonAgx);
        for cpu in space.cpu_table().iter() {
            if !(0.55..=1.80).contains(&cpu.as_ghz()) {
                continue; // the paper's sweep covers ≈0.6–1.7 GHz
            }
            let x = DvfsConfig::new(cpu, space.gpu_table().max(), space.mem_table().max());
            let c = device.true_cost(&task, x);
            t.push_row(vec![
                f(cpu.as_ghz(), 3),
                task.model().name().to_string(),
                f(c.latency_s, 4),
                f(c.energy_j, 3),
            ]);
        }
    }
    report.note("Expect: LSTM latency ≈halves across the sweep, ViT/ResNet50 stay flat;");
    report.note("ResNet50 energy rises with CPU clock, LSTM energy falls (paper Fig. 4).");
    report.push_table(t);
    report
}

/// Fig. 5: AGX per-minibatch latency and energy at `x_max`, normalized to
/// the TX2 (1.0 = TX2 performance).
pub fn fig5() -> Report {
    let mut report = Report::new("Figure 5: AGX performance normalized to TX2");
    let mut t = Table::new(
        "fig5_cross_device",
        &[
            "model",
            "latency_ratio",
            "paper_latency_ratio",
            "energy_ratio",
            "paper_energy_ratio",
        ],
    );
    let paper = |kind: TaskKind| -> (f64, f64) {
        match kind {
            TaskKind::Cifar10Vit => (0.39, 0.85),
            TaskKind::ImagenetResnet50 => (0.32, 0.70),
            TaskKind::ImdbLstm => (0.80, 0.80),
            _ => unreachable!("exhaustive tasks"),
        }
    };
    let agx = device_for(Testbed::JetsonAgx);
    let tx2 = device_for(Testbed::JetsonTx2);
    for kind in TaskKind::all() {
        let ta = FlTask::preset(kind, Testbed::JetsonAgx);
        let tt = FlTask::preset(kind, Testbed::JetsonTx2);
        let ca = agx.true_cost(&ta, agx.config_space().x_max());
        let ct = tx2.true_cost(&tt, tx2.config_space().x_max());
        let (pl, pe) = paper(kind);
        t.push_row(vec![
            ta.model().name().to_string(),
            f(ca.latency_s / ct.latency_s, 2),
            f(pl, 2),
            f(ca.energy_j / ct.energy_j, 2),
            f(pe, 2),
        ]);
    }
    report.note("Expect: non-uniform speedups across models (hardware dependence).");
    report.note("Note: the paper's Fig. 5 LSTM latency ratio (0.80) is inconsistent with");
    report.note("its own Table 2 (which implies ≈0.41); we calibrate to Table 2.");
    report.push_table(t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(t: &Table, name: &str) -> usize {
        t.headers.iter().position(|h| h == name).unwrap()
    }

    #[test]
    fn fig3_slow_cpu_saturates() {
        let r = fig3();
        let t = &r.tables[0];
        let (gc, cc, lc) = (col(t, "gpu_ghz"), col(t, "cpu_ghz"), col(t, "latency_s"));
        let series = |cpu: &str| -> Vec<(f64, f64)> {
            t.rows
                .iter()
                .filter(|row| row[cc] == cpu)
                .map(|row| (row[gc].parse().unwrap(), row[lc].parse().unwrap()))
                .collect()
        };
        let slow = series("0.420");
        let fast = series("2.265");
        assert!(slow.len() >= 4 && fast.len() >= 4);
        // Relative gain of the last GPU step, per CPU setting.
        let gain = |s: &[(f64, f64)]| {
            let a = s[s.len() - 2].1;
            let b = s[s.len() - 1].1;
            (a - b) / a
        };
        assert!(gain(&slow) < gain(&fast), "slow CPU must blunt GPU scaling");
        // Slow CPU makes the fastest point much slower (paper: ~2×).
        assert!(slow.last().unwrap().1 > 1.5 * fast.last().unwrap().1);
    }

    #[test]
    fn fig4_model_dependence() {
        let r = fig4();
        let t = &r.tables[0];
        let (cc, mc, lc, ec) = (
            col(t, "cpu_ghz"),
            col(t, "model"),
            col(t, "latency_s"),
            col(t, "energy_j"),
        );
        let series = |model: &str, value_col: usize| -> Vec<f64> {
            t.rows
                .iter()
                .filter(|row| row[mc] == model)
                .map(|row| row[value_col].parse::<f64>().unwrap())
                .collect()
        };
        let _ = cc;
        let lstm_lat = series("LSTM", lc);
        let resnet_lat = series("ResNet50", lc);
        // LSTM speeds up ≈2× across the sweep; ResNet stays within 15%.
        let span = |v: &[f64]| v.first().unwrap() / v.last().unwrap();
        assert!(span(&lstm_lat) > 1.7, "LSTM span {}", span(&lstm_lat));
        assert!(span(&resnet_lat) < 1.2, "ResNet span {}", span(&resnet_lat));
        // Energy slopes have opposite signs (paper Fig. 4b).
        let lstm_e = series("LSTM", ec);
        let resnet_e = series("ResNet50", ec);
        assert!(lstm_e.first().unwrap() > lstm_e.last().unwrap());
        assert!(resnet_e.first().unwrap() < resnet_e.last().unwrap());
    }

    #[test]
    fn fig5_shapes() {
        let r = fig5();
        let t = &r.tables[0];
        let lr = col(t, "latency_ratio");
        let ratios: Vec<f64> = t.rows.iter().map(|row| row[lr].parse().unwrap()).collect();
        // AGX is faster than TX2 on every model.
        assert!(ratios.iter().all(|&v| v < 1.0));
        // ResNet50 benefits most, LSTM least (paper's qualitative claim).
        assert!(ratios[1] < ratios[0]);
        assert!(ratios[2] > ratios[1]);
    }
}
