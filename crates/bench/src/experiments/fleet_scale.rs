//! Fleet-scale simulation experiment (beyond the paper's testbed): a
//! heterogeneous AGX/TX2 population with fault injection, run through the
//! parallel fleet engine, with a determinism cross-check against the
//! sequential engine.

use crate::report::{f, Report, Table};
use bofl_fl::server::FederationConfig;
use bofl_fleet::prelude::*;

use super::ExperimentScale;

/// Fleet population and round schedule for the experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetScale {
    /// Clients in the fleet.
    pub num_clients: usize,
    /// Clients selected per round.
    pub clients_per_round: usize,
    /// FL rounds.
    pub rounds: usize,
    /// Worker threads for the parallel run.
    pub workers: usize,
}

impl FleetScale {
    /// Derives a fleet scale from the experiment scale.
    pub fn from(scale: ExperimentScale) -> Self {
        if scale.rounds >= 100 {
            FleetScale {
                num_clients: 100,
                clients_per_round: 10,
                rounds: 20,
                workers: 4,
            }
        } else {
            FleetScale {
                num_clients: 40,
                clients_per_round: 6,
                rounds: 8,
                workers: 4,
            }
        }
    }
}

fn run(scale: FleetScale, workers: usize, seed: u64) -> FleetRunReport {
    let spec = FleetSpec::mixed(scale.num_clients, seed);
    FleetSimulation::builder(spec)
        .federation(FederationConfig {
            clients_per_round: scale.clients_per_round,
            rounds: scale.rounds,
            seed,
            ..FederationConfig::default()
        })
        .workers(workers)
        .faults(
            FaultPlan::new(seed ^ 0xFA17)
                .with_dropout(0.05)
                .with_stragglers(0.10, (1.5, 3.0))
                .with_upload_failures(0.03),
        )
        .build()
        .run()
}

/// Runs the fleet experiment and renders per-round fleet statistics plus
/// a sequential-vs-parallel determinism check.
pub fn figure(scale: ExperimentScale) -> Report {
    let fleet = FleetScale::from(scale);
    let seed = scale.deadline_seed;

    let parallel = run(fleet, fleet.workers, seed);
    let sequential = run(fleet, 1, seed);
    let identical = parallel.metrics.to_csv() == sequential.metrics.to_csv();

    let mut table = Table::new(
        "fleet_scale",
        &[
            "round",
            "selected",
            "aggregated",
            "deadline_s",
            "energy_total_j",
            "latency_p95_s",
            "miss_rate",
            "dropouts",
            "stragglers",
            "upload_failures",
            "test_accuracy",
        ],
    );
    for r in parallel.metrics.rounds() {
        table.push_row(vec![
            r.round.to_string(),
            r.selected.to_string(),
            r.aggregated.to_string(),
            f(r.deadline_s, 3),
            f(r.energy_j.sum, 1),
            f(r.latency_s.p95, 3),
            f(r.deadline_miss_rate, 3),
            r.dropouts.to_string(),
            r.stragglers.to_string(),
            r.upload_failures.to_string(),
            f(r.test_accuracy, 3),
        ]);
    }

    let mut summary = Table::new(
        "fleet_scale_summary",
        &[
            "clients",
            "rounds",
            "workers",
            "total_energy_j",
            "mean_miss_rate",
            "final_accuracy",
            "deterministic",
        ],
    );
    summary.push_row(vec![
        fleet.num_clients.to_string(),
        fleet.rounds.to_string(),
        fleet.workers.to_string(),
        f(parallel.total_energy_j(), 1),
        f(parallel.metrics.mean_miss_rate(), 3),
        f(parallel.final_accuracy(), 3),
        identical.to_string(),
    ]);

    let mut report = Report::new("Fleet-scale simulation");
    report.note(format!(
        "{} heterogeneous clients (mixed AGX/TX2), {} rounds, {} per round, fault injection on",
        fleet.num_clients, fleet.rounds, fleet.clients_per_round
    ));
    report.note(format!(
        "determinism check: parallel ({} workers) CSV {} sequential CSV",
        fleet.workers,
        if identical { "==" } else { "!= (BUG)" }
    ));
    report.push_table(table);
    report.push_table(summary);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_experiment_is_deterministic_and_complete() {
        let report = figure(ExperimentScale::quick());
        let summary = &report.tables[1];
        assert_eq!(summary.rows.len(), 1);
        let deterministic = summary.rows[0].last().expect("summary has columns");
        assert_eq!(deterministic, "true");
        // One row per round.
        assert_eq!(report.tables[0].rows.len(), 8);
    }
}
