//! Fig. 13: the MBO module's overhead — per-round computation latency and
//! energy on each device, and the overall energy overhead relative to the
//! training energy.
//!
//! Substitution note (see `DESIGN.md` §2): the paper measures its Python
//! (Trieste) MBO stack running *on the Jetson boards* (6–9 s, 50–70 J per
//! invocation). We measure the wall-clock time of our Rust MBO engine on
//! the build host and map it onto each device with a calibrated slowdown
//! factor chosen so the AGX lands in the paper's measured range; the
//! device's CPU-busy power model then converts time to energy. The
//! *comparison the figure makes* — MBO cost per round is an order of
//! magnitude below training cost per round, so the overall overhead is a
//! fraction of a percent — is preserved because both sides of that
//! comparison come from the same device model.

use crate::experiments::common::{device_for, run_triple, ExperimentScale};
use crate::report::{f, Report, Table};
use bofl_workload::{TaskKind, Testbed};

/// Host→device slowdown applied to measured MBO wall time.
///
/// Calibrated so a typical per-invocation suggestion (~0.05–0.15 s of Rust
/// on a server-class core) maps into the paper's measured 6–9 s of Python
/// on the Jetson CPUs (interpreter overhead × embedded-core slowdown).
pub fn mbo_slowdown(testbed: Testbed) -> f64 {
    match testbed {
        Testbed::JetsonAgx => 60.0,
        // The TX2's Denver2/A57 complex runs the Python BO stack far
        // slower than the AGX's Carmel cores (the paper's Fig. 13a shows
        // the TX2 *above* the AGX despite smaller observation sets).
        Testbed::JetsonTx2 => 250.0,
        _ => unreachable!("only two testbeds exist"),
    }
}

/// Runs the Fig. 13 experiment on both devices.
pub fn figure(scale: ExperimentScale) -> Report {
    let mut report = Report::new("Figure 13: MBO module overhead");
    let mut per_round = Table::new(
        "fig13_mbo_per_round",
        &[
            "device",
            "task",
            "mbo_invocations",
            "host_s_per_invocation",
            "device_s_per_invocation",
            "device_j_per_invocation",
        ],
    );
    let mut overall = Table::new(
        "fig13_overall_overhead",
        &["device", "task", "training_j", "mbo_j", "overhead_pct"],
    );

    for testbed in Testbed::all() {
        let device = device_for(testbed);
        // The MBO computation runs between training rounds: CPU busy at a
        // governor-chosen mid frequency, GPU and memory clocked down.
        let space = device.config_space();
        let mid_cpu = space
            .cpu_table()
            .get(space.cpu_table().len() / 2)
            .expect("non-empty table");
        let mbo_state =
            bofl_device::DvfsConfig::new(mid_cpu, space.gpu_table().min(), space.mem_table().min());
        let mbo_power_w = device.power_model().cpu_busy_power(mbo_state);

        for kind in TaskKind::all() {
            let triple = run_triple(kind, testbed, 2.0, scale);
            let n = triple.mbo_host_durations.len().max(1);
            let host_mean: f64 = triple.mbo_host_durations.iter().sum::<f64>() / n as f64;
            let device_mean = host_mean * mbo_slowdown(testbed);
            let device_energy = device_mean * mbo_power_w;
            per_round.push_row(vec![
                device.name().to_string(),
                kind.to_string(),
                triple.mbo_host_durations.len().to_string(),
                f(host_mean, 3),
                f(device_mean, 1),
                f(device_energy, 1),
            ]);

            let training_j = triple.bofl.total_energy_j();
            let mbo_j = triple.mbo_host_durations.len() as f64 * device_energy;
            overall.push_row(vec![
                device.name().to_string(),
                kind.to_string(),
                f(training_j, 0),
                f(mbo_j, 0),
                f(mbo_j / training_j * 100.0, 2),
            ]);
        }
    }

    report.note("Paper: 6–9 s and 50–70 J per MBO invocation; overall energy");
    report.note("overhead 0.4%–0.7% of training energy.");
    report.note("Device times use the calibrated host→device slowdown (see module docs).");
    report.push_table(per_round);
    report.push_table(overall);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbo_overhead_is_small() {
        let scale = ExperimentScale {
            rounds: 25,
            deadline_seed: 31,
            noise_seed: 32,
        };
        let triple = run_triple(TaskKind::Cifar10Vit, Testbed::JetsonAgx, 2.0, scale);
        assert!(
            !triple.mbo_host_durations.is_empty(),
            "MBO must have run at least once"
        );
        let device = device_for(Testbed::JetsonAgx);
        // Same governor-lowered MBO power state the figure uses.
        let space = device.config_space();
        let mid_cpu = space
            .cpu_table()
            .get(space.cpu_table().len() / 2)
            .expect("non-empty table");
        let power = device
            .power_model()
            .cpu_busy_power(bofl_device::DvfsConfig::new(
                mid_cpu,
                space.gpu_table().min(),
                space.mem_table().min(),
            ));
        let mbo_j: f64 = triple
            .mbo_host_durations
            .iter()
            .map(|h| h * mbo_slowdown(Testbed::JetsonAgx) * power)
            .sum();
        let overhead = mbo_j / triple.bofl.total_energy_j();
        // The paper reports 0.4%–0.7% at 100 rounds; at 25 rounds the
        // denominator shrinks 4×, so allow up to 5%.
        assert!(
            overhead < 0.05,
            "MBO energy overhead {:.2}% unexpectedly large",
            overhead * 100.0
        );
    }
}
