//! Table 3: the per-round exploration walkthrough — how many
//! configurations each exploration round measured and how many of them
//! ended up on the ultimate Pareto front.

use crate::experiments::common::{run_triple, ExperimentScale, TripleRun};
use crate::report::{Report, Table};
use bofl::metrics::walkthrough;
use bofl::Phase;
use bofl_device::ConfigIndex;
use bofl_workload::{TaskKind, Testbed};

/// Builds the Table 3 rows for one triple run.
pub fn rows_for(triple: &TripleRun) -> Vec<(usize, &'static str, usize, usize)> {
    let pareto: Vec<ConfigIndex> = triple.bofl_pareto.iter().map(|&(i, _, _)| i).collect();
    walkthrough(&triple.bofl, &pareto)
        .into_iter()
        .map(|row| {
            let tag = match row.phase {
                Phase::RandomExploration => "random",
                Phase::ParetoConstruction => "mbo",
                Phase::Exploitation => unreachable!("walkthrough excludes exploitation"),
            };
            (row.round, tag, row.explorations, row.pareto_hits)
        })
        .collect()
}

/// Runs the Table 3 experiment: all three tasks on the AGX at ratio 2.
pub fn table(scale: ExperimentScale) -> Report {
    let mut report =
        Report::new("Table 3: explorations and searched Pareto points per round (phases 1-2)");
    let mut t = Table::new(
        "table3_walkthrough",
        &["task", "round", "phase", "explorations", "pareto_hits"],
    );
    for kind in TaskKind::all() {
        let triple = run_triple(kind, Testbed::JetsonAgx, 2.0, scale);
        let rows = rows_for(&triple);
        let total_exp: usize = rows.iter().map(|r| r.2).sum();
        let total_hits: usize = rows.iter().map(|r| r.3).sum();
        for (round, phase, exp, hits) in rows {
            t.push_row(vec![
                kind.to_string(),
                round.to_string(),
                phase.to_string(),
                exp.to_string(),
                hits.to_string(),
            ]);
        }
        report.note(format!(
            "{kind}: {total_exp} configurations explored, {total_hits} on the final Pareto front"
        ));
    }
    report.note("Paper (CIFAR10-ViT): 70 explored / 20 Pareto over 10 rounds; most Pareto");
    report.note("points are found in phase 2 (MBO) rather than phase 1 (random).");
    report.push_table(t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walkthrough_matches_paper_shape() {
        let scale = ExperimentScale {
            rounds: 30,
            deadline_seed: 12,
            noise_seed: 13,
        };
        let triple = run_triple(TaskKind::Cifar10Vit, Testbed::JetsonAgx, 2.0, scale);
        let rows = rows_for(&triple);
        assert!(!rows.is_empty());
        // Phase 1 explores ≈1% of the AGX space (21 points + x_max).
        let random_exp: usize = rows.iter().filter(|r| r.1 == "random").map(|r| r.2).sum();
        assert!(
            (18..=25).contains(&random_exp),
            "phase-1 explorations {random_exp}"
        );
        // MBO rounds exist and explore more configurations overall.
        let mbo_rounds = rows.iter().filter(|r| r.1 == "mbo").count();
        assert!(mbo_rounds >= 2, "expected several MBO rounds");
        // Paper's key qualitative claim: the MBO phase finds Pareto points
        // at a higher hit-rate than random exploration.
        let mbo_exp: usize = rows.iter().filter(|r| r.1 == "mbo").map(|r| r.2).sum();
        let mbo_hits: usize = rows.iter().filter(|r| r.1 == "mbo").map(|r| r.3).sum();
        let random_hits: usize = rows.iter().filter(|r| r.1 == "random").map(|r| r.3).sum();
        let mbo_rate = mbo_hits as f64 / mbo_exp.max(1) as f64;
        let random_rate = random_hits as f64 / random_exp.max(1) as f64;
        assert!(
            mbo_rate > random_rate,
            "MBO hit-rate {mbo_rate:.2} should beat random {random_rate:.2}"
        );
        // Total explorations stay near 3% of the space (63 configs).
        let total = random_exp + mbo_exp;
        assert!(
            (40..=110).contains(&total),
            "total explorations {total} out of expected band"
        );
    }
}
