//! Ablation study of BoFL's design choices (DESIGN.md §6): what each
//! piece of the system buys, measured on the CIFAR10-ViT/AGX workload.
//!
//! Variants:
//!
//! - `bofl` — the full design (EHVI + greedy-fantasy batching + ILP);
//! - `random_explore` — phase-2 candidates drawn quasi-randomly instead
//!   of by EHVI;
//! - `no_fantasy` — EHVI batch taken as a flat top-K without
//!   Kriging-believer updates;
//! - `single_best` — exploitation runs every job at one configuration
//!   instead of the ILP mix (the SmartPC-style policy);
//! - `no_guardian` — deadline guardian disabled (expect misses under
//!   tight deadlines).

use crate::experiments::common::{device_for, ExperimentScale};
use crate::report::{f, Report, Table};
use bofl::baselines::{OracleController, PerformantController};
use bofl::controller::{BatchStrategy, ExplorationStrategy};
use bofl::exploit::ExploitStrategy;
use bofl::metrics::{improvement_vs, regret_vs};
use bofl::prelude::*;
use bofl_workload::{TaskKind, Testbed};

/// Ablation variants, in report order.
pub fn variants() -> Vec<(&'static str, BoflConfig)> {
    let base = BoflConfig::default();
    vec![
        ("bofl", base),
        (
            "random_explore",
            BoflConfig {
                exploration: ExplorationStrategy::RandomOnly,
                ..base
            },
        ),
        (
            "no_fantasy",
            BoflConfig {
                batching: BatchStrategy::NoFantasy,
                ..base
            },
        ),
        (
            "single_best",
            BoflConfig {
                exploitation: ExploitStrategy::SingleBest,
                ..base
            },
        ),
        (
            "no_guardian",
            BoflConfig {
                guardian_enabled: false,
                ..base
            },
        ),
    ]
}

/// Runs the ablation table at deadline ratio 2 (where the design is under
/// the most pressure) on CIFAR10-ViT / Jetson AGX.
pub fn study(scale: ExperimentScale) -> Report {
    let device = device_for(Testbed::JetsonAgx);
    let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
    let schedule =
        DeadlineSchedule::uniform(&device, &task, scale.rounds, 2.0, scale.deadline_seed);
    let runner = ClientRunner::new(device.clone(), task.clone(), scale.noise_seed);

    let perf = runner.run(&mut PerformantController::new(), schedule.deadlines());
    let mut oracle = OracleController::new(device.profile_all(&task));
    let orac = runner.run(&mut oracle, schedule.deadlines());

    let mut report = Report::new("Ablation: what each BoFL design choice buys (ViT/AGX, ratio 2)");
    let mut t = Table::new(
        "ablation_design_choices",
        &[
            "variant",
            "energy_j",
            "improvement_pct",
            "regret_pct",
            "deadlines_met",
            "explored",
        ],
    );
    for (name, cfg) in variants() {
        let mut ctrl = BoflController::new(cfg);
        let run = runner.run(&mut ctrl, schedule.deadlines());
        t.push_row(vec![
            name.to_string(),
            f(run.total_energy_j(), 0),
            f(improvement_vs(&run, &perf) * 100.0, 1),
            f(regret_vs(&run, &orac) * 100.0, 2),
            format!("{}/{}", run.deadlines_met(), scale.rounds),
            ctrl.observations().len().to_string(),
        ]);
    }
    report.note("Reading guide: over a long horizon exploitation dominates, so the");
    report.note("energy gaps between variants are small — the full design's edge");
    report.note("shows in the *regret* column (better fronts) and in short runs.");
    report.note("single_best is competitive only because the searched front is");
    report.note("dense; the ILP mix is what guarantees it never loses (see the");
    report.note("ilp_exploitation unit ablations). no_guardian trades a little");
    report.note("energy for *missed deadlines* — the one currency BoFL never");
    report.note("spends.");
    report.push_table(t);
    report.push_table(tau_sweep_table(
        &runner,
        &schedule,
        &perf,
        &orac,
        scale.rounds,
    ));
    report
}

/// τ-sensitivity sweep: the reference measurement duration trades
/// measurement accuracy (sensor noise averages out over ≥τ seconds)
/// against exploration throughput (longer τ → fewer candidates per
/// round).
fn tau_sweep_table(
    runner: &ClientRunner,
    schedule: &DeadlineSchedule,
    perf: &bofl::RunSummary,
    orac: &bofl::RunSummary,
    rounds: usize,
) -> Table {
    let mut t = Table::new(
        "ablation_tau_sweep",
        &[
            "tau_s",
            "improvement_pct",
            "regret_pct",
            "explored",
            "mean_obs_error_pct",
            "deadlines_met",
        ],
    );
    let device = runner.device().clone();
    let task = runner.task().clone();
    for tau in [1.0, 2.5, 5.0, 10.0] {
        let mut ctrl = BoflController::new(BoflConfig {
            tau_s: tau,
            ..BoflConfig::default()
        });
        let run = runner.run(&mut ctrl, schedule.deadlines());
        // Mean relative error of the controller's energy observations vs
        // the device's ground truth — shorter τ means noisier aggregates.
        let mut err_sum = 0.0;
        let mut err_n = 0usize;
        for agg in ctrl.observations().iter() {
            let truth = device.true_cost(&task, agg.config);
            err_sum += ((agg.mean_energy_j() - truth.energy_j) / truth.energy_j).abs();
            err_n += 1;
        }
        t.push_row(vec![
            f(tau, 1),
            f(improvement_vs(&run, perf) * 100.0, 1),
            f(regret_vs(&run, orac) * 100.0, 2),
            ctrl.observations().len().to_string(),
            f(err_sum / err_n.max(1) as f64 * 100.0, 2),
            format!("{}/{}", run.deadlines_met(), rounds),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_design_dominates_ablations() {
        let scale = ExperimentScale {
            rounds: 30,
            deadline_seed: 71,
            noise_seed: 72,
        };
        let report = study(scale);
        let t = &report.tables[0];
        let energy = |name: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("variant {name} missing"))[1]
                .parse()
                .unwrap()
        };
        let full = energy("bofl");
        for variant in ["random_explore", "no_fantasy", "single_best"] {
            assert!(
                full <= energy(variant) * 1.02,
                "{variant}: full design {full} should not lose to {}",
                energy(variant)
            );
        }
        // Everyone with the guardian on meets all deadlines.
        for r in &t.rows {
            if r[0] != "no_guardian" {
                assert_eq!(r[4], "30/30", "{} missed deadlines", r[0]);
            }
        }
    }
}
