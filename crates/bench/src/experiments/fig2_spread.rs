//! Fig. 2 verification: the paper's headline motivation claim that "a
//! proper DVFS configuration may lead to 8× faster training speed and 4×
//! less energy consumption" — i.e. the spread of the latency and
//! energy-efficiency surfaces over the whole configuration space.

use crate::experiments::common::device_for;
use crate::report::{f, Report, Table};
use bofl_workload::{FlTask, TaskKind, Testbed};

/// Computes the latency spread (`max T / min T`) and energy spread
/// (`max E / min E`) over the full configuration space of each task on
/// each device.
pub fn figure() -> Report {
    let mut report = Report::new("Figure 2: configuration-space performance spread");
    let mut t = Table::new(
        "fig2_spread",
        &[
            "device",
            "task",
            "latency_spread",
            "energy_spread",
            "min_latency_s",
            "max_latency_s",
            "min_energy_j",
            "max_energy_j",
        ],
    );
    for testbed in Testbed::all() {
        let device = device_for(testbed);
        for kind in TaskKind::all() {
            let task = FlTask::preset(kind, testbed);
            let profile = device.profile_all(&task);
            let (mut lat_min, mut lat_max) = (f64::INFINITY, 0.0f64);
            let (mut en_min, mut en_max) = (f64::INFINITY, 0.0f64);
            for p in &profile {
                lat_min = lat_min.min(p.cost.latency_s);
                lat_max = lat_max.max(p.cost.latency_s);
                en_min = en_min.min(p.cost.energy_j);
                en_max = en_max.max(p.cost.energy_j);
            }
            t.push_row(vec![
                device.name().to_string(),
                kind.to_string(),
                f(lat_max / lat_min, 1),
                f(en_max / en_min, 1),
                f(lat_min, 3),
                f(lat_max, 3),
                f(en_min, 2),
                f(en_max, 2),
            ]);
        }
    }
    report.note("Paper Fig. 2: a good configuration can be ≈8× faster and ≈4× more");
    report.note("energy-efficient than a bad one; the spreads below bound that claim");
    report.note("on the simulated devices.");
    report.push_table(t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spreads_match_paper_magnitudes() {
        let r = figure();
        let t = &r.tables[0];
        assert_eq!(t.rows.len(), 6);
        for row in &t.rows {
            let lat_spread: f64 = row[2].parse().unwrap();
            let en_spread: f64 = row[3].parse().unwrap();
            // The paper claims up to ≈8× speed and ≈4× energy differences;
            // every task should show multi-× spreads and at least one
            // should reach the claimed order.
            assert!(
                lat_spread > 2.0,
                "{} {}: latency spread {lat_spread} too small",
                row[0],
                row[1]
            );
            assert!(
                en_spread > 1.5,
                "{} {}: energy spread {en_spread} too small",
                row[0],
                row[1]
            );
            assert!(lat_spread < 40.0, "latency spread implausibly large");
        }
        let max_lat: f64 = t
            .rows
            .iter()
            .map(|r| r[2].parse::<f64>().unwrap())
            .fold(0.0, f64::max);
        assert!(
            max_lat >= 4.0,
            "at least one task should show a ≳4-8× speed spread, got {max_lat}"
        );
    }
}
