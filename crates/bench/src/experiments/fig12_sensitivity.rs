//! Fig. 12: sensitivity to the deadline length — improvement vs
//! Performant and regret vs Oracle across `T_max/T_min ∈ {2, 2.5, 3,
//! 3.5, 4}` for all three tasks on the AGX.

use crate::experiments::common::{run_triple, ExperimentScale};
use crate::report::{f, Report, Table};
use bofl_workload::{TaskKind, Testbed};

/// The deadline ratios the paper sweeps.
pub const RATIOS: [f64; 5] = [2.0, 2.5, 3.0, 3.5, 4.0];

/// Runs the Fig. 12 sweep.
pub fn figure(scale: ExperimentScale) -> Report {
    let mut report = Report::new("Figure 12: BoFL effectiveness vs deadline length (AGX)");
    let mut t = Table::new(
        "fig12_sensitivity",
        &[
            "task",
            "ratio",
            "improvement_pct",
            "regret_pct",
            "bofl_j",
            "performant_j",
            "oracle_j",
        ],
    );
    for kind in TaskKind::all() {
        for ratio in RATIOS {
            let triple = run_triple(kind, Testbed::JetsonAgx, ratio, scale);
            t.push_row(vec![
                kind.to_string(),
                f(ratio, 1),
                f(triple.improvement() * 100.0, 1),
                f(triple.regret() * 100.0, 2),
                f(triple.bofl.total_energy_j(), 0),
                f(triple.performant.total_energy_j(), 0),
                f(triple.oracle.total_energy_j(), 0),
            ]);
        }
    }
    report.note("Paper: improvement grows with the ratio (20.3%–25.9% overall);");
    report.note("regret shrinks with the ratio (3.4% down to 1.2%).");
    report.push_table(t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_grows_and_regret_shrinks_with_ratio() {
        // Reduced sweep (two endpoints, fewer rounds) keeps the test quick
        // while checking the trend the paper reports.
        let scale = ExperimentScale {
            rounds: 40,
            deadline_seed: 21,
            noise_seed: 22,
        };
        let kind = TaskKind::ImdbLstm;
        let lo = run_triple(kind, Testbed::JetsonAgx, 2.0, scale);
        let hi = run_triple(kind, Testbed::JetsonAgx, 4.0, scale);
        assert!(
            hi.improvement() > lo.improvement(),
            "improvement must grow with ratio: {:.3} vs {:.3}",
            lo.improvement(),
            hi.improvement()
        );
        assert!(
            hi.regret() < lo.regret() + 0.01,
            "regret must not grow with ratio: {:.3} vs {:.3}",
            lo.regret(),
            hi.regret()
        );
        // Band check against the paper at the loose end.
        assert!(
            hi.improvement() > 0.10,
            "ratio-4 improvement {:.3} too small",
            hi.improvement()
        );
    }
}
