//! Figs. 9–10: per-round energy of BoFL vs Performant vs Oracle on the
//! AGX for the first 40 rounds, with the round deadlines and BoFL phases
//! (Fig. 9 at `T_max/T_min = 2`, Fig. 10 at `= 4`).

use crate::experiments::common::{run_triple, ExperimentScale, TripleRun};
use crate::report::{f, Report, Table};
use bofl::Phase;
use bofl_workload::{TaskKind, Testbed};

fn phase_tag(p: Option<Phase>) -> &'static str {
    match p {
        Some(Phase::RandomExploration) => "phase1",
        Some(Phase::ParetoConstruction) => "phase2",
        Some(Phase::Exploitation) => "phase3",
        None => "-",
    }
}

/// Builds the per-round energy table for one task at one deadline ratio.
pub fn energy_rounds_table(triple: &TripleRun, plot_rounds: usize) -> Table {
    let mut t = Table::new(
        format!(
            "fig_energy_{}_ratio{}",
            triple.kind.to_string().to_lowercase().replace('-', "_"),
            triple.schedule.deadlines().len()
        ),
        &[
            "round",
            "deadline_s",
            "phase",
            "bofl_j",
            "performant_j",
            "oracle_j",
        ],
    );
    for i in 0..plot_rounds.min(triple.bofl.reports.len()) {
        let b = &triple.bofl.reports[i];
        t.push_row(vec![
            (i + 1).to_string(),
            f(b.deadline_s, 1),
            phase_tag(b.phase).to_string(),
            f(b.energy_j, 1),
            f(triple.performant.reports[i].energy_j, 1),
            f(triple.oracle.reports[i].energy_j, 1),
        ]);
    }
    t
}

/// Runs the Fig. 9 or Fig. 10 experiment (all three tasks on the AGX at
/// the given deadline ratio), returning the report and the raw triples for
/// reuse by Fig. 11 / Table 3.
pub fn figure(ratio: f64, scale: ExperimentScale) -> (Report, Vec<TripleRun>) {
    let fig_name = if (ratio - 2.0).abs() < 1e-9 { 9 } else { 10 };
    let mut report = Report::new(format!(
        "Figure {fig_name}: energy per round, first 40 rounds, AGX, T_max/T_min = {ratio}"
    ));
    let mut triples = Vec::new();
    for kind in TaskKind::all() {
        let triple = run_triple(kind, Testbed::JetsonAgx, ratio, scale);
        let mut table = energy_rounds_table(&triple, 40);
        table.name = format!(
            "fig{}_{}",
            fig_name,
            kind.to_string().to_lowercase().replace('-', "_")
        );
        report.note(format!(
            "{kind}: total energy BoFL {:.0} J / Performant {:.0} J / Oracle {:.0} J → improvement {:.1}%, regret {:.1}%",
            triple.bofl.total_energy_j(),
            triple.performant.total_energy_j(),
            triple.oracle.total_energy_j(),
            triple.improvement() * 100.0,
            triple.regret() * 100.0,
        ));
        report.push_table(table);
        triples.push(triple);
    }
    report.note("Paper Fig. 9a reference: improvement 22.3%, regret 3.48% (ViT, ratio 2).");
    (report, triples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_shape_holds_at_reduced_scale() {
        let scale = ExperimentScale {
            rounds: 30,
            deadline_seed: 1,
            noise_seed: 2,
        };
        let (report, triples) = figure(2.0, scale);
        assert_eq!(triples.len(), 3);
        assert_eq!(report.tables.len(), 3);
        for t in &triples {
            // Deadlines always met by all three controllers.
            assert_eq!(t.bofl.deadlines_met(), 30, "{}", t.kind);
            assert_eq!(t.performant.deadlines_met(), 30);
            assert_eq!(t.oracle.deadlines_met(), 30);
            // Even in 30 rounds BoFL shows positive savings.
            assert!(
                t.improvement() > 0.0,
                "{}: improvement {:.3}",
                t.kind,
                t.improvement()
            );
            // Exploitation rounds track the Oracle closely.
            let bofl_p3: f64 = t
                .bofl
                .phase_reports(Phase::Exploitation)
                .map(|r| r.energy_j)
                .sum();
            let oracle_same_rounds: f64 = t
                .bofl
                .phase_reports(Phase::Exploitation)
                .map(|r| t.oracle.reports[r.round].energy_j)
                .sum();
            let gap = (bofl_p3 - oracle_same_rounds) / oracle_same_rounds;
            assert!(
                gap.abs() < 0.10,
                "{}: exploitation-phase gap vs oracle {:.1}%",
                t.kind,
                gap * 100.0
            );
        }
    }
}
