//! Bench-regression gate: compares two `BENCH_*.json` perf-trajectory
//! artifacts and fails when any workload present in both regressed its
//! median by more than the threshold.
//!
//! ```sh
//! cargo run --release -p bofl-bench --bin bench_check -- <baseline> <candidate> \
//!     [--require <prefix>]...
//! ```
//!
//! Each positional argument is either a `BENCH_*.json` file or a
//! directory, in which case the lexicographically last `BENCH_*.json`
//! inside it is used (the dated naming scheme makes that the newest).
//! Workloads only present on one side are reported but never gate — new
//! benches must be landable without a baseline; on the *next* run they
//! are in the committed artifact and gate like any other.
//!
//! `--require <prefix>` (repeatable) additionally fails the gate when no
//! candidate workload name starts with the prefix — so whole workload
//! families (`linalg/`, `gp/`) cannot silently vanish from the harness.
//!
//! Exit codes: `0` no regression, `1` at least one workload regressed or
//! a required family is missing, `2` usage or artifact-parsing error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Median regression beyond this fraction fails the gate.
const THRESHOLD: f64 = 0.20;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut required_prefixes = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--require" {
            match it.next() {
                Some(p) => required_prefixes.push(p),
                None => {
                    eprintln!("bench_check: --require needs a prefix argument");
                    return ExitCode::from(2);
                }
            }
        } else {
            positional.push(arg);
        }
    }
    let [baseline_arg, candidate_arg] = positional.as_slice() else {
        eprintln!(
            "usage: bench_check <baseline file|dir> <candidate file|dir> [--require <prefix>]..."
        );
        return ExitCode::from(2);
    };
    let (baseline_path, candidate_path) = match (
        resolve(Path::new(baseline_arg)),
        resolve(Path::new(candidate_arg)),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    };
    let (baseline, candidate) = match (load(&baseline_path), load(&candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    };
    println!("baseline:  {}", baseline_path.display());
    println!("candidate: {}\n", candidate_path.display());

    let mut regressions = 0usize;
    for (name, old_median) in &baseline {
        let Some(new_median) = candidate.iter().find(|(n, _)| n == name).map(|(_, m)| *m) else {
            println!("  ~ {name:<42} dropped from candidate (not gated)");
            continue;
        };
        let ratio = if *old_median > 0.0 {
            new_median / old_median
        } else {
            1.0
        };
        let delta_pct = (ratio - 1.0) * 100.0;
        let verdict = if ratio > 1.0 + THRESHOLD {
            regressions += 1;
            "REGRESSED"
        } else if ratio < 1.0 - THRESHOLD {
            "improved"
        } else {
            "ok"
        };
        println!(
            "  {verdict:>9}  {name:<42} {old_median:>9.2} -> {new_median:>9.2} ms ({delta_pct:+.1}%)"
        );
    }
    for (name, _) in &candidate {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("  + {name:<42} new in candidate (not gated)");
        }
    }

    let mut missing_families = 0usize;
    for prefix in &required_prefixes {
        if !candidate.iter().any(|(n, _)| n.starts_with(prefix)) {
            eprintln!("bench_check: required workload family \"{prefix}*\" missing from candidate");
            missing_families += 1;
        }
    }

    if regressions > 0 || missing_families > 0 {
        eprintln!(
            "\nbench_check: {regressions} workload(s) regressed beyond {:.0}%, {missing_families} required family(ies) missing",
            THRESHOLD * 100.0
        );
        ExitCode::from(1)
    } else {
        println!(
            "\nbench_check: no median regression beyond {:.0}%",
            THRESHOLD * 100.0
        );
        ExitCode::SUCCESS
    }
}

/// A file argument is used as-is; a directory argument resolves to the
/// lexicographically last `BENCH_*.json` it contains.
fn resolve(arg: &Path) -> Result<PathBuf, String> {
    if arg.is_file() {
        return Ok(arg.to_path_buf());
    }
    if arg.is_dir() {
        let mut candidates: Vec<PathBuf> = std::fs::read_dir(arg)
            .map_err(|e| format!("cannot read {}: {e}", arg.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect();
        candidates.sort();
        return candidates
            .pop()
            .ok_or_else(|| format!("no BENCH_*.json in {}", arg.display()));
    }
    Err(format!("no such file or directory: {}", arg.display()))
}

/// Extracts `(name, median_ms)` pairs from a perf-trajectory artifact.
/// The format is the harness's own hand-rolled JSON — one bench object
/// per line — so a line scanner beats a full parser and vendors nothing.
fn load(path: &Path) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let median = field_num(line, "median_ms")
            .ok_or_else(|| format!("{}: bench \"{name}\" has no median_ms", path.display()))?;
        if !median.is_finite() || median < 0.0 {
            return Err(format!(
                "{}: bench \"{name}\" has invalid median_ms {median}",
                path.display()
            ));
        }
        out.push((name, median));
    }
    if out.is_empty() {
        return Err(format!("{}: no bench entries found", path.display()));
    }
    Ok(out)
}

/// `"key": "value"` on this line, if present.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pattern = format!("\"{key}\": \"");
    let start = line.find(&pattern)? + pattern.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

/// `"key": <number>` on this line, if present.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pattern = format!("\"{key}\": ");
    let start = line.find(&pattern)? + pattern.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
