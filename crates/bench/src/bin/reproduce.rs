//! Regenerates every table and figure of the BoFL paper's evaluation.
//!
//! ```text
//! reproduce [EXPERIMENT ...] [--quick] [--out DIR]
//!
//! EXPERIMENT: table1 table2 fig3 fig4 fig5 fig9 fig10 fig11 table3
//!             fig12 fig13 ablation fleet | all (default)
//! --quick     reduced scale (20 rounds instead of 100)
//! --out DIR   write CSVs under DIR (default: results/)
//! ```

use bofl_bench::experiments::{
    ablations, fig11_pareto, fig12_sensitivity, fig13_overhead, fig2_spread,
    fig3_fig4_fig5_motivation as motivation, fig9_fig10_energy, fleet_scale,
    table1_table2_specs as specs, table3_walkthrough, ExperimentScale,
};
use bofl_bench::Report;
use std::path::PathBuf;
use std::process::ExitCode;

const ALL: &[&str] = &[
    "table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig9", "fig10", "fig11", "table3",
    "fig12", "fig13", "ablation", "fleet",
];

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = PathBuf::from("results");
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: reproduce [EXPERIMENT ...] [--quick] [--out DIR]\n\
                     experiments: {} | all",
                    ALL.join(" ")
                );
                return ExitCode::SUCCESS;
            }
            "all" => wanted.extend(ALL.iter().map(|s| s.to_string())),
            other if ALL.contains(&other) => wanted.push(other.to_string()),
            other => {
                eprintln!(
                    "unknown experiment '{other}'; valid: {} | all",
                    ALL.join(" ")
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if wanted.is_empty() {
        wanted.extend(ALL.iter().map(|s| s.to_string()));
    }
    wanted.dedup();

    let scale = if quick {
        ExperimentScale::quick()
    } else {
        ExperimentScale::full()
    };

    let emit = |report: Report| {
        println!("{}", report.to_text());
        if let Err(e) = report.write_csvs(&out) {
            eprintln!("warning: failed to write CSVs: {e}");
        }
    };

    for exp in &wanted {
        let started = std::time::Instant::now();
        match exp.as_str() {
            "table1" => emit(specs::table1()),
            "table2" => emit(specs::table2()),
            "fig2" => emit(fig2_spread::figure()),
            "fig3" => emit(motivation::fig3()),
            "fig4" => emit(motivation::fig4()),
            "fig5" => emit(motivation::fig5()),
            "fig9" => emit(fig9_fig10_energy::figure(2.0, scale).0),
            "fig10" => emit(fig9_fig10_energy::figure(4.0, scale).0),
            "fig11" => emit(fig11_pareto::figure(scale)),
            "table3" => emit(table3_walkthrough::table(scale)),
            "fig12" => emit(fig12_sensitivity::figure(scale)),
            "fig13" => emit(fig13_overhead::figure(scale)),
            "ablation" => emit(ablations::study(scale)),
            "fleet" => emit(fleet_scale::figure(scale)),
            _ => unreachable!("validated above"),
        }
        eprintln!("[{exp} done in {:.1}s]", started.elapsed().as_secs_f64());
    }
    eprintln!("CSV output written under {}", out.display());
    ExitCode::SUCCESS
}
