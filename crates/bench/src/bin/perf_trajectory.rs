//! Perf-trajectory harness: times the repo's hot paths directly (the
//! vendored criterion stub only prints medians, it cannot export them)
//! and writes a dated `results/BENCH_<date>.json` artifact so perf can be
//! tracked commit over commit.
//!
//! Workloads:
//!
//! - `linalg/*` — the packed, cache-blocked GEMM and panel Cholesky
//!   kernels every surrogate fit sits on;
//! - `gp/rff_predict_4096obs` — batch prediction through the
//!   sparse-spectrum (RFF) surrogate at a pooled-fleet observation count
//!   no exact GP could serve interactively;
//! - `mobo/suggest_{cold,warm}` — the surrogate hot path (fit both GPs,
//!   sequential-greedy EHVI scan over 512 candidates, batch of 8), cold
//!   vs hyperparameter-cache-warm, matching `benches/microbench.rs`; the
//!   warm 128-observation variant exercises the engine's RFF switch;
//! - `round/fleet_barrier` vs `round/event_driven` — the same faulted
//!   fleet simulation through the barrier `FleetEngine` and through
//!   `bofl-control`'s `EventDrivenEngine` (lifecycle journal + quorum
//!   closes), isolating the control plane's overhead;
//! - `round/loopback_transport` — the event-driven run again with
//!   updates carried over real OS-thread loopback lanes, isolating the
//!   transport seam's overhead;
//! - `round/socket_transport` — the same run once more with every update
//!   carried over real localhost TCP (framed, checksummed, acked),
//!   isolating the socket stack's overhead; each `round/*` entry records
//!   its transport kind in the artifact so regressions can be attributed
//!   to the wire;
//! - `round/sharded_1m_clients` — the hierarchical aggregation headline:
//!   a 1,000,000-client registered fleet, 4,096-client cohorts, 100
//!   rounds through 64 aggregator shards with int8-quantized uplinks and
//!   the full fault stack.
//!
//! ```sh
//! cargo run --release -p bofl-bench --bin perf_trajectory
//! ```

use std::path::PathBuf;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use bofl_bench::host_cores;
use bofl_control::{ControlSimulation, LoopbackTransport, SocketTransport};
use bofl_fl::server::{AggregationPolicy, FederationConfig};
use bofl_fl::RetryPolicy;
use bofl_fleet::scale::ScaleConfig;
use bofl_fleet::{
    FaultPlan, FleetSimulation, FleetSpec, Int8Quantizer, ScaleSimulation, ShardPlan,
    UniformSampler,
};
use bofl_gp::{RandomFourierFeatures, RffConfig, WarmStart};
use bofl_linalg::{Cholesky, Matrix};
use bofl_mobo::{MoboConfig, MoboEngine, Observation, SobolSequence};

/// Wall-clock repetitions per workload; the median is the headline.
const REPS: usize = 5;

struct BenchResult {
    name: String,
    reps: usize,
    median_ms: f64,
    min_ms: f64,
    mean_ms: f64,
    /// The wire the workload's updates travelled over (`round/*`
    /// workloads only), so the artifact attributes perf to the transport.
    transport: Option<&'static str>,
}

/// Tags the most recent result with its transport kind.
fn tag_transport(results: &mut [BenchResult], transport: &'static str) {
    results
        .last_mut()
        .expect("tag_transport follows a bench() call")
        .transport = Some(transport);
}

/// Times `f` REPS times (after one untimed warmup) and records the stats.
fn bench(name: &str, results: &mut Vec<BenchResult>, f: impl FnMut()) {
    bench_reps(name, REPS, results, f);
}

/// [`bench`] with an explicit repetition count, for workloads whose
/// single run is long enough to make REPS wasteful.
fn bench_reps(name: &str, reps: usize, results: &mut Vec<BenchResult>, mut f: impl FnMut()) {
    f(); // warmup: fault in code paths and allocator arenas
    let mut samples_ms = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        samples_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    samples_ms.sort_by(f64::total_cmp);
    let median_ms = samples_ms[samples_ms.len() / 2];
    let min_ms = samples_ms[0];
    let mean_ms = samples_ms.iter().sum::<f64>() / samples_ms.len() as f64;
    println!("{name:<42} median {median_ms:>9.2} ms  (min {min_ms:.2}, mean {mean_ms:.2})");
    results.push(BenchResult {
        name: name.to_string(),
        reps,
        median_ms,
        min_ms,
        mean_ms,
        transport: None,
    });
}

/// Deterministic pseudo-random fill (SplitMix64 → [-1, 1]) for the
/// kernel workloads; keeps the artifact independent of any RNG crate.
fn fill(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        })
        .collect()
}

/// The blocked linear-algebra kernels in isolation: square GEMM at 256
/// and a panel Cholesky at 512 (the Gram sizes pooled-fleet surrogates
/// produce). Larger sizes live in the manual `kernel_table` bin so the
/// trajectory run stays fast.
fn linalg_workloads(results: &mut Vec<BenchResult>) {
    let n = 256;
    let a = Matrix::from_vec(n, n, fill(0xA, n * n)).unwrap();
    let b = Matrix::from_vec(n, n, fill(0xB, n * n)).unwrap();
    bench("linalg/matmul_256", results, || {
        std::hint::black_box(a.matmul(&b).unwrap());
    });

    let n = 512;
    let g = Matrix::from_vec(n, n, fill(0xC, n * n)).unwrap();
    let mut spd = g.matmul(&g.transpose()).unwrap();
    spd.add_diagonal(n as f64);
    bench("linalg/cholesky_512", results, || {
        std::hint::black_box(Cholesky::factor(&spd).unwrap());
    });
}

/// Batch prediction through the RFF surrogate at 4,096 observations —
/// the regime the exact GP cannot serve (its fit alone is `O(n³)`).
/// Prediction cost is observation-count independent: `O(D²)` per query.
fn gp_workloads(results: &mut Vec<BenchResult>) {
    let n = 4_096;
    let mut sobol = SobolSequence::new(3);
    let xs: Vec<Vec<f64>> = (0..n).map(|_| sobol.next_point()).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 2.0 + x[0] + 0.5 * (7.0 * x[1]).sin() + 0.2 * x[2])
        .collect();
    let rff = RandomFourierFeatures::fit(
        &xs,
        &ys,
        RffConfig {
            n_features: 128,
            hyperparameters: Some(WarmStart {
                variance: 1.0,
                lengthscales: vec![0.3; 3],
                noise: 1e-3,
            }),
            ..RffConfig::default()
        },
    )
    .unwrap();
    let queries: Vec<Vec<f64>> = (0..16).map(|_| sobol.next_point()).collect();
    bench("gp/rff_predict_4096obs", results, || {
        std::hint::black_box(rff.predict_batch(&queries).unwrap());
    });
}

/// The surrogate hot path at `n` observations (mirrors microbench.rs).
/// At 64 observations both suggest variants run the exact GP; the warm
/// 128-observation variant crosses the engine's RFF threshold.
fn mobo_workloads(results: &mut Vec<BenchResult>) {
    for n in [64usize, 128] {
        let mut engine = MoboEngine::new(MoboConfig::default());
        let mut sobol = SobolSequence::new(3);
        for _ in 0..n {
            let x = sobol.next_point();
            let f0 = 2.0 + x[0] + 0.5 * (7.0 * x[1]).sin() + 0.2 * x[2];
            let f1 = 3.0 - x[0] + 0.4 * (5.0 * x[2]).cos() + 0.2 * x[1];
            engine.observe(Observation::new(x, [f0, f1])).unwrap();
        }
        let candidates: Vec<Vec<f64>> = (0..512).map(|_| sobol.next_point()).collect();
        if n == 64 {
            bench(
                &format!("mobo/suggest_cold_{n}obs_512cand_k8"),
                results,
                || {
                    let mut e = engine.clone();
                    e.suggest(8, &candidates).unwrap();
                },
            );
        }
        let mut warmed = engine.clone();
        warmed.suggest(8, &candidates).unwrap();
        bench(
            &format!("mobo/suggest_warm_{n}obs_512cand_k8"),
            results,
            || {
                let mut e = warmed.clone();
                e.suggest(8, &candidates).unwrap();
            },
        );
    }
}

const FLEET_SEED: u64 = 2026;

fn round_config() -> FederationConfig {
    FederationConfig {
        clients_per_round: 8,
        rounds: 5,
        classes: 4,
        feature_dims: 8,
        seed: FLEET_SEED,
        aggregation: AggregationPolicy::recovery(),
        ..FederationConfig::default()
    }
}

fn round_faults() -> FaultPlan {
    FaultPlan::new(FLEET_SEED ^ 0xFA17)
        .with_stragglers(0.2, (1.5, 3.0))
        .with_upload_failures(0.1)
}

/// The same faulted 40-client, 5-round federation through both engines.
fn round_loop_workloads(results: &mut Vec<BenchResult>) {
    let spec = FleetSpec::mixed(40, FLEET_SEED);
    bench("round/fleet_barrier_40c_5r_4w", results, || {
        FleetSimulation::builder(spec)
            .federation(round_config())
            .workers(4)
            .faults(round_faults())
            .retry(RetryPolicy::recovery())
            .build()
            .run();
    });
    tag_transport(results, "none");
    bench("round/event_driven_40c_5r_4w", results, || {
        ControlSimulation::builder(spec)
            .federation(round_config())
            .workers(4)
            .faults(round_faults().with_churn(0.05, 2))
            .retry(RetryPolicy::recovery())
            .build()
            .run();
    });
    tag_transport(results, "virtual");
    // The same event-driven run with updates carried over real OS-thread
    // loopback lanes instead of the virtual wire: isolates the cost of
    // thread spawn + channel collection per round.
    bench("round/loopback_transport_40c_5r_4w", results, || {
        ControlSimulation::builder(spec)
            .federation(round_config())
            .workers(4)
            .faults(round_faults().with_churn(0.05, 2))
            .retry(RetryPolicy::recovery())
            .transport(LoopbackTransport::new(4))
            .build()
            .run();
    });
    tag_transport(results, "loopback");
    // And once more over real localhost TCP: every update framed,
    // checksummed and acked through four persistent lane connections.
    // The delta against loopback is the socket stack's cost.
    bench("round/socket_transport_40c_5r_4w", results, || {
        ControlSimulation::builder(spec)
            .federation(round_config())
            .workers(4)
            .faults(round_faults().with_churn(0.05, 2))
            .retry(RetryPolicy::recovery())
            .transport(SocketTransport::in_process(4))
            .build()
            .run();
    });
    tag_transport(results, "socket");
}

/// The hierarchical-aggregation headline: one million registered
/// clients, 100 rounds, 64 shards, int8-quantized uplinks, the full
/// fault stack. One rep is a whole simulated deployment, so three reps
/// suffice for a stable median.
fn sharded_scale_workload(results: &mut Vec<BenchResult>) {
    let config = ScaleConfig {
        fleet_size: 1_000_000,
        cohort: 4_096,
        rounds: 100,
        dim: 64,
        seed: FLEET_SEED,
        shard_plan: ShardPlan::with_shards(64),
        workers: host_cores(),
        ..ScaleConfig::default()
    };
    bench_reps("round/sharded_1m_clients_100r_64s", 3, results, || {
        ScaleSimulation::builder(config)
            .sampler(UniformSampler)
            .compressor(Int8Quantizer)
            .faults(
                FaultPlan::new(FLEET_SEED ^ 0xFA17)
                    .with_dropout(0.02)
                    .with_stragglers(0.08, (1.2, 3.0))
                    .with_upload_failures(0.03),
            )
            .build()
            .run();
    });
}

/// Days-since-epoch → `YYYY-MM-DD` (Howard Hinnant's civil-date
/// algorithm); avoids any date dependency.
fn utc_date_string() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("system clock before 1970")
        .as_secs();
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Hand-rolled JSON: names are fixed slugs, numbers are finite — no
/// escaping needed (the workspace vendors no serde_json).
fn to_json(date: &str, cores: usize, results: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bofl-perf-trajectory/v1\",\n");
    out.push_str(&format!("  \"date\": \"{date}\",\n"));
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        let transport = match r.transport {
            Some(t) => format!("\"transport\": \"{t}\", "),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"reps\": {}, {}\"median_ms\": {:.3}, \"min_ms\": {:.3}, \"mean_ms\": {:.3}}}{}\n",
            r.name,
            r.reps,
            transport,
            r.median_ms,
            r.min_ms,
            r.mean_ms,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let cores = host_cores();
    println!("perf trajectory: {REPS} reps/workload, {cores} cores\n");

    let mut results = Vec::new();
    linalg_workloads(&mut results);
    gp_workloads(&mut results);
    mobo_workloads(&mut results);
    round_loop_workloads(&mut results);
    sharded_scale_workload(&mut results);

    let date = utc_date_string();
    let json = to_json(&date, cores, &results);
    // Anchor on the bench crate's manifest so the artifact lands in the
    // workspace's results/ regardless of the invocation directory.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results/");
    let path = dir.join(format!("BENCH_{date}.json"));
    std::fs::write(&path, &json).expect("write BENCH artifact");
    println!("\nwrote {}", path.canonicalize().unwrap_or(path).display());
}
