//! Before/after kernel table: times the repo's blocked linear-algebra
//! kernels against faithful copies of the pre-kernel-layer scalar
//! implementations at n ∈ {64, 256, 1024, 4096} and prints the
//! EXPERIMENTS.md markdown table.
//!
//! The reference implementations below are the *old* library routines
//! (zero-skip `i,k,j` GEMM, `from_fn` transpose, sequential-sum matvec,
//! element-indexed scalar Cholesky), copied so the table can be
//! regenerated from any checkout without digging through git history.
//!
//! The large sizes run a single repetition (a 4096³ scalar GEMM takes
//! minutes); this bin is manual — it is NOT part of the perf-trajectory
//! gate, which sticks to sub-second workloads.
//!
//! ```sh
//! cargo run --release -p bofl-bench --bin kernel_table
//! ```

use bofl_linalg::{Cholesky, Matrix};
use std::time::Instant;

/// Deterministic pseudo-random fill (SplitMix64 → [-1, 1]).
fn fill(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        })
        .collect()
}

/// Pre-kernel-layer GEMM: `i,k,j` accumulation with the zero-skip.
fn old_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let aik = a[(i, k)];
            if aik == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                out[(i, j)] += aik * b[(k, j)];
            }
        }
    }
    out
}

/// Pre-kernel-layer transpose: column-strided `from_fn` reads.
fn old_transpose(a: &Matrix) -> Matrix {
    Matrix::from_fn(a.cols(), a.rows(), |i, j| a[(j, i)])
}

/// Pre-kernel-layer matvec: sequential per-row sum.
fn old_matvec(a: &Matrix, v: &[f64]) -> Vec<f64> {
    (0..a.rows())
        .map(|i| a.row(i).iter().zip(v).map(|(x, y)| x * y).sum())
        .collect()
}

/// Pre-kernel-layer Cholesky: element-indexed scalar factorization.
fn old_cholesky(a: &Matrix) -> Matrix {
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    l
}

/// Median of `reps` timed runs in milliseconds (no warmup at reps == 1).
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    if reps > 1 {
        f(); // warmup
    }
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn reps_for(n: usize) -> usize {
    match n {
        0..=128 => 20,
        129..=512 => 5,
        513..=2048 => 3,
        _ => 1,
    }
}

fn main() {
    let sizes = [64usize, 256, 1024, 4096];
    println!("| kernel | n | before (ms) | after (ms) | speedup |");
    println!("|---|---|---|---|---|");
    for &n in &sizes {
        let reps = reps_for(n);
        let a = Matrix::from_vec(n, n, fill(0xA ^ n as u64, n * n)).unwrap();
        let b = Matrix::from_vec(n, n, fill(0xB ^ n as u64, n * n)).unwrap();
        let v = fill(0xF ^ n as u64, n);

        let before = time_ms(reps, || {
            std::hint::black_box(old_matmul(&a, &b));
        });
        let after = time_ms(reps, || {
            std::hint::black_box(a.matmul(&b).unwrap());
        });
        println!(
            "| matmul | {n} | {before:.2} | {after:.2} | {:.2}x |",
            before / after
        );

        let before = time_ms(reps.max(5), || {
            std::hint::black_box(old_transpose(&a));
        });
        let after = time_ms(reps.max(5), || {
            std::hint::black_box(a.transpose());
        });
        println!(
            "| transpose | {n} | {before:.3} | {after:.3} | {:.2}x |",
            before / after
        );

        let before = time_ms(reps.max(5), || {
            std::hint::black_box(old_matvec(&a, &v));
        });
        let after = time_ms(reps.max(5), || {
            std::hint::black_box(a.matvec(&v).unwrap());
        });
        println!(
            "| matvec | {n} | {before:.3} | {after:.3} | {:.2}x |",
            before / after
        );

        let mut spd = a.matmul(&a.transpose()).unwrap();
        spd.add_diagonal(n as f64);
        let before = time_ms(reps, || {
            std::hint::black_box(old_cholesky(&spd));
        });
        let after = time_ms(reps, || {
            std::hint::black_box(Cholesky::factor(&spd).unwrap());
        });
        println!(
            "| cholesky | {n} | {before:.2} | {after:.2} | {:.2}x |",
            before / after
        );
    }
}
