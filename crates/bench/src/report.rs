//! Lightweight tabular reports: render to aligned text and to CSV without
//! external dependencies.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A named table of string cells with a header row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table name; used as the CSV file stem.
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            name: name.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {} in table {}",
            cells.len(),
            self.headers.len(),
            self.name
        );
        self.rows.push(cells);
    }

    /// Renders the table as aligned monospace text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-ish; quotes cells containing
    /// commas or quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// A report: one or more tables plus free-form notes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Report title (e.g. `"Figure 9"`).
    pub title: String,
    /// Narrative notes printed before the tables.
    pub notes: Vec<String>,
    /// The tables.
    pub tables: Vec<Table>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            ..Report::default()
        }
    }

    /// Adds a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Adds a table.
    pub fn push_table(&mut self, t: Table) {
        self.tables.push(t);
    }

    /// Renders the whole report as text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "==== {} ====", self.title);
        for n in &self.notes {
            let _ = writeln!(out, "  {n}");
        }
        for t in &self.tables {
            let _ = writeln!(out, "\n-- {} --", t.name);
            out.push_str(&t.to_text());
        }
        out
    }

    /// Writes every table as `<dir>/<table-name>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csvs(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        for t in &self.tables {
            fs::write(dir.join(format!("{}.csv", t.name)), t.to_csv())?;
        }
        Ok(())
    }
}

/// Formats a float with `digits` decimal places (helper for tables).
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_text_and_csv() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "hello,world".into()]);
        let text = t.to_text();
        assert!(text.contains('a'));
        assert!(text.contains("hello,world"));
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"hello,world\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        Table::new("x", &["a"]).push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn report_roundtrip() {
        let mut r = Report::new("Figure X");
        r.note("a note");
        let mut t = Table::new("t1", &["col"]);
        t.push_row(vec!["v".into()]);
        r.push_table(t);
        let text = r.to_text();
        assert!(text.contains("Figure X"));
        assert!(text.contains("a note"));
        assert!(text.contains("t1"));

        let dir = std::env::temp_dir().join("bofl_report_test");
        r.write_csvs(&dir).unwrap();
        let written = std::fs::read_to_string(dir.join("t1.csv")).unwrap();
        assert!(written.contains("col"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formatter() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 0), "10");
    }
}
