//! Multi-objective Bayesian optimization for the BoFL reproduction.
//!
//! BoFL's Pareto-front-construction phase (paper §4.3) searches the DVFS
//! configuration space for configurations that are Pareto-optimal in the
//! 2-D `(energy, latency)` objective space. This crate implements the
//! machinery that phase needs, replacing the Python library Trieste used by
//! the original implementation:
//!
//! - [`pareto`] — dominance and Pareto-front maintenance over 2-D
//!   objective vectors (the paper's §3.2 definitions);
//! - [`hypervolume`] — the exact 2-D hypervolume indicator (Eqn. 4) and
//!   hypervolume improvement (Eqn. 5);
//! - [`ehvi`] — the exact 2-D *expected* hypervolume improvement
//!   acquisition function (Eqn. 6) under independent Gaussian posteriors;
//! - [`sobol`] — a Sobol quasi-random sequence for the uniform start
//!   points of the safe-random-exploration phase (§4.2);
//! - [`MoboEngine`] — the end-to-end engine: observe → fit two GPs →
//!   propose a batch via sequential-greedy EHVI with fantasized
//!   observations → report the hypervolume trajectory for the stopping
//!   rule.
//!
//! # Examples
//!
//! ```
//! use bofl_mobo::{MoboEngine, MoboConfig, Observation};
//!
//! # fn main() -> Result<(), bofl_mobo::MoboError> {
//! let mut engine = MoboEngine::new(MoboConfig::default());
//! // Observe a few points of a toy 1-D problem with conflicting
//! // objectives f1(x) = x, f2(x) = 1 - x.
//! for &x in &[0.0, 0.3, 0.7, 1.0] {
//!     engine.observe(Observation::new(vec![x], [x, 1.0 - x]))?;
//! }
//! let batch = engine.suggest(2, &[vec![0.1], vec![0.5], vec![0.9]])?;
//! assert_eq!(batch.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ehvi;
pub mod hypervolume;
pub mod pareto;
pub mod sobol;

mod engine;
mod error;

pub use engine::{MoboConfig, MoboEngine, Observation, RffSwitch, StoppingRule};
pub use error::MoboError;
pub use pareto::{pareto_front_indices, ParetoFront};
pub use sobol::SobolSequence;
