use bofl_gp::GpError;
use std::error::Error;
use std::fmt;

/// Error type for multi-objective Bayesian optimization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MoboError {
    /// Not enough observations to fit the surrogate models.
    NotEnoughObservations {
        /// Observations currently held.
        have: usize,
        /// Observations required.
        need: usize,
    },
    /// An observation or candidate contained NaN/infinite values.
    NonFinite,
    /// Points of inconsistent dimensionality were supplied.
    DimensionMismatch {
        /// Expected point dimension.
        expected: usize,
        /// Dimension actually supplied.
        got: usize,
    },
    /// The candidate set was empty.
    NoCandidates,
    /// Fitting or predicting with a Gaussian process failed.
    Gp(GpError),
}

impl fmt::Display for MoboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoboError::NotEnoughObservations { have, need } => {
                write!(f, "need at least {need} observations, have {have}")
            }
            MoboError::NonFinite => write!(f, "observation contains non-finite values"),
            MoboError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "point dimension {got} does not match expected {expected}"
                )
            }
            MoboError::NoCandidates => write!(f, "candidate set must not be empty"),
            MoboError::Gp(e) => write!(f, "surrogate model failure: {e}"),
        }
    }
}

impl Error for MoboError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MoboError::Gp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpError> for MoboError {
    fn from(e: GpError) -> Self {
        MoboError::Gp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(MoboError::NoCandidates.to_string().contains("candidate"));
        assert!(MoboError::Gp(GpError::NoData).source().is_some());
        assert!(MoboError::NonFinite.source().is_none());
        let e = MoboError::NotEnoughObservations { have: 1, need: 4 };
        assert!(e.to_string().contains('4'));
    }
}
