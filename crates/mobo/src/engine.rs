use crate::ehvi::{BiGaussian, EhviCells};
use crate::hypervolume::hypervolume;
use crate::{MoboError, ParetoFront};
use bofl_gp::{
    GaussianProcess, GpConfig, RandomFourierFeatures, RffConfig, SurrogateModel, WarmStart,
};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Candidate scans smaller than this always run on the calling thread:
/// below it the per-candidate work cannot amortize thread spawning.
const MIN_PARALLEL_SCAN: usize = 64;

/// Hard cap on scan workers when `scan_workers == 0` (auto).
const MAX_AUTO_WORKERS: usize = 8;

/// Best candidate of one scan (chunk): `(index, ehvi, posterior)`, `None`
/// when every candidate in range was ineligible.
type ScanBest = Option<(usize, f64, BiGaussian)>;

/// The boxed per-objective surrogate pair [`MoboEngine::fit_surrogates`]
/// hands to the suggestion loop (exact GP or RFF, per [`RffSwitch`]).
type SurrogatePair = (Box<dyn SurrogateModel>, Box<dyn SurrogateModel>);

/// One evaluated point: input coordinates (unit-cube scaled) and the two
/// measured objective values `(objective 0, objective 1)` — in BoFL,
/// `(energy per minibatch, latency per minibatch)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Input coordinates.
    pub point: Vec<f64>,
    /// Measured objective values, both minimized.
    pub objectives: [f64; 2],
}

impl Observation {
    /// Creates an observation.
    pub fn new(point: Vec<f64>, objectives: [f64; 2]) -> Self {
        Observation { point, objectives }
    }

    /// `true` iff all coordinates and objectives are finite.
    pub fn is_finite(&self) -> bool {
        self.point.iter().all(|v| v.is_finite()) && self.objectives.iter().all(|v| v.is_finite())
    }
}

/// The paper's MBO stopping condition (§4.3): stop once at least
/// `min_evaluations` configurations have been explored *and* the relative
/// hypervolume increase of the latest round fell below `hvi_threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoppingRule {
    /// Minimum number of explored configurations (the paper uses ≈3% of
    /// the configuration space).
    pub min_evaluations: usize,
    /// Relative hypervolume-increase threshold (the paper uses 1%).
    pub hvi_threshold: f64,
}

impl Default for StoppingRule {
    fn default() -> Self {
        StoppingRule {
            min_evaluations: 60,
            hvi_threshold: 0.01,
        }
    }
}

/// When and how the engine swaps the exact GP surrogate for the
/// approximate [`RandomFourierFeatures`] regressor.
///
/// Exact GP fitting is `O(n³)` per hyperparameter evaluation and exact
/// prediction is `O(n)` per query, so once pooled fleet telemetry pushes
/// the observation count into the hundreds the surrogate fit dominates
/// [`MoboEngine::suggest`]. Above [`RffSwitch::threshold`] observations
/// the engine instead fits a sparse-spectrum (RFF) surrogate whose cost
/// depends on the feature count `D`, not `n`: hyperparameters come from
/// the warm-start cache (refreshed on the [`MoboConfig::refit_every`]
/// schedule by an exact-GP fit on a deterministic stride subsample of at
/// most [`RffSwitch::hyper_subsample`] points), so the per-suggest
/// Nelder–Mead marginal-likelihood search over the full data set is
/// skipped entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RffSwitch {
    /// Observation count at which the engine switches to the RFF
    /// surrogate. `usize::MAX` never switches (always exact); `0` always
    /// uses RFF.
    pub threshold: usize,
    /// Number of random Fourier features `D` ([`RffConfig::n_features`]).
    pub n_features: usize,
    /// Base seed for the deterministic spectral draws; each objective
    /// derives its own stream from it, so the two surrogates never share
    /// frequencies.
    pub seed: u64,
    /// Maximum size of the stride subsample used for exact-GP
    /// hyperparameter refits on the RFF path.
    pub hyper_subsample: usize,
}

impl Default for RffSwitch {
    fn default() -> Self {
        RffSwitch {
            threshold: 128,
            n_features: 128,
            seed: 0xB0F1_0FF5,
            hyper_subsample: 96,
        }
    }
}

/// Configuration of the MBO engine.
#[derive(Debug, Clone, PartialEq)]
pub struct MoboConfig {
    /// Surrogate-model configuration (one GP per objective; the paper
    /// uses independent Matérn-5/2 GPs).
    pub gp: GpConfig,
    /// Relative padding added to the worst observed objectives when
    /// deriving the reference point automatically.
    pub reference_padding: f64,
    /// Stopping rule parameters.
    pub stopping: StoppingRule,
    /// Full multi-start hyperparameter refits run on the first fit and
    /// whenever at least this many observations arrived since the last
    /// full refit. In between, fits warm-start from the cached optimum
    /// with a single Nelder–Mead restart ([`bofl_gp::GpConfig::warm_start`]).
    /// `0` behaves like `1` (every fit is a full refit).
    pub refit_every: usize,
    /// Worker threads for the per-slot candidate scan in
    /// [`MoboEngine::suggest`]. `0` picks
    /// `min(available_parallelism, 8)`. The suggestion batch is
    /// byte-identical at any worker count.
    pub scan_workers: usize,
    /// Exact-vs-approximate surrogate switch (see [`RffSwitch`]).
    pub rff: RffSwitch,
}

impl Default for MoboConfig {
    fn default() -> Self {
        MoboConfig {
            gp: GpConfig::default(),
            reference_padding: 0.05,
            stopping: StoppingRule::default(),
            refit_every: 8,
            scan_workers: 0,
            rff: RffSwitch::default(),
        }
    }
}

/// Cached hyperparameter optimum from the previous surrogate fit of one
/// objective, plus the bookkeeping that drives the refit schedule.
#[derive(Debug, Clone)]
struct WarmCache {
    hypers: WarmStart,
    /// Observation count at the most recent *full* multi-start fit.
    full_fit_len: usize,
}

/// The multi-objective Bayesian optimization engine (the paper's "MBO
/// engine", §5.2 module 5).
///
/// Lifecycle per Pareto-construction round:
///
/// 1. [`MoboEngine::observe`] every `(configuration, T̂, Ê)` measured in
///    the previous training round;
/// 2. [`MoboEngine::suggest`] a batch of `K` candidates for the next
///    round — this fits the two GPs and runs sequential-greedy EHVI with
///    Kriging-believer fantasies (§4.3 "Batch Selection Strategy");
/// 3. [`MoboEngine::record_round`] to append the current hypervolume to
///    the stopping-rule history, and [`MoboEngine::should_stop`] to test
///    the §4.3 stopping condition.
#[derive(Debug, Clone)]
pub struct MoboEngine {
    config: MoboConfig,
    observations: Vec<Observation>,
    dim: Option<usize>,
    reference: Option<[f64; 2]>,
    hv_history: Vec<f64>,
    last_suggest_duration: Option<Duration>,
    /// Per-objective warm-start cache (hyperparameters of the last fit).
    warm: [Option<WarmCache>; 2],
}

impl MoboEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: MoboConfig) -> Self {
        MoboEngine {
            config,
            observations: Vec::new(),
            dim: None,
            reference: None,
            hv_history: Vec::new(),
            last_suggest_duration: None,
            warm: [None, None],
        }
    }

    /// Records one evaluated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MoboError::NonFinite`] for NaN/infinite values and
    /// [`MoboError::DimensionMismatch`] if the point dimension differs
    /// from previous observations.
    pub fn observe(&mut self, obs: Observation) -> Result<(), MoboError> {
        if !obs.is_finite() {
            return Err(MoboError::NonFinite);
        }
        match self.dim {
            None => self.dim = Some(obs.point.len()),
            Some(d) if d != obs.point.len() => {
                return Err(MoboError::DimensionMismatch {
                    expected: d,
                    got: obs.point.len(),
                })
            }
            _ => {}
        }
        self.observations.push(obs);
        Ok(())
    }

    /// All observations so far.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// `true` if no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Pins the reference point explicitly (the paper derives it from the
    /// worst phase-1 observations and then keeps it fixed).
    pub fn set_reference(&mut self, r: [f64; 2]) {
        self.reference = Some(r);
    }

    /// The reference point: the pinned one if set, otherwise the worst
    /// observed value per objective padded by `reference_padding`.
    ///
    /// Returns `None` when there are no observations and no pinned point.
    pub fn reference(&self) -> Option<[f64; 2]> {
        if let Some(r) = self.reference {
            return Some(r);
        }
        if self.observations.is_empty() {
            return None;
        }
        let pad = 1.0 + self.config.reference_padding;
        let mut worst = [f64::NEG_INFINITY; 2];
        for o in &self.observations {
            worst[0] = worst[0].max(o.objectives[0]);
            worst[1] = worst[1].max(o.objectives[1]);
        }
        Some([worst[0] * pad, worst[1] * pad])
    }

    /// The Pareto front of all observations (objective space).
    pub fn pareto_front(&self) -> ParetoFront {
        self.observations.iter().map(|o| o.objectives).collect()
    }

    /// Indices of the observations that lie on the Pareto front.
    pub fn pareto_indices(&self) -> Vec<usize> {
        let objs: Vec<[f64; 2]> = self.observations.iter().map(|o| o.objectives).collect();
        crate::pareto_front_indices(&objs)
    }

    /// The dominated hypervolume of the current front under the current
    /// reference point (zero when unmeasurable).
    pub fn hypervolume(&self) -> f64 {
        match self.reference() {
            Some(r) => hypervolume(&self.pareto_front(), r),
            None => 0.0,
        }
    }

    /// Appends the current hypervolume to the stopping-rule history. Call
    /// once per Pareto-construction round.
    pub fn record_round(&mut self) {
        let hv = self.hypervolume();
        self.hv_history.push(hv);
    }

    /// The recorded hypervolume trajectory.
    pub fn hypervolume_history(&self) -> &[f64] {
        &self.hv_history
    }

    /// The paper's stopping condition (§4.3): enough configurations
    /// explored *and* the last recorded relative hypervolume increase is
    /// below the threshold.
    pub fn should_stop(&self) -> bool {
        if self.observations.len() < self.config.stopping.min_evaluations {
            return false;
        }
        let h = &self.hv_history;
        if h.len() < 2 {
            return false;
        }
        let prev = h[h.len() - 2];
        let cur = h[h.len() - 1];
        if prev <= 0.0 {
            return false;
        }
        (cur - prev) / prev < self.config.stopping.hvi_threshold
    }

    /// Wall-clock duration of the most recent [`MoboEngine::suggest`]
    /// call (used by the Fig. 13 overhead experiment).
    pub fn last_suggest_duration(&self) -> Option<Duration> {
        self.last_suggest_duration
    }

    /// Proposes a batch of `k` candidates (as indices into `candidates`)
    /// by sequential-greedy EHVI with fantasized observations.
    ///
    /// Candidates that exactly match an already-observed or
    /// already-chosen point are skipped. Fewer than `k` indices are
    /// returned only when the candidate set is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`MoboError::NotEnoughObservations`] with fewer than 4
    /// observations, [`MoboError::NoCandidates`] for an empty candidate
    /// set, [`MoboError::DimensionMismatch`]/[`MoboError::NonFinite`] for
    /// malformed candidates, and [`MoboError::Gp`] if surrogate fitting
    /// fails.
    pub fn suggest(&mut self, k: usize, candidates: &[Vec<f64>]) -> Result<Vec<usize>, MoboError> {
        let start = Instant::now();
        let r = self.validate_suggest_inputs(candidates)?;

        let (mut gp0, mut gp1) = self.fit_surrogates()?;

        // Precompute everything invariant across slots: the observed-point
        // hash set, candidate eligibility, and the worker count.
        let observed: HashSet<Vec<u64>> = self
            .observations
            .iter()
            .map(|o| hash_point(&o.point))
            .collect();
        let eligible: Vec<bool> = candidates
            .iter()
            .map(|c| !observed.contains(&hash_point(c)))
            .collect();
        let workers = self.scan_worker_count(candidates.len());

        let mut front = self.pareto_front();
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        let mut chosen_set: HashSet<usize> = HashSet::with_capacity(k);

        for _ in 0..k {
            let cells = EhviCells::new(&front, r);
            let best = scan_candidates(
                gp0.as_ref(),
                gp1.as_ref(),
                &cells,
                candidates,
                &eligible,
                &chosen_set,
                workers,
            )?;
            let Some((i, _, post)) = best else {
                break; // candidate set exhausted
            };
            chosen.push(i);
            chosen_set.insert(i);
            // Kriging believer: fantasize the posterior mean as the
            // observation and condition both models on it (§4.3 step 2).
            // Conditioning extends the exact posterior in O(n²) (Cholesky
            // append) or the RFF posterior in O(D²) (Sherman–Morrison), so
            // the whole batch avoids a refit per pick.
            gp0 = gp0.condition_on_boxed(&candidates[i], post.mean0)?;
            gp1 = gp1.condition_on_boxed(&candidates[i], post.mean1)?;
            front.insert([post.mean0, post.mean1]);
        }

        self.last_suggest_duration = Some(start.elapsed());
        Ok(chosen)
    }

    /// Ablation variant of [`MoboEngine::suggest`]: scores every candidate
    /// by single-point EHVI *once* and returns the top `k` — no
    /// Kriging-believer fantasizing between picks. Cheaper, but the batch
    /// tends to cluster around one region of the front (the effect the
    /// paper's sequential-greedy strategy exists to avoid).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MoboEngine::suggest`].
    pub fn suggest_no_fantasy(
        &mut self,
        k: usize,
        candidates: &[Vec<f64>],
    ) -> Result<Vec<usize>, MoboError> {
        let start = Instant::now();
        let r = self.validate_suggest_inputs(candidates)?;

        let (gp0, gp1) = self.fit_surrogates()?;
        let front = self.pareto_front();
        let cells = EhviCells::new(&front, r);
        let observed: HashSet<Vec<u64>> = self
            .observations
            .iter()
            .map(|o| hash_point(&o.point))
            .collect();

        let p0 = gp0.predict_batch(candidates)?;
        let p1 = gp1.predict_batch(candidates)?;
        let mut scored: Vec<(usize, f64)> = Vec::new();
        for (i, c) in candidates.iter().enumerate() {
            if observed.contains(&hash_point(c)) {
                continue;
            }
            let post = BiGaussian {
                mean0: p0[i].mean,
                std0: p0[i].std(),
                mean1: p1[i].mean,
                std1: p1[i].std(),
            };
            scored.push((i, cells.evaluate(post)));
        }
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("EHVI values are finite"));
        scored.truncate(k);
        self.last_suggest_duration = Some(start.elapsed());
        Ok(scored.into_iter().map(|(i, _)| i).collect())
    }

    /// Shared validation prologue of [`MoboEngine::suggest`] and
    /// [`MoboEngine::suggest_no_fantasy`]. Returns the reference point.
    fn validate_suggest_inputs(&self, candidates: &[Vec<f64>]) -> Result<[f64; 2], MoboError> {
        if candidates.is_empty() {
            return Err(MoboError::NoCandidates);
        }
        let need = 4;
        if self.observations.len() < need {
            return Err(MoboError::NotEnoughObservations {
                have: self.observations.len(),
                need,
            });
        }
        let dim = self.dim.expect("observations imply a dimension");
        for c in candidates {
            if c.len() != dim {
                return Err(MoboError::DimensionMismatch {
                    expected: dim,
                    got: c.len(),
                });
            }
            if c.iter().any(|v| !v.is_finite()) {
                return Err(MoboError::NonFinite);
            }
        }
        Ok(self.reference().expect("observations imply a reference"))
    }

    /// Fits both objective surrogates, warm-starting from the cached
    /// hyperparameter optimum per the refit schedule: the first fit and
    /// any fit at least `refit_every` observations after the last full
    /// refit run the configured multi-start search; fits in between seed
    /// Nelder–Mead from the previous optimum with a single restart.
    ///
    /// Below [`RffSwitch::threshold`] observations the surrogate is the
    /// exact [`GaussianProcess`]; at or above it, the approximate
    /// [`RandomFourierFeatures`] regressor (same refit schedule, but the
    /// full refit runs on a stride subsample and the RFF fit itself does
    /// no hyperparameter search).
    fn fit_surrogates(&mut self) -> Result<SurrogatePair, MoboError> {
        let xs: Vec<Vec<f64>> = self.observations.iter().map(|o| o.point.clone()).collect();
        let y0: Vec<f64> = self.observations.iter().map(|o| o.objectives[0]).collect();
        let y1: Vec<f64> = self.observations.iter().map(|o| o.objectives[1]).collect();
        let gp0 = self.fit_one(0, &xs, &y0)?;
        let gp1 = self.fit_one(1, &xs, &y1)?;
        Ok((gp0, gp1))
    }

    fn fit_one(
        &mut self,
        obj: usize,
        xs: &[Vec<f64>],
        ys: &[f64],
    ) -> Result<Box<dyn SurrogateModel>, MoboError> {
        let n = xs.len();
        if n >= self.config.rff.threshold {
            return self.fit_one_rff(obj, xs, ys);
        }
        let mut cfg = self.config.gp.clone();
        let mut full = true;
        if let Some(cache) = &self.warm[obj] {
            cfg.warm_start = Some(cache.hypers.clone());
            if n < cache.full_fit_len + self.config.refit_every.max(1) {
                // Warm path: seed from the previous optimum, one restart.
                cfg.restarts = cfg.restarts.min(1);
                full = false;
            }
        }
        let gp = GaussianProcess::fit(xs, ys, cfg)?;
        let full_fit_len = match (&self.warm[obj], full) {
            (Some(cache), false) => cache.full_fit_len,
            _ => n,
        };
        self.warm[obj] = Some(WarmCache {
            hypers: WarmStart {
                variance: gp.kernel().variance(),
                lengthscales: gp.kernel().lengthscales().to_vec(),
                noise: gp.noise_variance(),
            },
            full_fit_len,
        });
        Ok(Box::new(gp))
    }

    /// RFF-path fit: hyperparameters come from the warm cache, refreshed
    /// on the `refit_every` schedule by an exact-GP multi-start fit on a
    /// deterministic stride subsample (never the full data set — that is
    /// the point of the switch). The feature draws are seeded per
    /// objective so the two surrogates use independent spectra.
    fn fit_one_rff(
        &mut self,
        obj: usize,
        xs: &[Vec<f64>],
        ys: &[f64],
    ) -> Result<Box<dyn SurrogateModel>, MoboError> {
        let n = xs.len();
        let due_full = match &self.warm[obj] {
            Some(cache) => n >= cache.full_fit_len + self.config.refit_every.max(1),
            None => true,
        };
        let hypers = if due_full {
            let m = self.config.rff.hyper_subsample.clamp(1, n);
            let stride = n / m;
            let sub_xs: Vec<Vec<f64>> = (0..m).map(|i| xs[i * stride].clone()).collect();
            let sub_ys: Vec<f64> = (0..m).map(|i| ys[i * stride]).collect();
            let mut cfg = self.config.gp.clone();
            if let Some(cache) = &self.warm[obj] {
                cfg.warm_start = Some(cache.hypers.clone());
            }
            let gp = GaussianProcess::fit(&sub_xs, &sub_ys, cfg)?;
            let hypers = WarmStart {
                variance: gp.kernel().variance(),
                lengthscales: gp.kernel().lengthscales().to_vec(),
                noise: gp.noise_variance(),
            };
            self.warm[obj] = Some(WarmCache {
                hypers: hypers.clone(),
                full_fit_len: n,
            });
            hypers
        } else {
            self.warm[obj]
                .as_ref()
                .expect("warm cache exists when a full refit is not due")
                .hypers
                .clone()
        };
        let cfg = RffConfig {
            kernel: self.config.gp.kernel,
            n_features: self.config.rff.n_features,
            seed: self.config.rff.seed ^ (obj as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            noise_variance: self.config.gp.noise_variance,
            hyperparameters: Some(hypers),
        };
        Ok(Box::new(RandomFourierFeatures::fit(xs, ys, cfg)?))
    }

    /// Resolves the scan worker count: the configured value, or
    /// `min(available_parallelism, 8)` when `scan_workers == 0`, clamped
    /// so no worker gets an empty chunk. Small scans stay serial.
    fn scan_worker_count(&self, candidates: usize) -> usize {
        if candidates < MIN_PARALLEL_SCAN {
            return 1;
        }
        let w = match self.config.scan_workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(MAX_AUTO_WORKERS),
            w => w,
        };
        w.min(candidates).max(1)
    }
}

/// One slot of the sequential-greedy scan: EHVI-score every eligible
/// candidate under the current fantasized models and return the argmax
/// `(index, ehvi, posterior)`.
///
/// The scan is split into `workers` contiguous chunks, each handled by a
/// scoped thread via [`SurrogateModel::predict_batch`]. Determinism is
/// by construction: every candidate's score is a pure function of its
/// coordinates (no cross-candidate accumulation), each chunk keeps its
/// *first* strict maximum, and chunks are reduced in ascending order with
/// a `(ehvi, Reverse(index))` comparison — so the result is byte-identical
/// at any worker count, for the exact and the RFF surrogate alike.
fn scan_candidates(
    gp0: &dyn SurrogateModel,
    gp1: &dyn SurrogateModel,
    cells: &EhviCells,
    candidates: &[Vec<f64>],
    eligible: &[bool],
    chosen: &HashSet<usize>,
    workers: usize,
) -> Result<ScanBest, MoboError> {
    let scan_chunk = |lo: usize, hi: usize| -> Result<ScanBest, MoboError> {
        if lo >= hi {
            return Ok(None);
        }
        let p0 = gp0.predict_batch(&candidates[lo..hi])?;
        let p1 = gp1.predict_batch(&candidates[lo..hi])?;
        let mut best: ScanBest = None;
        for (off, (a, b)) in p0.iter().zip(&p1).enumerate() {
            let i = lo + off;
            if !eligible[i] || chosen.contains(&i) {
                continue;
            }
            let post = BiGaussian {
                mean0: a.mean,
                std0: a.std(),
                mean1: b.mean,
                std1: b.std(),
            };
            let e = cells.evaluate(post);
            if best.as_ref().is_none_or(|(_, be, _)| e > *be) {
                best = Some((i, e, post));
            }
        }
        Ok(best)
    };

    let chunk_results: Vec<Result<ScanBest, MoboError>> = if workers <= 1 {
        vec![scan_chunk(0, candidates.len())]
    } else {
        let chunk = candidates.len().div_ceil(workers);
        let scan_chunk = &scan_chunk;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(candidates.len());
                    scope.spawn(move || scan_chunk(lo, hi))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker must not panic"))
                .collect()
        })
    };

    let mut best: ScanBest = None;
    for res in chunk_results {
        let Some((i, e, post)) = res? else { continue };
        let better = match &best {
            None => true,
            Some((bi, be, _)) => e > *be || (e == *be && i < *bi),
        };
        if better {
            best = Some((i, e, post));
        }
    }
    Ok(best)
}

/// Bit-exact hash key for a point (used to dedup candidates vs
/// observations; exact match is the right semantics on a fixed grid).
fn hash_point(p: &[f64]) -> Vec<u64> {
    p.iter().map(|v| v.to_bits()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy biobjective problem on [0,1]: f0(x) = x², f1(x) = (1−x)².
    /// The whole segment is Pareto-optimal; EHVI should prefer unexplored
    /// gaps over re-sampling near known points.
    fn toy_observe(engine: &mut MoboEngine, xs: &[f64]) {
        for &x in xs {
            engine
                .observe(Observation::new(vec![x], [x * x, (1.0 - x) * (1.0 - x)]))
                .unwrap();
        }
    }

    #[test]
    fn observe_validates() {
        let mut e = MoboEngine::new(MoboConfig::default());
        assert!(e
            .observe(Observation::new(vec![f64::NAN], [0.0, 0.0]))
            .is_err());
        e.observe(Observation::new(vec![0.5], [1.0, 1.0])).unwrap();
        let err = e
            .observe(Observation::new(vec![0.5, 0.5], [1.0, 1.0]))
            .unwrap_err();
        assert!(matches!(err, MoboError::DimensionMismatch { .. }));
        assert_eq!(e.len(), 1);
        assert!(!e.is_empty());
    }

    #[test]
    fn reference_is_padded_worst() {
        let mut e = MoboEngine::new(MoboConfig::default());
        assert_eq!(e.reference(), None);
        toy_observe(&mut e, &[0.0, 1.0]);
        let r = e.reference().unwrap();
        assert!((r[0] - 1.05).abs() < 1e-12);
        assert!((r[1] - 1.05).abs() < 1e-12);
        e.set_reference([9.0, 9.0]);
        assert_eq!(e.reference(), Some([9.0, 9.0]));
    }

    #[test]
    fn suggest_requires_observations_and_candidates() {
        let mut e = MoboEngine::new(MoboConfig::default());
        toy_observe(&mut e, &[0.2]);
        assert!(matches!(
            e.suggest(1, &[vec![0.1]]).unwrap_err(),
            MoboError::NotEnoughObservations { .. }
        ));
        toy_observe(&mut e, &[0.4, 0.6, 0.8]);
        assert!(matches!(
            e.suggest(1, &[]).unwrap_err(),
            MoboError::NoCandidates
        ));
        assert!(matches!(
            e.suggest(1, &[vec![0.1, 0.2]]).unwrap_err(),
            MoboError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn suggest_prefers_gap_over_duplicates() {
        let mut e = MoboEngine::new(MoboConfig::default());
        // Observe everything except the region around 0.5.
        toy_observe(&mut e, &[0.0, 0.1, 0.2, 0.8, 0.9, 1.0]);
        let candidates: Vec<Vec<f64>> = (0..=20).map(|i| vec![i as f64 / 20.0]).collect();
        let picked = e.suggest(3, &candidates).unwrap();
        assert_eq!(picked.len(), 3);
        // At least one pick should land in the unexplored middle.
        assert!(
            picked.iter().any(|&i| {
                let x = candidates[i][0];
                (0.3..=0.7).contains(&x)
            }),
            "picks {picked:?} should probe the gap"
        );
        assert!(e.last_suggest_duration().is_some());
    }

    #[test]
    fn suggest_never_repeats_observed_points() {
        let mut e = MoboEngine::new(MoboConfig::default());
        toy_observe(&mut e, &[0.0, 0.25, 0.5, 0.75, 1.0]);
        let candidates: Vec<Vec<f64>> = (0..=4).map(|i| vec![i as f64 / 4.0]).collect();
        // Every candidate is already observed → nothing to suggest.
        let picked = e.suggest(3, &candidates).unwrap();
        assert!(picked.is_empty());
    }

    #[test]
    fn batch_is_unique() {
        let mut e = MoboEngine::new(MoboConfig::default());
        toy_observe(&mut e, &[0.0, 0.5, 1.0, 0.3]);
        let candidates: Vec<Vec<f64>> = (0..=50).map(|i| vec![i as f64 / 50.0]).collect();
        let picked = e.suggest(5, &candidates).unwrap();
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), picked.len());
    }

    #[test]
    fn no_fantasy_batch_is_valid_but_clusters() {
        let mut e = MoboEngine::new(MoboConfig::default());
        toy_observe(&mut e, &[0.0, 0.2, 0.8, 1.0]);
        let candidates: Vec<Vec<f64>> = (0..=40).map(|i| vec![i as f64 / 40.0]).collect();
        let no_fantasy = e.suggest_no_fantasy(4, &candidates).unwrap();
        assert_eq!(no_fantasy.len(), 4);
        let mut dedup = no_fantasy.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "picks must be distinct candidates");
        // The fantasized batch should spread at least as widely as the
        // non-fantasized one (that is its purpose).
        let fantasy = e.suggest(4, &candidates).unwrap();
        let spread = |idx: &[usize]| {
            let xs: Vec<f64> = idx.iter().map(|&i| candidates[i][0]).collect();
            xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - xs.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        assert!(spread(&fantasy) + 1e-9 >= spread(&no_fantasy) * 0.5);
    }

    #[test]
    fn stopping_rule_progression() {
        let cfg = MoboConfig {
            stopping: StoppingRule {
                min_evaluations: 4,
                hvi_threshold: 0.01,
            },
            ..MoboConfig::default()
        };
        let mut e = MoboEngine::new(cfg);
        toy_observe(&mut e, &[0.0, 1.0]);
        e.set_reference([2.0, 2.0]);
        e.record_round();
        assert!(!e.should_stop(), "not enough evaluations yet");
        // Add points that substantially grow the hypervolume.
        toy_observe(&mut e, &[0.5]);
        e.record_round();
        assert!(!e.should_stop(), "hv still growing");
        toy_observe(&mut e, &[0.4, 0.6]);
        e.record_round();
        // Now add a duplicate-ish point: hv barely changes.
        toy_observe(&mut e, &[0.4001]);
        e.record_round();
        assert!(e.should_stop(), "hv plateaued with enough evaluations");
    }

    #[test]
    fn pareto_indices_match_front() {
        let mut e = MoboEngine::new(MoboConfig::default());
        e.observe(Observation::new(vec![0.1], [1.0, 5.0])).unwrap();
        e.observe(Observation::new(vec![0.2], [2.0, 2.0])).unwrap();
        e.observe(Observation::new(vec![0.3], [3.0, 3.0])).unwrap(); // dominated
        e.observe(Observation::new(vec![0.4], [5.0, 1.0])).unwrap();
        assert_eq!(e.pareto_indices(), vec![0, 1, 3]);
        assert_eq!(e.pareto_front().len(), 3);
    }

    /// Forces the RFF surrogate (threshold 0) and checks the suggestion
    /// batch is valid, unique, and identical run-to-run and across scan
    /// worker counts — the same determinism contract the exact path has.
    #[test]
    fn rff_path_is_deterministic_and_valid() {
        let cfg = MoboConfig {
            rff: RffSwitch {
                threshold: 0,
                n_features: 64,
                ..RffSwitch::default()
            },
            scan_workers: 1,
            ..MoboConfig::default()
        };
        let mut e = MoboEngine::new(cfg.clone());
        let xs: Vec<f64> = (0..16).map(|i| i as f64 / 15.0).collect();
        toy_observe(&mut e, &xs);
        let candidates: Vec<Vec<f64>> = (0..=60).map(|i| vec![i as f64 / 60.0]).collect();

        let mut e2 = e.clone();
        let picked = e.suggest(4, &candidates).unwrap();
        assert_eq!(picked.len(), 4);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "picks must be distinct");
        assert_eq!(e2.suggest(4, &candidates).unwrap(), picked, "rerun differs");

        let mut e4 = MoboEngine::new(MoboConfig {
            scan_workers: 4,
            ..cfg
        });
        toy_observe(&mut e4, &xs);
        assert_eq!(
            e4.suggest(4, &candidates).unwrap(),
            picked,
            "worker count changed the batch"
        );
    }

    /// Crossing the exact→RFF threshold mid-run must not break the
    /// engine: the warm cache carries over and both sides produce valid,
    /// reproducible batches.
    #[test]
    fn suggest_survives_the_threshold_crossing() {
        let cfg = MoboConfig {
            rff: RffSwitch {
                threshold: 10,
                n_features: 64,
                ..RffSwitch::default()
            },
            ..MoboConfig::default()
        };
        let mut e = MoboEngine::new(cfg);
        let candidates: Vec<Vec<f64>> = (0..=60).map(|i| vec![i as f64 / 60.0]).collect();

        // Below threshold: exact path (8 < 10).
        let below: Vec<f64> = (0..8).map(|i| i as f64 / 7.0).collect();
        toy_observe(&mut e, &below);
        let exact_picks = e.suggest(3, &candidates).unwrap();
        assert_eq!(exact_picks.len(), 3);

        // Cross the threshold: RFF path (12 ≥ 10), warm cache populated.
        let above: Vec<f64> = (0..4).map(|i| 0.03 + i as f64 / 9.0).collect();
        toy_observe(&mut e, &above);
        let rff_picks = e.suggest(3, &candidates).unwrap();
        assert_eq!(rff_picks.len(), 3);
        let mut rerun = e.clone();
        assert_eq!(rerun.suggest(3, &candidates).unwrap(), rff_picks);
        // Both regimes must propose unexplored candidates.
        for &i in exact_picks.iter().chain(&rff_picks) {
            assert!(candidates[i].iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn hypervolume_grows_with_better_points() {
        let mut e = MoboEngine::new(MoboConfig::default());
        e.set_reference([10.0, 10.0]);
        e.observe(Observation::new(vec![0.5], [5.0, 5.0])).unwrap();
        let h1 = e.hypervolume();
        e.observe(Observation::new(vec![0.6], [2.0, 2.0])).unwrap();
        let h2 = e.hypervolume();
        assert!(h2 > h1);
    }
}
