//! Exact 2-D expected hypervolume improvement (paper Eqn. 6).
//!
//! For two *independent* Gaussian objectives (the paper's surrogate) the
//! 2-D EHVI has a closed form. Write the improvement as an integral over
//! the improvement region — the part of the objective space that is below
//! the reference point and not dominated by the current front:
//!
//! ```text
//! EHVI = E[ vol{ z : Y ⪯ z ⪯ r, z not dominated by P } ]
//!      = ∫_{region} P(Y₁ ≤ z₁) · P(Y₂ ≤ z₂) dz      (Fubini + independence)
//! ```
//!
//! The region decomposes into `n+1` vertical strips delimited by the
//! sorted front points, each a product of intervals, so the double
//! integral splits into products of the one-dimensional primitive
//! `∫ Φ((z−μ)/σ) dz = σ·ψ((z−μ)/σ)` with `ψ(t) = t·Φ(t) + φ(t)`.
//! Total cost: `O(n)` per evaluation — matching the
//! `O(|D| log |D|)` bound the paper cites for 2-D EHVI.

use crate::ParetoFront;

/// Standard normal probability density function.
pub fn normal_pdf(t: f64) -> f64 {
    (-0.5 * t * t).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function (via `erf`-free
/// Abramowitz–Stegun-style rational approximation accurate to ~1e-7, which
/// is ample for acquisition ranking).
pub fn normal_cdf(t: f64) -> f64 {
    // Φ(t) = 0.5 · erfc(−t/√2); use a high-accuracy erfc approximation.
    0.5 * erfc(-t / std::f64::consts::SQRT_2)
}

/// Complementary error function (W. J. Cody-style rational approximation).
fn erfc(x: f64) -> f64 {
    // Numerical Recipes' erfc approximation, |error| < 1.2e-7 everywhere.
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// The primitive `ψ(t) = ∫_{−∞}^{t} Φ(s) ds = t·Φ(t) + φ(t)`.
///
/// `ψ(−∞) = 0`, `ψ(t) ≈ t` for large `t`.
pub fn psi(t: f64) -> f64 {
    if t == f64::NEG_INFINITY {
        return 0.0;
    }
    t * normal_cdf(t) + normal_pdf(t)
}

/// Independent Gaussian posterior over the two objectives at a candidate
/// point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiGaussian {
    /// Mean of objective 0.
    pub mean0: f64,
    /// Standard deviation of objective 0 (must be ≥ 0).
    pub std0: f64,
    /// Mean of objective 1.
    pub mean1: f64,
    /// Standard deviation of objective 1 (must be ≥ 0).
    pub std1: f64,
}

/// Exact expected hypervolume improvement of a candidate with posterior
/// `post`, given the current front and reference point `r` (both
/// objectives minimized).
///
/// Degenerate posteriors (`σ = 0`) are handled by a small floor so the
/// formula remains the deterministic HVI in the limit.
///
/// # Examples
///
/// ```
/// use bofl_mobo::ParetoFront;
/// use bofl_mobo::ehvi::{expected_hypervolume_improvement, BiGaussian};
///
/// let front: ParetoFront = [[2.0, 2.0]].into_iter().collect();
/// let good = BiGaussian { mean0: 1.0, std0: 0.1, mean1: 1.0, std1: 0.1 };
/// let bad = BiGaussian { mean0: 3.0, std0: 0.1, mean1: 3.0, std1: 0.1 };
/// let r = [4.0, 4.0];
/// let e_good = expected_hypervolume_improvement(&front, good, r);
/// let e_bad = expected_hypervolume_improvement(&front, bad, r);
/// assert!(e_good > e_bad);
/// assert!(e_bad >= 0.0);
/// ```
pub fn expected_hypervolume_improvement(front: &ParetoFront, post: BiGaussian, r: [f64; 2]) -> f64 {
    EhviCells::new(front, r).evaluate(post)
}

/// One vertical strip of the improvement region: `z0 ∈ [b_lo, b_hi)` with
/// ceiling `c` on `z1`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Strip {
    b_lo: f64,
    b_hi: f64,
    ceiling: f64,
}

/// The strip decomposition of the EHVI improvement region for a fixed
/// `(front, reference)` pair.
///
/// Building the decomposition walks the front once (`O(n)`); evaluating a
/// candidate posterior against it is then `O(n)` with **no allocation** —
/// the candidate scan in the MBO engine builds this once per batch slot
/// instead of re-filtering the front for every candidate inside
/// [`expected_hypervolume_improvement`].
///
/// # Examples
///
/// ```
/// use bofl_mobo::ParetoFront;
/// use bofl_mobo::ehvi::{expected_hypervolume_improvement, BiGaussian, EhviCells};
///
/// let front: ParetoFront = [[2.0, 2.0]].into_iter().collect();
/// let r = [4.0, 4.0];
/// let cells = EhviCells::new(&front, r);
/// let post = BiGaussian { mean0: 1.0, std0: 0.1, mean1: 1.0, std1: 0.1 };
/// assert_eq!(
///     cells.evaluate(post),
///     expected_hypervolume_improvement(&front, post, r),
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EhviCells {
    strips: Vec<Strip>,
}

impl EhviCells {
    /// Decomposes the improvement region of `(front, r)` into strips.
    pub fn new(front: &ParetoFront, r: [f64; 2]) -> Self {
        // Front points inside the reference box, ascending in objective 0.
        let pts: Vec<[f64; 2]> = front
            .points()
            .iter()
            .copied()
            .filter(|p| p[0] < r[0] && p[1] < r[1])
            .collect();

        // Strip i spans z0 ∈ [b_i, b_{i+1}) with ceiling c_i on z1:
        //   strip 0:   (−∞, p₁.y0)  × (−∞, r1)
        //   strip i:   [pᵢ.y0, pᵢ₊₁.y0) × (−∞, pᵢ.y1)
        //   strip n:   [pₙ.y0, r0)  × (−∞, pₙ.y1)
        let n = pts.len();
        let mut strips = Vec::with_capacity(n + 1);
        for i in 0..=n {
            let b_lo = if i == 0 {
                f64::NEG_INFINITY
            } else {
                pts[i - 1][0]
            };
            let b_hi = if i < n { pts[i][0] } else { r[0] };
            let ceiling = if i == 0 { r[1] } else { pts[i - 1][1] };
            if b_hi <= b_lo {
                continue;
            }
            strips.push(Strip {
                b_lo,
                b_hi,
                ceiling,
            });
        }
        EhviCells { strips }
    }

    /// Exact EHVI of a candidate posterior against the decomposed region.
    pub fn evaluate(&self, post: BiGaussian) -> f64 {
        let s0 = post.std0.max(1e-12);
        let s1 = post.std1.max(1e-12);
        let mut total = 0.0;
        for strip in &self.strips {
            let beta_hi = (strip.b_hi - post.mean0) / s0;
            let beta_lo = if strip.b_lo == f64::NEG_INFINITY {
                f64::NEG_INFINITY
            } else {
                (strip.b_lo - post.mean0) / s0
            };
            let width_term = s0 * (psi(beta_hi) - psi(beta_lo));
            let height_term = s1 * psi((strip.ceiling - post.mean1) / s1);
            total += width_term * height_term;
        }
        total.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypervolume::hypervolume_improvement;

    #[test]
    fn cdf_and_pdf_sanity() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!(normal_cdf(-8.0) < 1e-14);
        assert!((normal_pdf(0.0) - 0.39894228).abs() < 1e-7);
        assert!((psi(0.0) - normal_pdf(0.0)).abs() < 1e-12);
        assert_eq!(psi(f64::NEG_INFINITY), 0.0);
        // ψ(t) → t as t → ∞.
        assert!((psi(8.0) - 8.0).abs() < 1e-6);
    }

    #[test]
    fn empty_front_reduces_to_product_of_expectations() {
        // With no front, EHVI = E[(r0−Y0)⁺] · E[(r1−Y1)⁺].
        let post = BiGaussian {
            mean0: 1.0,
            std0: 0.5,
            mean1: 2.0,
            std1: 0.8,
        };
        let r = [3.0, 4.0];
        let got = expected_hypervolume_improvement(&ParetoFront::new(), post, r);
        let e0 = 0.5 * psi((3.0 - 1.0) / 0.5);
        let e1 = 0.8 * psi((4.0 - 2.0) / 0.8);
        assert!((got - e0 * e1).abs() < 1e-9, "{got} vs {}", e0 * e1);
    }

    #[test]
    fn tiny_std_recovers_deterministic_hvi() {
        let front: ParetoFront = [[1.0, 4.0], [2.0, 3.0], [3.0, 1.0]].into_iter().collect();
        let r = [5.0, 5.0];
        for cand in [[1.5, 3.5], [0.5, 4.5], [4.0, 4.0], [2.5, 0.5]] {
            let post = BiGaussian {
                mean0: cand[0],
                std0: 1e-9,
                mean1: cand[1],
                std1: 1e-9,
            };
            let ehvi = expected_hypervolume_improvement(&front, post, r);
            let hvi = hypervolume_improvement(&front, &[cand], r);
            assert!(
                (ehvi - hvi).abs() < 1e-5,
                "cand {cand:?}: ehvi {ehvi} vs hvi {hvi}"
            );
        }
    }

    #[test]
    fn matches_monte_carlo() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let front: ParetoFront = [[1.0, 3.0], [2.0, 2.0], [3.5, 1.0]].into_iter().collect();
        let r = [5.0, 4.5];
        let post = BiGaussian {
            mean0: 1.8,
            std0: 0.6,
            mean1: 1.7,
            std1: 0.5,
        };
        let exact = expected_hypervolume_improvement(&front, post, r);

        let mut rng = StdRng::seed_from_u64(2024);
        let mut normal = || {
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let n = 200_000;
        let mut acc = 0.0;
        for _ in 0..n {
            let y = [
                post.mean0 + post.std0 * normal(),
                post.mean1 + post.std1 * normal(),
            ];
            acc += hypervolume_improvement(&front, &[y], r);
        }
        let mc = acc / n as f64;
        assert!(
            (exact - mc).abs() < 0.02 * (1.0 + mc),
            "exact {exact} vs MC {mc}"
        );
    }

    #[test]
    fn cells_match_direct_evaluation() {
        let front: ParetoFront = [[1.0, 4.0], [2.0, 3.0], [3.0, 1.0]].into_iter().collect();
        let r = [5.0, 5.0];
        let cells = EhviCells::new(&front, r);
        for i in 0..40 {
            let t = i as f64 / 39.0;
            let post = BiGaussian {
                mean0: 0.5 + 4.0 * t,
                std0: 0.1 + t,
                mean1: 4.5 - 4.0 * t,
                std1: 1.1 - t,
            };
            assert_eq!(
                cells.evaluate(post),
                expected_hypervolume_improvement(&front, post, r),
                "cells and direct EHVI must agree bitwise at t={t}"
            );
        }
        // Points outside the reference box contribute no strips.
        let outside: ParetoFront = [[9.0, 9.0]].into_iter().collect();
        let empty_cells = EhviCells::new(&outside, [5.0, 5.0]);
        let free = EhviCells::new(&ParetoFront::new(), [5.0, 5.0]);
        let post = BiGaussian {
            mean0: 2.0,
            std0: 0.5,
            mean1: 2.0,
            std1: 0.5,
        };
        assert_eq!(empty_cells.evaluate(post), free.evaluate(post));
    }

    #[test]
    fn dominated_mean_still_positive_ehvi() {
        // A candidate whose mean is dominated can still improve thanks to
        // posterior uncertainty — EHVI must be positive, just small.
        let front: ParetoFront = [[1.0, 1.0]].into_iter().collect();
        let post = BiGaussian {
            mean0: 2.0,
            std0: 1.0,
            mean1: 2.0,
            std1: 1.0,
        };
        let e = expected_hypervolume_improvement(&front, post, [5.0, 5.0]);
        assert!(e > 0.0);
        let post_certain = BiGaussian {
            std0: 1e-6,
            std1: 1e-6,
            ..post
        };
        let e_certain = expected_hypervolume_improvement(&front, post_certain, [5.0, 5.0]);
        assert!(e_certain < e);
        assert!(e_certain < 1e-6);
    }

    #[test]
    fn ehvi_never_negative() {
        let front: ParetoFront = [[0.0, 0.0]].into_iter().collect();
        let post = BiGaussian {
            mean0: 100.0,
            std0: 0.1,
            mean1: 100.0,
            std1: 0.1,
        };
        assert!(expected_hypervolume_improvement(&front, post, [1.0, 1.0]) >= 0.0);
    }
}
