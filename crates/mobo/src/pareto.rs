//! Pareto dominance and front maintenance in the 2-D minimization setting
//! of the paper's §3.2.
//!
//! A point `a` *dominates* `b` iff `a` is no worse in both objectives and
//! strictly better in at least one. The *Pareto front* of a set is the
//! subset of non-dominated points.

/// `true` iff objective vector `a` Pareto-dominates `b` (both minimized).
///
/// # Examples
///
/// ```
/// use bofl_mobo::pareto::dominates;
///
/// assert!(dominates([1.0, 2.0], [2.0, 2.0]));
/// assert!(!dominates([1.0, 2.0], [1.0, 2.0])); // equal points
/// assert!(!dominates([1.0, 3.0], [2.0, 2.0])); // trade-off
/// ```
pub fn dominates(a: [f64; 2], b: [f64; 2]) -> bool {
    a[0] <= b[0] && a[1] <= b[1] && (a[0] < b[0] || a[1] < b[1])
}

/// Indices of the Pareto-optimal elements of `points` (both objectives
/// minimized). Duplicated non-dominated values are all retained.
///
/// # Examples
///
/// ```
/// use bofl_mobo::pareto_front_indices;
///
/// let pts = [[1.0, 4.0], [2.0, 2.0], [3.0, 3.0], [4.0, 1.0]];
/// assert_eq!(pareto_front_indices(&pts), vec![0, 1, 3]);
/// ```
pub fn pareto_front_indices(points: &[[f64; 2]]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, &p)| j != i && dominates(p, points[i]))
        })
        .collect()
}

/// An incrementally maintained 2-D Pareto front (minimization).
///
/// Points are kept sorted ascending by the first objective (and therefore
/// strictly descending by the second). Inserting a dominated point is a
/// no-op; inserting a dominating point evicts everything it dominates.
///
/// # Examples
///
/// ```
/// use bofl_mobo::ParetoFront;
///
/// let mut front = ParetoFront::new();
/// assert!(front.insert([2.0, 2.0]));
/// assert!(front.insert([1.0, 3.0]));  // trade-off: kept
/// assert!(!front.insert([3.0, 3.0])); // dominated: rejected
/// assert!(front.insert([0.5, 0.5]));  // dominates everything: evicts
/// assert_eq!(front.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ParetoFront {
    // Invariant: sorted ascending by [0], strictly descending by [1],
    // mutually non-dominated.
    points: Vec<[f64; 2]>,
}

impl ParetoFront {
    /// Creates an empty front.
    pub fn new() -> Self {
        ParetoFront { points: Vec::new() }
    }

    /// Builds a front from arbitrary points, discarding dominated ones.
    pub fn from_points(points: &[[f64; 2]]) -> Self {
        let mut front = ParetoFront::new();
        for &p in points {
            front.insert(p);
        }
        front
    }

    /// Inserts a point; returns `true` if it joined the front (i.e. it was
    /// not dominated by, nor equal to, an existing member).
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is NaN.
    pub fn insert(&mut self, p: [f64; 2]) -> bool {
        assert!(
            !p[0].is_nan() && !p[1].is_nan(),
            "pareto front points must not be NaN"
        );
        if self.points.iter().any(|&q| dominates(q, p) || q == p) {
            return false;
        }
        self.points.retain(|&q| !dominates(p, q));
        let pos = self
            .points
            .partition_point(|&q| (q[0], q[1]) < (p[0], p[1]));
        self.points.insert(pos, p);
        true
    }

    /// `true` iff `p` is dominated by (or equal to) a member of the front.
    pub fn dominated(&self, p: [f64; 2]) -> bool {
        self.points.iter().any(|&q| dominates(q, p) || q == p)
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the front has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points, sorted ascending by the first objective.
    pub fn points(&self) -> &[[f64; 2]] {
        &self.points
    }

    /// Iterates over the points in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = [f64; 2]> + '_ {
        self.points.iter().copied()
    }
}

impl FromIterator<[f64; 2]> for ParetoFront {
    fn from_iter<I: IntoIterator<Item = [f64; 2]>>(iter: I) -> Self {
        let mut front = ParetoFront::new();
        for p in iter {
            front.insert(p);
        }
        front
    }
}

impl Extend<[f64; 2]> for ParetoFront {
    fn extend<I: IntoIterator<Item = [f64; 2]>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_definition_matches_paper() {
        // §3.2: a ≺ b iff E(a) ≤ E(b) and T(a) ≤ T(b), with at least one
        // strict.
        assert!(dominates([1.0, 1.0], [1.0, 2.0]));
        assert!(dominates([1.0, 1.0], [2.0, 1.0]));
        assert!(dominates([1.0, 1.0], [2.0, 2.0]));
        assert!(!dominates([1.0, 1.0], [1.0, 1.0]));
        assert!(!dominates([0.5, 3.0], [1.0, 1.0]));
    }

    #[test]
    fn front_indices_on_known_set() {
        let pts = [
            [0.18, 5.0],
            [0.30, 3.5],
            [0.25, 4.0],
            [0.20, 4.9],
            [0.30, 3.6], // dominated by [0.30, 3.5]
            [0.18, 5.2], // dominated by [0.18, 5.0]
        ];
        assert_eq!(pareto_front_indices(&pts), vec![0, 1, 2, 3]);
    }

    #[test]
    fn incremental_front_matches_batch() {
        let pts = [
            [3.0, 1.0],
            [1.0, 3.0],
            [2.0, 2.0],
            [2.5, 2.5],
            [0.5, 4.0],
            [3.0, 1.0], // duplicate
        ];
        let front = ParetoFront::from_points(&pts);
        let batch: Vec<[f64; 2]> = pareto_front_indices(&pts)
            .into_iter()
            .map(|i| pts[i])
            .collect();
        // The incremental front rejects exact duplicates, the batch keeps
        // them; dedup before comparing.
        let mut batch_dedup = batch.clone();
        batch_dedup.sort_by(|a, b| a.partial_cmp(b).unwrap());
        batch_dedup.dedup();
        let mut got: Vec<[f64; 2]> = front.iter().collect();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, batch_dedup);
    }

    #[test]
    fn sorted_invariant_holds() {
        let mut front = ParetoFront::new();
        for p in [[5.0, 1.0], [1.0, 5.0], [3.0, 3.0], [2.0, 4.0], [4.0, 2.0]] {
            front.insert(p);
        }
        let pts = front.points();
        assert!(pts.windows(2).all(|w| w[0][0] < w[1][0]));
        assert!(pts.windows(2).all(|w| w[0][1] > w[1][1]));
        assert_eq!(front.len(), 5);
    }

    #[test]
    fn eviction_on_dominating_insert() {
        let mut front: ParetoFront = [[2.0, 2.0], [1.0, 3.0], [3.0, 1.0]].into_iter().collect();
        assert_eq!(front.len(), 3);
        assert!(front.insert([0.0, 0.0]));
        assert_eq!(front.len(), 1);
        assert!(front.dominated([0.5, 0.5]));
        assert!(!front.dominated([-1.0, 5.0]));
    }

    #[test]
    fn extend_works() {
        let mut front = ParetoFront::new();
        front.extend([[1.0, 2.0], [2.0, 1.0]]);
        assert_eq!(front.len(), 2);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn rejects_nan() {
        ParetoFront::new().insert([f64::NAN, 0.0]);
    }

    #[test]
    fn empty_front_behaviour() {
        let front = ParetoFront::new();
        assert!(front.is_empty());
        assert!(!front.dominated([1.0, 1.0]));
        assert_eq!(front.points(), &[] as &[[f64; 2]]);
    }
}
