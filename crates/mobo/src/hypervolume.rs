//! Exact 2-D hypervolume indicator and hypervolume improvement
//! (Eqns. 4–5 of the paper).
//!
//! Conventions: both objectives are minimized; the reference point `r`
//! bounds the dominated region from *above* (worse in both objectives).
//! Points at or beyond the reference contribute nothing.

use crate::ParetoFront;

/// The hypervolume dominated by `front` and bounded by the reference
/// point `r` (paper Eqn. 4, with both objectives minimized).
///
/// Computed exactly in `O(n)` thanks to the front's sorted invariant.
///
/// # Examples
///
/// ```
/// use bofl_mobo::ParetoFront;
/// use bofl_mobo::hypervolume::hypervolume;
///
/// let front: ParetoFront = [[1.0, 3.0], [2.0, 2.0]].into_iter().collect();
/// // Region dominated by (1,3): 3×1; by (2,2): 2×2; overlap 2×1 → 5.
/// assert_eq!(hypervolume(&front, [4.0, 4.0]), 5.0);
/// ```
pub fn hypervolume(front: &ParetoFront, r: [f64; 2]) -> f64 {
    let pts = front.points();
    let mut hv = 0.0;
    // Points are ascending in objective 0, descending in objective 1.
    // Each point owns the strip [y0_i, y0_{i+1}) × [y1_i, r1].
    let inside: Vec<[f64; 2]> = pts
        .iter()
        .copied()
        .filter(|p| p[0] < r[0] && p[1] < r[1])
        .collect();
    for (i, p) in inside.iter().enumerate() {
        let right = if i + 1 < inside.len() {
            inside[i + 1][0]
        } else {
            r[0]
        };
        hv += (right - p[0]) * (r[1] - p[1]);
    }
    hv
}

/// The exclusive hypervolume contribution of each front point: how much
/// the hypervolume would *shrink* if that point were removed (zero for
/// points outside the reference box).
///
/// Contributions identify the "load-bearing" trade-offs of a front —
/// useful for pruning a large approximated Pareto set down to its most
/// valuable members before exploitation.
///
/// # Examples
///
/// ```
/// use bofl_mobo::ParetoFront;
/// use bofl_mobo::hypervolume::{hypervolume, hypervolume_contributions};
///
/// let front: ParetoFront = [[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]].into_iter().collect();
/// let contrib = hypervolume_contributions(&front, [4.0, 4.0]);
/// assert_eq!(contrib.len(), 3);
/// assert!(contrib.iter().all(|&c| c > 0.0)); // every member matters
/// ```
pub fn hypervolume_contributions(front: &ParetoFront, r: [f64; 2]) -> Vec<f64> {
    let total = hypervolume(front, r);
    front
        .points()
        .iter()
        .map(|&p| {
            let without: ParetoFront = front.iter().filter(|&q| q != p).collect();
            total - hypervolume(&without, r)
        })
        .collect()
}

/// The hypervolume improvement of adding the points `q` to `front`
/// (paper Eqn. 5): `HV(front ∪ q, r) − HV(front, r)`.
///
/// # Examples
///
/// ```
/// use bofl_mobo::ParetoFront;
/// use bofl_mobo::hypervolume::{hypervolume, hypervolume_improvement};
///
/// let front: ParetoFront = [[2.0, 2.0]].into_iter().collect();
/// let hvi = hypervolume_improvement(&front, &[[1.0, 3.0]], [4.0, 4.0]);
/// assert_eq!(hvi, 1.0); // the new strip [1,2)×[3,4]
/// ```
pub fn hypervolume_improvement(front: &ParetoFront, q: &[[f64; 2]], r: [f64; 2]) -> f64 {
    let base = hypervolume(front, r);
    let mut extended = front.clone();
    for &p in q {
        extended.insert(p);
    }
    hypervolume(&extended, r) - base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_front_has_zero_hv() {
        assert_eq!(hypervolume(&ParetoFront::new(), [1.0, 1.0]), 0.0);
    }

    #[test]
    fn single_point_rectangle() {
        let front: ParetoFront = [[1.0, 2.0]].into_iter().collect();
        assert_eq!(hypervolume(&front, [5.0, 4.0]), 4.0 * 2.0);
    }

    #[test]
    fn staircase_three_points() {
        let front: ParetoFront = [[1.0, 4.0], [2.0, 3.0], [3.0, 1.0]].into_iter().collect();
        let r = [5.0, 5.0];
        // Strips: [1,2)×[4,5] = 1, [2,3)×[3,5] = 2, [3,5)×[1,5] = 8.
        assert_eq!(hypervolume(&front, r), 11.0);
    }

    #[test]
    fn points_beyond_reference_ignored() {
        let front: ParetoFront = [[1.0, 6.0], [6.0, 1.0], [2.0, 2.0]].into_iter().collect();
        let r = [5.0, 5.0];
        // Only (2,2) is inside the reference box: (5−2)×(5−2) = 9.
        assert_eq!(hypervolume(&front, r), 9.0);
    }

    #[test]
    fn hv_is_monotone_under_insertion() {
        let r = [10.0, 10.0];
        let mut front = ParetoFront::new();
        let mut last = 0.0;
        for p in [[8.0, 8.0], [5.0, 9.0], [3.0, 6.0], [6.0, 2.0], [1.0, 9.5]] {
            front.insert(p);
            let hv = hypervolume(&front, r);
            assert!(hv >= last - 1e-12, "hv must not decrease");
            last = hv;
        }
    }

    #[test]
    fn contributions_sum_to_at_most_total() {
        let front: ParetoFront = [[1.0, 4.0], [2.0, 3.0], [3.0, 1.0]].into_iter().collect();
        let r = [5.0, 5.0];
        let contrib = hypervolume_contributions(&front, r);
        let total = hypervolume(&front, r);
        // Exclusive contributions never overlap, so their sum is ≤ HV.
        assert!(contrib.iter().sum::<f64>() <= total + 1e-12);
        assert!(contrib.iter().all(|&c| c >= 0.0));
        // Hand check: removing (2,3) loses the strip [2,3)×[3,4] = 1.
        assert!((contrib[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contribution_outside_reference_is_zero() {
        let front: ParetoFront = [[1.0, 6.0], [2.0, 2.0]].into_iter().collect();
        let contrib = hypervolume_contributions(&front, [5.0, 5.0]);
        assert_eq!(contrib[0], 0.0); // (1,6) is beyond the reference
        assert!(contrib[1] > 0.0);
    }

    #[test]
    fn improvement_of_dominated_point_is_zero() {
        let front: ParetoFront = [[1.0, 1.0]].into_iter().collect();
        assert_eq!(
            hypervolume_improvement(&front, &[[2.0, 2.0]], [5.0, 5.0]),
            0.0
        );
    }

    #[test]
    fn improvement_additivity_check() {
        // HVI of a batch equals HV(front ∪ batch) − HV(front).
        let front: ParetoFront = [[3.0, 3.0]].into_iter().collect();
        let batch = [[1.0, 4.0], [4.0, 1.0]];
        let r = [6.0, 6.0];
        let hvi = hypervolume_improvement(&front, &batch, r);
        let mut all = front.clone();
        all.extend(batch);
        assert!((hvi - (hypervolume(&all, r) - hypervolume(&front, r))).abs() < 1e-12);
        assert!(hvi > 0.0);
    }
}
