//! A Sobol low-discrepancy sequence for up to 8 dimensions.
//!
//! The paper's safe-random-exploration phase samples its starting points
//! "uniformly distributed over X, using a quasi-random number generator"
//! (§4.2). Sobol sequences are the standard choice: they fill the unit
//! cube far more evenly than i.i.d. uniforms at the tiny sample counts
//! BoFL uses (~1% of a 2100-point grid ≈ 21 points).
//!
//! Direction numbers are the Joe–Kuo `new-joe-kuo-6` values for the first
//! 8 dimensions, generated with the standard Gray-code construction.

/// Primitive-polynomial parameters `(s, a, m...)` for dimensions 2..=8
/// (dimension 1 is the van der Corput sequence).
const JOE_KUO: &[(u32, u32, &[u32])] = &[
    (1, 0, &[1]),
    (2, 1, &[1, 3]),
    (3, 1, &[1, 3, 1]),
    (3, 2, &[1, 1, 1]),
    (4, 1, &[1, 1, 3, 3]),
    (4, 4, &[1, 3, 5, 13]),
    (5, 2, &[1, 1, 5, 5, 17]),
];

const BITS: u32 = 32;

/// A Sobol sequence generator over the unit hypercube `[0, 1)ᵈ`.
///
/// # Examples
///
/// ```
/// use bofl_mobo::SobolSequence;
///
/// let mut sobol = SobolSequence::new(3);
/// let first: Vec<Vec<f64>> = (0..4).map(|_| sobol.next_point()).collect();
/// assert_eq!(first[0], vec![0.0, 0.0, 0.0]);
/// assert_eq!(first[1], vec![0.5, 0.5, 0.5]);
/// // Every coordinate stays in [0, 1).
/// assert!(first.iter().flatten().all(|&v| (0.0..1.0).contains(&v)));
/// ```
#[derive(Debug, Clone)]
pub struct SobolSequence {
    dim: usize,
    // direction[d][j]: direction number j for dimension d, scaled by 2^32.
    direction: Vec<[u32; BITS as usize]>,
    state: Vec<u32>,
    index: u64,
}

impl SobolSequence {
    /// Creates a generator of `dim`-dimensional points.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or exceeds 8 (the table size).
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1, "dimension must be at least 1");
        assert!(dim <= 8, "at most 8 dimensions are supported");
        let mut direction = Vec::with_capacity(dim);

        // Dimension 1: van der Corput, v_j = 2^(32−j).
        let mut v = [0u32; BITS as usize];
        for (j, vj) in v.iter_mut().enumerate() {
            *vj = 1 << (BITS - 1 - j as u32);
        }
        direction.push(v);

        for d in 1..dim {
            let (s, a, m_init) = JOE_KUO[d - 1];
            let s = s as usize;
            let mut m = vec![0u32; BITS as usize];
            m[..s].copy_from_slice(&m_init[..s]);
            for j in s..BITS as usize {
                // Recurrence: m_j = 2a₁ m_{j−1} ⊕ 4a₂ m_{j−2} ⊕ …
                //             ⊕ 2^s m_{j−s} ⊕ m_{j−s}
                let mut val = m[j - s] ^ (m[j - s] << s);
                for k in 1..s {
                    let a_k = (a >> (s - 1 - k)) & 1;
                    if a_k == 1 {
                        val ^= m[j - k] << k;
                    }
                }
                m[j] = val;
            }
            let mut v = [0u32; BITS as usize];
            for (j, vj) in v.iter_mut().enumerate() {
                *vj = m[j] << (BITS - 1 - j as u32);
            }
            direction.push(v);
        }

        SobolSequence {
            dim,
            direction,
            state: vec![0; dim],
            index: 0,
        }
    }

    /// Point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Index of the next point to be generated.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Generates the next point of the sequence (Gray-code order).
    pub fn next_point(&mut self) -> Vec<f64> {
        let point: Vec<f64> = self
            .state
            .iter()
            .map(|&s| f64::from(s) / 2f64.powi(BITS as i32))
            .collect();
        // Gray-code update: flip the direction number of the lowest zero
        // bit of the index.
        let c = self.index.trailing_ones() as usize;
        let c = c.min(BITS as usize - 1);
        for (st, dir) in self.state.iter_mut().zip(&self.direction) {
            *st ^= dir[c];
        }
        self.index += 1;
        point
    }

    /// Generates the next `n` points.
    pub fn take_points(&mut self, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.next_point()).collect()
    }
}

impl Iterator for SobolSequence {
    type Item = Vec<f64>;

    fn next(&mut self) -> Option<Vec<f64>> {
        Some(self.next_point())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_points_match_reference() {
        // The canonical start of the 2-D Sobol sequence.
        let mut s = SobolSequence::new(2);
        let pts = s.take_points(8);
        let expect: [[f64; 2]; 8] = [
            [0.0, 0.0],
            [0.5, 0.5],
            [0.75, 0.25],
            [0.25, 0.75],
            [0.375, 0.375],
            [0.875, 0.875],
            [0.625, 0.125],
            [0.125, 0.625],
        ];
        for (got, want) in pts.iter().zip(&expect) {
            assert!((got[0] - want[0]).abs() < 1e-12, "{got:?} vs {want:?}");
            assert!((got[1] - want[1]).abs() < 1e-12, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn points_in_unit_cube() {
        let mut s = SobolSequence::new(8);
        for _ in 0..1000 {
            let p = s.next_point();
            assert_eq!(p.len(), 8);
            assert!(p.iter().all(|&v| (0.0..1.0).contains(&v)));
        }
    }

    #[test]
    fn low_discrepancy_beats_worst_case() {
        // In 1000 points of a 3-D Sobol sequence, each octant must contain
        // close to 125 points (within 15%), which i.i.d. uniforms only
        // achieve with luck.
        let mut s = SobolSequence::new(3);
        let mut counts = [0usize; 8];
        for _ in 0..1000 {
            let p = s.next_point();
            let idx = (usize::from(p[0] >= 0.5) << 2)
                | (usize::from(p[1] >= 0.5) << 1)
                | usize::from(p[2] >= 0.5);
            counts[idx] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (106..=144).contains(&c),
                "octant {i} has {c} points, expected ≈125"
            );
        }
    }

    #[test]
    fn no_duplicate_points_in_prefix() {
        let mut s = SobolSequence::new(3);
        let mut pts = s.take_points(256);
        pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        pts.dedup();
        assert_eq!(pts.len(), 256);
    }

    #[test]
    fn iterator_interface() {
        let s = SobolSequence::new(1);
        let v: Vec<Vec<f64>> = s.take(3).collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v[1], vec![0.5]);
    }

    #[test]
    #[should_panic(expected = "at most 8 dimensions")]
    fn rejects_high_dim() {
        let _ = SobolSequence::new(9);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_dim() {
        let _ = SobolSequence::new(0);
    }
}
