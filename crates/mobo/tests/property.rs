//! Property-based tests for Pareto/hypervolume/EHVI invariants.

use bofl_mobo::ehvi::{expected_hypervolume_improvement, BiGaussian};
use bofl_mobo::hypervolume::{hypervolume, hypervolume_improvement};
use bofl_mobo::pareto::dominates;
use bofl_mobo::{
    pareto_front_indices, MoboConfig, MoboEngine, Observation, ParetoFront, SobolSequence,
};
use proptest::prelude::*;

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<[f64; 2]>> {
    proptest::collection::vec((0.01f64..10.0, 0.01f64..10.0), n)
        .prop_map(|v| v.into_iter().map(|(a, b)| [a, b]).collect())
}

proptest! {
    /// Dominance is a strict partial order: irreflexive, asymmetric,
    /// transitive.
    #[test]
    fn dominance_is_strict_partial_order(
        a in (0.0f64..10.0, 0.0f64..10.0),
        b in (0.0f64..10.0, 0.0f64..10.0),
        c in (0.0f64..10.0, 0.0f64..10.0),
    ) {
        let (a, b, c) = ([a.0, a.1], [b.0, b.1], [c.0, c.1]);
        prop_assert!(!dominates(a, a));
        prop_assert!(!(dominates(a, b) && dominates(b, a)));
        if dominates(a, b) && dominates(b, c) {
            prop_assert!(dominates(a, c));
        }
    }

    /// No member of the extracted front is dominated by any input point.
    #[test]
    fn front_members_are_nondominated(pts in points(1..30)) {
        let front_idx = pareto_front_indices(&pts);
        prop_assert!(!front_idx.is_empty());
        for &i in &front_idx {
            for &p in &pts {
                prop_assert!(!dominates(p, pts[i]));
            }
        }
        // Every non-front point is dominated by someone.
        for (i, &p) in pts.iter().enumerate() {
            if !front_idx.contains(&i) {
                prop_assert!(pts.iter().any(|&q| dominates(q, p)));
            }
        }
    }

    /// Incremental insertion and batch extraction agree on the value set.
    #[test]
    fn incremental_equals_batch(pts in points(1..25)) {
        let front = ParetoFront::from_points(&pts);
        let mut batch: Vec<[f64; 2]> = pareto_front_indices(&pts)
            .into_iter().map(|i| pts[i]).collect();
        batch.sort_by(|a, b| a.partial_cmp(b).unwrap());
        batch.dedup();
        let mut inc: Vec<[f64; 2]> = front.iter().collect();
        inc.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(inc, batch);
    }

    /// Hypervolume is monotone under point insertion and bounded by the
    /// reference box volume.
    #[test]
    fn hypervolume_monotone_and_bounded(pts in points(1..20)) {
        let r = [11.0, 11.0];
        let mut front = ParetoFront::new();
        let mut last = 0.0;
        for &p in &pts {
            front.insert(p);
            let hv = hypervolume(&front, r);
            prop_assert!(hv + 1e-9 >= last);
            prop_assert!(hv <= 11.0 * 11.0);
            last = hv;
        }
    }

    /// HVI of a dominated-or-equal point is exactly zero; of a
    /// non-dominated point inside the box it is strictly positive.
    #[test]
    fn hvi_sign_matches_dominance(pts in points(1..15), q in (0.01f64..10.0, 0.01f64..10.0)) {
        let r = [10.5, 10.5];
        let front = ParetoFront::from_points(&pts);
        let q = [q.0, q.1];
        let hvi = hypervolume_improvement(&front, &[q], r);
        if front.dominated(q) {
            prop_assert!(hvi.abs() < 1e-12);
        } else {
            prop_assert!(hvi > 0.0, "non-dominated point must improve: {q:?}");
        }
    }

    /// EHVI is non-negative and increases when the candidate's means
    /// improve (both objectives shifted down).
    #[test]
    fn ehvi_nonnegative_and_monotone(
        pts in points(1..10),
        mean in (1.0f64..9.0, 1.0f64..9.0),
        stds in (0.05f64..1.0, 0.05f64..1.0),
        shift in 0.1f64..2.0,
    ) {
        let r = [12.0, 12.0];
        let front = ParetoFront::from_points(&pts);
        let post = BiGaussian { mean0: mean.0, std0: stds.0, mean1: mean.1, std1: stds.1 };
        let better = BiGaussian { mean0: mean.0 - shift, mean1: mean.1 - shift, ..post };
        let e = expected_hypervolume_improvement(&front, post, r);
        let eb = expected_hypervolume_improvement(&front, better, r);
        prop_assert!(e >= 0.0);
        prop_assert!(eb + 1e-12 >= e, "shifting means down must not reduce EHVI ({e} -> {eb})");
    }

    /// The parallel candidate scan is deterministic: `suggest` returns a
    /// byte-identical batch whether the scan runs on one worker or eight
    /// (the candidate count exceeds the serial-scan threshold, so the
    /// eight-worker run genuinely takes the scoped-thread path).
    #[test]
    fn suggest_is_identical_across_worker_counts(
        ys in proptest::collection::vec(0.02f64..0.98, 5..10),
        n_cand in 80usize..200,
    ) {
        let mut batches = Vec::new();
        for workers in [1usize, 8] {
            let mut engine = MoboEngine::new(MoboConfig {
                scan_workers: workers,
                ..MoboConfig::default()
            });
            for &x in &ys {
                engine
                    .observe(Observation::new(vec![x], [x * x, (1.0 - x) * (1.0 - x)]))
                    .unwrap();
            }
            let candidates: Vec<Vec<f64>> = (0..n_cand)
                .map(|i| vec![i as f64 / (n_cand - 1) as f64])
                .collect();
            batches.push(engine.suggest(8, &candidates).unwrap());
        }
        prop_assert_eq!(&batches[0], &batches[1]);
    }

    /// Sobol points remain within the unit cube for any dimension and
    /// prefix length.
    #[test]
    fn sobol_in_unit_cube(dim in 1usize..=8, n in 1usize..200) {
        let mut s = SobolSequence::new(dim);
        for _ in 0..n {
            let p = s.next_point();
            prop_assert_eq!(p.len(), dim);
            prop_assert!(p.iter().all(|&v| (0.0..1.0).contains(&v)));
        }
    }
}
